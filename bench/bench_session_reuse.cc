// E3 (§2.2): HTTP keep-alive session recycling vs one-connection-per-
// request. The paper: "we enforce an aggressive usage of the HTTP
// KeepAlive feature ... to maximize the re-utilization of the TCP
// connections and to minimize the effect of the TCP slow start", after
// noting that one-connection-per-request HTTP 1.0 "has been already
// proven inefficient due to the TCP slow start mechanism".
//
// Workload: K sequential GETs (small metadata reads and a large object)
// against one server, with and without the session pool, across the
// paper's network classes. Also reported: connections opened (server
// side) and the slow-start cost on a cold vs a recycled connection.

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/context.h"
#include "core/dav_file.h"

namespace davix {
namespace bench {
namespace {

constexpr size_t kSmallObjectBytes = 16 * 1024;

int SmallRequests(bool smoke) { return smoke ? 6 : 24; }
size_t LargeObjectBytes(bool smoke) {
  return (smoke ? 1 : 4) * 1024 * 1024;
}

std::vector<netsim::LinkProfile> Profiles(bool smoke) {
  if (smoke) {
    return {netsim::LinkProfile::Lan(), netsim::LinkProfile::Wan()};
  }
  return PaperProfiles();
}

struct Mode {
  const char* name;
  bool keep_alive;
};

void RunSmallRequestSweep(std::shared_ptr<httpd::ObjectStore> store,
                          const BenchArgs& args, JsonReporter* json) {
  int requests = SmallRequests(args.smoke);
  std::printf("\n[A] %d sequential 16 KiB GETs (time and connections)\n",
              requests);
  std::printf("%-6s %-16s %12s %14s %14s\n", "link", "mode", "total[s]",
              "per-req[ms]", "connections");
  for (const netsim::LinkProfile& link : Profiles(args.smoke)) {
    for (const Mode& mode : {Mode{"keep-alive", true},
                             Mode{"per-request conn", false}}) {
      HttpNode node = StartHttpNode(link, store);
      core::Context context;
      core::RequestParams params;
      params.metalink_mode = core::MetalinkMode::kDisabled;
      params.keep_alive = mode.keep_alive;
      core::DavFile file =
          *core::DavFile::Make(&context, node.UrlFor("/small.bin"));
      Stopwatch stopwatch;
      for (int i = 0; i < requests; ++i) {
        auto data = file.Get(params);
        if (!data.ok()) {
          std::fprintf(stderr, "GET failed: %s\n",
                       data.status().ToString().c_str());
          std::exit(1);
        }
      }
      double total = stopwatch.ElapsedSeconds();
      uint64_t connections = node.server->stats().connections_accepted.load();
      std::printf("%-6s %-16s %12.3f %14.2f %14llu\n", link.name.c_str(),
                  mode.name, total, total / requests * 1000,
                  static_cast<unsigned long long>(connections));
      json->AddRow()
          .Str("section", "small-gets")
          .Str("link", link.name)
          .Str("mode", mode.name)
          .Int("requests", static_cast<uint64_t>(requests))
          .Num("seconds", total)
          .Num("per_request_ms", total / requests * 1000)
          .Int("connections", connections);
      node.server->Stop();
    }
  }
}

void RunSlowStartDemo(std::shared_ptr<httpd::ObjectStore> store,
                      const BenchArgs& args, JsonReporter* json) {
  std::printf(
      "\n[B] %zu MiB GET on a cold vs a recycled (warm cwnd) connection\n",
      LargeObjectBytes(args.smoke) / (1024 * 1024));
  std::printf("%-6s %14s %14s %10s\n", "link", "cold[s]", "warm[s]",
              "cold/warm");
  for (const netsim::LinkProfile& link : Profiles(args.smoke)) {
    HttpNode node = StartHttpNode(link, store);
    core::Context context;
    core::RequestParams params;
    params.metalink_mode = core::MetalinkMode::kDisabled;
    core::DavFile file =
        *core::DavFile::Make(&context, node.UrlFor("/large.bin"));

    Stopwatch cold_watch;
    if (!file.Get(params).ok()) std::exit(1);
    double cold = cold_watch.ElapsedSeconds();

    // Same pooled connection: congestion window already opened by the
    // first transfer.
    Stopwatch warm_watch;
    if (!file.Get(params).ok()) std::exit(1);
    double warm = warm_watch.ElapsedSeconds();

    std::printf("%-6s %14.3f %14.3f %10.2f\n", link.name.c_str(), cold, warm,
                warm > 0 ? cold / warm : 0.0);
    json->AddRow()
        .Str("section", "slow-start")
        .Str("link", link.name)
        .Num("cold_seconds", cold)
        .Num("warm_seconds", warm)
        .Num("cold_over_warm", warm > 0 ? cold / warm : 0.0);
    node.server->Stop();
  }
}

}  // namespace
}  // namespace bench
}  // namespace davix

int main(int argc, char** argv) {
  using namespace davix;
  using namespace davix::bench;
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("E3: session recycling / keep-alive vs per-request connections",
              "§2.2 of the libdavix paper (TCP slow start, KeepAlive)");
  auto store = std::make_shared<httpd::ObjectStore>();
  Rng rng(3);
  store->Put("/small.bin", rng.Bytes(kSmallObjectBytes));
  store->Put("/large.bin", rng.Bytes(LargeObjectBytes(args.smoke)));
  JsonReporter json("session_reuse");
  RunSmallRequestSweep(store, args, &json);
  RunSlowStartDemo(store, args, &json);
  json.WriteTo(args.json_path);
  std::printf(
      "\nexpected shape: keep-alive saves ~%d handshake RTTs plus slow-start\n"
      "ramps; the gap grows with RTT (largest on WAN). Cold transfers are\n"
      "slower than warm ones by the slow-start ramp.\n",
      SmallRequests(args.smoke) - 1);
  return 0;
}
