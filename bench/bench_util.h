#ifndef DAVIX_BENCH_BENCH_UTIL_H_
#define DAVIX_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "httpd/dav_handler.h"
#include "httpd/object_store.h"
#include "httpd/router.h"
#include "httpd/server.h"
#include "netsim/link_profile.h"
#include "xrootd/xrd_server.h"

namespace davix {
namespace bench {

/// Prints a banner naming the experiment and its paper artefact.
inline void PrintHeader(const std::string& experiment,
                        const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

/// The three network classes of §3 plus loopback for sanity rows.
inline std::vector<netsim::LinkProfile> PaperProfiles() {
  return {netsim::LinkProfile::Lan(), netsim::LinkProfile::PanEuropean(),
          netsim::LinkProfile::Wan()};
}

/// One HTTP storage node on a given simulated link, sharing `store`.
struct HttpNode {
  std::shared_ptr<httpd::ObjectStore> store;
  std::shared_ptr<httpd::DavHandler> handler;
  std::shared_ptr<httpd::Router> router;
  std::unique_ptr<httpd::HttpServer> server;

  std::string UrlFor(const std::string& path) const {
    return server->BaseUrl() + path;
  }
};

inline HttpNode StartHttpNode(const netsim::LinkProfile& link,
                              std::shared_ptr<httpd::ObjectStore> store) {
  HttpNode node;
  node.store = store ? std::move(store)
                     : std::make_shared<httpd::ObjectStore>();
  node.handler = std::make_shared<httpd::DavHandler>(node.store);
  node.router = std::make_shared<httpd::Router>();
  node.handler->Register(node.router.get(), "/");
  httpd::ServerConfig config;
  config.link = link;
  auto server = httpd::HttpServer::Start(config, node.router);
  if (!server.ok()) {
    std::fprintf(stderr, "fatal: cannot start http node: %s\n",
                 server.status().ToString().c_str());
    std::exit(1);
  }
  node.server = std::move(*server);
  return node;
}

/// One xrootd-like node on a given link, sharing `store`.
inline std::unique_ptr<xrootd::XrdServer> StartXrdNode(
    const netsim::LinkProfile& link,
    std::shared_ptr<httpd::ObjectStore> store) {
  xrootd::XrdServerConfig config;
  config.link = link;
  auto server = xrootd::XrdServer::Start(config, std::move(store));
  if (!server.ok()) {
    std::fprintf(stderr, "fatal: cannot start xrd node: %s\n",
                 server.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*server);
}

/// Pretty bar for "less is better" time columns, paper-figure style.
inline std::string Bar(double value, double max_value, int width = 36) {
  int n = max_value > 0
              ? static_cast<int>(value / max_value * width + 0.5)
              : 0;
  if (n > width) n = width;
  return std::string(static_cast<size_t>(n), '#');
}

}  // namespace bench
}  // namespace davix

#endif  // DAVIX_BENCH_BENCH_UTIL_H_
