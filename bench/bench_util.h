#ifndef DAVIX_BENCH_BENCH_UTIL_H_
#define DAVIX_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "httpd/dav_handler.h"
#include "httpd/object_store.h"
#include "httpd/router.h"
#include "httpd/server.h"
#include "netsim/link_profile.h"
#include "xrootd/xrd_server.h"

namespace davix {
namespace bench {

/// Common CLI contract of the scenario benches:
///
///   bench_foo [--smoke] [--json <path>]
///
/// --smoke shrinks the workload to a CI-sized sanity run; --json writes
/// the results as a machine-readable document next to the human tables
/// (the BENCH_*.json perf-trajectory artifacts). Unrecognised flags warn
/// and are ignored so older invocations keep working.
struct BenchArgs {
  bool smoke = false;
  std::string json_path;
};

inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "warning: ignoring unknown argument '%s'\n",
                   argv[i]);
    }
  }
  return args;
}

/// Accumulates benchmark result rows and serialises them as
///
///   {"bench": "<name>", "rows": [{"k": v, ...}, ...]}
///
/// Values keep insertion order. Keys and string values are escaped; use
/// Num/Int for numeric columns so downstream tooling gets real numbers.
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  class Row {
   public:
    Row& Str(const std::string& key, const std::string& value) {
      fields_.emplace_back(key, Quote(value));
      return *this;
    }
    Row& Num(const std::string& key, double value) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6f", value);
      fields_.emplace_back(key, buf);
      return *this;
    }
    Row& Int(const std::string& key, uint64_t value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }

   private:
    friend class JsonReporter;
    static std::string Quote(const std::string& raw) {
      std::string out = "\"";
      for (char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
              char esc[8];
              std::snprintf(esc, sizeof(esc), "\\u%04x", c);
              out += esc;
            } else {
              out += c;
            }
        }
      }
      out += '"';
      return out;
    }
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  Row& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  std::string ToJson() const {
    std::string out = "{\"bench\": " + Row::Quote(bench_name_) +
                      ", \"rows\": [";
    for (size_t r = 0; r < rows_.size(); ++r) {
      out += r == 0 ? "\n  {" : ",\n  {";
      const auto& fields = rows_[r].fields_;
      for (size_t f = 0; f < fields.size(); ++f) {
        if (f > 0) out += ", ";
        out += Row::Quote(fields[f].first) + ": " + fields[f].second;
      }
      out += '}';
    }
    out += "\n]}\n";
    return out;
  }

  /// Writes the document to `path`; no-op when `path` is empty. Returns
  /// false (with a warning on stderr) when the file cannot be written.
  bool WriteTo(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write JSON results to %s\n",
                   path.c_str());
      return false;
    }
    std::string doc = ToJson();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("\nJSON results written to %s\n", path.c_str());
    return true;
  }

 private:
  std::string bench_name_;
  std::vector<Row> rows_;
};

/// Prints a banner naming the experiment and its paper artefact.
inline void PrintHeader(const std::string& experiment,
                        const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

/// The three network classes of §3 plus loopback for sanity rows.
inline std::vector<netsim::LinkProfile> PaperProfiles() {
  return {netsim::LinkProfile::Lan(), netsim::LinkProfile::PanEuropean(),
          netsim::LinkProfile::Wan()};
}

/// One HTTP storage node on a given simulated link, sharing `store`.
struct HttpNode {
  std::shared_ptr<httpd::ObjectStore> store;
  std::shared_ptr<httpd::DavHandler> handler;
  std::shared_ptr<httpd::Router> router;
  std::unique_ptr<httpd::HttpServer> server;

  std::string UrlFor(const std::string& path) const {
    return server->BaseUrl() + path;
  }
};

inline HttpNode StartHttpNode(const netsim::LinkProfile& link,
                              std::shared_ptr<httpd::ObjectStore> store) {
  HttpNode node;
  node.store = store ? std::move(store)
                     : std::make_shared<httpd::ObjectStore>();
  node.handler = std::make_shared<httpd::DavHandler>(node.store);
  node.router = std::make_shared<httpd::Router>();
  node.handler->Register(node.router.get(), "/");
  httpd::ServerConfig config;
  config.link = link;
  auto server = httpd::HttpServer::Start(config, node.router);
  if (!server.ok()) {
    std::fprintf(stderr, "fatal: cannot start http node: %s\n",
                 server.status().ToString().c_str());
    std::exit(1);
  }
  node.server = std::move(*server);
  return node;
}

/// One xrootd-like node on a given link, sharing `store`.
inline std::unique_ptr<xrootd::XrdServer> StartXrdNode(
    const netsim::LinkProfile& link,
    std::shared_ptr<httpd::ObjectStore> store) {
  xrootd::XrdServerConfig config;
  config.link = link;
  auto server = xrootd::XrdServer::Start(config, std::move(store));
  if (!server.ok()) {
    std::fprintf(stderr, "fatal: cannot start xrd node: %s\n",
                 server.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*server);
}

/// Pretty bar for "less is better" time columns, paper-figure style.
inline std::string Bar(double value, double max_value, int width = 36) {
  int n = max_value > 0
              ? static_cast<int>(value / max_value * width + 0.5)
              : 0;
  if (n > width) n = width;
  return std::string(static_cast<size_t>(n), '#');
}

}  // namespace bench
}  // namespace davix

#endif  // DAVIX_BENCH_BENCH_UTIL_H_
