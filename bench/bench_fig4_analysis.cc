// E1 (Figure 4): execution time of a ROOT-style data analysis job reading
// events from a remote tree file over the paper's three network classes —
// now a five-column transport matrix selected by URL through the
// StorageAdapter registry:
//
//   naive       davix://      TreeCache disabled: one read per basket,
//                             the §2.3 "very large number of individual
//                             data access operations"
//   sync        davix://      synchronous TreeCache vectored reads — the
//                             paper's davix design point
//   async       davix://      pipelined TreeCache prefetch over the
//                             dispatcher-backed async ReadPartialVec
//   async+mux   davix+mux://  same, over the framed mux transport
//   xrootd      xrd://        the async baseline, same pipelined cache
//
// Paper numbers (seconds, 100 % of events):
//   CERN<->CERN (LAN)    HTTP  97.22   XRootD  97.91   (HTTP 0.7 % faster)
//   UK<->CERN   (PAN)    HTTP 107.88   XRootD 107.80   (parity)
//   USA<->CERN  (WAN)    HTTP 203.49   XRootD 173.20   (XRootD 17.5 % faster)
//
// The paper's WAN gap exists because its davix executed vector queries
// synchronously while XRootD overlapped prefetch with compute. The async
// davix column closes it: the acceptance gates below require async-davix
// to be >= 2x the sync column at WAN and within 1.25x of XRootD.
//
// Every cell is CRC-gated: physics_sum must equal the local (MemoryFile)
// truth, and the cached modes must fetch byte-identical volumes (the
// prefetch window never refetches or skips a basket byte).
//
// Usage: bench_fig4_analysis [--reps N] [--fractions] [--quick] [--smoke]

#include <cstring>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/string_util.h"
#include "common/stats.h"
#include "core/context.h"
#include "muxhttp/mux.h"
#include "root/analysis_job.h"
#include "root/tree_format.h"

namespace davix {
namespace bench {
namespace {

constexpr char kTreePath[] = "/atlas/events.rnt";

/// Scaled-down stand-in for the paper's 700 MB / 12000-event file: same
/// event count, smaller events (the cells branch dominates volume). The
/// basket granularity keeps the cluster count near the real file's scale
/// (dozens of clusters, not a handful) so one-time connection warm-up is
/// amortised the way it is in the paper's runs.
root::TreeSpec BenchSpec(bool quick) {
  root::TreeSpec spec;
  spec.n_events = quick ? 3000 : 12000;
  spec.events_per_basket = 125;
  spec.codec = compress::CodecType::kDlz;
  spec.branches = {
      {"event_id", 8}, {"pt", 4},        {"eta", 4},
      {"phi", 4},      {"energy", 4},    {"charge", 1},
      {"n_tracks", 2}, {"cells", 4096},
  };
  return spec;
}

enum class Mode { kNaive, kSync, kAsync, kAsyncMux, kXrd };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kNaive:    return "naive";
    case Mode::kSync:     return "sync";
    case Mode::kAsync:    return "async";
    case Mode::kAsyncMux: return "async+mux";
    case Mode::kXrd:      return "xrootd";
  }
  return "?";
}

root::AnalysisConfig JobConfig(Mode mode, double fraction,
                               uint64_t window_bytes, uint32_t compute_iters) {
  root::AnalysisConfig config;
  config.fraction = fraction;
  // Physics compute dominates LAN runs, as in the paper (the LAN column is
  // nearly flat across protocols because the job is CPU-bound there).
  config.compute_iterations_per_event = compute_iters;
  config.cache.cluster_rows = 4;
  config.cache.enabled = mode != Mode::kNaive;
  bool async = mode == Mode::kAsync || mode == Mode::kAsyncMux ||
               mode == Mode::kXrd;
  config.cache.async_prefetch = async;
  // The sliding-window budget: how many bytes of upcoming clusters may be
  // requested while the current one is being processed, spread over a
  // pipeline up to four clusters deep — deep enough that a WAN round
  // trip is always in flight behind the compute.
  config.cache.prefetch_window_bytes = window_bytes;
  config.cache.prefetch_pipeline_clusters = 4;
  // Adaptive readahead: engage the window only on high-latency paths
  // (where the paper's §3 places XRootD's advantage); LAN/PAN cluster
  // fetches stay below this threshold.
  config.cache.prefetch_latency_threshold_micros = 200'000;
  return config;
}

struct Cell {
  double mean_seconds = 0;
  double stddev = 0;
  root::TreeCacheStats io;
  double physics_sum = 0;
  uint64_t events = 0;
};

/// All the servers one link's column shares: the HTTP node, a framed mux
/// server on the same router/link, and an xrootd node on the same store.
struct LinkNodes {
  HttpNode http;
  std::unique_ptr<muxhttp::MuxServer> mux;
  std::unique_ptr<xrootd::XrdServer> xrd;

  std::string UrlFor(Mode mode) const {
    switch (mode) {
      case Mode::kAsyncMux:
        return "davix+mux://127.0.0.1:" + std::to_string(mux->port()) +
               kTreePath;
      case Mode::kXrd:
        return "xrd://127.0.0.1:" + std::to_string(xrd->port()) + kTreePath;
      default:
        return "davix://127.0.0.1:" + std::to_string(http.server->port()) +
               kTreePath;
    }
  }
};

LinkNodes StartNodes(const netsim::LinkProfile& link,
                     std::shared_ptr<httpd::ObjectStore> store) {
  LinkNodes nodes;
  nodes.http = StartHttpNode(link, store);
  muxhttp::MuxServerConfig mux_config;
  mux_config.link = link;
  auto mux = muxhttp::MuxServer::Start(mux_config, nodes.http.router);
  if (!mux.ok()) {
    std::fprintf(stderr, "fatal: cannot start mux node: %s\n",
                 mux.status().ToString().c_str());
    std::exit(1);
  }
  nodes.mux = std::move(*mux);
  nodes.xrd = StartXrdNode(link, store);
  return nodes;
}

void StopNodes(LinkNodes* nodes) {
  nodes->http.server->Stop();
  nodes->mux->Stop();
  nodes->xrd->Stop();
}

Cell RunCell(const LinkNodes& nodes, Mode mode, double fraction, int reps,
             uint64_t window_bytes, uint32_t compute_iters) {
  Cell cell;
  SampleStats stats;
  for (int rep = 0; rep < reps; ++rep) {
    // Fresh context per run: cold pool, like a job. The dispatcher is
    // sized for the async columns' fan-out — pipeline depth x chunked
    // batches of sleep-bound shaped IO, not CPU work, so it must not be
    // clamped to the (possibly single-digit) core count or the chunk
    // requests of concurrent prefetches serialize.
    core::Context context(core::SessionPoolConfig{}, /*dispatcher_threads=*/32);
    root::StorageOpenParams storage;
    storage.context = &context;
    storage.request.metalink_mode = core::MetalinkMode::kDisabled;
    if (mode == Mode::kAsync || mode == Mode::kAsyncMux) {
      // The async davix columns run the multi-stream chunked vector path
      // (§2.4 parallel streams applied to §2.3 vector reads): cluster
      // fetches fan out across pooled connections instead of being bound
      // by one connection's congestion window. 256 KiB chunks clear TCP
      // slow start in ~4 round trips on a cold connection, and a cluster's
      // worth of chunks times the pipeline depth stays within the pool's
      // idle cap, so the steady state runs entirely on warm connections.
      // The sync column keeps the paper's single-stream vectored read —
      // that contrast is Figure 4.
      storage.request.vector_parallel_chunk_bytes = 256 * 1024;
    }
    Stopwatch stopwatch;
    auto report = root::RunAnalysisOnUrl(
        nodes.UrlFor(mode), JobConfig(mode, fraction, window_bytes,
                                      compute_iters),
        storage);
    if (!report.ok()) {
      std::fprintf(stderr, "analysis (%s) failed: %s\n", ModeName(mode),
                   report.status().ToString().c_str());
      std::exit(1);
    }
    stats.Add(stopwatch.ElapsedSeconds());
    cell.io = report->io;
    cell.physics_sum = report->physics_sum;
    cell.events = report->events_processed;
  }
  cell.mean_seconds = stats.Mean();
  cell.stddev = stats.Stddev();
  return cell;
}

/// Exit-gate helper: CRC / accounting mismatches are correctness bugs,
/// not noise — fail loudly, in smoke runs too.
void Require(bool ok, const char* what) {
  if (ok) return;
  std::fprintf(stderr, "GATE FAILED: %s\n", what);
  std::exit(1);
}

/// Timing-gate outcome of one matrix, enforced by the caller after the
/// JSON artifact is written — a failed ratio still leaves the numbers on
/// disk for CI to archive.
struct TimingGates {
  bool enforce = false;
  double wan_sync = 0;
  double wan_async = 0;
  double wan_xrd = 0;
};

TimingGates RunMatrix(double fraction, int reps, uint64_t window_bytes,
                      uint32_t compute_iters, bool full_gates,
                      const std::string& tree,
                      std::shared_ptr<httpd::ObjectStore> store,
                      JsonReporter* json) {
  std::printf("\n--- fraction of events read: %.0f %% ---\n", fraction * 100);
  std::printf("%-6s %-10s %9s %7s %8s %10s %9s %12s   %s\n", "link",
              "mode", "time[s]", "sd", "vecreads", "prefetch", "discard",
              "MB fetched", "profile");

  // Local truth for the CRC gate.
  root::MemoryFile local(tree);
  auto truth = root::RunAnalysis(
      &local,
      JobConfig(Mode::kSync, fraction, window_bytes, compute_iters));
  if (!truth.ok()) std::exit(1);

  const Mode kModes[] = {Mode::kNaive, Mode::kSync, Mode::kAsync,
                         Mode::kAsyncMux, Mode::kXrd};
  struct Row {
    std::string link;
    Mode mode;
    Cell cell;
  };
  std::vector<Row> rows;
  for (const netsim::LinkProfile& link : PaperProfiles()) {
    LinkNodes nodes = StartNodes(link, store);
    for (Mode mode : kModes) {
      // The naive column exists to show the §2.3 problem, not to be
      // averaged: one repetition (it is ~10x slower at WAN).
      int mode_reps = mode == Mode::kNaive ? 1 : reps;
      rows.push_back({link.name, mode,
                      RunCell(nodes, mode, fraction, mode_reps, window_bytes,
                              compute_iters)});
    }
    StopNodes(&nodes);
  }

  double max_time = 0;
  for (const Row& row : rows) {
    max_time = std::max(max_time, row.cell.mean_seconds);
  }
  for (const Row& row : rows) {
    const root::TreeCacheStats& io = row.cell.io;
    std::printf("%-6s %-10s %9.3f %7.3f %8llu %10llu %9llu %12.2f   %s\n",
                row.link.c_str(), ModeName(row.mode), row.cell.mean_seconds,
                row.cell.stddev,
                static_cast<unsigned long long>(io.vector_reads),
                static_cast<unsigned long long>(io.async_prefetches),
                static_cast<unsigned long long>(io.prefetch_discards),
                static_cast<double>(io.bytes_fetched) / 1e6,
                Bar(row.cell.mean_seconds, max_time).c_str());
    json->AddRow()
        .Str("link", row.link)
        .Str("mode", ModeName(row.mode))
        .Num("fraction", fraction)
        .Num("mean_seconds", row.cell.mean_seconds)
        .Num("stddev_seconds", row.cell.stddev)
        .Int("vector_reads", io.vector_reads)
        .Int("ranges_requested", io.ranges_requested)
        .Int("single_reads", io.single_reads)
        .Int("async_prefetches", io.async_prefetches)
        .Int("prefetch_discards", io.prefetch_discards)
        .Int("bytes_fetched", io.bytes_fetched)
        .Int("bytes_prefetched_early", io.bytes_prefetched_early)
        .Num("prefetch_wait_seconds",
             static_cast<double>(io.prefetch_wait_micros) / 1e6);

    // Correctness gates, every cell, every run shape.
    Require(row.cell.physics_sum == truth->physics_sum,
            "physics_sum differs from local truth (CRC mismatch)");
    Require(row.cell.events == truth->events_processed,
            "events_processed differs from local truth");
  }

  auto cell = [&](const std::string& link, Mode mode) -> const Cell& {
    for (const Row& row : rows) {
      if (row.link == link && row.mode == mode) return row.cell;
    }
    std::fprintf(stderr, "missing cell\n");
    std::exit(1);
  };

  // The prefetch window must be an overlap optimisation only: byte-for-
  // byte the cached modes fetch exactly what the sync mode fetches.
  for (const netsim::LinkProfile& link : PaperProfiles()) {
    uint64_t sync_bytes = cell(link.name, Mode::kSync).io.bytes_fetched;
    Require(cell(link.name, Mode::kAsync).io.bytes_fetched == sync_bytes,
            "async davix fetched different byte volume than sync");
    Require(cell(link.name, Mode::kAsyncMux).io.bytes_fetched == sync_bytes,
            "async mux fetched different byte volume than sync");
    Require(cell(link.name, Mode::kXrd).io.bytes_fetched == sync_bytes,
            "xrootd fetched different byte volume than sync");
  }

  // WAN is where overlap pays: the async davix column must actually
  // prefetch there (the adaptive latch engages past the threshold).
  Require(cell("WAN", Mode::kAsync).io.async_prefetches > 0,
          "async davix did not prefetch at WAN");
  Require(cell("WAN", Mode::kXrd).io.async_prefetches > 0,
          "xrootd did not prefetch at WAN");

  double wan_sync = cell("WAN", Mode::kSync).mean_seconds;
  double wan_async = cell("WAN", Mode::kAsync).mean_seconds;
  double wan_xrd = cell("WAN", Mode::kXrd).mean_seconds;
  double lan_sync = cell("LAN", Mode::kSync).mean_seconds;
  double wan_naive = cell("WAN", Mode::kNaive).mean_seconds;

  std::printf("\nclaims (paper -> measured):\n");
  std::printf("  naive  penalty at WAN: %.1fx slower than sync TreeCache\n",
              wan_sync > 0 ? wan_naive / wan_sync : 0.0);
  std::printf("  paper WAN design point: xrootd 17.5%% ahead of sync HTTP "
              "-> measured %+.1f%%\n",
              wan_xrd > 0 ? (wan_sync - wan_xrd) / wan_xrd * 100 : 0.0);
  std::printf("  async davix at WAN: %.2fx faster than sync "
              "(gate >= 2x), %.2fx of xrootd (gate <= 1.25x)\n",
              wan_async > 0 ? wan_sync / wan_async : 0.0,
              wan_xrd > 0 ? wan_async / wan_xrd : 0.0);
  std::printf("  WAN/LAN slowdown (sync davix): paper 2.09x -> "
              "measured %.2fx\n",
              lan_sync > 0 ? wan_sync / lan_sync : 0.0);
  json->AddRow()
      .Str("link", "summary")
      .Num("fraction", fraction)
      .Num("wan_naive_over_sync", wan_sync > 0 ? wan_naive / wan_sync : 0.0)
      .Num("wan_sync_over_async", wan_async > 0 ? wan_sync / wan_async : 0.0)
      .Num("wan_async_over_xrd", wan_xrd > 0 ? wan_async / wan_xrd : 0.0)
      .Num("wan_over_lan_sync", lan_sync > 0 ? wan_sync / lan_sync : 0.0);

  TimingGates gates;
  gates.enforce = full_gates;
  gates.wan_sync = wan_sync;
  gates.wan_async = wan_async;
  gates.wan_xrd = wan_xrd;
  return gates;
}

int Main(int argc, char** argv) {
  int reps = 3;
  bool fractions = false;
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--fractions") == 0) {
      fractions = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      // CI smoke mode: smallest dataset, one repetition, no fractions.
      quick = true;
      fractions = false;
      reps = 1;
    }
  }
  if (reps < 1) reps = 1;

  PrintHeader("E1: ROOT analysis job execution time (Figure 4 matrix)",
              "naive / sync / async / async+mux davix vs xrootd, by URL");

  root::TreeSpec spec = BenchSpec(quick);
  // Smaller per-event compute in quick mode keeps sanitizer smokes fast;
  // the full run uses the CPU-heavy figure the paper's LAN parity needs.
  uint32_t compute_iters = quick ? 20'000 : 80'000;
  std::printf("dataset: %llu events, %zu branches, %llu B/event, "
              "building tree file...\n",
              static_cast<unsigned long long>(spec.n_events),
              spec.branches.size(),
              static_cast<unsigned long long>(spec.BytesPerEvent()));
  std::string tree = root::BuildTreeFile(spec, /*seed=*/2014);
  std::printf("tree file: %s stored (%s raw)\n",
              HumanBytes(tree.size()).c_str(),
              HumanBytes(spec.BytesPerEvent() * spec.n_events).c_str());

  // Sliding-window budget: five clusters' worth of stored bytes over a
  // four-deep pipeline — full clusters stay in flight (stored sizes vary
  // with compression, so the window needs headroom above depth x mean or
  // the last slot degenerates into a truncated prefix) and a WAN round
  // trip is always in flight while the current cluster decompresses.
  uint64_t rows = spec.BasketCountPerBranch();
  uint64_t cluster_bytes = tree.size() / rows * 4;  // cluster_rows = 4
  uint64_t window_bytes = cluster_bytes * 5;
  std::printf("cluster ~%s, prefetch window %s (pipeline depth 4)\n",
              HumanBytes(cluster_bytes).c_str(),
              HumanBytes(window_bytes).c_str());

  auto store = std::make_shared<httpd::ObjectStore>();
  store->Put(kTreePath, tree);

  JsonReporter json("fig4_analysis");
  TimingGates gates = RunMatrix(1.0, reps, window_bytes, compute_iters,
                                !quick, tree, store, &json);
  if (fractions) {
    RunMatrix(0.5, reps, window_bytes, compute_iters, false, tree, store,
              &json);
    RunMatrix(0.1, reps, window_bytes, compute_iters, false, tree, store,
              &json);
  }
  // Write the artifact before enforcing timing ratios: a failed gate
  // should still leave the measured numbers on disk for CI to archive.
  json.WriteTo(json_path);
  if (gates.enforce) {
    // The acceptance gates of the full-size run. Smoke datasets are too
    // small for stable timing ratios, so these only run full-size.
    Require(gates.wan_async * 2 <= gates.wan_sync,
            "async davix not >= 2x faster than sync at WAN");
    Require(gates.wan_async <= gates.wan_xrd * 1.25,
            "async davix more than 1.25x slower than xrootd at WAN");
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace davix

int main(int argc, char** argv) { return davix::bench::Main(argc, argv); }
