// E1 (Figure 4): execution time of a ROOT-style data analysis job reading
// events from a remote tree file, davix/HTTP vs the xrootd-like baseline,
// over the paper's three network classes.
//
// Paper numbers (seconds, 100 % of events):
//   CERN<->CERN (LAN)    HTTP  97.22   XRootD  97.91   (HTTP 0.7 % faster)
//   UK<->CERN   (PAN)    HTTP 107.88   XRootD 107.80   (parity)
//   USA<->CERN  (WAN)    HTTP 203.49   XRootD 173.20   (XRootD 17.5 % faster)
//
// The absolute scale here is smaller (scaled dataset + scaled RTTs); the
// claims under test are the *shape*: parity on LAN with HTTP marginally
// ahead, parity at PAN, XRootD ahead by ~10-25 % at WAN thanks to its
// overlapped (sliding-window) prefetch.
//
// Usage: bench_fig4_analysis [--reps N] [--fractions] [--quick] [--smoke]

#include <cstring>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/string_util.h"
#include "common/stats.h"
#include "core/context.h"
#include "root/analysis_job.h"
#include "root/transport_adapters.h"
#include "root/tree_format.h"
#include "xrootd/xrd_client.h"

namespace davix {
namespace bench {
namespace {

constexpr char kTreePath[] = "/atlas/events.rnt";

/// Scaled-down stand-in for the paper's 700 MB / 12000-event file: same
/// event count, smaller events (the cells branch dominates volume).
root::TreeSpec BenchSpec(bool quick) {
  root::TreeSpec spec;
  spec.n_events = quick ? 3000 : 12000;
  spec.events_per_basket = 250;
  spec.codec = compress::CodecType::kDlz;
  spec.branches = {
      {"event_id", 8}, {"pt", 4},        {"eta", 4},
      {"phi", 4},      {"energy", 4},    {"charge", 1},
      {"n_tracks", 2}, {"cells", 4096},
  };
  return spec;
}

root::AnalysisConfig JobConfig(double fraction, bool xrootd_async,
                               uint64_t prefetch_window_bytes) {
  root::AnalysisConfig config;
  config.fraction = fraction;
  // Physics compute dominates LAN runs, as in the paper (the LAN column is
  // nearly flat across protocols because the job is CPU-bound there).
  config.compute_iterations_per_event = 80'000;
  config.cache.cluster_rows = 4;
  config.cache.async_prefetch = xrootd_async;
  // The sliding-window budget: how much of the next cluster XRootD may
  // prefetch while the current one is being processed. Like the real
  // XRootD readahead buffer it is a fixed byte budget smaller than a
  // cluster, so a bounded fraction of each cluster's transfer is hidden.
  config.cache.prefetch_window_bytes = prefetch_window_bytes;
  // Adaptive readahead: engage the window only on high-latency paths
  // (where the paper's §3 places XRootD's advantage); LAN/PAN cluster
  // fetches stay below this threshold.
  config.cache.prefetch_latency_threshold_micros = 200'000;
  return config;
}

struct Cell {
  double mean_seconds = 0;
  double stddev = 0;
  IoCounters io;
  uint64_t vector_reads = 0;
};

Cell RunHttpCell(const netsim::LinkProfile& link,
                 std::shared_ptr<httpd::ObjectStore> store, double fraction,
                 int reps, uint64_t window_bytes) {
  HttpNode node = StartHttpNode(link, store);
  Cell cell;
  SampleStats stats;
  for (int rep = 0; rep < reps; ++rep) {
    core::Context context;  // fresh context: cold pool per run, like a job
    core::RequestParams params;
    params.metalink_mode = core::MetalinkMode::kDisabled;
    Stopwatch stopwatch;
    auto file = root::DavixRandomAccessFile::Open(&context,
                                                  node.UrlFor(kTreePath),
                                                  params);
    if (!file.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   file.status().ToString().c_str());
      std::exit(1);
    }
    auto report = root::RunAnalysis(file->get(),
                                    JobConfig(fraction, false, window_bytes));
    if (!report.ok()) {
      std::fprintf(stderr, "analysis failed: %s\n",
                   report.status().ToString().c_str());
      std::exit(1);
    }
    stats.Add(stopwatch.ElapsedSeconds());
    cell.io = context.SnapshotCounters();
    cell.vector_reads = report->io.vector_reads;
  }
  cell.mean_seconds = stats.Mean();
  cell.stddev = stats.Stddev();
  node.server->Stop();
  return cell;
}

Cell RunXrdCell(const netsim::LinkProfile& link,
                std::shared_ptr<httpd::ObjectStore> store, double fraction,
                int reps, uint64_t window_bytes) {
  std::unique_ptr<xrootd::XrdServer> server = StartXrdNode(link, store);
  Cell cell;
  SampleStats stats;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch stopwatch;
    auto client = xrootd::XrdClient::Connect("127.0.0.1", server->port());
    if (!client.ok()) std::exit(1);
    if (!(*client)->Login().ok()) std::exit(1);
    auto file = root::XrdRandomAccessFile::Open(client->get(), kTreePath);
    if (!file.ok()) std::exit(1);
    auto report = root::RunAnalysis(file->get(),
                                    JobConfig(fraction, true, window_bytes));
    if (!report.ok()) {
      std::fprintf(stderr, "analysis failed: %s\n",
                   report.status().ToString().c_str());
      std::exit(1);
    }
    stats.Add(stopwatch.ElapsedSeconds());
    file->reset();  // close the handle outside the timed region
    cell.vector_reads = report->io.vector_reads;
  }
  cell.mean_seconds = stats.Mean();
  cell.stddev = stats.Stddev();
  server->Stop();
  return cell;
}

void RunMatrix(double fraction, int reps, uint64_t window_bytes,
               std::shared_ptr<httpd::ObjectStore> store,
               JsonReporter* json) {
  std::printf("\n--- fraction of events read: %.0f %% ---\n", fraction * 100);
  std::printf("%-18s %-8s %10s %8s %14s   %s\n", "link (scaled RTT)",
              "protocol", "time[s]", "sd", "vector reads", "profile");

  struct Row {
    std::string link;
    std::string protocol;
    Cell cell;
  };
  std::vector<Row> rows;
  for (const netsim::LinkProfile& link : PaperProfiles()) {
    Cell http = RunHttpCell(link, store, fraction, reps, window_bytes);
    Cell xrd = RunXrdCell(link, store, fraction, reps, window_bytes);
    rows.push_back({link.name, "HTTP", http});
    rows.push_back({link.name, "xrootd", xrd});
  }
  double max_time = 0;
  for (const Row& row : rows) {
    max_time = std::max(max_time, row.cell.mean_seconds);
  }
  for (const Row& row : rows) {
    std::printf("%-18s %-8s %10.3f %8.3f %14llu   %s\n", row.link.c_str(),
                row.protocol.c_str(), row.cell.mean_seconds, row.cell.stddev,
                static_cast<unsigned long long>(row.cell.vector_reads),
                Bar(row.cell.mean_seconds, max_time).c_str());
    json->AddRow()
        .Str("link", row.link)
        .Str("protocol", row.protocol)
        .Num("fraction", fraction)
        .Num("mean_seconds", row.cell.mean_seconds)
        .Num("stddev_seconds", row.cell.stddev)
        .Int("vector_reads", row.cell.vector_reads);
  }

  // Paper-claim summary lines.
  auto find = [&](const std::string& link, const std::string& protocol) {
    for (const Row& row : rows) {
      if (row.link == link && row.protocol == protocol) {
        return row.cell.mean_seconds;
      }
    }
    return 0.0;
  };
  double lan_http = find("LAN", "HTTP"), lan_xrd = find("LAN", "xrootd");
  double pan_http = find("PAN", "HTTP"), pan_xrd = find("PAN", "xrootd");
  double wan_http = find("WAN", "HTTP"), wan_xrd = find("WAN", "xrootd");
  std::printf("\nclaims (paper -> measured):\n");
  std::printf("  LAN: HTTP 0.7%% faster      -> HTTP %+.1f%% vs xrootd\n",
              (lan_xrd - lan_http) / lan_http * 100);
  std::printf("  PAN: parity                -> HTTP %+.1f%% vs xrootd\n",
              (pan_xrd - pan_http) / pan_http * 100);
  std::printf("  WAN: xrootd 17.5%% faster   -> xrootd %+.1f%% vs HTTP\n",
              (wan_http - wan_xrd) / wan_xrd * 100);
  std::printf("  WAN/LAN slowdown (HTTP): paper 2.09x -> measured %.2fx\n",
              lan_http > 0 ? wan_http / lan_http : 0.0);
  json->AddRow()
      .Str("link", "summary")
      .Num("fraction", fraction)
      .Num("lan_http_vs_xrd_pct", (lan_xrd - lan_http) / lan_http * 100)
      .Num("pan_http_vs_xrd_pct", (pan_xrd - pan_http) / pan_http * 100)
      .Num("wan_xrd_vs_http_pct", (wan_http - wan_xrd) / wan_xrd * 100)
      .Num("wan_over_lan_http", lan_http > 0 ? wan_http / lan_http : 0.0);
}

int Main(int argc, char** argv) {
  int reps = 3;
  bool fractions = false;
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--fractions") == 0) {
      fractions = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      // CI smoke mode: smallest dataset, one repetition, no fractions.
      quick = true;
      fractions = false;
      reps = 1;
    }
  }
  if (reps < 1) reps = 1;

  PrintHeader("E1: ROOT analysis job execution time (davix vs xrootd)",
              "Figure 4 + §3 of the libdavix paper");

  root::TreeSpec spec = BenchSpec(quick);
  std::printf("dataset: %llu events, %zu branches, %llu B/event, "
              "building tree file...\n",
              static_cast<unsigned long long>(spec.n_events),
              spec.branches.size(),
              static_cast<unsigned long long>(spec.BytesPerEvent()));
  std::string tree = root::BuildTreeFile(spec, /*seed=*/2014);
  std::printf("tree file: %s stored (%s raw)\n",
              HumanBytes(tree.size()).c_str(),
              HumanBytes(spec.BytesPerEvent() * spec.n_events).c_str());

  // Sliding-window budget: ~3/4 of one cluster's stored bytes, matching
  // how XRootD's bounded readahead buffer relates to HEP cluster sizes.
  uint64_t rows = spec.BasketCountPerBranch();
  uint64_t cluster_bytes = tree.size() / rows * 4;  // cluster_rows = 4
  uint64_t window_bytes = cluster_bytes * 5 / 8;  // ~62 % of a cluster
  std::printf("cluster ~%s, xrootd sliding window %s\n",
              HumanBytes(cluster_bytes).c_str(),
              HumanBytes(window_bytes).c_str());

  auto store = std::make_shared<httpd::ObjectStore>();
  store->Put(kTreePath, std::move(tree));

  JsonReporter json("fig4_analysis");
  RunMatrix(1.0, reps, window_bytes, store, &json);
  if (fractions) {
    RunMatrix(0.5, reps, window_bytes, store, &json);
    RunMatrix(0.1, reps, window_bytes, store, &json);
  }
  json.WriteTo(json_path);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace davix

int main(int argc, char** argv) { return davix::bench::Main(argc, argv); }
