// E5 (§2.4): Metalink fail-over. The paper: the fail-over strategy
// "improves drastically the resiliency of the data access layer and has
// the advantage to be without compromise or impact on the performances",
// with the guarantee "that a read operation on a resource will succeed as
// long as one replica of this resource is remotely accessible and
// referenced by the corresponding Metalink."
//
// Workload: 3 replicas behind a federation; kill 0, 1 or 2 of them
// (always including the primary first) and run 16 reads. Reported:
// success, wall time, fail-overs. A no-metalink baseline shows the
// failure the mechanism removes.
//
// A second section drives the PR 5 ReplicaSet path end to end:
// DavPosix::Open against two netsim replicas (one healthy, one dead or
// dropping half its responses mid-body) resolves the replica set once,
// then a sequential windowed read and a vectored read must complete
// with CRC-identical bytes and zero user-visible errors — the batch
// and window fetches re-dispatch to the next-best source mid-read. The
// binary exits non-zero when any byte or any read goes wrong.

#include "bench/bench_util.h"
#include "common/checksum.h"
#include "common/clock.h"
#include "common/rng.h"
#include "core/context.h"
#include "core/dav_file.h"
#include "core/dav_posix.h"
#include "fed/federation_handler.h"
#include "fed/replica_catalog.h"
#include "netsim/fault_injector.h"

namespace davix {
namespace bench {
namespace {

constexpr size_t kObjectBytes = 2 * 1024 * 1024;
constexpr char kPath[] = "/dataset/events.bin";

int Reads(bool smoke) { return smoke ? 6 : 16; }

struct Deployment {
  std::vector<HttpNode> replicas;
  std::shared_ptr<fed::ReplicaCatalog> catalog;
  std::shared_ptr<fed::FederationHandler> federation;
  std::shared_ptr<httpd::Router> fed_router;
  std::unique_ptr<httpd::HttpServer> fed_server;
};

Deployment Deploy(const netsim::LinkProfile& link, const std::string& body) {
  Deployment d;
  d.catalog = std::make_shared<fed::ReplicaCatalog>();
  for (int i = 0; i < 3; ++i) {
    auto store = std::make_shared<httpd::ObjectStore>();
    store->Put(kPath, body);
    d.replicas.push_back(StartHttpNode(link, store));
    d.catalog->AddReplica(kPath, d.replicas.back().UrlFor(kPath), i + 1);
  }
  d.catalog->SetFileMeta(kPath, body.size(), Md5::HexDigest(body));
  d.federation = std::make_shared<fed::FederationHandler>(d.catalog);
  d.fed_router = std::make_shared<httpd::Router>();
  d.federation->Register(d.fed_router.get(), "/");
  // The federation endpoint itself sits on the same class of link.
  httpd::ServerConfig fed_config;
  fed_config.link = link;
  auto server = httpd::HttpServer::Start(fed_config, d.fed_router);
  if (!server.ok()) std::exit(1);
  d.fed_server = std::move(*server);
  return d;
}

void RunCell(const netsim::LinkProfile& link, const std::string& body,
             int replicas_down, bool metalink_enabled, int reads,
             JsonReporter* json) {
  Deployment d = Deploy(link, body);
  for (int i = 0; i < replicas_down; ++i) {
    d.replicas[i].server->faults().SetServerDown(true);
  }
  core::Context context;
  core::RequestParams params;
  params.metalink_mode = metalink_enabled ? core::MetalinkMode::kFailover
                                          : core::MetalinkMode::kDisabled;
  params.metalink_resolver = d.fed_server->BaseUrl();
  params.max_retries = 0;  // isolate the fail-over path itself
  core::DavFile file =
      *core::DavFile::Make(&context, d.replicas[0].UrlFor(kPath));

  int successes = 0;
  Stopwatch stopwatch;
  for (int i = 0; i < reads; ++i) {
    auto data = file.ReadPartial(static_cast<uint64_t>(i) * 4096, 4096,
                                 params);
    if (data.ok()) ++successes;
  }
  double total = stopwatch.ElapsedSeconds();
  IoCounters io = context.SnapshotCounters();
  const char* mode = metalink_enabled ? "failover" : "no-metalink";
  std::printf("%-6s %-11s %6d %10d/%-3d %10.3f %11llu\n", link.name.c_str(),
              mode, replicas_down, successes, reads, total,
              static_cast<unsigned long long>(io.replica_failovers));
  json->AddRow()
      .Str("link", link.name)
      .Str("mode", mode)
      .Int("replicas_down", replicas_down)
      .Int("reads_ok", successes)
      .Int("reads_total", reads)
      .Num("seconds", total)
      .Int("failovers", io.replica_failovers);
  for (HttpNode& node : d.replicas) node.server->Stop();
  d.fed_server->Stop();
}

bool g_verify_failed = false;

/// ReplicaSet section: DavPosix reads over two replicas, one unhealthy.
/// `scenario` is "healthy", "one-dead" (replica 0 refuses connections
/// before Open) or "one-lossy" (replica 0 truncates 40 % of its
/// response bodies mid-flight — netsim loss).
void RunMultiSourceCell(const netsim::LinkProfile& link,
                        const std::string& body,
                        const std::string& scenario, JsonReporter* json) {
  Deployment d = Deploy(link, body);
  // Two replicas are enough: the dying source and its survivor.
  d.replicas[2].server->Stop();
  d.catalog->RemoveReplica(kPath, d.replicas[2].UrlFor(kPath));
  if (scenario == "one-dead") {
    d.replicas[0].server->faults().SetServerDown(true);
  } else if (scenario == "one-lossy") {
    netsim::FaultRule rule;
    rule.path_prefix = kPath;
    rule.action = netsim::FaultAction::kTruncateBody;
    rule.probability = 0.4;
    d.replicas[0].server->faults().AddRule(rule);
  }

  core::BlockCacheConfig cache_config;
  cache_config.capacity_bytes = 32ull << 20;
  core::Context context(core::SessionPoolConfig{}, 0, cache_config);
  core::RequestParams params;
  params.metalink_resolver = d.fed_server->BaseUrl();
  params.max_retries = 0;  // isolate the replica-set failover itself
  params.readahead_bytes = 256 * 1024;
  params.readahead_window_chunks = 3;

  core::DavPosix posix(&context);
  int errors = 0;
  Stopwatch stopwatch;
  std::string sequential;
  std::vector<http::ByteRange> ranges;
  std::string vectored;
  Result<int> fd = posix.Open(d.replicas[0].UrlFor(kPath), params);
  if (!fd.ok()) {
    ++errors;
  } else {
    // Sequential windowed scan to EOF.
    while (true) {
      Result<std::string> part = posix.Read(*fd, 64 * 1024);
      if (!part.ok()) {
        ++errors;
        break;
      }
      if (part->empty()) break;
      sequential += *part;
    }
    // Vectored read of scattered fragments.
    for (uint64_t i = 0; i < 16; ++i) {
      ranges.push_back({i * (body.size() / 16), 8 * 1024});
    }
    Result<std::vector<std::string>> results = posix.PReadVec(*fd, ranges);
    if (!results.ok()) {
      ++errors;
    } else {
      for (const std::string& fragment : *results) vectored += fragment;
    }
    posix.Close(*fd).ok();
  }
  double total = stopwatch.ElapsedSeconds();

  std::string expected_vec;
  for (const http::ByteRange& r : ranges) {
    expected_vec += body.substr(r.offset, r.length);
  }
  bool crc_ok = Crc32(sequential) == Crc32(body) &&
                Crc32(vectored) == Crc32(expected_vec);
  if (!crc_ok || errors != 0) {
    std::fprintf(stderr, "multisource %s: errors=%d crc_ok=%d\n",
                 scenario.c_str(), errors, crc_ok ? 1 : 0);
    g_verify_failed = true;
  }
  IoCounters io = context.SnapshotCounters();
  std::printf("%-6s %-11s %6s %10s %10.3f %11llu %10llu %8llu\n",
              link.name.c_str(), scenario.c_str(), "-",
              crc_ok && errors == 0 ? "ok" : "FAIL", total,
              static_cast<unsigned long long>(io.replica_failovers),
              static_cast<unsigned long long>(io.replica_quarantines),
              static_cast<unsigned long long>(errors));
  json->AddRow()
      .Str("link", link.name)
      .Str("scenario", "multisource_" + scenario)
      .Num("seconds", total)
      .Int("errors", errors)
      .Int("failovers", io.replica_failovers)
      .Int("quarantines", io.replica_quarantines)
      .Int("validator_rejects", io.replica_validator_rejects)
      .Int("verified", crc_ok && errors == 0 ? 1 : 0);
  for (HttpNode& node : d.replicas) node.server->Stop();
  d.fed_server->Stop();
}

}  // namespace
}  // namespace bench
}  // namespace davix

int main(int argc, char** argv) {
  using namespace davix;
  using namespace davix::bench;
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("E5: Metalink fail-over resilience",
              "§2.4 of the libdavix paper (fail-over strategy)");
  Rng rng(5);
  std::string body = rng.Bytes(kObjectBytes);
  int reads = Reads(args.smoke);

  JsonReporter json("failover");
  std::printf("%-6s %-11s %6s %14s %10s %11s\n", "link", "mode", "down",
              "ok/total", "time[s]", "failovers");
  std::vector<netsim::LinkProfile> links =
      args.smoke
          ? std::vector<netsim::LinkProfile>{netsim::LinkProfile::Lan()}
          : std::vector<netsim::LinkProfile>{netsim::LinkProfile::Lan(),
                                             netsim::LinkProfile::Wan()};
  for (const netsim::LinkProfile& link : links) {
    for (int down = 0; down <= 2; ++down) {
      RunCell(link, body, down, /*metalink_enabled=*/true, reads, &json);
    }
    // Baselines: with a healthy primary, fail-over costs nothing extra;
    // with a dead primary and no Metalink, every read is a hard error.
    RunCell(link, body, /*replicas_down=*/0, /*metalink_enabled=*/false,
            reads, &json);
    RunCell(link, body, /*replicas_down=*/1, /*metalink_enabled=*/false,
            reads, &json);
  }

  std::printf(
      "\nReplicaSet path (DavPosix windowed + vectored, 2 replicas):\n"
      "%-6s %-11s %6s %10s %10s %11s %10s %8s\n",
      "link", "scenario", "down", "result", "time[s]", "failovers",
      "quarantine", "errors");
  for (const netsim::LinkProfile& link : links) {
    for (const char* scenario : {"healthy", "one-dead", "one-lossy"}) {
      RunMultiSourceCell(link, body, scenario, &json);
    }
  }

  json.WriteTo(args.json_path);
  std::printf(
      "\nexpected shape: with fail-over, 16/16 reads succeed whenever at\n"
      "least one replica is alive; 0 replicas down costs nothing extra\n"
      "(the paper: 'without compromise or impact on the performances');\n"
      "without Metalink, a dead primary yields 0/16. On the ReplicaSet\n"
      "path, a dead or lossy replica costs fail-overs (and a\n"
      "quarantine), never an error or a wrong byte.\n");
  return g_verify_failed ? 1 : 0;
}
