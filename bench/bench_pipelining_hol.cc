// E2 (Figure 1 + §2.2): head-of-line blocking of HTTP/1.1 pipelining vs
// davix's pooled dispatch vs xrootd multiplexing.
//
// The paper: "any request pipelined suffering of a delay will cause a
// delay for all the following requests ... This is an unacceptable
// performance penalty in case of parallel I/O requests with different
// sizes." Davix answers with "a dynamic connection pool with a
// thread-safe query dispatch system"; XRootD with protocol multiplexing.
//
// Workload: N=12 GETs where request #0 is artificially slow (server-side
// stall). Strategies:
//   serial     one connection, strict request/response (no pipelining)
//   pipelined  one connection, all requests written up front, responses
//              read in order (HTTP/1.1 pipelining -> HOL blocking)
//   pool       davix dispatch: N requests over a connection pool from
//              4 worker threads (no HOL across connections)
//   xrootd     one multiplexed connection, async, out-of-order completion
//
// Reported: total wall time and the mean completion time of the N-1
// *fast* requests — HOL blocking shows up as fast requests waiting for
// the slow one.

#include <future>
#include <string_view>
#include <thread>

#include "bench/bench_util.h"
#include "common/checksum.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/context.h"
#include "core/dav_file.h"
#include "core/http_client.h"
#include "http/parser.h"
#include "muxhttp/mux.h"
#include "net/buffered_reader.h"
#include "xrootd/xrd_client.h"

namespace davix {
namespace bench {
namespace {

constexpr int kRequests = 12;
constexpr size_t kObjectBytes = 32 * 1024;
constexpr int64_t kStallMicros = 800'000;  // the slow request

struct Outcome {
  double total_seconds = 0;
  double fast_mean_ms = 0;  // mean completion of the non-slow requests
};

/// Builds a router where /slow/obj is delayed kStallMicros server-side
/// and /obj is served immediately.
HttpNode StartNode(const netsim::LinkProfile& link,
                   std::shared_ptr<httpd::ObjectStore> store) {
  HttpNode node = StartHttpNode(link, store);
  auto handler = node.handler;
  node.router->Handle(
      http::Method::kGet, "/slow",
      [handler](const http::HttpRequest& request,
                http::HttpResponse* response) {
        SleepForMicros(kStallMicros);
        http::HttpRequest rewritten = request;
        rewritten.target = "/obj";
        handler->Handle(rewritten, response);
      });
  return node;
}

std::string TargetFor(int i) { return i == 0 ? "/slow/obj" : "/obj"; }

Outcome RunSerial(const HttpNode& node) {
  core::Context context;
  core::HttpClient client(&context);
  core::RequestParams params;
  Outcome outcome;
  Stopwatch stopwatch;
  SampleStats fast;
  for (int i = 0; i < kRequests; ++i) {
    auto exchange = client.Execute(
        *Uri::Parse(node.server->BaseUrl() + TargetFor(i)),
        http::Method::kGet, params);
    if (!exchange.ok() || exchange->response.status_code != 200) std::exit(1);
    if (i != 0) fast.Add(stopwatch.ElapsedSeconds() * 1000);
  }
  outcome.total_seconds = stopwatch.ElapsedSeconds();
  outcome.fast_mean_ms = fast.Mean();
  return outcome;
}

Outcome RunPipelined(const HttpNode& node) {
  // Raw HTTP/1.1 pipelining on one socket: write all requests, then read
  // the responses strictly in order.
  auto address = net::SocketAddress::Resolve("127.0.0.1",
                                             node.server->port());
  auto socket = net::TcpSocket::Connect(*address);
  if (!socket.ok()) std::exit(1);
  (void)socket->SetNoDelay(true);

  Outcome outcome;
  Stopwatch stopwatch;
  std::string wire;
  for (int i = 0; i < kRequests; ++i) {
    http::HttpRequest request;
    request.method = http::Method::kGet;
    request.target = TargetFor(i);
    request.headers.Set("Host", "bench");
    request.headers.Set("Connection", "keep-alive");
    wire += request.Serialize();
  }
  if (!socket->WriteAll(wire).ok()) std::exit(1);

  net::BufferedReader reader(&*socket, 30'000'000);
  SampleStats fast;
  for (int i = 0; i < kRequests; ++i) {
    auto head = http::MessageReader::ReadResponseHead(&reader);
    if (!head.ok()) std::exit(1);
    if (!http::MessageReader::ReadResponseBody(&reader, false, &*head).ok()) {
      std::exit(1);
    }
    if (i != 0) fast.Add(stopwatch.ElapsedSeconds() * 1000);
  }
  outcome.total_seconds = stopwatch.ElapsedSeconds();
  outcome.fast_mean_ms = fast.Mean();
  return outcome;
}

Outcome RunPool(const HttpNode& node) {
  core::Context context;
  core::RequestParams params;
  Outcome outcome;
  Stopwatch stopwatch;
  std::mutex mu;
  SampleStats fast;
  ParallelFor(&context.dispatcher(), kRequests, 4, [&](size_t i) {
    core::HttpClient client(&context);
    auto exchange = client.Execute(
        *Uri::Parse(node.server->BaseUrl() + TargetFor(static_cast<int>(i))),
        http::Method::kGet, params);
    if (!exchange.ok() || exchange->response.status_code != 200) std::exit(1);
    if (i != 0) {
      std::lock_guard<std::mutex> lock(mu);
      fast.Add(stopwatch.ElapsedSeconds() * 1000);
    }
  });
  outcome.total_seconds = stopwatch.ElapsedSeconds();
  outcome.fast_mean_ms = fast.Mean();
  return outcome;
}

Outcome RunSpdyMux(const netsim::LinkProfile& link,
                   const HttpNode& node) {
  // The framed mux transport behind the HttpClient seam (§2.2's "pure
  // multi-plexing" alternative, promoted to a first-class transport):
  // identical HTTP semantics and the same routes/handler as the plain
  // server, but all kRequests exchanges are streams on ONE framed
  // connection, completing out of order — multiplexing without HOL
  // blocking and without a socket per request.
  muxhttp::MuxServerConfig config;
  config.link = link;
  auto server = muxhttp::MuxServer::Start(config, node.router);
  if (!server.ok()) std::exit(1);

  core::Context context;
  core::RequestParams params;
  params.transport = core::TransportKind::kMux;
  params.metalink_mode = core::MetalinkMode::kDisabled;
  params.mux_max_connections_per_host = 1;
  params.mux_max_streams_per_connection = kRequests;

  Outcome outcome;
  Stopwatch stopwatch;
  std::mutex mu;
  SampleStats fast;
  std::vector<std::thread> threads;
  for (int i = 0; i < kRequests; ++i) {
    threads.emplace_back([&, i] {
      core::HttpClient client(&context);
      auto exchange = client.Execute(
          *Uri::Parse((*server)->BaseUrl() + TargetFor(i)),
          http::Method::kGet, params);
      if (!exchange.ok() || exchange->response.status_code != 200) {
        std::exit(1);
      }
      if (i != 0) {
        std::lock_guard<std::mutex> lock(mu);
        fast.Add(stopwatch.ElapsedSeconds() * 1000);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  outcome.total_seconds = stopwatch.ElapsedSeconds();
  outcome.fast_mean_ms = fast.Mean();
  // The whole burst must have ridden one framed connection.
  if (context.SnapshotCounters().mux_connections_opened != 1) {
    std::fprintf(stderr, "spdy-mux: expected 1 framed connection\n");
    std::exit(1);
  }
  (*server)->Stop();
  return outcome;
}

// --- bounded-connection fan-out leg ----------------------------------------
//
// The acceptance gate of the transport seam: N concurrent range-GETs
// from 8 threads, pooled HTTP/1.1 vs the mux transport. The payloads
// must be CRC-identical; the mux leg must use at most
// kFanoutMaxMuxConnections framed connections where the pool grows
// with concurrency. Violations exit non-zero so CI catches them.

constexpr int kFanoutRequests = 24;
constexpr int kFanoutThreads = 8;
constexpr size_t kFanoutChunkBytes = 256 * 1024;
constexpr uint64_t kFanoutMaxMuxConnections = 4;

struct FanoutOutcome {
  double total_seconds = 0;
  uint64_t connections = 0;
};

FanoutOutcome RunFanout(const std::string& base_url, bool use_mux,
                        const std::string& content) {
  core::Context context({}, kFanoutThreads);
  core::RequestParams params;
  params.metalink_mode = core::MetalinkMode::kDisabled;
  if (use_mux) {
    params.transport = core::TransportKind::kMux;
    params.mux_max_connections_per_host = kFanoutMaxMuxConnections;
    params.mux_max_streams_per_connection = 8;
  }
  Stopwatch stopwatch;
  ParallelFor(&context.dispatcher(), kFanoutRequests, kFanoutThreads,
              [&](size_t i) {
                core::DavFile file =
                    *core::DavFile::Make(&context, base_url + "/big");
                uint64_t offset = uint64_t(i) * kFanoutChunkBytes;
                auto data =
                    file.ReadPartial(offset, kFanoutChunkBytes, params);
                if (!data.ok()) std::exit(1);
                if (Crc32(*data) !=
                    Crc32(std::string_view(content)
                              .substr(offset, kFanoutChunkBytes))) {
                  std::fprintf(stderr,
                               "fanout: payload CRC mismatch, range %zu\n",
                               i);
                  std::exit(1);
                }
              });
  FanoutOutcome outcome;
  outcome.total_seconds = stopwatch.ElapsedSeconds();
  IoCounters io = context.SnapshotCounters();
  outcome.connections =
      use_mux ? io.mux_connections_opened : io.connections_opened;
  return outcome;
}

Outcome RunXrootd(const netsim::LinkProfile& link,
                  std::shared_ptr<httpd::ObjectStore> store) {
  // The xrootd side of the comparison: the "slow" request is a large
  // whole-object read issued first; the N-1 small reads are issued
  // behind it on the same multiplexed connection and complete while the
  // big transfer is still streaming — no head-of-line blocking.
  auto server = StartXrdNode(link, store);
  auto client = std::move(xrootd::XrdClient::Connect("127.0.0.1", server->port())).value();
  if (!client->Login().ok()) std::exit(1);
  auto open_small = client->Open("/obj");
  auto open_big = client->Open("/big");
  if (!open_small.ok() || !open_big.ok()) std::exit(1);

  Outcome outcome;
  Stopwatch stopwatch;
  // Request 0: the whole big object (slow). Requests 1..N-1: small reads.
  std::future<Result<std::string>> slow = client->ReadAsync(
      open_big->handle, 0, static_cast<uint32_t>(open_big->size));
  std::vector<std::future<Result<std::string>>> fast_futures;
  for (int i = 1; i < kRequests; ++i) {
    fast_futures.push_back(
        client->ReadAsync(open_small->handle, 0, kObjectBytes));
  }
  SampleStats fast;
  for (auto& future : fast_futures) {
    if (!future.get().ok()) std::exit(1);
    fast.Add(stopwatch.ElapsedSeconds() * 1000);
  }
  if (!slow.get().ok()) std::exit(1);
  outcome.total_seconds = stopwatch.ElapsedSeconds();
  outcome.fast_mean_ms = fast.Mean();
  server->Stop();
  return outcome;
}

}  // namespace
}  // namespace bench
}  // namespace davix

int main(int argc, char** argv) {
  using namespace davix;
  using namespace davix::bench;
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader(
      "E2: pipelining head-of-line blocking vs pool dispatch/multiplexing",
      "Figure 1 + §2.2 of the libdavix paper");
  auto store = std::make_shared<httpd::ObjectStore>();
  Rng rng(2);
  store->Put("/obj", rng.Bytes(kObjectBytes));
  std::string big = rng.Bytes(8 * 1024 * 1024);
  store->Put("/big", big);

  JsonReporter json("pipelining_hol");
  std::printf("%-6s %-10s %12s %18s\n", "link", "strategy", "total[s]",
              "fast-req mean[ms]");
  std::vector<netsim::LinkProfile> links =
      args.smoke
          ? std::vector<netsim::LinkProfile>{netsim::LinkProfile::Lan()}
          : std::vector<netsim::LinkProfile>{netsim::LinkProfile::Lan(),
                                             netsim::LinkProfile::PanEuropean()};
  for (const netsim::LinkProfile& link : links) {
    HttpNode node = StartNode(link, store);
    struct Strategy {
      const char* name;
      Outcome outcome;
    };
    std::vector<Strategy> strategies;
    strategies.push_back({"serial", RunSerial(node)});
    strategies.push_back({"pipelined", RunPipelined(node)});
    strategies.push_back({"pool", RunPool(node)});
    strategies.push_back({"spdy-mux", RunSpdyMux(link, node)});
    strategies.push_back({"xrootd-mux", RunXrootd(link, store)});
    for (const Strategy& strategy : strategies) {
      std::printf("%-6s %-10s %12.3f %18.1f\n", link.name.c_str(),
                  strategy.name, strategy.outcome.total_seconds,
                  strategy.outcome.fast_mean_ms);
      json.AddRow()
          .Str("link", link.name)
          .Str("strategy", strategy.name)
          .Num("total_seconds", strategy.outcome.total_seconds)
          .Num("fast_req_mean_ms", strategy.outcome.fast_mean_ms);
    }

    // Fan-out acceptance gate: kFanoutRequests concurrent range-GETs of
    // /big from kFanoutThreads threads, pooled vs mux, CRC-checked.
    FanoutOutcome pooled_fanout = RunFanout(node.server->BaseUrl(), false, big);
    muxhttp::MuxServerConfig fanout_config;
    fanout_config.link = link;
    auto fanout_server = muxhttp::MuxServer::Start(fanout_config, node.router);
    if (!fanout_server.ok()) std::exit(1);
    FanoutOutcome mux_fanout =
        RunFanout((*fanout_server)->BaseUrl(), true, big);
    (*fanout_server)->Stop();
    if (mux_fanout.connections > kFanoutMaxMuxConnections) {
      std::fprintf(stderr,
                   "fanout: mux used %llu framed connections (budget %llu)\n",
                   static_cast<unsigned long long>(mux_fanout.connections),
                   static_cast<unsigned long long>(kFanoutMaxMuxConnections));
      std::exit(1);
    }
    std::printf("%-6s %-10s %12.3f %10llu conns (%d range-GETs)\n",
                link.name.c_str(), "fanout", pooled_fanout.total_seconds,
                static_cast<unsigned long long>(pooled_fanout.connections),
                kFanoutRequests);
    std::printf("%-6s %-10s %12.3f %10llu conns (%d range-GETs)\n",
                link.name.c_str(), "mux-fanout", mux_fanout.total_seconds,
                static_cast<unsigned long long>(mux_fanout.connections),
                kFanoutRequests);
    json.AddRow()
        .Str("link", link.name)
        .Str("strategy", "pool-fanout")
        .Num("total_seconds", pooled_fanout.total_seconds)
        .Int("connections", static_cast<int64_t>(pooled_fanout.connections))
        .Int("requests", kFanoutRequests);
    json.AddRow()
        .Str("link", link.name)
        .Str("strategy", "mux-fanout")
        .Num("total_seconds", mux_fanout.total_seconds)
        .Int("connections", static_cast<int64_t>(mux_fanout.connections))
        .Int("requests", kFanoutRequests);

    node.server->Stop();
  }
  json.WriteTo(args.json_path);
  std::printf(
      "\nexpected shape: with one slow request, 'pipelined' delays every\n"
      "fast request behind it (fast-req mean ~= the stall); 'pool' and\n"
      "'xrootd-mux' keep fast requests fast. Pipelining only beats serial\n"
      "when nothing stalls — exactly the paper's argument for replacing\n"
      "pipelining with pooled dispatch.\n");
  return 0;
}
