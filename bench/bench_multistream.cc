// E6 (§2.4), reworked onto the ReplicaSet subsystem: replica-striped
// multi-source download. The paper: "libdavix will ... proceed to a
// multi-source parallel download of each referenced chunk of data from a
// different replica. This approach has the advantage to maximize the
// network bandwidth usage on the client side ... However, it has for
// main drawback to overload considerably the servers."
//
// Workload: download a 24 MiB resource replicated on 3 servers through
// core::ReplicaSet — single-source (1 stream, pinned to the best
// replica) vs striped multi-source (2/3 streams, chunk range-GETs
// rotated across the health-ranked replicas) — on LAN (one stream
// saturates) and WAN (per-connection throughput is TCP-window-limited,
// so stripes aggregate). A second phase reruns the striped WAN download
// against a warm per-Context block cache: the rerun must issue zero
// chunk range-GETs. Every delivered stream is CRC-verified; the binary
// exits non-zero on any mismatch or on warm-cache wire traffic.

#include "bench/bench_util.h"
#include "common/checksum.h"
#include "common/clock.h"
#include "common/rng.h"
#include "core/context.h"
#include "core/metalink_engine.h"
#include "fed/federation_handler.h"
#include "fed/replica_catalog.h"

namespace davix {
namespace bench {
namespace {

constexpr char kPath[] = "/big/dataset.bin";

size_t ObjectBytes(bool smoke) { return (smoke ? 6 : 24) * 1024 * 1024; }
uint64_t ChunkBytes(bool smoke) { return (smoke ? 512 : 2048) * 1024; }

struct Deployment {
  std::vector<HttpNode> replicas;
  std::shared_ptr<fed::ReplicaCatalog> catalog;
  std::shared_ptr<fed::FederationHandler> federation;
  std::shared_ptr<httpd::Router> fed_router;
  std::unique_ptr<httpd::HttpServer> fed_server;

  void Stop() {
    for (HttpNode& node : replicas) node.server->Stop();
    fed_server->Stop();
  }
};

Deployment Deploy(const netsim::LinkProfile& link, const std::string& body) {
  Deployment d;
  d.catalog = std::make_shared<fed::ReplicaCatalog>();
  for (int i = 0; i < 3; ++i) {
    auto store = std::make_shared<httpd::ObjectStore>();
    store->Put(kPath, body);
    d.replicas.push_back(StartHttpNode(link, store));
    d.catalog->AddReplica(kPath, d.replicas.back().UrlFor(kPath), i + 1);
  }
  d.catalog->SetFileMeta(kPath, body.size(), Md5::HexDigest(body));
  d.federation = std::make_shared<fed::FederationHandler>(d.catalog);
  d.fed_router = std::make_shared<httpd::Router>();
  d.federation->Register(d.fed_router.get(), "/");
  auto server = httpd::HttpServer::Start({}, d.fed_router);
  if (!server.ok()) std::exit(1);
  d.fed_server = std::move(*server);
  return d;
}

bool g_verify_failed = false;

core::RequestParams MultiSourceParams(const Deployment& d, size_t streams,
                                      uint64_t chunk_bytes) {
  core::RequestParams params;
  params.metalink_mode = core::MetalinkMode::kMultiStream;
  params.metalink_resolver = d.fed_server->BaseUrl();
  params.multistream_chunk_bytes = chunk_bytes;
  params.multistream_max_streams = streams;
  return params;
}

/// One throughput cell: download via the ReplicaSet path with the given
/// stream count. Returns the wall seconds (for the summary ratio).
double RunCell(const netsim::LinkProfile& link, const std::string& body,
               size_t streams, uint64_t chunk_bytes, JsonReporter* json) {
  Deployment d = Deploy(link, body);
  core::Context context;
  core::RequestParams params = MultiSourceParams(d, streams, chunk_bytes);
  params.use_block_cache = false;  // throughput cells measure the wire

  core::HttpClient client(&context);
  core::MetalinkEngine engine(&client);
  Stopwatch stopwatch;
  Result<std::string> data =
      engine.MultiStreamGet(*Uri::Parse(d.replicas[0].UrlFor(kPath)), params);
  double total = stopwatch.ElapsedSeconds();

  bool ok = data.ok() && Crc32(*data) == Crc32(body);
  if (!ok) {
    std::fprintf(stderr, "download failed: %s\n",
                 data.ok() ? "crc mismatch" : data.status().ToString().c_str());
    g_verify_failed = true;
  }
  IoCounters io = context.SnapshotCounters();
  double mbps = static_cast<double>(body.size()) / total / 1e6;
  std::printf("%-6s %8zu %10.3f %12.1f %11llu %10llu  ", link.name.c_str(),
              streams, total, mbps,
              static_cast<unsigned long long>(io.multisource_chunks),
              static_cast<unsigned long long>(io.replica_failovers));
  JsonReporter::Row& row = json->AddRow()
                               .Str("link", link.name)
                               .Str("scenario", "throughput")
                               .Int("streams", streams)
                               .Num("seconds", total)
                               .Num("mbps", mbps)
                               .Int("chunk_range_gets", io.multisource_chunks)
                               .Int("failovers", io.replica_failovers)
                               .Int("verified", ok ? 1 : 0);
  uint64_t total_requests = 0;
  for (size_t i = 0; i < d.replicas.size(); ++i) {
    uint64_t requests = d.replicas[i].handler->stats().get_requests.load();
    total_requests += requests;
    std::printf(" %4llu", static_cast<unsigned long long>(requests));
    row.Int("replica" + std::to_string(i) + "_requests", requests);
  }
  row.Int("total_requests", total_requests);
  std::printf("\n");
  d.Stop();
  return total;
}

/// Warm-cache phase: cold striped download fills the per-Context block
/// cache; the rerun must be served entirely by the cache probe — zero
/// chunk range-GETs on the wire.
void RunCachePhase(const netsim::LinkProfile& link, const std::string& body,
                   uint64_t chunk_bytes, JsonReporter* json) {
  Deployment d = Deploy(link, body);
  core::BlockCacheConfig cache_config;
  cache_config.capacity_bytes = 64ull << 20;
  core::Context context(core::SessionPoolConfig{}, 0, cache_config);
  core::RequestParams params = MultiSourceParams(d, 3, chunk_bytes);
  core::HttpClient client(&context);
  core::MetalinkEngine engine(&client);
  Uri resource = *Uri::Parse(d.replicas[0].UrlFor(kPath));

  for (const char* phase : {"cold", "warm"}) {
    IoCounters before = context.SnapshotCounters();
    Stopwatch stopwatch;
    Result<std::string> data = engine.MultiStreamGet(resource, params);
    double total = stopwatch.ElapsedSeconds();
    IoCounters after = context.SnapshotCounters();
    uint64_t range_gets = after.multisource_chunks - before.multisource_chunks;
    uint64_t cache_chunks =
        after.multisource_cache_chunks - before.multisource_cache_chunks;

    bool ok = data.ok() && Crc32(*data) == Crc32(body);
    bool warm = std::string(phase) == "warm";
    if (warm && range_gets != 0) {
      std::fprintf(stderr,
                   "warm rerun put %llu chunk range-GETs on the wire\n",
                   static_cast<unsigned long long>(range_gets));
      ok = false;
    }
    if (!ok) g_verify_failed = true;
    double mbps = static_cast<double>(body.size()) / total / 1e6;
    std::printf("%-6s %8s %10.3f %12.1f %11llu %10llu\n", link.name.c_str(),
                phase, total, mbps,
                static_cast<unsigned long long>(range_gets),
                static_cast<unsigned long long>(cache_chunks));
    json->AddRow()
        .Str("link", link.name)
        .Str("scenario", std::string("cache_") + phase)
        .Int("streams", 3)
        .Num("seconds", total)
        .Num("mbps", mbps)
        .Int("chunk_range_gets", range_gets)
        .Int("cache_chunks", cache_chunks)
        .Int("verified", ok ? 1 : 0);
  }
  d.Stop();
}

}  // namespace
}  // namespace bench
}  // namespace davix

int main(int argc, char** argv) {
  using namespace davix;
  using namespace davix::bench;
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("E6: replica-striped multi-source download (ReplicaSet)",
              "§2.4 of the libdavix paper (multi-stream strategy)");
  Rng rng(6);
  std::string body = rng.Bytes(ObjectBytes(args.smoke));
  uint64_t chunk_bytes = ChunkBytes(args.smoke);

  JsonReporter json("multisource");
  std::printf("%-6s %8s %10s %12s %11s %10s   %s\n", "link", "streams",
              "time[s]", "MB/s", "chunk-GETs", "failovers",
              "requests per replica");
  std::vector<netsim::LinkProfile> links =
      args.smoke
          ? std::vector<netsim::LinkProfile>{netsim::LinkProfile::Lan()}
          : std::vector<netsim::LinkProfile>{netsim::LinkProfile::Lan(),
                                             netsim::LinkProfile::Wan()};
  for (const netsim::LinkProfile& link : links) {
    double single_seconds = 0;
    double seconds = 0;
    for (size_t streams : {1u, 2u, 3u}) {
      seconds = RunCell(link, body, streams, chunk_bytes, &json);
      if (streams == 1) single_seconds = seconds;
    }
    double striped_over_single = seconds > 0 ? single_seconds / seconds : 0;
    std::printf("%-6s  striped(3) over single-source: %.2fx\n",
                link.name.c_str(), striped_over_single);
    json.AddRow()
        .Str("link", link.name)
        .Str("scenario", "summary")
        .Num("striped_over_single", striped_over_single);
  }

  std::printf("\nwarm-cache rerun (striped, %s):\n%-6s %8s %10s %12s %11s %10s\n",
              args.smoke ? "LAN" : "WAN", "link", "phase", "time[s]", "MB/s",
              "chunk-GETs", "cache-hits");
  RunCachePhase(args.smoke ? netsim::LinkProfile::Lan()
                           : netsim::LinkProfile::Wan(),
                body, chunk_bytes, &json);

  json.WriteTo(args.json_path);
  std::printf(
      "\nexpected shape: on WAN, per-connection throughput is window-\n"
      "limited (~10 MB/s), so striping chunks across replicas aggregates\n"
      "substantially (>= 1.5x single-source); on LAN one stream already\n"
      "saturates the link and striping only spreads server load (the\n"
      "paper's stated drawback). The warm-cache rerun is served entirely\n"
      "from the block cache: zero chunk range-GETs.\n");
  return g_verify_failed ? 1 : 0;
}
