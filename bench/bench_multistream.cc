// E6 (§2.4): Metalink multi-stream downloads. The paper: "libdavix will
// ... proceed to a multi-source parallel download of each referenced
// chunk of data from a different replica. This approach has the advantage
// to maximize the network bandwidth usage on the client side ... However,
// it has for main drawback to overload considerably the servers."
//
// Workload: download a 24 MiB resource replicated on 3 servers, with a
// plain single-stream GET and with 2/3 parallel streams, on LAN (where
// one stream already saturates the link) and WAN (where per-connection
// throughput is TCP-window-limited and parallel streams aggregate).
// Reported: wall time, client-side throughput, and the per-server load
// (requests served) that is the paper's stated drawback.

#include "bench/bench_util.h"
#include "common/checksum.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/context.h"
#include "core/dav_file.h"
#include "core/metalink_engine.h"
#include "fed/federation_handler.h"
#include "fed/replica_catalog.h"

namespace davix {
namespace bench {
namespace {

constexpr char kPath[] = "/big/dataset.bin";

size_t ObjectBytes(bool smoke) {
  return (smoke ? 6 : 24) * 1024 * 1024;
}

void RunCell(const netsim::LinkProfile& link, const std::string& body,
             size_t streams, JsonReporter* json) {
  // Fresh replicas per cell so load counters are per-run.
  std::vector<HttpNode> replicas;
  auto catalog = std::make_shared<fed::ReplicaCatalog>();
  for (int i = 0; i < 3; ++i) {
    auto store = std::make_shared<httpd::ObjectStore>();
    store->Put(kPath, body);
    replicas.push_back(StartHttpNode(link, store));
    catalog->AddReplica(kPath, replicas.back().UrlFor(kPath), i + 1);
  }
  catalog->SetFileMeta(kPath, body.size(), Md5::HexDigest(body));
  auto federation = std::make_shared<fed::FederationHandler>(catalog);
  auto fed_router = std::make_shared<httpd::Router>();
  federation->Register(fed_router.get(), "/");
  auto fed_server = httpd::HttpServer::Start({}, fed_router);
  if (!fed_server.ok()) std::exit(1);

  core::Context context;
  core::RequestParams params;
  params.metalink_resolver = (*fed_server)->BaseUrl();
  Stopwatch stopwatch;
  Result<std::string> data = Status::OK();
  if (streams <= 1) {
    params.metalink_mode = core::MetalinkMode::kDisabled;
    core::DavFile file =
        *core::DavFile::Make(&context, replicas[0].UrlFor(kPath));
    data = file.Get(params);
  } else {
    params.metalink_mode = core::MetalinkMode::kMultiStream;
    params.multistream_max_streams = streams;
    params.multistream_chunk_bytes = 4 * 1024 * 1024;
    core::HttpClient client(&context);
    core::MetalinkEngine engine(&client);
    data = engine.MultiStreamGet(*Uri::Parse(replicas[0].UrlFor(kPath)),
                                 params);
  }
  double total = stopwatch.ElapsedSeconds();
  if (!data.ok() || data->size() != body.size()) {
    std::fprintf(stderr, "download failed: %s\n",
                 data.ok() ? "size mismatch" : data.status().ToString().c_str());
    std::exit(1);
  }
  double mbps = static_cast<double>(body.size()) / total / 1e6;
  std::printf("%-6s %8zu %10.3f %12.1f   ", link.name.c_str(), streams,
              total, mbps);
  JsonReporter::Row& row = json->AddRow()
                               .Str("link", link.name)
                               .Int("streams", streams)
                               .Num("seconds", total)
                               .Num("mbps", mbps);
  uint64_t total_requests = 0;
  for (size_t i = 0; i < replicas.size(); ++i) {
    uint64_t requests = replicas[i].handler->stats().get_requests.load();
    total_requests += requests;
    std::printf(" %4llu", static_cast<unsigned long long>(requests));
    row.Int("replica" + std::to_string(i) + "_requests", requests);
    replicas[i].server->Stop();
  }
  row.Int("total_requests", total_requests);
  std::printf("\n");
  (*fed_server)->Stop();
}

}  // namespace
}  // namespace bench
}  // namespace davix

int main(int argc, char** argv) {
  using namespace davix;
  using namespace davix::bench;
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("E6: multi-stream multi-replica download",
              "§2.4 of the libdavix paper (multi-stream strategy)");
  Rng rng(6);
  std::string body = rng.Bytes(ObjectBytes(args.smoke));

  JsonReporter json("multistream");
  std::printf("%-6s %8s %10s %12s   %s\n", "link", "streams", "time[s]",
              "MB/s", "requests per replica");
  std::vector<netsim::LinkProfile> links =
      args.smoke
          ? std::vector<netsim::LinkProfile>{netsim::LinkProfile::Lan()}
          : std::vector<netsim::LinkProfile>{netsim::LinkProfile::Lan(),
                                             netsim::LinkProfile::Wan()};
  for (const netsim::LinkProfile& link : links) {
    for (size_t streams : {1u, 2u, 3u}) {
      RunCell(link, body, streams, &json);
    }
  }
  json.WriteTo(args.json_path);
  std::printf(
      "\nexpected shape: on WAN, per-connection throughput is window-\n"
      "limited (~10 MB/s), so parallel streams aggregate substantially\n(bounded by per-connection slow-start ramps); on LAN a\n"
      "single stream already saturates the 1 Gb/s link and multi-stream\n"
      "only adds server load (the paper's stated drawback: requests\n"
      "spread across every replica).\n");
  return 0;
}
