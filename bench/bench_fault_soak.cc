// E10 (robustness): rolling-fault soak of the end-to-end resilience
// stack — deadlines, jittered retry budgets, Retry-After pacing, the
// minimum-throughput stall watchdog, and the per-host circuit breaker
// (docs/RESILIENCE.md).
//
// Deployment: 3 replicas behind a federation, one shared Context (one
// session pool, one breaker registry, accumulated counters) for the
// whole soak. Each cycle drives a mixed workload — a windowed
// sequential scan (async read-ahead), a vectored PReadVec, and a batch
// of partial GETs — through a rolling fault schedule on replica 0:
//
//   healthy  ->  503+Retry-After burst (time-windowed rule; the client
//   paces itself on the server's hint)  ->  slow-loris body (per-read
//   timeouts never fire; the stall watchdog aborts and fails over)  ->
//   dead, then recovered (the breaker opens, fast-fails, and a timed
//   half-open probe closes it again).
//
// Pass criteria, enforced by exit code: zero client-visible workload
// errors, CRC-identical bytes in every phase, workload p99 under the
// per-op deadline, and at least one breaker open -> half-open probe ->
// close cycle plus >= 1 fast-fail, honored Retry-After, and stall
// abort — all observed through the Context's IoCounters.
//
// Direct no-failover requests aimed at the dead replica are reported
// as "shed": they are supposed to fail, and to fail fast — that is the
// breaker doing its job — so they do not count as workload errors.

#include <algorithm>
#include <vector>

#include "bench/bench_util.h"
#include "common/checksum.h"
#include "common/clock.h"
#include "common/rng.h"
#include "core/context.h"
#include "core/dav_file.h"
#include "core/dav_posix.h"
#include "fed/federation_handler.h"
#include "fed/replica_catalog.h"
#include "netsim/fault_injector.h"

namespace davix {
namespace bench {
namespace {

constexpr size_t kObjectBytes = 2 * 1024 * 1024;
constexpr char kPath[] = "/dataset/soak.bin";

/// One logical operation's end-to-end budget. Workload p99 must land
/// under this (a blown budget would first surface as an error anyway).
constexpr int64_t kOpBudgetMicros = 20'000'000;
/// Breaker open -> half-open probe delay used throughout the soak.
constexpr int64_t kBreakerCooldownMicros = 400'000;

struct Deployment {
  std::vector<HttpNode> replicas;
  std::shared_ptr<fed::ReplicaCatalog> catalog;
  std::shared_ptr<fed::FederationHandler> federation;
  std::shared_ptr<httpd::Router> fed_router;
  std::unique_ptr<httpd::HttpServer> fed_server;
};

Deployment Deploy(const netsim::LinkProfile& link, const std::string& body) {
  Deployment d;
  d.catalog = std::make_shared<fed::ReplicaCatalog>();
  for (int i = 0; i < 3; ++i) {
    auto store = std::make_shared<httpd::ObjectStore>();
    store->Put(kPath, body);
    d.replicas.push_back(StartHttpNode(link, store));
    d.catalog->AddReplica(kPath, d.replicas.back().UrlFor(kPath), i + 1);
  }
  d.catalog->SetFileMeta(kPath, body.size(), Md5::HexDigest(body));
  d.federation = std::make_shared<fed::FederationHandler>(d.catalog);
  d.fed_router = std::make_shared<httpd::Router>();
  d.federation->Register(d.fed_router.get(), "/");
  httpd::ServerConfig fed_config;
  fed_config.link = link;
  auto server = httpd::HttpServer::Start(fed_config, d.fed_router);
  if (!server.ok()) std::exit(1);
  d.fed_server = std::move(*server);
  return d;
}

core::RequestParams SoakParams(const Deployment& d) {
  core::RequestParams params;
  params.metalink_resolver = d.fed_server->BaseUrl();
  params.max_retries = 2;
  params.total_timeout_micros = kOpBudgetMicros;
  params.retry_jitter_seed = 7;  // deterministic backoff sequence
  params.retry_after_max_micros = 5'000'000;
  params.breaker_failure_threshold = 2;
  params.breaker_cooldown_micros = kBreakerCooldownMicros;
  params.min_throughput_bytes_per_sec = 64 * 1024;
  params.readahead_bytes = 64 * 1024;
  params.readahead_window_chunks = 3;
  return params;
}

struct PhaseResult {
  int ops = 0;
  int errors = 0;
  int shed = 0;
  double seconds = 0;
  std::vector<double> latencies_ms;
};

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  return values[static_cast<size_t>(pos + 0.5)];
}

/// The mixed workload of one phase: a windowed sequential scan to EOF,
/// a vectored read of scattered fragments, and `partial_reads` ranged
/// GETs — every one CRC/byte-verified against the canonical body and
/// expected to succeed whatever fault the schedule currently injects
/// (fail-over, Retry-After pacing, and the stall watchdog absorb it).
void MixedWorkload(core::Context* context, const Deployment& d,
                   const core::RequestParams& params, const std::string& body,
                   int partial_reads, PhaseResult* out) {
  core::DavPosix posix(context);
  Stopwatch op_timer;
  Result<int> fd = posix.Open(d.replicas[0].UrlFor(kPath), params);
  if (!fd.ok()) {
    std::fprintf(stderr, "soak: open failed: %s\n",
                 fd.status().ToString().c_str());
    out->errors += partial_reads + 2;  // the whole phase workload is lost
    out->ops += partial_reads + 2;
    return;
  }

  // 1. Sequential windowed scan (async read-ahead path).
  std::string sequential;
  bool scan_ok = true;
  while (true) {
    Result<std::string> part = posix.Read(*fd, 64 * 1024);
    if (!part.ok()) {
      std::fprintf(stderr, "soak: scan read failed: %s\n",
                   part.status().ToString().c_str());
      scan_ok = false;
      break;
    }
    if (part->empty()) break;
    sequential += *part;
  }
  if (scan_ok && Crc32(sequential) != Crc32(body)) {
    std::fprintf(stderr, "soak: scan bytes differ from object\n");
    scan_ok = false;
  }
  ++out->ops;
  if (!scan_ok) ++out->errors;
  out->latencies_ms.push_back(op_timer.ElapsedSeconds() * 1e3);

  // 2. Vectored read of scattered fragments.
  op_timer = Stopwatch();
  std::vector<http::ByteRange> ranges;
  for (uint64_t i = 0; i < 8; ++i) {
    ranges.push_back({i * (body.size() / 8), 8 * 1024});
  }
  Result<std::vector<std::string>> vec = posix.PReadVec(*fd, ranges);
  bool vec_ok = vec.ok();
  if (vec_ok) {
    std::string joined, expected;
    for (const std::string& fragment : *vec) joined += fragment;
    for (const http::ByteRange& r : ranges) {
      expected += body.substr(r.offset, r.length);
    }
    vec_ok = Crc32(joined) == Crc32(expected);
    if (!vec_ok) std::fprintf(stderr, "soak: vectored bytes differ\n");
  } else {
    std::fprintf(stderr, "soak: vectored read failed: %s\n",
                 vec.status().ToString().c_str());
  }
  ++out->ops;
  if (!vec_ok) ++out->errors;
  out->latencies_ms.push_back(op_timer.ElapsedSeconds() * 1e3);
  (void)posix.Close(*fd);

  // 3. Partial ranged GETs through the fail-over walk.
  core::DavFile file = *core::DavFile::Make(context, d.replicas[0].UrlFor(kPath));
  for (int i = 0; i < partial_reads; ++i) {
    constexpr uint64_t kSpan = 32 * 1024;
    uint64_t offset =
        (static_cast<uint64_t>(i) * 97'651) % (body.size() - kSpan);
    op_timer = Stopwatch();
    Result<std::string> data = file.ReadPartial(offset, kSpan, params);
    bool ok = data.ok() && *data == body.substr(offset, kSpan);
    if (!ok) {
      std::string why =
          data.ok() ? " (bytes differ)" : ": " + data.status().ToString();
      std::fprintf(stderr, "soak: partial read %d failed%s\n", i, why.c_str());
    }
    ++out->ops;
    if (!ok) ++out->errors;
    out->latencies_ms.push_back(op_timer.ElapsedSeconds() * 1e3);
  }
}

bool g_verify_failed = false;

void ReportPhase(int cycle, const std::string& phase, const PhaseResult& r,
                 JsonReporter* json) {
  double p50 = Percentile(r.latencies_ms, 0.50);
  double p99 = Percentile(r.latencies_ms, 0.99);
  std::printf("%5d  %-19s %4d %6d %5d %9.3f %9.1f %9.1f\n", cycle,
              phase.c_str(), r.ops, r.errors, r.shed, r.seconds, p50, p99);
  json->AddRow()
      .Str("phase", phase)
      .Int("cycle", cycle)
      .Int("ops", r.ops)
      .Int("errors", r.errors)
      .Int("shed", r.shed)
      .Num("seconds", r.seconds)
      .Num("p50_ms", p50)
      .Num("p99_ms", p99);
  if (r.errors != 0) g_verify_failed = true;
}

}  // namespace
}  // namespace bench
}  // namespace davix

int main(int argc, char** argv) {
  using namespace davix;
  using namespace davix::bench;
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("E10: rolling-fault soak (deadlines, jitter, breakers)",
              "robustness of the §2.4 resilience layer under a fault schedule");
  Rng rng(8);
  std::string body = rng.Bytes(kObjectBytes);
  const int cycles = args.smoke ? 1 : 2;
  const int partial_reads = args.smoke ? 2 : 6;

  Deployment d = Deploy(netsim::LinkProfile::Lan(), body);
  core::Context context;  // shared across the whole soak: one breaker registry
  core::RequestParams params = SoakParams(d);
  netsim::FaultInjector& faults0 = d.replicas[0].server->faults();

  JsonReporter json("fault_soak");
  std::printf("%5s  %-19s %4s %6s %5s %9s %9s %9s\n", "cycle", "phase", "ops",
              "errors", "shed", "time[s]", "p50[ms]", "p99[ms]");

  std::vector<double> all_latencies;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    // --- Phase 1: healthy baseline. --------------------------------------
    {
      faults0.Clear();
      PhaseResult r;
      Stopwatch phase_timer;
      MixedWorkload(&context, d, params, body, partial_reads, &r);
      r.seconds = phase_timer.ElapsedSeconds();
      ReportPhase(cycle, "healthy", r, &json);
      all_latencies.insert(all_latencies.end(), r.latencies_ms.begin(),
                           r.latencies_ms.end());
    }

    // --- Phase 2: 503 + Retry-After burst (time-windowed rule). ----------
    // For the first 1.2 s of the phase replica 0 answers every request
    // with 503 and "Retry-After: 1"; the client sleeps on the server's
    // schedule and retries into the healed window (or fails over when
    // its retry budget runs out first). Either way: zero errors.
    {
      faults0.Clear();
      netsim::FaultRule rule;
      rule.path_prefix = kPath;
      rule.action = netsim::FaultAction::kRetryAfter;
      rule.retry_after_seconds = 1;
      rule.window_start_micros = 0;
      rule.window_end_micros = 1'200'000;
      faults0.ResetWindowClock();
      faults0.AddRule(rule);
      PhaseResult r;
      Stopwatch phase_timer;
      MixedWorkload(&context, d, params, body, partial_reads, &r);
      r.seconds = phase_timer.ElapsedSeconds();
      ReportPhase(cycle, "retry-after-burst", r, &json);
      all_latencies.insert(all_latencies.end(), r.latencies_ms.begin(),
                           r.latencies_ms.end());
    }

    // --- Phase 3: slow-loris body. ----------------------------------------
    // Replica 0 trickles response bodies at 4 KiB/s: every per-read
    // timeout is met, but the 64 KiB/s stall watchdog aborts the fetch
    // at bytes/rate + slack and the read fails over mid-stream.
    {
      faults0.Clear();
      netsim::FaultRule rule;
      rule.path_prefix = kPath;
      rule.action = netsim::FaultAction::kSlowBody;
      rule.body_bytes_per_sec = 4 * 1024;
      faults0.AddRule(rule);
      PhaseResult r;
      Stopwatch phase_timer;
      MixedWorkload(&context, d, params, body, partial_reads, &r);
      r.seconds = phase_timer.ElapsedSeconds();
      ReportPhase(cycle, "slow-loris", r, &json);
      all_latencies.insert(all_latencies.end(), r.latencies_ms.begin(),
                           r.latencies_ms.end());
    }

    // --- Phase 4: dead, then recovered. -----------------------------------
    // Replica 0 refuses every request. Direct no-failover reads aimed at
    // it drive the breaker through open (consecutive failures) and
    // fast-fail — they are expected to fail and are counted as shed, not
    // as errors. The replicated workload rides over the outage with zero
    // errors. Then the replica comes back, the cooldown elapses, and a
    // direct probe read is admitted half-open and closes the breaker.
    {
      faults0.Clear();
      faults0.SetServerDown(true);
      PhaseResult r;
      Stopwatch phase_timer;

      core::RequestParams direct = params;
      direct.metalink_mode = core::MetalinkMode::kDisabled;
      core::DavFile dead_file =
          *core::DavFile::Make(&context, d.replicas[0].UrlFor(kPath));
      for (int i = 0; i < 2; ++i) {
        Result<std::string> data = dead_file.ReadPartial(0, 16 * 1024, direct);
        if (!data.ok()) ++r.shed;
      }

      MixedWorkload(&context, d, params, body, partial_reads, &r);

      faults0.SetServerDown(false);
      // Let the open -> half-open cooldown elapse, then probe the
      // recovered host directly: the probe is admitted, succeeds, and
      // closes the breaker.
      SleepForMicros(kBreakerCooldownMicros + 250'000);
      core::RequestParams probe = direct;
      probe.max_retries = 0;
      Stopwatch op_timer;
      Result<std::string> probed = dead_file.ReadPartial(0, 16 * 1024, probe);
      bool probe_ok = probed.ok() && *probed == body.substr(0, 16 * 1024);
      if (!probe_ok) {
        std::fprintf(stderr, "soak: recovery probe failed: %s\n",
                     probed.ok() ? "bytes differ"
                                 : probed.status().ToString().c_str());
        ++r.errors;
      }
      ++r.ops;
      r.latencies_ms.push_back(op_timer.ElapsedSeconds() * 1e3);

      r.seconds = phase_timer.ElapsedSeconds();
      ReportPhase(cycle, "dead-then-recovered", r, &json);
      all_latencies.insert(all_latencies.end(), r.latencies_ms.begin(),
                           r.latencies_ms.end());
    }
  }

  // --- Phase 5: admission-control overload (server-side shed path). -------
  // Unlike the injected 503 burst above, here the *server's own*
  // admission control sheds: replica 0's dispatch backlog is clamped to
  // zero, so every request it parses is answered 503 + Retry-After by
  // the overload machinery in src/httpd/server.cc. Direct no-failover
  // reads must honor the hint (retry_after_honored rises) before giving
  // up — counted as shed, like phase 4's breaker fast-fails — while the
  // replicated workload rides over the shedding replica with zero
  // errors. Restoring the backlog restores direct service.
  uint64_t admission_sheds = 0;
  uint64_t admission_honored_delta = 0;
  {
    PhaseResult r;
    Stopwatch phase_timer;
    uint64_t honored_before = context.SnapshotCounters().retry_after_honored;
    uint64_t server_shed_before =
        d.replicas[0].server->stats().requests_shed.load();
    d.replicas[0].server->SetMaxDispatchBacklog(0);

    core::RequestParams overload = params;
    overload.max_retries = 1;
    overload.retry_after_max_micros = 1'200'000;
    core::RequestParams direct = overload;
    direct.metalink_mode = core::MetalinkMode::kDisabled;
    core::DavFile shed_file =
        *core::DavFile::Make(&context, d.replicas[0].UrlFor(kPath));
    for (int i = 0; i < 2; ++i) {
      Result<std::string> data = shed_file.ReadPartial(0, 16 * 1024, direct);
      if (!data.ok()) ++r.shed;
    }
    MixedWorkload(&context, d, overload, body, partial_reads, &r);

    d.replicas[0].server->SetMaxDispatchBacklog(256);
    // The shed burst may have opened the breaker on replica 0; let the
    // half-open cooldown elapse so the recovery probe is admitted.
    SleepForMicros(kBreakerCooldownMicros + 250'000);
    Stopwatch op_timer;
    Result<std::string> probed = shed_file.ReadPartial(0, 16 * 1024, direct);
    bool probe_ok = probed.ok() && *probed == body.substr(0, 16 * 1024);
    if (!probe_ok) {
      std::fprintf(stderr, "soak: post-overload probe failed: %s\n",
                   probed.ok() ? "bytes differ"
                               : probed.status().ToString().c_str());
      ++r.errors;
    }
    ++r.ops;
    r.latencies_ms.push_back(op_timer.ElapsedSeconds() * 1e3);

    admission_sheds = d.replicas[0].server->stats().requests_shed.load() -
                      server_shed_before;
    admission_honored_delta =
        context.SnapshotCounters().retry_after_honored - honored_before;
    r.seconds = phase_timer.ElapsedSeconds();
    ReportPhase(cycles, "admission-overload", r, &json);
    all_latencies.insert(all_latencies.end(), r.latencies_ms.begin(),
                         r.latencies_ms.end());
  }

  // --- Verdict: counters must show every mechanism fired. -----------------
  IoCounters io = context.SnapshotCounters();
  double p99_ms = Percentile(all_latencies, 0.99);
  struct Check {
    const char* what;
    bool ok;
  } checks[] = {
      {"retry_after_honored >= 1", io.retry_after_honored >= 1},
      {"stall_aborts >= 1", io.stall_aborts >= 1},
      {"breaker_opens >= 1", io.breaker_opens >= 1},
      {"breaker_half_open_probes >= 1", io.breaker_half_open_probes >= 1},
      {"breaker_closes >= 1", io.breaker_closes >= 1},
      {"breaker_fast_fails >= 1", io.breaker_fast_fails >= 1},
      {"workload p99 under the op deadline",
       p99_ms < static_cast<double>(kOpBudgetMicros) / 1e3},
      {"server admission control shed >= 1 request", admission_sheds >= 1},
      {"retry_after_honored rose under admission shedding",
       admission_honored_delta >= 1},
  };
  std::printf("\nresilience counters over the soak:\n");
  std::printf(
      "  retries=%llu retry_after_honored=%llu stall_aborts=%llu\n"
      "  breaker open/probe/close/fast-fail=%llu/%llu/%llu/%llu\n"
      "  failovers=%llu quarantines=%llu deadline_expirations=%llu\n"
      "  workload p99 = %.1f ms (budget %.0f ms)\n",
      static_cast<unsigned long long>(io.retries),
      static_cast<unsigned long long>(io.retry_after_honored),
      static_cast<unsigned long long>(io.stall_aborts),
      static_cast<unsigned long long>(io.breaker_opens),
      static_cast<unsigned long long>(io.breaker_half_open_probes),
      static_cast<unsigned long long>(io.breaker_closes),
      static_cast<unsigned long long>(io.breaker_fast_fails),
      static_cast<unsigned long long>(io.replica_failovers),
      static_cast<unsigned long long>(io.replica_quarantines),
      static_cast<unsigned long long>(io.deadline_expirations), p99_ms,
      static_cast<double>(kOpBudgetMicros) / 1e3);
  for (const Check& check : checks) {
    if (!check.ok) {
      std::fprintf(stderr, "soak: FAILED check: %s\n", check.what);
      g_verify_failed = true;
    }
  }

  json.AddRow()
      .Str("phase", "totals")
      .Int("retries", io.retries)
      .Int("retry_after_honored", io.retry_after_honored)
      .Int("stall_aborts", io.stall_aborts)
      .Int("breaker_opens", io.breaker_opens)
      .Int("breaker_half_open_probes", io.breaker_half_open_probes)
      .Int("breaker_closes", io.breaker_closes)
      .Int("breaker_fast_fails", io.breaker_fast_fails)
      .Int("admission_sheds", admission_sheds)
      .Int("admission_retry_after_honored", admission_honored_delta)
      .Int("failovers", io.replica_failovers)
      .Int("quarantines", io.replica_quarantines)
      .Int("deadline_expirations", io.deadline_expirations)
      .Num("p99_ms", p99_ms)
      .Int("verified", g_verify_failed ? 0 : 1);

  for (HttpNode& node : d.replicas) node.server->Stop();
  d.fed_server->Stop();
  json.WriteTo(args.json_path);
  std::printf(
      "\nexpected shape: every phase finishes with 0 errors and CRC-\n"
      "identical bytes; the burst phase shows honored Retry-After, the\n"
      "slow-loris phase stall aborts, and the dead phase at least one\n"
      "breaker open -> half-open probe -> close cycle with fast-fails\n"
      "during the outage. Exit code 1 when any of that is missing.\n");
  return g_verify_failed ? 1 : 0;
}
