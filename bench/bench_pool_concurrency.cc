// E8 (§2.2 note): the cost model of pooled dispatch vs multiplexing.
// The paper: "contrary to a pure multi-plexing solution that aims to the
// usage of one TCP connection per host, our approach uses a connection
// pool whose size is proportional to the level of concurrency.
// Consequently, an important degree of concurrency can result in a more
// important server load compared to a multi-plexed solution".
//
// Workload: T client threads each issuing 32 reads of a shared object.
// Davix: shared Context/pool. Xrootd: one multiplexed connection shared
// by all threads. Reported: wall time and TCP connections used — the
// paper's predicted pool growth with concurrency.

#include <algorithm>
#include <thread>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/context.h"
#include "core/dav_file.h"
#include "muxhttp/mux.h"
#include "xrootd/xrd_client.h"

namespace davix {
namespace bench {
namespace {

constexpr int kRequestsPerThread = 32;
constexpr size_t kObjectBytes = 64 * 1024;
constexpr char kPath[] = "/hot/object.bin";

void RunDavix(const netsim::LinkProfile& link,
              std::shared_ptr<httpd::ObjectStore> store, size_t threads,
              JsonReporter* json) {
  HttpNode node = StartHttpNode(link, store);
  // Dispatcher sized to the sweep point so T simulated client threads
  // really run T-wide.
  core::Context context({}, threads);
  core::RequestParams params;
  params.metalink_mode = core::MetalinkMode::kDisabled;
  std::string url = node.UrlFor(kPath);

  Stopwatch stopwatch;
  ParallelFor(&context.dispatcher(), threads, threads, [&](size_t) {
    core::DavFile file = *core::DavFile::Make(&context, url);
    for (int i = 0; i < kRequestsPerThread; ++i) {
      auto data = file.ReadPartial(
          static_cast<uint64_t>(i) * 512 % kObjectBytes, 512, params);
      if (!data.ok()) std::exit(1);
    }
  });
  double total = stopwatch.ElapsedSeconds();
  IoCounters io = context.SnapshotCounters();
  double throughput = threads * kRequestsPerThread / total;
  std::printf("%-6s davix   T=%-3zu %10.3f %10.0f %12llu %12llu\n",
              link.name.c_str(), threads, total, throughput,
              static_cast<unsigned long long>(io.connections_opened),
              static_cast<unsigned long long>(io.connections_reused));
  json->AddRow()
      .Str("link", link.name)
      .Str("client", "davix")
      .Int("threads", threads)
      .Num("seconds", total)
      .Num("requests_per_second", throughput)
      .Int("connections_opened", io.connections_opened)
      .Int("connections_reused", io.connections_reused);
  node.server->Stop();
}

void RunXrootd(const netsim::LinkProfile& link,
               std::shared_ptr<httpd::ObjectStore> store, size_t threads,
               JsonReporter* json) {
  auto server = StartXrdNode(link, store);
  auto client = std::move(xrootd::XrdClient::Connect("127.0.0.1", server->port())).value();
  if (!client->Login().ok()) std::exit(1);
  auto open = client->Open(kPath);
  if (!open.ok()) std::exit(1);

  Stopwatch stopwatch;
  ThreadPool workers(threads);
  ParallelFor(&workers, threads, threads, [&](size_t) {
    for (int i = 0; i < kRequestsPerThread; ++i) {
      auto data = client->Read(open->handle,
                               static_cast<uint64_t>(i) * 512 % kObjectBytes,
                               512);
      if (!data.ok()) std::exit(1);
    }
  });
  double total = stopwatch.ElapsedSeconds();
  double throughput = threads * kRequestsPerThread / total;
  std::printf("%-6s xrootd  T=%-3zu %10.3f %10.0f %12u %12s\n",
              link.name.c_str(), threads, total, throughput, 1, "-");
  json->AddRow()
      .Str("link", link.name)
      .Str("client", "xrootd")
      .Int("threads", threads)
      .Num("seconds", total)
      .Num("requests_per_second", throughput)
      .Int("connections_opened", 1);
  server->Stop();
}

void RunSpdyMux(const netsim::LinkProfile& link,
                std::shared_ptr<httpd::ObjectStore> store, size_t threads,
                JsonReporter* json) {
  // The mux transport behind the same DavFile/HttpClient stack as the
  // davix leg: identical range-GETs, but all T threads share ONE framed
  // connection (the paper's "pure multi-plexing" cost model).
  auto handler = std::make_shared<httpd::DavHandler>(store);
  auto router = std::make_shared<httpd::Router>();
  handler->Register(router.get(), "/");
  muxhttp::MuxServerConfig config;
  config.link = link;
  auto server = muxhttp::MuxServer::Start(config, router);
  if (!server.ok()) std::exit(1);

  core::Context context({}, threads);
  core::RequestParams params;
  params.metalink_mode = core::MetalinkMode::kDisabled;
  params.transport = core::TransportKind::kMux;
  params.mux_max_connections_per_host = 1;
  params.mux_max_streams_per_connection =
      std::max<size_t>(threads * 2, 8);
  std::string url = (*server)->BaseUrl() + kPath;

  Stopwatch stopwatch;
  ParallelFor(&context.dispatcher(), threads, threads, [&](size_t) {
    core::DavFile file = *core::DavFile::Make(&context, url);
    for (int i = 0; i < kRequestsPerThread; ++i) {
      auto data = file.ReadPartial(
          static_cast<uint64_t>(i) * 512 % kObjectBytes, 512, params);
      if (!data.ok()) std::exit(1);
    }
  });
  double total = stopwatch.ElapsedSeconds();
  IoCounters io = context.SnapshotCounters();
  double throughput = threads * kRequestsPerThread / total;
  std::printf("%-6s mux     T=%-3zu %10.3f %10.0f %12llu %12s\n",
              link.name.c_str(), threads, total, throughput,
              static_cast<unsigned long long>(io.mux_connections_opened),
              "-");
  json->AddRow()
      .Str("link", link.name)
      .Str("client", "mux")
      .Int("threads", threads)
      .Num("seconds", total)
      .Num("requests_per_second", throughput)
      .Int("connections_opened",
           static_cast<int64_t>(io.mux_connections_opened))
      .Int("streams_opened", static_cast<int64_t>(io.mux_streams_opened));
  (*server)->Stop();
}

}  // namespace
}  // namespace bench
}  // namespace davix

int main(int argc, char** argv) {
  using namespace davix;
  using namespace davix::bench;
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("E8: pool size vs concurrency (pooled dispatch vs multiplexing)",
              "§2.2 of the libdavix paper (connection-count trade-off)");
  auto store = std::make_shared<httpd::ObjectStore>();
  Rng rng(8);
  store->Put(kPath, rng.Bytes(kObjectBytes));

  JsonReporter json("pool_concurrency");
  std::printf("%-6s %-7s %-5s %10s %10s %12s %12s\n", "link", "client", "",
              "time[s]", "req/s", "conns", "reuses");
  netsim::LinkProfile lan = netsim::LinkProfile::Lan();
  std::vector<size_t> sweep = args.smoke
                                  ? std::vector<size_t>{1, 4}
                                  : std::vector<size_t>{1, 2, 4, 8, 16};
  for (size_t threads : sweep) {
    RunDavix(lan, store, threads, &json);
    RunSpdyMux(lan, store, threads, &json);
    RunXrootd(lan, store, threads, &json);
  }
  json.WriteTo(args.json_path);
  std::printf(
      "\nexpected shape: davix opens ~T connections (pool grows with\n"
      "concurrency, the paper's stated trade-off) while the framed mux\n"
      "transport and xrootd multiplex everything over 1; all three scale\n"
      "request throughput with T because requests on distinct davix\n"
      "connections and multiplexed streams both overlap their round\n"
      "trips.\n");
  return 0;
}
