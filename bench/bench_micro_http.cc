// M1: microbenchmarks of the HTTP wire layer — the per-request CPU costs
// that davix's session recycling amortises. google-benchmark based, with
// the repo-wide --smoke/--json contract via micro_bench_util.h.

#include <benchmark/benchmark.h>

#include "bench/micro_bench_util.h"
#include "common/rng.h"
#include "common/uri.h"
#include "http/header_map.h"
#include "http/message.h"
#include "http/multipart.h"
#include "http/range.h"

namespace davix {
namespace {

void BM_UriParse(benchmark::State& state) {
  for (auto _ : state) {
    auto uri = Uri::Parse(
        "https://user@dpm.cern.ch:8443/dpm/cern.ch/home/atlas/data.root"
        "?metalink#frag");
    benchmark::DoNotOptimize(uri);
  }
}
BENCHMARK(BM_UriParse);

void BM_RequestSerialize(benchmark::State& state) {
  http::HttpRequest request;
  request.method = http::Method::kGet;
  request.target = "/dpm/cern.ch/home/atlas/data.root";
  request.headers.Set("Host", "dpm.cern.ch:8443");
  request.headers.Set("User-Agent", "libdavix-repro/1.0");
  request.headers.Set("Connection", "keep-alive");
  request.headers.Set("Range", "bytes=0-4095,8192-12287,16384-20479");
  for (auto _ : state) {
    std::string wire = request.Serialize();
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_RequestSerialize);

void BM_HeaderMapLookup(benchmark::State& state) {
  http::HeaderMap headers;
  headers.Add("Server", "davix-httpd/1.0");
  headers.Add("Date", "Sun, 06 Nov 1994 08:49:37 GMT");
  headers.Add("Content-Type", "application/octet-stream");
  headers.Add("Content-Length", "1048576");
  headers.Add("ETag", "\"dv-123\"");
  headers.Add("Accept-Ranges", "bytes");
  headers.Add("Connection", "keep-alive");
  for (auto _ : state) {
    benchmark::DoNotOptimize(headers.GetUint64("content-length"));
    benchmark::DoNotOptimize(headers.ListContains("connection", "close"));
  }
}
BENCHMARK(BM_HeaderMapLookup);

void BM_RangeHeaderFormat(benchmark::State& state) {
  std::vector<http::ByteRange> ranges;
  Rng rng(1);
  for (int i = 0; i < state.range(0); ++i) {
    ranges.push_back({rng.Below(1 << 30), 1 + rng.Below(65536)});
  }
  for (auto _ : state) {
    std::string header = http::FormatRangeHeader(ranges);
    benchmark::DoNotOptimize(header);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RangeHeaderFormat)->Arg(8)->Arg(64)->Arg(256);

void BM_RangeHeaderParse(benchmark::State& state) {
  std::vector<http::ByteRange> ranges;
  Rng rng(1);
  for (int i = 0; i < state.range(0); ++i) {
    ranges.push_back({rng.Below(1 << 20), 1 + rng.Below(65536)});
  }
  std::string header = http::FormatRangeHeader(ranges);
  for (auto _ : state) {
    auto parsed = http::ParseRangeHeader(header, 1ull << 40);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RangeHeaderParse)->Arg(8)->Arg(64)->Arg(256);

void BM_MultipartBuild(benchmark::State& state) {
  Rng rng(2);
  std::vector<http::BytesPart> parts;
  for (int i = 0; i < state.range(0); ++i) {
    http::BytesPart part;
    part.range = {static_cast<uint64_t>(i) * 100'000, 8192};
    part.total_size = 1 << 30;
    part.data = rng.Bytes(8192);
    parts.push_back(std::move(part));
  }
  std::string boundary = http::GenerateBoundary(parts, 7);
  for (auto _ : state) {
    std::string body = http::BuildMultipartBody(parts, boundary);
    benchmark::DoNotOptimize(body);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 8192);
}
BENCHMARK(BM_MultipartBuild)->Arg(8)->Arg(64);

void BM_MultipartParse(benchmark::State& state) {
  Rng rng(2);
  std::vector<http::BytesPart> parts;
  for (int i = 0; i < state.range(0); ++i) {
    http::BytesPart part;
    part.range = {static_cast<uint64_t>(i) * 100'000, 8192};
    part.total_size = 1 << 30;
    part.data = rng.Bytes(8192);
    parts.push_back(std::move(part));
  }
  std::string boundary = http::GenerateBoundary(parts, 7);
  std::string body = http::BuildMultipartBody(parts, boundary);
  for (auto _ : state) {
    auto parsed = http::ParseMultipartBody(body, boundary);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 8192);
}
BENCHMARK(BM_MultipartParse)->Arg(8)->Arg(64);

}  // namespace
}  // namespace davix

int main(int argc, char** argv) {
  return davix::bench::RunMicroBench(argc, argv, "micro_http");
}
