// E11 (robustness): many-client load, overload and drain behaviour of
// the epoll-reactor server (docs/SERVER.md).
//
// A fleet of keep-alive clients — thousands in the full run — drives a
// mixed GET / ranged-GET / PROPFIND workload through three phases:
//
//   healthy   capacity above demand: zero sheds, every response
//             complete, keep-alive reuse dominating connection churn;
//   overload  the dispatch backlog is clamped to a handful (and the
//             connection cap halved), so admission control sheds most
//             requests with 503 + Retry-After + Connection: close while
//             the admitted remainder keeps a bounded p99 — graceful
//             degradation instead of collapse;
//   drain     limits restored, traffic flowing, then Stop() lands: the
//             listener closes, idle connections go away, and every
//             in-flight response is finished before the server exits.
//
// Clients are little event loops: each driver thread poll()s a slab of
// non-blocking sockets, so the fleet scales to thousands of concurrent
// connections without thousands of threads.
//
// Pass criteria, enforced by exit code: the healthy phase sheds
// nothing; the overload phase sheds (every shed carrying Retry-After)
// yet still completes admitted requests under the p99 budget; no phase
// ever sees a torn response or a non-503 error; and the drain finishes
// inside its deadline with requests_handled == responses_completed on
// the server — zero in-flight responses lost.

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/thread_pool.h"
#include "core/context.h"
#include "core/http_client.h"
#include "muxhttp/mux.h"

namespace davix {
namespace bench {
namespace {

constexpr int kObjects = 16;
constexpr size_t kObjectBytes = 16 * 1024;
constexpr size_t kRangeBytes = 4096;
/// Scaled-down nod to the server's Retry-After hint: a shed client
/// backs off before reconnecting instead of hammering the accept queue.
/// (Full Retry-After pacing through the real client stack is
/// bench_fault_soak's job; here the point is fleet-scale pressure.)
constexpr int64_t kShedBackoffMicros = 100'000;

enum Phase { kHealthy = 0, kOverload = 1, kDrain = 2, kPhaseCount = 3 };

const char* PhaseName(int phase) {
  switch (phase) {
    case kHealthy: return "healthy";
    case kOverload: return "overload";
    default: return "drain";
  }
}

struct PhaseMetrics {
  uint64_t ok = 0;                     // complete 200/206/207 responses
  uint64_t shed = 0;                   // complete 503 responses
  uint64_t shed_with_retry_after = 0;  // ... carrying the header
  uint64_t errors = 0;                 // any other status
  uint64_t partial = 0;                // connection died mid-response
  uint64_t refused = 0;                // closed before any response byte
  uint64_t reconnects = 0;             // connection churn
  std::vector<double> latencies_ms;    // admitted requests only

  void MergeFrom(const PhaseMetrics& other) {
    ok += other.ok;
    shed += other.shed;
    shed_with_retry_after += other.shed_with_retry_after;
    errors += other.errors;
    partial += other.partial;
    refused += other.refused;
    reconnects += other.reconnects;
    latencies_ms.insert(latencies_ms.end(), other.latencies_ms.begin(),
                        other.latencies_ms.end());
  }
};

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  return values[static_cast<size_t>(pos + 0.5)];
}

/// One non-blocking client connection's state machine.
struct ClientConn {
  enum State { kClosed, kConnecting, kSending, kReceiving };
  int fd = -1;
  State state = kClosed;
  std::string out;
  size_t out_pos = 0;
  std::string in;
  int64_t sent_at = 0;
  int64_t next_connect_at = 0;  // shed backoff
  int kind = 0;                 // rotates through the request mix
  bool ever_connected = false;
};

std::string RequestFor(int kind, int object) {
  std::string path = "/obj" + std::to_string(object);
  switch (kind % 3) {
    case 0:
      return "GET " + path + " HTTP/1.1\r\nHost: bench\r\n\r\n";
    case 1:
      return "GET " + path + " HTTP/1.1\r\nHost: bench\r\nRange: bytes=0-" +
             std::to_string(kRangeBytes - 1) + "\r\n\r\n";
    default:
      return "PROPFIND " + path +
             " HTTP/1.1\r\nHost: bench\r\nDepth: 0\r\nContent-Length: "
             "0\r\n\r\n";
  }
}

/// Minimal response scanner: status code, Content-Length framing, and
/// the two headers the gates care about. Returns false until the
/// buffered bytes hold one complete response.
struct ParsedResponse {
  int status = 0;
  bool retry_after = false;
  bool close = false;
};

bool TryParseResponse(const std::string& in, ParsedResponse* out) {
  size_t head_end = in.find("\r\n\r\n");
  if (head_end == std::string::npos) return false;
  if (in.compare(0, 5, "HTTP/") != 0) return false;
  size_t space = in.find(' ');
  if (space == std::string::npos || space + 4 > head_end) return false;
  out->status = std::atoi(in.c_str() + space + 1);

  size_t body_len = 0;
  out->retry_after = false;
  out->close = false;
  size_t line = in.find("\r\n") + 2;
  while (line < head_end) {
    size_t eol = in.find("\r\n", line);
    if (eol == std::string::npos || eol > head_end) eol = head_end;
    size_t colon = in.find(':', line);
    if (colon != std::string::npos && colon < eol) {
      std::string name = in.substr(line, colon - line);
      for (char& c : name) c = static_cast<char>(std::tolower(c));
      if (name == "content-length") {
        body_len = std::strtoull(in.c_str() + colon + 1, nullptr, 10);
      } else if (name == "retry-after") {
        out->retry_after = true;
      } else if (name == "connection") {
        out->close = in.find("close", colon) < eol;
      }
    }
    line = eol + 2;
  }
  return in.size() >= head_end + 4 + body_len;
}

struct DriverShared {
  uint16_t port = 0;
  std::atomic<int> phase{kHealthy};
  /// Once set, drivers stop reconnecting and exit when their last
  /// connection dies — the signal that Stop() is about to land.
  std::atomic<bool> stopping{false};
};

/// One driver thread: owns `count` connections, runs them all through a
/// single poll() loop, and buckets results by the phase current at
/// completion time.
void DriverLoop(DriverShared* shared, int count, int seed,
                PhaseMetrics* results /* kPhaseCount entries */) {
  std::vector<ClientConn> conns(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) conns[static_cast<size_t>(i)].kind = seed + i;
  std::vector<pollfd> pfds;

  auto open_connection = [&](ClientConn* conn, int64_t now) {
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(shared->port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
        errno != EINPROGRESS) {
      ::close(fd);
      results[shared->phase.load()].refused++;
      conn->next_connect_at = now + 10'000;
      return;
    }
    if (conn->ever_connected) {
      results[shared->phase.load()].reconnects++;
    }
    conn->fd = fd;
    conn->state = ClientConn::kConnecting;
    conn->ever_connected = true;
  };

  auto close_connection = [&](ClientConn* conn) {
    if (conn->fd >= 0) ::close(conn->fd);
    conn->fd = -1;
    conn->state = ClientConn::kClosed;
    conn->in.clear();
    conn->out.clear();
  };

  auto issue_request = [&](ClientConn* conn) {
    conn->kind++;
    conn->out = RequestFor(conn->kind, conn->kind % kObjects);
    conn->out_pos = 0;
    conn->in.clear();
    conn->state = ClientConn::kSending;
  };

  while (true) {
    int64_t now = MonotonicMicros();
    bool stopping = shared->stopping.load(std::memory_order_relaxed);

    size_t open = 0;
    for (ClientConn& conn : conns) {
      if (conn.state == ClientConn::kClosed) {
        if (!stopping && now >= conn.next_connect_at) {
          open_connection(&conn, now);
        }
      }
      if (conn.state != ClientConn::kClosed) ++open;
    }
    if (stopping && open == 0) break;

    pfds.clear();
    for (ClientConn& conn : conns) {
      if (conn.state == ClientConn::kClosed) continue;
      short events = POLLIN;
      if (conn.state == ClientConn::kConnecting ||
          conn.state == ClientConn::kSending) {
        events |= POLLOUT;
      }
      pfds.push_back({conn.fd, events, 0});
    }
    if (pfds.empty()) {
      SleepForMicros(2'000);
      continue;
    }
    int ready = ::poll(pfds.data(), pfds.size(), 5);
    if (ready < 0 && errno != EINTR) break;
    now = MonotonicMicros();

    size_t pi = 0;
    for (ClientConn& conn : conns) {
      if (conn.state == ClientConn::kClosed) continue;
      pollfd pfd = pfds[pi++];
      int phase = shared->phase.load(std::memory_order_relaxed);
      PhaseMetrics& m = results[phase];

      if (conn.state == ClientConn::kConnecting &&
          (pfd.revents & (POLLOUT | POLLERR | POLLHUP))) {
        int err = 0;
        socklen_t len = sizeof(err);
        (void)::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
          m.refused++;
          close_connection(&conn);
          conn.next_connect_at = now + 10'000;
          continue;
        }
        issue_request(&conn);
      }

      if (conn.state == ClientConn::kSending && (pfd.revents & POLLOUT)) {
        while (conn.out_pos < conn.out.size()) {
          ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_pos,
                             conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
          if (n > 0) {
            conn.out_pos += static_cast<size_t>(n);
          } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          } else {
            // Reset mid-send: the response (or its absence) arrives via
            // the read side; fall through to it.
            break;
          }
        }
        if (conn.out_pos == conn.out.size()) {
          conn.state = ClientConn::kReceiving;
          conn.sent_at = now;
        }
      }

      // Read in any active state: a shed-at-accept 503 can arrive while
      // the request is still being written.
      if (pfd.revents & (POLLIN | POLLERR | POLLHUP)) {
        char buf[16384];
        bool closed = false;
        while (true) {
          ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
          if (n > 0) {
            conn.in.append(buf, static_cast<size_t>(n));
          } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          } else {
            closed = true;  // EOF or reset
            break;
          }
        }
        ParsedResponse response;
        if (TryParseResponse(conn.in, &response)) {
          if (response.status == 503) {
            m.shed++;
            if (response.retry_after) m.shed_with_retry_after++;
          } else if (response.status == 200 || response.status == 206 ||
                     response.status == 207) {
            m.ok++;
            if (conn.state == ClientConn::kReceiving) {
              m.latencies_ms.push_back(
                  static_cast<double>(now - conn.sent_at) / 1e3);
            }
          } else {
            m.errors++;
          }
          bool was_shed = response.status == 503;
          if (response.close || closed) {
            close_connection(&conn);
            if (was_shed) conn.next_connect_at = now + kShedBackoffMicros;
          } else {
            issue_request(&conn);
          }
          continue;
        }
        if (closed) {
          if (!conn.in.empty()) {
            m.partial++;  // torn response: bytes arrived but no full reply
          } else {
            m.refused++;  // closed before saying anything (drain, reap)
          }
          close_connection(&conn);
        }
      }
    }
  }
  for (ClientConn& conn : conns) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
}

bool g_verify_failed = false;

void Gate(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "server_load: FAILED gate: %s\n", what.c_str());
    g_verify_failed = true;
  }
}

}  // namespace
}  // namespace bench
}  // namespace davix

int main(int argc, char** argv) {
  using namespace davix;
  using namespace davix::bench;
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("E11: server load — overload shedding and graceful drain",
              "robustness of the event-driven server core (docs/SERVER.md)");

  const int clients = args.smoke ? 64 : 2048;
  const int drivers = args.smoke ? 2 : 4;
  const int64_t healthy_micros = args.smoke ? 1'500'000 : 6'000'000;
  const int64_t overload_micros = args.smoke ? 1'500'000 : 5'000'000;
  const int64_t recover_micros = args.smoke ? 400'000 : 800'000;
  const double p99_budget_ms = args.smoke ? 2'000 : 5'000;

  auto store = std::make_shared<httpd::ObjectStore>();
  for (int i = 0; i < kObjects; ++i) {
    store->Put("/obj" + std::to_string(i),
               std::string(kObjectBytes, static_cast<char>('a' + i)));
  }
  auto handler = std::make_shared<httpd::DavHandler>(store);
  auto router = std::make_shared<httpd::Router>();
  handler->Register(router.get(), "/");

  httpd::ServerConfig config;
  config.worker_threads = 4;
  config.max_connections = static_cast<uint32_t>(clients) * 4;
  config.max_dispatch_backlog = static_cast<uint32_t>(clients) * 2;
  config.listen_backlog = 4096;
  auto started = httpd::HttpServer::Start(config, router);
  if (!started.ok()) {
    std::fprintf(stderr, "fatal: cannot start server: %s\n",
                 started.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<httpd::HttpServer> server = std::move(*started);

  DriverShared shared;
  shared.port = server->port();
  std::vector<std::vector<PhaseMetrics>> buckets(
      static_cast<size_t>(drivers), std::vector<PhaseMetrics>(kPhaseCount));
  std::vector<std::thread> threads;
  int per_driver = clients / drivers;
  for (int d = 0; d < drivers; ++d) {
    threads.emplace_back(DriverLoop, &shared, per_driver, d * per_driver,
                         buckets[static_cast<size_t>(d)].data());
  }

  std::printf("\nfleet: %d keep-alive clients on %d driver event loops\n",
              clients, drivers);

  // --- Phase 1: healthy. -------------------------------------------------
  double healthy_seconds;
  {
    Stopwatch timer;
    SleepForMicros(healthy_micros);
    healthy_seconds = timer.ElapsedSeconds();
  }

  // --- Phase 2: overload. ------------------------------------------------
  // Demand is unchanged; capacity is clamped. Admission control must
  // turn the excess into paced 503s, not latency collapse.
  shared.phase.store(kOverload);
  server->SetMaxDispatchBacklog(2);
  server->SetMaxConnections(static_cast<uint32_t>(clients) / 2);
  double overload_seconds;
  {
    Stopwatch timer;
    SleepForMicros(overload_micros);
    overload_seconds = timer.ElapsedSeconds();
  }

  // --- Phase 3: recover, then drain. ------------------------------------
  shared.phase.store(kDrain);
  server->SetMaxDispatchBacklog(static_cast<uint32_t>(clients) * 2);
  server->SetMaxConnections(static_cast<uint32_t>(clients) * 4);
  Stopwatch drain_timer;
  SleepForMicros(recover_micros);  // let the fleet reconnect and settle
  shared.stopping.store(true);
  server->Stop();  // drain: must finish every in-flight response
  for (std::thread& t : threads) t.join();
  double drain_seconds = drain_timer.ElapsedSeconds();

  // --- Aggregate and judge. ----------------------------------------------
  PhaseMetrics totals[kPhaseCount];
  for (const auto& driver_buckets : buckets) {
    for (int p = 0; p < kPhaseCount; ++p) {
      totals[p].MergeFrom(driver_buckets[static_cast<size_t>(p)]);
    }
  }
  double phase_seconds[kPhaseCount] = {healthy_seconds, overload_seconds,
                                       drain_seconds};

  JsonReporter json("server_load");
  std::printf("\n%-9s %9s %8s %8s %7s %8s %9s %9s %9s\n", "phase", "ok",
              "shed", "errors", "torn", "churn", "req/s", "p50[ms]",
              "p99[ms]");
  for (int p = 0; p < kPhaseCount; ++p) {
    const PhaseMetrics& m = totals[p];
    double rate = phase_seconds[p] > 0
                      ? static_cast<double>(m.ok) / phase_seconds[p]
                      : 0;
    double p50 = Percentile(m.latencies_ms, 0.50);
    double p95 = Percentile(m.latencies_ms, 0.95);
    double p99 = Percentile(m.latencies_ms, 0.99);
    std::printf("%-9s %9llu %8llu %8llu %7llu %8llu %9.0f %9.1f %9.1f\n",
                PhaseName(p), static_cast<unsigned long long>(m.ok),
                static_cast<unsigned long long>(m.shed),
                static_cast<unsigned long long>(m.errors),
                static_cast<unsigned long long>(m.partial),
                static_cast<unsigned long long>(m.reconnects), rate, p50, p99);
    json.AddRow()
        .Str("phase", PhaseName(p))
        .Int("clients", static_cast<uint64_t>(clients))
        .Num("seconds", phase_seconds[p])
        .Int("requests_ok", m.ok)
        .Int("requests_shed", m.shed)
        .Int("shed_with_retry_after", m.shed_with_retry_after)
        .Int("errors", m.errors)
        .Int("partial_responses", m.partial)
        .Int("refused", m.refused)
        .Int("reconnects", m.reconnects)
        .Num("req_per_s", rate)
        .Num("p50_ms", p50)
        .Num("p95_ms", p95)
        .Num("p99_ms", p99);
  }

  const httpd::ServerStats& stats = server->stats();
  uint64_t handled = stats.requests_handled.load();
  uint64_t completed = stats.responses_completed.load();

  // Healthy: capacity above demand means nobody is turned away.
  Gate(totals[kHealthy].shed == 0, "healthy phase sheds nothing");
  Gate(totals[kHealthy].ok > 0, "healthy phase completes requests");
  // Overload: shedding happens, is honest (Retry-After on every 503),
  // and the admitted remainder still gets bounded service.
  Gate(totals[kOverload].shed > 0, "overload phase sheds");
  Gate(totals[kOverload].shed_with_retry_after == totals[kOverload].shed,
       "every shed response carries Retry-After");
  Gate(totals[kOverload].ok > 0, "overload phase still admits requests");
  Gate(stats.requests_shed.load() + stats.connections_shed.load() > 0,
       "server-side shed counters fired");
  // Universal: no torn responses, no non-503 failures, bounded p99.
  for (int p = 0; p < kPhaseCount; ++p) {
    std::string phase = PhaseName(p);
    Gate(totals[p].partial == 0, phase + " phase has no torn responses");
    Gate(totals[p].errors == 0, phase + " phase has no non-503 errors");
    Gate(Percentile(totals[p].latencies_ms, 0.99) < p99_budget_ms,
         phase + " admitted p99 under budget");
  }
  // Drain: finished inside its deadline without losing any response the
  // server had started. Every parsed request was answered to the last
  // byte — the accounting the reactor keeps for exactly this purpose.
  Gate(stats.drain_completions.load() == 1, "drain completed in deadline");
  Gate(handled == completed,
       "requests_handled == responses_completed (" + std::to_string(handled) +
           " vs " + std::to_string(completed) + ")");

  std::printf(
      "\nserver counters: accepted=%llu handled=%llu completed=%llu\n"
      "  conn_shed=%llu req_shed=%llu keepalive_reuses=%llu\n"
      "  header_timeouts=%llu write_stall_aborts=%llu drain_completions=%llu\n",
      static_cast<unsigned long long>(stats.connections_accepted.load()),
      static_cast<unsigned long long>(handled),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(stats.connections_shed.load()),
      static_cast<unsigned long long>(stats.requests_shed.load()),
      static_cast<unsigned long long>(stats.keepalive_reuses.load()),
      static_cast<unsigned long long>(stats.header_timeouts.load()),
      static_cast<unsigned long long>(stats.write_stall_aborts.load()),
      static_cast<unsigned long long>(stats.drain_completions.load()));

  json.AddRow()
      .Str("phase", "totals")
      .Int("clients", static_cast<uint64_t>(clients))
      .Int("connections_accepted", stats.connections_accepted.load())
      .Int("connections_shed", stats.connections_shed.load())
      .Int("requests_shed", stats.requests_shed.load())
      .Int("requests_handled", handled)
      .Int("responses_completed", completed)
      .Int("keepalive_reuses", stats.keepalive_reuses.load())
      .Int("header_timeouts", stats.header_timeouts.load())
      .Int("write_stall_aborts", stats.write_stall_aborts.load())
      .Int("drain_completions", stats.drain_completions.load())
      .Num("p99_budget_ms", p99_budget_ms)
      .Int("verified", g_verify_failed ? 0 : 1);

  // --- Mux leg: the same object mix over the framed mux transport. -------
  // A small client fleet drives the MuxServer through the HttpClient
  // seam; every request must complete and the whole fleet must fit in
  // the transport's per-host framed-connection budget.
  {
    const int mux_threads = args.smoke ? 4 : 8;
    const int mux_requests_per_thread = args.smoke ? 25 : 200;
    const uint64_t mux_connection_budget = 4;

    muxhttp::MuxServerConfig mux_config;
    auto mux_started = muxhttp::MuxServer::Start(mux_config, router);
    Gate(mux_started.ok(), "mux server starts");
    if (mux_started.ok()) {
      core::Context context({}, static_cast<size_t>(mux_threads));
      core::RequestParams params;
      params.metalink_mode = core::MetalinkMode::kDisabled;
      params.transport = core::TransportKind::kMux;
      params.mux_max_connections_per_host = mux_connection_budget;
      std::atomic<uint64_t> mux_ok{0};
      std::atomic<uint64_t> mux_failed{0};
      Stopwatch mux_timer;
      ParallelFor(&context.dispatcher(), static_cast<size_t>(mux_threads),
                  static_cast<size_t>(mux_threads), [&](size_t t) {
                    core::HttpClient client(&context);
                    for (int i = 0; i < mux_requests_per_thread; ++i) {
                      int object =
                          (static_cast<int>(t) * mux_requests_per_thread + i) %
                          kObjects;
                      auto exchange = client.Execute(
                          *Uri::Parse((*mux_started)->BaseUrl() + "/obj" +
                                      std::to_string(object)),
                          http::Method::kGet, params);
                      if (exchange.ok() &&
                          exchange->response.status_code == 200 &&
                          exchange->response.body.size() == kObjectBytes) {
                        mux_ok++;
                      } else {
                        mux_failed++;
                      }
                    }
                  });
      double mux_seconds = mux_timer.ElapsedSeconds();
      const muxhttp::MuxServerStats& mux_stats = (*mux_started)->stats();
      uint64_t mux_conns = mux_stats.connections_accepted.load();
      uint64_t mux_handled = mux_stats.requests_handled.load();
      uint64_t expected =
          static_cast<uint64_t>(mux_threads) * mux_requests_per_thread;

      Gate(mux_failed.load() == 0, "mux leg completes every request");
      Gate(mux_conns <= mux_connection_budget,
           "mux fleet fits the framed-connection budget");
      Gate(mux_handled >= expected, "mux server handled the full workload");

      std::printf(
          "\nmux leg: %llu requests over %llu framed connections in %.3fs "
          "(%.0f req/s)\n",
          static_cast<unsigned long long>(mux_ok.load()),
          static_cast<unsigned long long>(mux_conns), mux_seconds,
          mux_seconds > 0 ? static_cast<double>(mux_ok.load()) / mux_seconds
                          : 0);
      json.AddRow()
          .Str("phase", "mux")
          .Int("clients", static_cast<uint64_t>(mux_threads))
          .Num("seconds", mux_seconds)
          .Int("requests_ok", mux_ok.load())
          .Int("requests_failed", mux_failed.load())
          .Int("connections_accepted", mux_conns)
          .Int("streams_refused", mux_stats.streams_refused.load())
          .Num("req_per_s", mux_seconds > 0
                                ? static_cast<double>(mux_ok.load()) /
                                      mux_seconds
                                : 0);
      (*mux_started)->Stop();
    }
  }
  json.WriteTo(args.json_path);

  std::printf(
      "\nexpected shape: the healthy phase sheds nothing; the overload\n"
      "phase sheds most requests (all with Retry-After) while the\n"
      "admitted few keep a bounded p99; the drain loses zero in-flight\n"
      "responses. Exit code 1 when any gate fails.\n");
  return g_verify_failed ? 1 : 0;
}
