// M2: microbenchmarks of the block codecs and digests used by the
// tree-file substrate and Metalink verification. google-benchmark based,
// with the repo-wide --smoke/--json contract via micro_bench_util.h.

#include <benchmark/benchmark.h>

#include "bench/micro_bench_util.h"
#include "common/checksum.h"
#include "common/rng.h"
#include "compress/codec.h"
#include "root/tree_format.h"

namespace davix {
namespace {

std::string MakePayload(int shape, size_t size) {
  Rng rng(9);
  switch (shape) {
    case 0:
      return rng.Bytes(size);  // incompressible
    case 1:
      return rng.CompressibleBytes(size);
    default: {
      // Basket-like: the synthetic event payload the tree files store.
      root::TreeSpec spec = root::TreeSpec::Default();
      std::string out;
      for (uint64_t e = 0; out.size() < size; ++e) {
        out += root::SyntheticEventBytes(spec, 7, e, 1);
      }
      out.resize(size);
      return out;
    }
  }
}

void BM_Compress(benchmark::State& state) {
  auto codec = static_cast<compress::CodecType>(state.range(0));
  std::string payload = MakePayload(static_cast<int>(state.range(1)),
                                    256 * 1024);
  for (auto _ : state) {
    std::string frame = compress::Compress(codec, payload);
    benchmark::DoNotOptimize(frame);
  }
  state.SetBytesProcessed(state.iterations() * payload.size());
}
BENCHMARK(BM_Compress)
    ->ArgsProduct({{1, 2}, {0, 1, 2}})  // codec (rle/dlz) x payload shape
    ->ArgNames({"codec", "shape"});

void BM_Decompress(benchmark::State& state) {
  auto codec = static_cast<compress::CodecType>(state.range(0));
  std::string payload = MakePayload(static_cast<int>(state.range(1)),
                                    256 * 1024);
  std::string frame = compress::Compress(codec, payload);
  for (auto _ : state) {
    auto out = compress::Decompress(frame);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * payload.size());
}
BENCHMARK(BM_Decompress)
    ->ArgsProduct({{1, 2}, {1, 2}})
    ->ArgNames({"codec", "shape"});

void BM_Crc32(benchmark::State& state) {
  std::string payload = MakePayload(0, 1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(payload));
  }
  state.SetBytesProcessed(state.iterations() * payload.size());
}
BENCHMARK(BM_Crc32);

void BM_Md5(benchmark::State& state) {
  std::string payload = MakePayload(0, 1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5::HexDigest(payload));
  }
  state.SetBytesProcessed(state.iterations() * payload.size());
}
BENCHMARK(BM_Md5);

void BM_BuildTreeBasket(benchmark::State& state) {
  root::TreeSpec spec = root::TreeSpec::Default();
  for (auto _ : state) {
    std::string raw;
    for (uint64_t e = 0; e < 64; ++e) {
      raw += root::SyntheticEventBytes(spec, 7, e, 1);
    }
    benchmark::DoNotOptimize(compress::Compress(spec.codec, raw));
  }
}
BENCHMARK(BM_BuildTreeBasket);

}  // namespace
}  // namespace davix

int main(int argc, char** argv) {
  return davix::bench::RunMicroBench(argc, argv, "micro_compress");
}
