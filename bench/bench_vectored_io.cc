// E4 (§2.3): vectored I/O via HTTP multi-range queries. The paper: "This
// approach reduces drastically the number of remote network I/O
// operations and offers the advantage to reduce the necessity of parallel
// I/O operations".
//
// Workload: M scattered small reads (the HEP event-fragment pattern)
// against a 32 MiB object, executed (a) naively — one ranged GET per
// fragment, (b) as davix vectored queries — coalescing + multi-range
// batches over one connection, (c) with the parallel dispatcher — the
// same batches in flight concurrently, each on its own pooled session.
// Reported: wall time, HTTP requests on the wire and round trips, per
// network class. Modes (b) and (c) put the *same* requests on the wire;
// the parallel column shows what overlapping their round trips buys as
// link latency grows.
//
// Usage: bench_vectored_io [--smoke] [--json <path>]

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "core/context.h"
#include "core/dav_file.h"

namespace davix {
namespace bench {
namespace {

constexpr size_t kObjectBytes = 32 * 1024 * 1024;
constexpr uint64_t kFragmentBytes = 8 * 1024;

enum class Mode { kNaive, kVectored, kParallel };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kNaive:
      return "naive";
    case Mode::kVectored:
      return "vectored";
    case Mode::kParallel:
      return "parallel";
  }
  return "?";
}

std::vector<http::ByteRange> MakeFragments(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<http::ByteRange> ranges;
  ranges.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t offset = rng.Below(kObjectBytes - kFragmentBytes);
    ranges.push_back(http::ByteRange{offset, kFragmentBytes});
  }
  return ranges;
}

struct CellResult {
  double seconds = 0;
  IoCounters io;
};

CellResult RunCell(const netsim::LinkProfile& link,
                   std::shared_ptr<httpd::ObjectStore> store,
                   const std::string& content, size_t fragments, Mode mode,
                   JsonReporter* reporter) {
  HttpNode node = StartHttpNode(link, store);
  core::Context context;
  core::RequestParams params;
  params.metalink_mode = core::MetalinkMode::kDisabled;
  params.max_ranges_per_request = 32;
  params.vector_gap_bytes = 4096;
  // Sequential vectored mode pins the dispatcher to one connection; the
  // parallel mode uses the auto bound (pool max_idle_per_host).
  params.max_parallel_range_requests = mode == Mode::kParallel ? 0 : 1;
  core::DavFile file = *core::DavFile::Make(&context, node.UrlFor("/obj"));

  std::vector<http::ByteRange> ranges = MakeFragments(fragments, 42);
  std::vector<std::string> results;
  Stopwatch stopwatch;
  if (mode == Mode::kNaive) {
    for (const http::ByteRange& r : ranges) {
      auto data = file.ReadPartial(r.offset, r.length, params);
      if (!data.ok()) std::exit(1);
      results.push_back(std::move(*data));
    }
  } else {
    auto vec = file.ReadPartialVec(ranges, params);
    if (!vec.ok()) std::exit(1);
    results = std::move(*vec);
  }
  double total = stopwatch.ElapsedSeconds();

  // Every mode must deliver bit-identical fragments; a fast wrong answer
  // is no answer.
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (results[i] != content.substr(ranges[i].offset, ranges[i].length)) {
      std::fprintf(stderr, "fatal: %s mode corrupted fragment %zu\n",
                   ModeName(mode), i);
      std::exit(1);
    }
  }

  CellResult cell;
  cell.seconds = total;
  cell.io = context.SnapshotCounters();
  std::printf("%-6s %5zu %-10s %10.3f %10llu %12llu %12llu\n",
              link.name.c_str(), fragments, ModeName(mode), total,
              static_cast<unsigned long long>(cell.io.requests),
              static_cast<unsigned long long>(cell.io.network_round_trips),
              static_cast<unsigned long long>(cell.io.bytes_read));
  if (reporter != nullptr) {
    reporter->AddRow()
        .Str("section", "matrix")
        .Str("link", link.name)
        .Int("fragments", fragments)
        .Str("mode", ModeName(mode))
        .Num("seconds", total)
        .Int("requests", cell.io.requests)
        .Int("round_trips", cell.io.network_round_trips)
        .Int("bytes_read", cell.io.bytes_read)
        .Int("ranges_requested", cell.io.ranges_requested);
  }
  node.server->Stop();
  return cell;
}

int Run(const BenchArgs& args) {
  PrintHeader(
      "E4: vectored multi-range I/O — naive vs sequential vs parallel",
      "§2.3 of the libdavix paper (HTTP multi-range, data sieving)");
  auto store = std::make_shared<httpd::ObjectStore>();
  Rng rng(4);
  std::string content = rng.Bytes(kObjectBytes);
  store->Put("/obj", content);

  JsonReporter reporter("bench_vectored_io");

  std::vector<netsim::LinkProfile> links =
      args.smoke ? std::vector<netsim::LinkProfile>{netsim::LinkProfile::Lan()}
                 : PaperProfiles();
  std::vector<size_t> fragment_counts =
      args.smoke ? std::vector<size_t>{64} : std::vector<size_t>{64, 256, 512};

  std::printf("%-6s %5s %-10s %10s %10s %12s %12s\n", "link", "M", "mode",
              "time[s]", "requests", "round-trips", "bytes_read");
  for (const netsim::LinkProfile& link : links) {
    for (size_t fragments : fragment_counts) {
      // Naive mode at 256+ fragments on WAN would take ~30 s of pure
      // round-trip waiting; the smaller rows already show the slope.
      bool run_naive =
          fragments <= 256 && !(link.name == "WAN" && fragments > 64);
      if (run_naive) {
        RunCell(link, store, content, fragments, Mode::kNaive, &reporter);
      }
      CellResult vec =
          RunCell(link, store, content, fragments, Mode::kVectored, &reporter);
      CellResult par =
          RunCell(link, store, content, fragments, Mode::kParallel, &reporter);
      if (par.seconds > 0) {
        std::printf("%-6s %5zu parallel speedup over vectored: %.2fx "
                    "(same %llu requests on the wire)\n",
                    link.name.c_str(), fragments, vec.seconds / par.seconds,
                    static_cast<unsigned long long>(par.io.requests));
      }
    }
  }
  std::printf(
      "\nexpected shape: vectored modes need orders of magnitude fewer\n"
      "requests than naive; parallel dispatch overlaps the remaining batch\n"
      "round trips, so its gain over sequential vectored grows with RTT x\n"
      "batch count while wire requests and bytes stay identical.\n");

  // --- ablation: the data-sieving gap -----------------------------------
  // Coalescing nearby fragments across a gap trades extra bytes on the
  // wire for fewer wire ranges (and so fewer batches / round trips).
  if (!args.smoke) {
    std::printf(
        "\n[data-sieving gap ablation, 256 clustered fragments, PAN]\n");
    std::printf("%10s %10s %12s %12s %10s\n", "gap[B]", "time[s]",
                "wire-ranges", "bytes_read", "requests");
    netsim::LinkProfile pan = netsim::LinkProfile::PanEuropean();
    // Clustered fragments: 32 clusters of 8 fragments 1 KiB apart — the
    // basket-layout pattern where sieving shines.
    std::vector<http::ByteRange> ranges;
    Rng cluster_rng(11);
    for (int cluster = 0; cluster < 32; ++cluster) {
      uint64_t base = cluster_rng.Below(kObjectBytes - 64 * 1024);
      for (int i = 0; i < 8; ++i) {
        ranges.push_back(
            http::ByteRange{base + static_cast<uint64_t>(i) * 1024, 512});
      }
    }
    for (uint64_t gap : {0ull, 512ull, 4096ull, 65536ull}) {
      HttpNode node = StartHttpNode(pan, store);
      core::Context context;
      core::RequestParams params;
      params.metalink_mode = core::MetalinkMode::kDisabled;
      params.vector_gap_bytes = gap;
      params.max_ranges_per_request = 64;
      core::DavFile file =
          *core::DavFile::Make(&context, node.UrlFor("/obj"));
      Stopwatch stopwatch;
      auto results = file.ReadPartialVec(ranges, params);
      if (!results.ok()) std::exit(1);
      double total = stopwatch.ElapsedSeconds();
      IoCounters io = context.SnapshotCounters();
      std::printf("%10llu %10.3f %12llu %12llu %10llu\n",
                  static_cast<unsigned long long>(gap), total,
                  static_cast<unsigned long long>(io.ranges_requested),
                  static_cast<unsigned long long>(io.bytes_read),
                  static_cast<unsigned long long>(io.requests));
      reporter.AddRow()
          .Str("section", "gap_ablation")
          .Str("link", pan.name)
          .Int("gap_bytes", gap)
          .Num("seconds", total)
          .Int("wire_ranges", io.ranges_requested)
          .Int("bytes_read", io.bytes_read)
          .Int("requests", io.requests);
      node.server->Stop();
    }
    std::printf(
        "expected: larger gaps coalesce the 8-fragment clusters into one\n"
        "wire range each, cutting ranges/requests at a small byte cost.\n");
  }

  reporter.WriteTo(args.json_path);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace davix

int main(int argc, char** argv) {
  return davix::bench::Run(davix::bench::ParseBenchArgs(argc, argv));
}
