// E4 (§2.3): vectored I/O via HTTP multi-range queries. The paper: "This
// approach reduces drastically the number of remote network I/O
// operations and offers the advantage to reduce the necessity of parallel
// I/O operations".
//
// Workload: M scattered small reads (the HEP event-fragment pattern)
// against a 32 MiB object, executed (a) naively — one ranged GET per
// fragment, (b) as davix vectored queries — coalescing + multi-range
// batches. Reported: wall time, HTTP requests on the wire and round
// trips, per network class.

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "core/context.h"
#include "core/dav_file.h"

namespace davix {
namespace bench {
namespace {

constexpr size_t kObjectBytes = 32 * 1024 * 1024;
constexpr uint64_t kFragmentBytes = 8 * 1024;

std::vector<http::ByteRange> MakeFragments(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<http::ByteRange> ranges;
  ranges.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t offset = rng.Below(kObjectBytes - kFragmentBytes);
    ranges.push_back(http::ByteRange{offset, kFragmentBytes});
  }
  return ranges;
}

void RunCell(const netsim::LinkProfile& link,
             std::shared_ptr<httpd::ObjectStore> store, size_t fragments,
             bool vectored) {
  HttpNode node = StartHttpNode(link, store);
  core::Context context;
  core::RequestParams params;
  params.metalink_mode = core::MetalinkMode::kDisabled;
  params.max_ranges_per_request = 64;
  params.vector_gap_bytes = 4096;
  core::DavFile file = *core::DavFile::Make(&context, node.UrlFor("/obj"));

  std::vector<http::ByteRange> ranges = MakeFragments(fragments, 42);
  Stopwatch stopwatch;
  if (vectored) {
    auto results = file.ReadPartialVec(ranges, params);
    if (!results.ok()) std::exit(1);
  } else {
    for (const http::ByteRange& r : ranges) {
      auto data = file.ReadPartial(r.offset, r.length, params);
      if (!data.ok()) std::exit(1);
    }
  }
  double total = stopwatch.ElapsedSeconds();
  IoCounters io = context.SnapshotCounters();
  std::printf("%-6s %5zu %-10s %10.3f %10llu %12llu %12llu\n",
              link.name.c_str(), fragments, vectored ? "vectored" : "naive",
              total, static_cast<unsigned long long>(io.requests),
              static_cast<unsigned long long>(io.network_round_trips),
              static_cast<unsigned long long>(io.bytes_read));
  node.server->Stop();
}

}  // namespace
}  // namespace bench
}  // namespace davix

int main() {
  using namespace davix;
  using namespace davix::bench;
  PrintHeader("E4: vectored multi-range I/O vs per-fragment requests",
              "§2.3 of the libdavix paper (HTTP multi-range, data sieving)");
  auto store = std::make_shared<httpd::ObjectStore>();
  Rng rng(4);
  store->Put("/obj", rng.Bytes(kObjectBytes));

  std::printf("%-6s %5s %-10s %10s %10s %12s %12s\n", "link", "M", "mode",
              "time[s]", "requests", "round-trips", "bytes_read");
  for (const netsim::LinkProfile& link : PaperProfiles()) {
    for (size_t fragments : {64u, 256u}) {
      // Naive mode at 256 fragments on WAN would take ~30 s of pure
      // round-trip waiting; the 64-fragment row already shows the slope.
      if (!(link.name == "WAN" && fragments > 64)) {
        RunCell(link, store, fragments, /*vectored=*/false);
      }
      RunCell(link, store, fragments, /*vectored=*/true);
    }
  }
  std::printf(
      "\nexpected shape: vectored mode needs orders of magnitude fewer\n"
      "requests; the time gap scales with RTT x fragment count, i.e.\n"
      "it is decisive on WAN and still visible on LAN.\n");

  // --- ablation: the data-sieving gap -----------------------------------
  // Coalescing nearby fragments across a gap trades extra bytes on the
  // wire for fewer wire ranges (and so fewer batches / round trips).
  std::printf("\n[data-sieving gap ablation, 256 clustered fragments, PAN]\n");
  std::printf("%10s %10s %12s %12s %10s\n", "gap[B]", "time[s]",
              "wire-ranges", "bytes_read", "requests");
  {
    netsim::LinkProfile pan = netsim::LinkProfile::PanEuropean();
    // Clustered fragments: 32 clusters of 8 fragments 1 KiB apart — the
    // basket-layout pattern where sieving shines.
    std::vector<http::ByteRange> ranges;
    Rng rng(11);
    for (int cluster = 0; cluster < 32; ++cluster) {
      uint64_t base = rng.Below(kObjectBytes - 64 * 1024);
      for (int i = 0; i < 8; ++i) {
        ranges.push_back(
            http::ByteRange{base + static_cast<uint64_t>(i) * 1024, 512});
      }
    }
    for (uint64_t gap : {0ull, 512ull, 4096ull, 65536ull}) {
      HttpNode node = StartHttpNode(pan, store);
      core::Context context;
      core::RequestParams params;
      params.metalink_mode = core::MetalinkMode::kDisabled;
      params.vector_gap_bytes = gap;
      params.max_ranges_per_request = 64;
      core::DavFile file =
          *core::DavFile::Make(&context, node.UrlFor("/obj"));
      Stopwatch stopwatch;
      auto results = file.ReadPartialVec(ranges, params);
      if (!results.ok()) std::exit(1);
      double total = stopwatch.ElapsedSeconds();
      IoCounters io = context.SnapshotCounters();
      std::printf("%10llu %10.3f %12llu %12llu %10llu\n",
                  static_cast<unsigned long long>(gap), total,
                  static_cast<unsigned long long>(io.ranges_requested),
                  static_cast<unsigned long long>(io.bytes_read),
                  static_cast<unsigned long long>(io.requests));
      node.server->Stop();
    }
    std::printf(
        "expected: larger gaps coalesce the 8-fragment clusters into one\n"
        "wire range each, cutting ranges/requests at a small byte cost.\n");
  }
  return 0;
}
