// E7 (§3 analysis, ablation): where XRootD's WAN advantage comes from.
// The paper: "This difference of performance comes mainly from the
// sliding windows buffering algorithm of XRootD which allows to minimize
// the number of network round trips executed."
//
// Ablation A: xrootd sequential read of a 16 MiB object at WAN with
// sliding-window sizes 0 (pure synchronous) to 8 chunks in flight.
// Ablation B: the davix side — sequential DavPosix reads with and
// without its (synchronous) read-ahead buffer, which cuts request count
// but cannot overlap latency.

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "core/context.h"
#include "core/dav_posix.h"
#include "xrootd/readahead.h"
#include "xrootd/xrd_client.h"

namespace davix {
namespace bench {
namespace {

constexpr size_t kObjectBytes = 16 * 1024 * 1024;
constexpr size_t kConsumeChunk = 256 * 1024;
constexpr char kPath[] = "/seq/data.bin";

void RunXrdWindow(const netsim::LinkProfile& link,
                  std::shared_ptr<httpd::ObjectStore> store,
                  size_t window_chunks) {
  auto server = StartXrdNode(link, store);
  auto client = std::move(xrootd::XrdClient::Connect("127.0.0.1", server->port())).value();
  if (!client->Login().ok()) std::exit(1);
  auto open = client->Open(kPath);
  if (!open.ok()) std::exit(1);

  xrootd::ReadAheadConfig config;
  config.chunk_bytes = 512 * 1024;
  config.window_chunks = window_chunks;
  xrootd::XrdReadAheadStream stream(client.get(), open->handle, open->size,
                                    config);
  Stopwatch stopwatch;
  uint64_t consumed = 0;
  while (true) {
    auto chunk = stream.Read(kConsumeChunk);
    if (!chunk.ok()) std::exit(1);
    if (chunk->empty()) break;
    consumed += chunk->size();
    // Model per-chunk processing so the window has something to hide.
    SleepForMicros(2'000);
  }
  double total = stopwatch.ElapsedSeconds();
  std::printf("%-6s xrootd window=%zu %10.3f %12.1f\n", link.name.c_str(),
              window_chunks, total,
              static_cast<double>(consumed) / total / 1e6);
  server->Stop();
}

void RunDavixReadahead(const netsim::LinkProfile& link,
                       std::shared_ptr<httpd::ObjectStore> store,
                       uint64_t readahead_bytes) {
  HttpNode node = StartHttpNode(link, store);
  core::Context context;
  core::DavPosix posix(&context);
  core::RequestParams params;
  params.metalink_mode = core::MetalinkMode::kDisabled;
  params.readahead_bytes = readahead_bytes;
  auto fd = posix.Open(node.UrlFor(kPath), params);
  if (!fd.ok()) std::exit(1);

  Stopwatch stopwatch;
  uint64_t consumed = 0;
  while (true) {
    auto chunk = posix.Read(*fd, kConsumeChunk);
    if (!chunk.ok()) std::exit(1);
    if (chunk->empty()) break;
    consumed += chunk->size();
    SleepForMicros(2'000);
  }
  double total = stopwatch.ElapsedSeconds();
  IoCounters io = context.SnapshotCounters();
  std::printf("%-6s davix ra=%-8llu %10.3f %12.1f   (%llu requests)\n",
              link.name.c_str(),
              static_cast<unsigned long long>(readahead_bytes), total,
              static_cast<double>(consumed) / total / 1e6,
              static_cast<unsigned long long>(io.requests));
  (void)posix.Close(*fd);
  node.server->Stop();
}

}  // namespace
}  // namespace bench
}  // namespace davix

int main() {
  using namespace davix;
  using namespace davix::bench;
  PrintHeader("E7: sliding-window read-ahead ablation",
              "§3 of the libdavix paper (XRootD's WAN advantage)");
  auto store = std::make_shared<httpd::ObjectStore>();
  Rng rng(7);
  store->Put(kPath, rng.Bytes(kObjectBytes));

  std::printf("%-6s %-20s %10s %12s\n", "link", "reader", "time[s]", "MB/s");
  netsim::LinkProfile wan = netsim::LinkProfile::Wan();
  for (size_t window : {0u, 1u, 2u, 4u, 8u}) {
    RunXrdWindow(wan, store, window);
  }
  for (uint64_t readahead : {0ull, 1ull << 20, 4ull << 20}) {
    RunDavixReadahead(wan, store, readahead);
  }
  std::printf(
      "\nexpected shape: xrootd throughput rises with the window until the\n"
      "pipe is full (window ~ bandwidth-delay product), reproducing the\n"
      "mechanism behind Figure 4's WAN column. Davix's synchronous read-\n"
      "ahead cuts the request count but each refill still stalls a full\n"
      "RTT, so it trails the async window at equal buffer size.\n");
  return 0;
}
