// E7 (§3 analysis, ablation): where XRootD's WAN advantage comes from.
// The paper: "This difference of performance comes mainly from the
// sliding windows buffering algorithm of XRootD which allows to minimize
// the number of network round trips executed."
//
// Ablation A: xrootd sequential read of a 16 MiB object at WAN with
// sliding-window sizes 0 (pure synchronous) to 8 chunks in flight.
// Ablation B: the davix side — sequential DavPosix reads with the
// synchronous read-ahead buffer (cuts request count but stalls a full
// RTT per refill) versus the asynchronous sliding window
// (readahead_window_chunks, same chunk size, fetches overlapped on the
// per-Context dispatcher pool), which is the XRootD mechanism ported to
// the HTTP stack.
//
// Every run verifies byte-identical delivery: the CRC32 of the
// consumed stream must equal the CRC32 of the stored object.

#include "bench/bench_util.h"
#include "common/checksum.h"
#include "common/clock.h"
#include "common/rng.h"
#include "core/context.h"
#include "core/dav_posix.h"
#include "xrootd/readahead.h"
#include "xrootd/xrd_client.h"

namespace davix {
namespace bench {
namespace {

constexpr size_t kConsumeChunk = 256 * 1024;
constexpr uint64_t kChunkBytes = 512 * 1024;
constexpr char kPath[] = "/seq/data.bin";

size_t ObjectBytes(bool smoke) {
  return (smoke ? 4 : 16) * 1024 * 1024;
}

struct RunOutcome {
  double seconds = 0;
  uint64_t consumed = 0;
  uint64_t requests = 0;
  bool verified = false;
};

/// Drains `read` (a callable returning Result<std::string>) with the
/// paper's 2 ms/chunk consumer model, CRC-verifying the delivered
/// stream against the object.
template <typename ReadFn>
RunOutcome Consume(ReadFn read, uint32_t expect_crc, uint64_t expect_bytes) {
  RunOutcome outcome;
  Stopwatch stopwatch;
  uint32_t crc = 0;
  while (true) {
    Result<std::string> chunk = read();
    if (!chunk.ok()) {
      std::fprintf(stderr, "read failed: %s\n",
                   chunk.status().ToString().c_str());
      std::exit(1);
    }
    if (chunk->empty()) break;
    crc = Crc32(*chunk, crc);
    outcome.consumed += chunk->size();
    // Model per-chunk processing so the window has something to hide.
    SleepForMicros(2'000);
  }
  outcome.seconds = stopwatch.ElapsedSeconds();
  outcome.verified = crc == expect_crc && outcome.consumed == expect_bytes;
  if (!outcome.verified) {
    std::fprintf(stderr,
                 "VERIFICATION FAILED: delivered stream differs from the "
                 "stored object (%llu/%llu bytes)\n",
                 static_cast<unsigned long long>(outcome.consumed),
                 static_cast<unsigned long long>(expect_bytes));
    std::exit(1);
  }
  return outcome;
}

void Report(JsonReporter* json, const netsim::LinkProfile& link,
            const char* reader, uint64_t chunk_bytes, size_t window,
            const RunOutcome& outcome) {
  double mbps = outcome.consumed / outcome.seconds / 1e6;
  std::printf("%-6s %-12s chunk=%-8llu window=%zu %10.3f %12.1f %10llu\n",
              link.name.c_str(), reader,
              static_cast<unsigned long long>(chunk_bytes), window,
              outcome.seconds, mbps,
              static_cast<unsigned long long>(outcome.requests));
  json->AddRow()
      .Str("link", link.name)
      .Str("reader", reader)
      .Int("chunk_bytes", chunk_bytes)
      .Int("window_chunks", window)
      .Num("seconds", outcome.seconds)
      .Num("mbps", mbps)
      .Int("requests", outcome.requests)
      .Int("bytes", outcome.consumed)
      .Int("verified", outcome.verified ? 1 : 0);
}

RunOutcome RunXrdWindow(const netsim::LinkProfile& link,
                        std::shared_ptr<httpd::ObjectStore> store,
                        size_t window_chunks, uint32_t crc, uint64_t bytes) {
  auto server = StartXrdNode(link, store);
  auto client = std::move(xrootd::XrdClient::Connect("127.0.0.1", server->port())).value();
  if (!client->Login().ok()) std::exit(1);
  auto open = client->Open(kPath);
  if (!open.ok()) std::exit(1);

  xrootd::ReadAheadConfig config;
  config.chunk_bytes = kChunkBytes;
  config.window_chunks = window_chunks;
  xrootd::XrdReadAheadStream stream(client.get(), open->handle, open->size,
                                    config);
  uint64_t requests_before = client->requests_sent();
  RunOutcome outcome =
      Consume([&] { return stream.Read(kConsumeChunk); }, crc, bytes);
  outcome.requests = client->requests_sent() - requests_before;
  server->Stop();
  return outcome;
}

RunOutcome RunDavix(const netsim::LinkProfile& link,
                    std::shared_ptr<httpd::ObjectStore> store,
                    uint64_t readahead_bytes, size_t window_chunks,
                    uint32_t crc, uint64_t bytes) {
  HttpNode node = StartHttpNode(link, store);
  core::Context context;
  core::DavPosix posix(&context);
  core::RequestParams params;
  params.metalink_mode = core::MetalinkMode::kDisabled;
  params.readahead_bytes = readahead_bytes;
  params.readahead_window_chunks = window_chunks;
  auto fd = posix.Open(node.UrlFor(kPath), params);
  if (!fd.ok()) std::exit(1);
  context.ResetCounters();

  RunOutcome outcome =
      Consume([&] { return posix.Read(*fd, kConsumeChunk); }, crc, bytes);
  outcome.requests = context.SnapshotCounters().requests;
  (void)posix.Close(*fd);
  node.server->Stop();
  return outcome;
}

}  // namespace
}  // namespace bench
}  // namespace davix

int main(int argc, char** argv) {
  using namespace davix;
  using namespace davix::bench;
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("E7: sliding-window read-ahead ablation",
              "§3 of the libdavix paper (XRootD's WAN advantage)");
  size_t object_bytes = ObjectBytes(args.smoke);
  auto store = std::make_shared<httpd::ObjectStore>();
  Rng rng(7);
  std::string content = rng.Bytes(object_bytes);
  uint32_t crc = Crc32(content);
  store->Put(kPath, std::move(content));

  JsonReporter json("readahead_ablation");
  std::printf("%-6s %-12s %-25s %10s %12s %10s\n", "link", "reader", "shape",
              "time[s]", "MB/s", "requests");
  netsim::LinkProfile wan = netsim::LinkProfile::Wan();

  std::vector<size_t> xrd_windows =
      args.smoke ? std::vector<size_t>{0, 4} : std::vector<size_t>{0, 1, 2, 4, 8};
  for (size_t window : xrd_windows) {
    RunOutcome outcome = RunXrdWindow(wan, store, window, crc, object_bytes);
    Report(&json, wan, "xrootd", kChunkBytes, window, outcome);
  }

  // Davix synchronous read-ahead: one buffered window, refilled with a
  // blocking fetch (plus the no-read-ahead baseline on full runs).
  std::vector<uint64_t> sync_readaheads =
      args.smoke ? std::vector<uint64_t>{kChunkBytes}
                 : std::vector<uint64_t>{0, kChunkBytes, 4ull << 20};
  RunOutcome sync_at_chunk;
  for (uint64_t readahead : sync_readaheads) {
    RunOutcome outcome = RunDavix(wan, store, readahead, 0, crc, object_bytes);
    if (readahead == kChunkBytes) sync_at_chunk = outcome;
    Report(&json, wan, "davix-sync", readahead, 0, outcome);
  }

  // Davix asynchronous sliding window at the same chunk size: the
  // tentpole comparison. ≥ 2x over davix-sync at window 4 is the
  // acceptance bar.
  std::vector<size_t> async_windows =
      args.smoke ? std::vector<size_t>{4} : std::vector<size_t>{2, 4, 8};
  RunOutcome async_at_four;
  for (size_t window : async_windows) {
    RunOutcome outcome =
        RunDavix(wan, store, kChunkBytes, window, crc, object_bytes);
    if (window == 4) async_at_four = outcome;
    Report(&json, wan, "davix-async", kChunkBytes, window, outcome);
  }

  double speedup = async_at_four.seconds > 0
                       ? sync_at_chunk.seconds / async_at_four.seconds
                       : 0.0;
  std::printf(
      "\ndavix async window=4 vs sync at %llu KiB chunks: %.2fx\n",
      static_cast<unsigned long long>(kChunkBytes / 1024), speedup);
  json.AddRow()
      .Str("link", wan.name)
      .Str("reader", "summary")
      .Num("async_vs_sync_speedup", speedup);
  json.WriteTo(args.json_path);

  std::printf(
      "\nexpected shape: xrootd throughput rises with the window until the\n"
      "pipe is full (window ~ bandwidth-delay product), reproducing the\n"
      "mechanism behind Figure 4's WAN column. Davix's synchronous read-\n"
      "ahead cuts the request count but each refill still stalls a full\n"
      "RTT; the asynchronous sliding window (same chunk size) overlaps\n"
      "those round trips with consumption and reaches xrootd-window\n"
      "parity. All rows are CRC-verified against the stored object.\n");
  return 0;
}
