#ifndef DAVIX_BENCH_MICRO_BENCH_UTIL_H_
#define DAVIX_BENCH_MICRO_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace davix {
namespace bench {

/// google-benchmark reporter that renders the usual console table and
/// mirrors every per-iteration run into the repository's BENCH_*.json
/// schema (one row per benchmark: name, iterations, per-iteration real
/// and cpu time in the benchmark's time unit, plus every user counter —
/// bytes/items per second included).
class MicroJsonReporter : public benchmark::ConsoleReporter {
 public:
  explicit MicroJsonReporter(std::string bench_name)
      : json_(std::move(bench_name)) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration) continue;
      JsonReporter::Row& row =
          json_.AddRow()
              .Str("name", run.benchmark_name())
              .Int("iterations", static_cast<uint64_t>(run.iterations))
              .Num("real_time_per_iter", run.GetAdjustedRealTime())
              .Num("cpu_time_per_iter", run.GetAdjustedCPUTime());
      for (const auto& [counter_name, counter] : run.counters) {
        row.Num(counter_name, counter.value);
      }
    }
  }

  bool WriteTo(const std::string& path) const { return json_.WriteTo(path); }

 private:
  JsonReporter json_;
};

/// Shared main() of the bench_micro_* binaries: understands the
/// repo-wide `--smoke` / `--json <path>` contract (see bench_util.h) in
/// front of the standard google-benchmark flags, which pass through
/// untouched. `--smoke` caps the per-benchmark measuring time at 10 ms
/// for a CI-sized sanity run; `--json` writes the BENCH_*.json document
/// next to google-benchmark's own console output.
inline int RunMicroBench(int argc, char** argv, const std::string& name) {
  bool smoke = false;
  std::string json_path;
  std::vector<char*> forwarded;
  forwarded.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      forwarded.push_back(argv[i]);
    }
  }
  // Plain-number seconds parse on every google-benchmark release this
  // builds against (newer ones prefer a "s" suffix but keep accepting
  // this spelling).
  std::string min_time = "--benchmark_min_time=0.01";
  if (smoke) forwarded.push_back(min_time.data());

  int forwarded_argc = static_cast<int>(forwarded.size());
  benchmark::Initialize(&forwarded_argc, forwarded.data());
  if (benchmark::ReportUnrecognizedArguments(forwarded_argc,
                                             forwarded.data())) {
    return 1;
  }
  MicroJsonReporter reporter(name);
  size_t ran = benchmark::RunSpecifiedBenchmarks(&reporter);
  if (ran == 0) {
    std::fprintf(stderr, "error: no benchmarks matched\n");
    return 1;
  }
  if (!reporter.WriteTo(json_path)) return 1;
  benchmark::Shutdown();
  return 0;
}

}  // namespace bench
}  // namespace davix

#endif  // DAVIX_BENCH_MICRO_BENCH_UTIL_H_
