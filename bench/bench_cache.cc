// E9 (ROADMAP "caching" direction): the per-Context block cache.
// Repeated-access analysis workloads re-read the same baskets many
// times; the OSDF/on-demand-cache papers in PAPERS.md show a cache
// layer dominating effective throughput for such patterns. This bench
// measures the block cache behind the real read paths on the WAN
// profile:
//
//   scan  sequential DavPosix::Read through the async read-ahead
//         window (512 KiB chunks, window 4) — cold fill vs warm
//         re-scan (served by the window's cache probe).
//   vec   TTreeCache-style scattered PReadVec (64 fragments) — cold
//         vs warm (cache-satisfied ranges carved out pre-coalesce).
//
// Every run CRC-verifies delivery against the stored object, and a
// cache-disabled control run must be byte-identical (same CRC) to the
// cache-enabled cold run — caching may never change delivered bytes.
//
// Acceptance: warm scan >= 5x cold scan on WAN; disabled CRC == cold
// CRC. Committed results: BENCH_cache.json.

#include "bench/bench_util.h"
#include "common/checksum.h"
#include "common/clock.h"
#include "common/rng.h"
#include "core/context.h"
#include "core/dav_posix.h"

namespace davix {
namespace bench {
namespace {

constexpr char kPath[] = "/hot/dataset.bin";
constexpr uint64_t kChunkBytes = 512 * 1024;
constexpr size_t kWindowChunks = 4;
constexpr size_t kConsumeChunk = 256 * 1024;
constexpr size_t kVecFragments = 64;

size_t ObjectBytes(bool smoke) {
  return (smoke ? 4 : 16) * 1024 * 1024;
}

core::BlockCacheConfig CacheConfig(bool enabled) {
  core::BlockCacheConfig config;
  config.capacity_bytes = enabled ? 64ull * 1024 * 1024 : 0;
  config.block_bytes = 256 * 1024;
  return config;
}

/// The vectored scenario reads basket-sized fragments, so its Context
/// uses basket-sized cache lines: only blocks fully covered by fetched
/// spans become cache lines, and a 256 KiB line would never be covered
/// by a 32 KiB fragment.
core::BlockCacheConfig VecCacheConfig() {
  core::BlockCacheConfig config = CacheConfig(true);
  config.block_bytes = 16 * 1024;
  return config;
}

struct RunOutcome {
  double seconds = 0;
  uint64_t bytes = 0;
  uint32_t crc = 0;
  IoCounters io;
};

/// Full sequential scan of the object through the async window.
RunOutcome RunScan(core::Context* context, const std::string& url,
                   uint64_t object_bytes) {
  core::DavPosix posix(context);
  core::RequestParams params;
  params.metalink_mode = core::MetalinkMode::kDisabled;
  params.readahead_bytes = kChunkBytes;
  params.readahead_window_chunks = kWindowChunks;
  auto fd = posix.Open(url, params);
  if (!fd.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 fd.status().ToString().c_str());
    std::exit(1);
  }
  context->ResetCounters();
  RunOutcome outcome;
  Stopwatch stopwatch;
  while (true) {
    auto chunk = posix.Read(*fd, kConsumeChunk);
    if (!chunk.ok()) {
      std::fprintf(stderr, "read failed: %s\n",
                   chunk.status().ToString().c_str());
      std::exit(1);
    }
    if (chunk->empty()) break;
    outcome.crc = Crc32(*chunk, outcome.crc);
    outcome.bytes += chunk->size();
  }
  outcome.seconds = stopwatch.ElapsedSeconds();
  outcome.io = context->SnapshotCounters();
  if (outcome.bytes != object_bytes) {
    std::fprintf(stderr, "short scan: %llu/%llu bytes\n",
                 static_cast<unsigned long long>(outcome.bytes),
                 static_cast<unsigned long long>(object_bytes));
    std::exit(1);
  }
  (void)posix.Close(*fd);
  return outcome;
}

/// Scattered vectored read: kVecFragments spread over the object.
RunOutcome RunVec(core::Context* context, const std::string& url,
                  uint64_t object_bytes, const std::string& content) {
  core::DavPosix posix(context);
  core::RequestParams params;
  params.metalink_mode = core::MetalinkMode::kDisabled;
  auto fd = posix.Open(url, params);
  if (!fd.ok()) std::exit(1);

  uint64_t fragment = object_bytes / (kVecFragments * 2);
  std::vector<http::ByteRange> ranges;
  ranges.reserve(kVecFragments);
  for (size_t i = 0; i < kVecFragments; ++i) {
    ranges.push_back({i * 2 * fragment, fragment});
  }
  context->ResetCounters();
  RunOutcome outcome;
  Stopwatch stopwatch;
  auto results = posix.PReadVec(*fd, ranges);
  if (!results.ok()) {
    std::fprintf(stderr, "vectored read failed: %s\n",
                 results.status().ToString().c_str());
    std::exit(1);
  }
  outcome.seconds = stopwatch.ElapsedSeconds();
  outcome.io = context->SnapshotCounters();
  for (size_t i = 0; i < results->size(); ++i) {
    const std::string& got = (*results)[i];
    if (got != content.substr(ranges[i].offset, ranges[i].length)) {
      std::fprintf(stderr, "VERIFICATION FAILED: fragment %zu differs\n", i);
      std::exit(1);
    }
    outcome.crc = Crc32(got, outcome.crc);
    outcome.bytes += got.size();
  }
  (void)posix.Close(*fd);
  return outcome;
}

void Report(JsonReporter* json, const netsim::LinkProfile& link,
            const char* scenario, const char* phase, bool cache_enabled,
            const RunOutcome& outcome, bool verified) {
  double mbps = outcome.seconds > 0
                    ? outcome.bytes / outcome.seconds / 1e6
                    : 0.0;
  std::printf("%-6s %-6s %-14s %10.3f %12.1f %9llu %9llu %14llu\n",
              link.name.c_str(), scenario, phase, outcome.seconds, mbps,
              static_cast<unsigned long long>(outcome.io.requests),
              static_cast<unsigned long long>(outcome.io.cache_hits),
              static_cast<unsigned long long>(outcome.io.cache_bytes_saved));
  json->AddRow()
      .Str("link", link.name)
      .Str("scenario", scenario)
      .Str("phase", phase)
      .Int("cache_enabled", cache_enabled ? 1 : 0)
      .Num("seconds", outcome.seconds)
      .Num("mbps", mbps)
      .Int("bytes", outcome.bytes)
      .Int("requests", outcome.io.requests)
      .Int("cache_hits", outcome.io.cache_hits)
      .Int("cache_misses", outcome.io.cache_misses)
      .Int("cache_evictions", outcome.io.cache_evictions)
      .Int("cache_bytes_saved", outcome.io.cache_bytes_saved)
      .Int("crc32", outcome.crc)
      .Int("verified", verified ? 1 : 0);
}

}  // namespace
}  // namespace bench
}  // namespace davix

int main(int argc, char** argv) {
  using namespace davix;
  using namespace davix::bench;
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("E9: per-Context block cache (warm vs cold vs disabled)",
              "ROADMAP caching direction; cache papers in PAPERS.md");
  size_t object_bytes = ObjectBytes(args.smoke);
  auto store = std::make_shared<httpd::ObjectStore>();
  Rng rng(9);
  std::string content = rng.Bytes(object_bytes);
  uint32_t content_crc = Crc32(content);
  store->Put(kPath, content);

  netsim::LinkProfile wan = netsim::LinkProfile::Wan();
  HttpNode node = StartHttpNode(wan, store);
  std::string url = node.UrlFor(kPath);

  JsonReporter json("cache");
  std::printf("%-6s %-6s %-14s %10s %12s %9s %9s %14s\n", "link", "bench",
              "phase", "time[s]", "MB/s", "requests", "hits", "bytes-saved");

  // --- scan: cold fill, then warm re-scan on the same Context --------
  core::Context cached_context({}, 0, CacheConfig(true));
  RunOutcome scan_cold = RunScan(&cached_context, url, object_bytes);
  Report(&json, wan, "scan", "cold", true, scan_cold,
         scan_cold.crc == content_crc);
  RunOutcome scan_warm = RunScan(&cached_context, url, object_bytes);
  Report(&json, wan, "scan", "warm", true, scan_warm,
         scan_warm.crc == content_crc);

  // --- scan: cache-disabled control (must be byte-identical) ---------
  core::Context plain_context({}, 0, CacheConfig(false));
  RunOutcome scan_off = RunScan(&plain_context, url, object_bytes);
  Report(&json, wan, "scan", "disabled", false, scan_off,
         scan_off.crc == content_crc);

  // --- vectored: cold vs warm on a fresh cached Context --------------
  core::Context vec_context({}, 0, VecCacheConfig());
  RunOutcome vec_cold = RunVec(&vec_context, url, object_bytes, content);
  Report(&json, wan, "vec", "cold", true, vec_cold,
         vec_cold.crc != 0);
  RunOutcome vec_warm = RunVec(&vec_context, url, object_bytes, content);
  Report(&json, wan, "vec", "warm", true, vec_warm,
         vec_warm.crc == vec_cold.crc);

  bool crc_ok = scan_cold.crc == content_crc &&
                scan_warm.crc == content_crc &&
                scan_off.crc == content_crc &&
                vec_warm.crc == vec_cold.crc;
  double scan_speedup = scan_warm.seconds > 0
                            ? scan_cold.seconds / scan_warm.seconds
                            : 0.0;
  double vec_speedup =
      vec_warm.seconds > 0 ? vec_cold.seconds / vec_warm.seconds : 0.0;
  std::printf(
      "\nwarm-over-cold speedup: scan %.1fx, vectored %.1fx; "
      "warm scan requests: %llu\n"
      "CRC check (enabled cold == disabled == stored object): %s\n",
      scan_speedup, vec_speedup,
      static_cast<unsigned long long>(scan_warm.io.requests),
      crc_ok ? "OK" : "MISMATCH");
  json.AddRow()
      .Str("link", wan.name)
      .Str("scenario", "summary")
      .Num("scan_warm_over_cold", scan_speedup)
      .Num("vec_warm_over_cold", vec_speedup)
      .Int("warm_scan_requests", scan_warm.io.requests)
      .Int("crc_identical", crc_ok ? 1 : 0);
  json.WriteTo(args.json_path);

  if (!crc_ok) {
    std::fprintf(stderr,
                 "VERIFICATION FAILED: cache changed delivered bytes\n");
    return 1;
  }
  std::printf(
      "\nexpected shape: the cold scan pays one WAN round trip per chunk\n"
      "(hidden partly by the async window); the warm scan touches the\n"
      "wire not at all — every chunk is served by the cache probe — so\n"
      "it runs at memory speed, far beyond the 5x acceptance bar. The\n"
      "disabled control matches the cold CRC bit for bit: the cache\n"
      "never changes delivered bytes, only where they come from.\n");
  return 0;
}
