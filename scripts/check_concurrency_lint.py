#!/usr/bin/env python3
"""Greppable concurrency invariants of the tree (see docs/CONCURRENCY.md).

Seven rules, enforced with nothing but the standard library:

  1. no raw `std::thread` under src/ outside the allowlisted files that
     implement the threading substrate itself (ThreadPool) or a
     documented thread-per-connection / reader-loop design;
  2. no `.detach()` anywhere — every thread is joined by an owner;
  3. no `std::mutex` / `std::lock_guard` / `std::unique_lock` /
     `std::condition_variable` under src/ outside common/mutex.h: all
     locking goes through the Clang-capability-annotated wrappers so the
     `-Werror=thread-safety` analysis sees it;
  4. heuristic: inside a closure handed to a dispatcher
     (`Submit(...)` / `ParallelFor(...)` / `ParallelForCancellable(...)`),
     a `++`/`--`/`+=`/`-=` mutation must target a counter that is
     `std::atomic` in the same file, be declared locally in the closure,
     or happen after the closure acquired a MutexLock;
  5. no bare `SleepForMicros` under src/core/ outside core/resilience.cc:
     client-side retry pauses must go through core::Backoff /
     SleepBudgeted so they are jittered and capped by the request's
     deadline (docs/RESILIENCE.md) — a flat sleep in a retry loop is a
     synchronized retry storm waiting to happen;
  6. the httpd server is a single-reactor design (docs/SERVER.md):
     connection state is touched only from the reactor thread or from
     worker-pool tasks that communicate through completions, so inside
     src/httpd/ only server.{h,cc} may even mention std::thread, and
     server.cc may construct exactly one (the reactor). A second thread
     in that directory means somebody is sharing ServerConnection
     across threads again;
  7. mux frame writes are serialized: in src/muxhttp/ and
     src/core/mux_transport.{h,cc} a raw `socket->WriteAll(...)` may
     appear only inside a helper named `*Locked` whose declaration (in
     the same file or its .h/.cc sibling) carries a REQUIRES(...)
     capability annotation.  Frames from concurrent streams interleave
     on one connection, so an unguarded write tears frames mid-header.

Exit status 0 = clean, 1 = violations (listed on stderr).
"""

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SKIP_DIRS = {"build", "build-debug", ".git"}

# Rule 1 allowlist: the substrate and the documented raw-thread designs.
ALLOWED_STD_THREAD = {
    "src/common/thread_pool.h",    # the pool owns its workers
    "src/common/thread_pool.cc",
    "src/httpd/server.h",          # the single reactor thread (rule 6)
    "src/httpd/server.cc",
    "src/muxhttp/mux.h",           # accept + per-connection threads
    "src/muxhttp/mux.cc",
    "src/core/mux_transport.h",    # mux client demux reader loop
    "src/core/mux_transport.cc",
    "src/xrootd/xrd_server.h",     # thread-per-connection
    "src/xrootd/xrd_server.cc",
    "src/xrootd/xrd_client.h",     # client reader loop
    "src/xrootd/xrd_client.cc",
}

RAW_LOCKING_RE = re.compile(
    r"std::(mutex|recursive_mutex|shared_mutex|timed_mutex|lock_guard|"
    r"unique_lock|shared_lock|scoped_lock|condition_variable(_any)?)\b")
# hardware_concurrency() is a static query, not a thread.
STD_THREAD_RE = re.compile(
    r"std::(thread|jthread)\b(?!::hardware_concurrency)")
DETACH_RE = re.compile(r"\.detach\s*\(")
BARE_SLEEP_RE = re.compile(r"\bSleepForMicros\s*\(")
# Rule 5: the one file allowed to sleep in src/core — the sanctioned
# jittered/budgeted pause primitives themselves.
ALLOWED_CORE_SLEEP = {"src/core/resilience.cc"}
DISPATCH_RE = re.compile(r"\b(Submit|ParallelFor|ParallelForCancellable)\s*\(")
# Rule 7: files whose socket writes carry interleaved mux frames.
MUX_WRITE_FILES_RE = re.compile(
    r"^src/(muxhttp/|core/mux_transport\.(h|cc)$)")
WRITE_ALL_RE = re.compile(r"\bWriteAll\s*\(")
MUTATION_RE = re.compile(
    r"(?:\+\+|--)\s*([A-Za-z_]\w*)\b|\b([A-Za-z_]\w*)\s*(?:\+\+|--|\+=|-=)")


def source_files(subdirs):
    for sub in subdirs:
        base = REPO_ROOT / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            if SKIP_DIRS.intersection(p.name for p in path.parents):
                continue
            yield path


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving offsets
    and newlines so line numbers keep working."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif (c == "'" and i > 0 and text[i - 1] in "0123456789abcdefABCDEF"
              and i + 1 < n and text[i + 1] in "0123456789abcdefABCDEF"):
            # C++14 digit separator (20'000, 0xFFFF'FFFF), not a char
            # literal — treating it as one would blank out real code up
            # to the next apostrophe.
            out.append(c)
            i += 1
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def matching_brace(text, open_pos):
    """Offset just past the brace matching text[open_pos] == '{'."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def lambda_body_at(text, bracket_pos):
    """Given the '[' opening a lambda capture, returns (start, end)
    offsets of its `{...}` body, or None."""
    close = text.find("]", bracket_pos)
    if close < 0:
        return None
    i = close + 1
    depth = 0
    while i < len(text):
        c = text[i]
        if c == "(" or c == "<":
            depth += 1
        elif c == ")" or c == ">":
            depth -= 1
        elif c == "{" and depth <= 0:
            return (i, matching_brace(text, i))
        elif c in ";," and depth <= 0:
            return None
        i += 1
    return None


def dispatcher_closures(text):
    """Yields (start, end) body spans of closures handed to a
    dispatcher: inline lambdas, and named lambdas passed by name or via
    std::move."""
    for match in DISPATCH_RE.finditer(text):
        paren = text.find("(", match.end() - 1)
        if paren < 0:
            continue
        # Inline lambda argument(s).
        args_end = paren
        depth = 0
        for i in range(paren, len(text)):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    args_end = i
                    break
            elif text[i] == "[" and depth == 1:
                body = lambda_body_at(text, i)
                if body:
                    yield body
        args = text[paren + 1:args_end]
        named = re.search(r"std::move\s*\(\s*(\w+)\s*\)|^\s*(\w+)\s*$", args)
        if named:
            name = named.group(1) or named.group(2)
            decl = re.search(r"auto\s+" + re.escape(name) + r"\s*=\s*\[",
                             text[:match.start()])
            if decl:
                body = lambda_body_at(text, decl.end() - 1)
                if body:
                    yield body


def skip_paren_group(text, open_pos):
    """Offset of the ')' matching text[open_pos] == '(' (or len(text)).
    Returns -1 if depth goes negative first (we started inside a larger
    expression, e.g. a call in an if-condition)."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
            if depth < 0:
                return -1
    return len(text)


def locked_fn_spans(text):
    """Yields (name, body_start, body_end) for every function DEFINITION
    whose name ends in 'Locked' (declarations and call sites skipped)."""
    for m in re.finditer(r"\b(\w+Locked)\s*\(", text):
        close = skip_paren_group(text, text.find("(", m.end() - 1))
        if close < 0 or close >= len(text):
            continue
        j = close + 1
        depth = 0
        while j < len(text) and (depth > 0 or text[j] not in ";{"):
            if text[j] == "(":
                depth += 1
            elif text[j] == ")":
                depth -= 1
                if depth < 0:
                    break
            j += 1
        if j >= len(text) or text[j] != "{" or depth != 0:
            continue
        yield (m.group(1), j, matching_brace(text, j))


def declares_requires(text, name):
    """True if some declaration/definition of `name` in `text` carries a
    REQUIRES(...) annotation between its parameter list and body/';'."""
    for m in re.finditer(r"\b" + re.escape(name) + r"\s*\(", text):
        close = skip_paren_group(text, text.find("(", m.end() - 1))
        if close < 0 or close >= len(text):
            continue
        j = close + 1
        seg = []
        depth = 0
        while j < len(text) and (depth > 0 or text[j] not in ";{"):
            if text[j] == "(":
                depth += 1
            elif text[j] == ")":
                depth -= 1
                if depth < 0:
                    break
            seg.append(text[j])
            j += 1
        if "REQUIRES" in "".join(seg):
            return True
    return False


def check_mux_writes(rel, text):
    """Rule 7: WriteAll in mux frame code only inside annotated *Locked
    helpers. Returns (problems, used_names) — REQUIRES presence is
    checked by the caller against the .h/.cc sibling pair."""
    problems = []
    used_names = set()
    spans = list(locked_fn_spans(text))
    for m in WRITE_ALL_RE.finditer(text):
        inside = [name for name, start, end in spans
                  if start <= m.start() < end]
        if inside:
            used_names.add(inside[0])
        else:
            problems.append(
                (rel, line_of(text, m.start()),
                 "raw WriteAll outside a *Locked helper — mux frames from "
                 "concurrent streams share one socket; route every write "
                 "through a REQUIRES-annotated *Locked function"))
    return problems, used_names


def check_mutations(path, text):
    problems = []
    atomics = set(re.findall(r"atomic(?:<[^;{]*?>)?>?\s+(\w+)", text))
    atomics |= set(re.findall(r"atomic<[^;{]*?>\s*>\s*(\w+)", text))
    for start, end in dispatcher_closures(text):
        body = text[start:end]
        lock_pos = body.find("MutexLock")
        for m in MUTATION_RE.finditer(body):
            name = m.group(1) or m.group(2)
            if name in atomics:
                continue
            if 0 <= lock_pos < m.start():
                continue  # mutation after the closure took a lock
            # Locally declared in the closure (loop indices, scratch)?
            decl = re.search(
                r"(?:auto|size_t|int|unsigned|u?int\d+_t|long|double|float)"
                r"[\w\s:<>,*&]*\b" + re.escape(name) + r"\b\s*[={;)]",
                body[:m.start()])
            if decl:
                continue
            problems.append(
                (line_of(text, start + m.start()),
                 f"non-atomic counter '{name}' mutated inside a "
                 "dispatcher closure (make it std::atomic, or guard it "
                 "with a MutexLock taken in the closure)"))
    return problems


def main() -> int:
    problems = []
    for path in source_files(["src"]):
        rel = str(path.relative_to(REPO_ROOT))
        text = strip_comments_and_strings(
            path.read_text(encoding="utf-8"))
        if rel != "src/common/mutex.h":
            for m in RAW_LOCKING_RE.finditer(text):
                problems.append(
                    (rel, line_of(text, m.start()),
                     f"raw std::{m.group(1)} — use the annotated wrappers "
                     "in common/mutex.h"))
        if rel not in ALLOWED_STD_THREAD:
            for m in STD_THREAD_RE.finditer(text):
                problems.append(
                    (rel, line_of(text, m.start()),
                     "raw std::thread outside the allowlist — schedule "
                     "work on a ThreadPool instead"))
        for lineno, message in check_mutations(path, text):
            problems.append((rel, lineno, message))
        if rel.startswith("src/httpd/"):
            if rel in ("src/httpd/server.h", "src/httpd/server.cc"):
                constructions = re.findall(r"std::thread\s*\(", text)
                if rel.endswith(".cc") and len(constructions) > 1:
                    problems.append(
                        (rel, 1,
                         f"{len(constructions)} std::thread constructions — "
                         "the reactor design allows exactly one; route "
                         "other work through the worker ThreadPool"))
            else:
                for m in STD_THREAD_RE.finditer(text):
                    problems.append(
                        (rel, line_of(text, m.start()),
                         "std::thread in src/httpd outside server.{h,cc} — "
                         "connection state is reactor-owned; use the "
                         "worker pool + completions instead"))
        if MUX_WRITE_FILES_RE.match(rel):
            mux_problems, used_names = check_mux_writes(rel, text)
            problems.extend(mux_problems)
            if used_names:
                sibling = (path.with_suffix(".h") if path.suffix == ".cc"
                           else path.with_suffix(".cc"))
                combined = text
                if sibling.is_file():
                    combined += "\n" + strip_comments_and_strings(
                        sibling.read_text(encoding="utf-8"))
                for name in sorted(used_names):
                    if not declares_requires(combined, name):
                        problems.append(
                            (rel, 1,
                             f"mux write helper '{name}' has no "
                             "REQUIRES(...) annotation on any declaration "
                             "— the write mutex must be a declared "
                             "capability so Clang checks the callers"))
        if rel.startswith("src/core/") and rel not in ALLOWED_CORE_SLEEP:
            for m in BARE_SLEEP_RE.finditer(text):
                problems.append(
                    (rel, line_of(text, m.start()),
                     "bare SleepForMicros in src/core — retry pauses must "
                     "go through core::Backoff::SleepWithJitter or "
                     "core::SleepBudgeted (deadline-capped, jittered)"))
    for path in source_files(["src", "tests", "bench", "examples"]):
        rel = str(path.relative_to(REPO_ROOT))
        text = strip_comments_and_strings(
            path.read_text(encoding="utf-8"))
        for m in DETACH_RE.finditer(text):
            problems.append(
                (rel, line_of(text, m.start()),
                 ".detach() is banned — every thread must be joined"))
    for rel, lineno, message in problems:
        print(f"{rel}:{lineno}: {message}", file=sys.stderr)
    if problems:
        return 1
    print("concurrency lint OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
