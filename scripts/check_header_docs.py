#!/usr/bin/env python3
"""Doxygen-free lint of the header API comments.

The tree documents its public API with `///` comment blocks (Doxygen
triple-slash style) directly above each declaration. Since the CI image
carries no doxygen, this script enforces the two properties a real
doxygen pass would need, using nothing but the standard library:

  1. every namespace-scope class/struct/enum *definition* in a header
     under src/ is immediately preceded by a comment (template<> lines
     and attribute macros between comment and declaration are fine);
  2. `///` blocks are well-formed: no stray `//!` / `/*!` markers mixing
     a second doc syntax into the tree;
  3. every namespace-scope class/struct whose definition holds a Mutex
     member (directly or in a nested type) documents its concurrency
     contract: the doc block above it must contain a "Thread-safe:"
     line (see docs/CONCURRENCY.md).

Rules 2 and 3 also apply to .cc files under src/: implementation-local
types (dispatch state blocks, worker records) hold mutexes too, and
their sharing contract is exactly what the next reader needs. Rule 1
stays header-only — internal helpers do not need API docs.

Forward declarations (`struct Foo;`) are exempt. Exit status 0 = clean,
1 = violations (listed on stderr).
"""

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SKIP_DIRS = {"build", "build-debug", ".git"}

DECL_RE = re.compile(r"^(?:class|struct|enum(?:\s+class)?)\s+(\w+)")
PASSTHROUGH_RE = re.compile(r"^\s*(template\s*<|\[\[)")
ALT_DOC_RE = re.compile(r"(^|\s)(//!|/\*!)")
# A Mutex member (not a Mutex& reference) of the annotated wrapper type.
MUTEX_MEMBER_RE = re.compile(r"^\s*(?:mutable\s+)?Mutex\s+\w+")


def source_files():
    for pattern in ("*.h", "*.cc"):
        for path in sorted((REPO_ROOT / "src").rglob(pattern)):
            if not SKIP_DIRS.intersection(p.name for p in path.parents):
                yield path


def check_file(path: pathlib.Path):
    problems = []
    is_header = path.suffix == ".h"
    lines = path.read_text(encoding="utf-8").splitlines()
    for i, line in enumerate(lines):
        if ALT_DOC_RE.search(line):
            problems.append((i + 1, "mixed doc-comment syntax (use ///)"))
        match = DECL_RE.match(line)
        if not match:
            continue
        if line.rstrip().endswith(";") and "{" not in line:
            continue  # forward declaration
        j = i - 1
        while j >= 0 and (not lines[j].strip()
                          or PASSTHROUGH_RE.match(lines[j])):
            j -= 1
        has_doc = j >= 0 and lines[j].lstrip().startswith("//")
        if not has_doc and is_header:
            problems.append(
                (i + 1, f"undocumented type '{match.group(1)}' "
                        "(add a /// comment block above it)"))
            continue
        if not line.startswith(("class", "struct")):
            continue
        if not holds_mutex(lines, i):
            continue
        doc = []
        while j >= 0 and lines[j].lstrip().startswith("//"):
            doc.append(lines[j])
            j -= 1
        if not any("Thread-safe:" in d for d in doc):
            problems.append(
                (i + 1, f"'{match.group(1)}' holds a Mutex but its doc "
                        "block has no \"Thread-safe:\" line"))
    return problems


def holds_mutex(lines, decl_index):
    """True when the class body starting at lines[decl_index] contains a
    Mutex member, including inside nested structs."""
    depth = 0
    seen_open = False
    for line in lines[decl_index:]:
        if seen_open and depth > 0 and MUTEX_MEMBER_RE.match(line):
            return True
        depth += line.count("{") - line.count("}")
        if "{" in line:
            seen_open = True
        if seen_open and depth <= 0:
            return False
    return False


def main() -> int:
    any_bad = False
    checked = 0
    for path in source_files():
        checked += 1
        for lineno, message in check_file(path):
            any_bad = True
            rel = path.relative_to(REPO_ROOT)
            print(f"{rel}:{lineno}: {message}", file=sys.stderr)
    if any_bad:
        return 1
    print(f"header docs OK ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
