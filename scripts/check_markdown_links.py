#!/usr/bin/env python3
"""Fails on broken intra-repo markdown links.

Scans every tracked *.md file for [text](target) links and checks that
relative targets resolve to an existing file or directory (anchors are
stripped; http/https/mailto targets are skipped). Run from anywhere;
paths are resolved against the repository root (the parent of this
script's directory).

Exit status: 0 when every link resolves, 1 otherwise (broken links are
listed on stderr). CI runs this in the docs job; it needs nothing but
the Python standard library.
"""

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SKIP_DIRS = {"build", "build-debug", ".git"}

# [text](target) — target captured up to the first unescaped ')'.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL_RE = re.compile(r"^(https?|mailto|ftp):")


def markdown_files():
    for path in sorted(REPO_ROOT.rglob("*.md")):
        if not SKIP_DIRS.intersection(p.name for p in path.parents):
            yield path


def check_file(path: pathlib.Path):
    broken = []
    text = path.read_text(encoding="utf-8")
    # Strip fenced code blocks (their [x](y) snippets are examples, not
    # links), preserving newlines so reported line numbers stay true.
    text = re.sub(r"```.*?```",
                  lambda m: "\n" * m.group(0).count("\n"),
                  text, flags=re.DOTALL)
    for lineno_offset, match in (
        (text[: m.start()].count("\n") + 1, m) for m in LINK_RE.finditer(text)
    ):
        target = match.group(1)
        if EXTERNAL_RE.match(target) or target.startswith("#"):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append((lineno_offset, target))
    return broken


def main() -> int:
    any_broken = False
    checked = 0
    for path in markdown_files():
        checked += 1
        for lineno, target in check_file(path):
            any_broken = True
            rel = path.relative_to(REPO_ROOT)
            print(f"{rel}:{lineno}: broken link -> {target}", file=sys.stderr)
    if any_broken:
        return 1
    print(f"markdown links OK ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
