// §2.4 in action: a three-replica deployment behind a DynaFed-like
// federation. We read a dataset while replicas die one by one — reads
// keep succeeding as long as one replica lives — and then fetch the
// whole dataset with the multi-stream strategy, verified against the
// Metalink's md5.

#include <cstdio>

#include "common/checksum.h"
#include "common/rng.h"
#include "core/context.h"
#include "core/dav_file.h"
#include "core/metalink_engine.h"
#include "fed/federation_handler.h"
#include "fed/replica_catalog.h"
#include "httpd/dav_handler.h"
#include "httpd/server.h"

using namespace davix;

namespace {

struct Replica {
  std::shared_ptr<httpd::ObjectStore> store;
  std::shared_ptr<httpd::DavHandler> handler;
  std::shared_ptr<httpd::Router> router;
  std::unique_ptr<httpd::HttpServer> server;
};

Replica StartReplica(const std::string& path, const std::string& body) {
  Replica replica;
  replica.store = std::make_shared<httpd::ObjectStore>();
  replica.store->Put(path, body);
  replica.handler = std::make_shared<httpd::DavHandler>(replica.store);
  replica.router = std::make_shared<httpd::Router>();
  replica.handler->Register(replica.router.get(), "/");
  auto server = httpd::HttpServer::Start({}, replica.router);
  if (!server.ok()) std::exit(1);
  replica.server = std::move(*server);
  return replica;
}

}  // namespace

int main() {
  constexpr char kPath[] = "/datasets/run2026.bin";
  Rng rng(2026);
  std::string body = rng.Bytes(1 << 20);

  // --- three storage replicas ------------------------------------------
  std::vector<Replica> replicas;
  for (int i = 0; i < 3; ++i) replicas.push_back(StartReplica(kPath, body));

  // --- the federation (replica catalogue + Metalink endpoint) ----------
  auto catalog = std::make_shared<fed::ReplicaCatalog>();
  for (size_t i = 0; i < replicas.size(); ++i) {
    catalog->AddReplica(kPath, replicas[i].server->BaseUrl() + kPath,
                        static_cast<int>(i) + 1);
  }
  catalog->SetFileMeta(kPath, body.size(), Md5::HexDigest(body));
  auto federation = std::make_shared<fed::FederationHandler>(catalog);
  auto fed_router = std::make_shared<httpd::Router>();
  federation->Register(fed_router.get(), "/");
  auto fed_server = httpd::HttpServer::Start({}, fed_router);
  if (!fed_server.ok()) std::exit(1);
  std::printf("federation at %s serving metalinks for %zu replicas\n",
              (*fed_server)->BaseUrl().c_str(), replicas.size());

  // --- davix client with fail-over enabled -----------------------------
  core::Context context;
  core::RequestParams params;
  params.metalink_mode = core::MetalinkMode::kFailover;
  params.metalink_resolver = (*fed_server)->BaseUrl();
  params.max_retries = 0;

  core::DavFile file =
      *core::DavFile::Make(&context, replicas[0].server->BaseUrl() + kPath);

  auto read_and_report = [&](const char* situation) {
    auto data = file.ReadPartial(1234, 64, params);
    uint64_t failovers = context.SnapshotCounters().replica_failovers;
    if (data.ok() && *data == body.substr(1234, 64)) {
      std::printf("%-34s read OK (total failovers so far: %llu)\n",
                  situation, static_cast<unsigned long long>(failovers));
    } else {
      std::printf("%-34s read FAILED: %s\n", situation,
                  data.status().ToString().c_str());
    }
    return data.ok();
  };

  bool ok = true;
  ok &= read_and_report("all replicas up:");
  replicas[0].server->faults().SetServerDown(true);
  ok &= read_and_report("primary down:");
  replicas[1].server->faults().SetServerDown(true);
  ok &= read_and_report("primary + second down:");
  replicas[2].server->faults().SetServerDown(true);
  if (!read_and_report("ALL down (must fail):")) {
    std::printf("%-34s correct: no replica, no data\n", "");
  } else {
    ok = false;
  }

  // --- recovery + multi-stream download ---------------------------------
  for (Replica& replica : replicas) {
    replica.server->faults().SetServerDown(false);
  }
  params.metalink_mode = core::MetalinkMode::kMultiStream;
  params.multistream_max_streams = 3;
  params.multistream_chunk_bytes = 256 * 1024;
  core::HttpClient client(&context);
  core::MetalinkEngine engine(&client);
  auto full = engine.MultiStreamGet(
      *Uri::Parse(replicas[0].server->BaseUrl() + kPath), params);
  if (full.ok() && *full == body) {
    std::printf("multi-stream download of %zu bytes from 3 replicas: OK "
                "(md5 verified)\n", full->size());
  } else {
    std::printf("multi-stream download FAILED: %s\n",
                full.ok() ? "content mismatch"
                          : full.status().ToString().c_str());
    ok = false;
  }
  for (size_t i = 0; i < replicas.size(); ++i) {
    std::printf("  replica %zu served %llu GETs\n", i,
                static_cast<unsigned long long>(
                    replicas[i].handler->stats().get_requests.load()));
  }

  for (Replica& replica : replicas) replica.server->Stop();
  (*fed_server)->Stop();
  std::printf(ok ? "done.\n" : "FAILURES above.\n");
  return ok ? 0 : 1;
}
