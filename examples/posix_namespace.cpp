// The DavPosix facade: POSIX-flavoured remote file management over
// WebDAV — mkdir, put, list, stat, sequential reads with a read-ahead
// buffer, rename, unlink. This is the API surface an I/O framework
// plugin (like ROOT's TDavixFile) builds on.

#include <cstdio>

#include "common/rng.h"
#include "core/context.h"
#include "core/dav_file.h"
#include "core/dav_posix.h"
#include "httpd/dav_handler.h"
#include "httpd/server.h"

using namespace davix;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FAILED %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
  std::printf("ok    %s\n", what);
}

}  // namespace

int main() {
  auto store = std::make_shared<httpd::ObjectStore>();
  auto handler = std::make_shared<httpd::DavHandler>(store);
  auto router = std::make_shared<httpd::Router>();
  handler->Register(router.get(), "/");
  auto server = httpd::HttpServer::Start({}, router);
  if (!server.ok()) return 1;
  std::string base = (*server)->BaseUrl();

  core::Context context;
  core::DavPosix posix(&context);
  core::RequestParams params;
  params.metalink_mode = core::MetalinkMode::kDisabled;

  // Build a small namespace.
  Check(posix.MkDir(base + "/runs", params), "MKCOL /runs");
  Rng rng(1);
  std::string run_a = rng.Bytes(200'000);
  std::string run_b = rng.CompressibleBytes(50'000);
  {
    core::DavFile file_a = *core::DavFile::Make(&context, base + "/runs/a.raw");
    Check(file_a.Put(run_a, params), "PUT /runs/a.raw");
    core::DavFile file_b = *core::DavFile::Make(&context, base + "/runs/b.log");
    Check(file_b.Put(run_b, params), "PUT /runs/b.log");
  }

  // List and stat.
  auto names = posix.ListDir(base + "/runs", params);
  Check(names.status(), "list /runs");
  for (const std::string& name : *names) {
    auto info = posix.Stat(base + "/runs/" + name, params);
    if (info.ok()) {
      std::printf("      %-8s %8llu bytes  etag=%s\n", name.c_str(),
                  static_cast<unsigned long long>(info->size),
                  info->etag.c_str());
    }
  }

  // Sequential read through the read-ahead buffer: many small Read()
  // calls, few actual HTTP requests.
  params.readahead_bytes = 64 * 1024;
  auto fd = posix.Open(base + "/runs/a.raw", params);
  Check(fd.status(), "open /runs/a.raw");
  context.ResetCounters();
  std::string assembled;
  while (true) {
    auto chunk = posix.Read(*fd, 4096);
    if (!chunk.ok()) {
      Check(chunk.status(), "read");
    }
    if (chunk->empty()) break;
    assembled += *chunk;
  }
  std::printf("ok    sequential read: %zu bytes in %llu HTTP requests "
              "(content %s)\n",
              assembled.size(),
              static_cast<unsigned long long>(
                  context.SnapshotCounters().requests),
              assembled == run_a ? "verified" : "MISMATCH");
  Check(posix.Close(*fd), "close");

  // Seek + positional vector read.
  params.readahead_bytes = 0;
  auto fd2 = posix.Open(base + "/runs/a.raw", params);
  Check(fd2.status(), "reopen");
  auto vec = posix.PReadVec(
      *fd2, {{0, 10}, {50'000, 10}, {199'990, 10}, {199'995, 100}});
  Check(vec.status(), "preadvec (4 ranges, one clamped at EOF)");
  std::printf("      clamped tail range returned %zu bytes\n",
              (*vec)[3].size());
  Check(posix.Close(*fd2), "close");

  // Rename and remove.
  Check(posix.Rename(base + "/runs/b.log", "/runs/b-archived.log", params),
        "MOVE b.log -> b-archived.log");
  Check(posix.Unlink(base + "/runs/b-archived.log", params),
        "DELETE b-archived.log");
  auto final_names = posix.ListDir(base + "/runs", params);
  Check(final_names.status(), "final listing");
  std::printf("      /runs now holds %zu entr%s\n", final_names->size(),
              final_names->size() == 1 ? "y" : "ies");

  (*server)->Stop();
  std::printf("done.\n");
  return 0;
}
