// The paper's §3 workload as a runnable example: a HEP-style analysis
// job reading a remote event tree through davix (HTTP multi-range
// vectored I/O) and through the xrootd-like baseline, verifying that
// both transports produce bit-identical physics results, and printing
// the I/O behaviour that Figure 4 is about.

#include <cstdio>

#include "core/context.h"
#include "httpd/dav_handler.h"
#include "httpd/server.h"
#include "netsim/link_profile.h"
#include "root/analysis_job.h"
#include "root/transport_adapters.h"
#include "root/tree_format.h"
#include "xrootd/xrd_client.h"
#include "xrootd/xrd_server.h"

using namespace davix;

int main() {
  // --- dataset: a synthetic 12000-event tree ---------------------------
  root::TreeSpec spec;
  spec.n_events = 6000;
  spec.events_per_basket = 250;
  spec.branches = {{"event_id", 8}, {"pt", 4},   {"eta", 4},
                   {"phi", 4},      {"cells", 512}};
  std::printf("generating tree: %llu events x %llu B/event...\n",
              static_cast<unsigned long long>(spec.n_events),
              static_cast<unsigned long long>(spec.BytesPerEvent()));
  std::string tree = root::BuildTreeFile(spec, /*seed=*/7);
  std::printf("tree file: %zu bytes stored\n", tree.size());

  auto store = std::make_shared<httpd::ObjectStore>();
  store->Put("/atlas/events.rnt", std::move(tree));

  // --- two data servers over a simulated PAN-European link -------------
  netsim::LinkProfile link = netsim::LinkProfile::PanEuropean();
  auto handler = std::make_shared<httpd::DavHandler>(store);
  auto router = std::make_shared<httpd::Router>();
  handler->Register(router.get(), "/");
  httpd::ServerConfig http_config;
  http_config.link = link;
  auto http_server = httpd::HttpServer::Start(http_config, router);
  xrootd::XrdServerConfig xrd_config;
  xrd_config.link = link;
  auto xrd_server = xrootd::XrdServer::Start(xrd_config, store);
  if (!http_server.ok() || !xrd_server.ok()) {
    std::fprintf(stderr, "cannot start servers\n");
    return 1;
  }

  root::AnalysisConfig job;
  job.branches = {"event_id", "pt", "cells"};  // the analysis' columns
  job.compute_iterations_per_event = 5000;
  job.cache.cluster_rows = 4;

  // --- run over davix / HTTP -------------------------------------------
  core::Context context;
  core::RequestParams params;
  params.metalink_mode = core::MetalinkMode::kDisabled;
  auto davix_file = root::DavixRandomAccessFile::Open(
      &context, (*http_server)->BaseUrl() + "/atlas/events.rnt", params);
  if (!davix_file.ok()) {
    std::fprintf(stderr, "davix open failed: %s\n",
                 davix_file.status().ToString().c_str());
    return 1;
  }
  auto davix_report = root::RunAnalysis(davix_file->get(), job);
  if (!davix_report.ok()) {
    std::fprintf(stderr, "davix analysis failed: %s\n",
                 davix_report.status().ToString().c_str());
    return 1;
  }
  IoCounters io = context.SnapshotCounters();
  std::printf(
      "\ndavix/HTTP : %.3f s, %llu events, physics_sum=%.0f\n"
      "             %llu vectored queries carrying %llu ranges, "
      "%llu HTTP requests total\n",
      davix_report->wall_seconds, static_cast<unsigned long long>(
                                      davix_report->events_processed),
      davix_report->physics_sum,
      static_cast<unsigned long long>(io.vector_queries),
      static_cast<unsigned long long>(io.ranges_requested),
      static_cast<unsigned long long>(io.requests));

  // --- run over the xrootd-like protocol (async prefetch on) -----------
  auto client =
      xrootd::XrdClient::Connect("127.0.0.1", (*xrd_server)->port());
  if (!client.ok() || !(*client)->Login().ok()) {
    std::fprintf(stderr, "xrootd connect failed\n");
    return 1;
  }
  auto xrd_file = root::XrdRandomAccessFile::Open(client->get(),
                                                  "/atlas/events.rnt");
  if (!xrd_file.ok()) {
    std::fprintf(stderr, "xrootd open failed\n");
    return 1;
  }
  root::AnalysisConfig xrd_job = job;
  xrd_job.cache.async_prefetch = true;  // the sliding-window overlap
  auto xrd_report = root::RunAnalysis(xrd_file->get(), xrd_job);
  if (!xrd_report.ok()) {
    std::fprintf(stderr, "xrootd analysis failed: %s\n",
                 xrd_report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "xrootd     : %.3f s, %llu events, physics_sum=%.0f\n"
      "             %llu vectored reads (%llu prefetched ahead of use)\n",
      xrd_report->wall_seconds,
      static_cast<unsigned long long>(xrd_report->events_processed),
      xrd_report->physics_sum,
      static_cast<unsigned long long>(xrd_report->io.vector_reads),
      static_cast<unsigned long long>(xrd_report->io.async_prefetches));

  bool equal = davix_report->physics_sum == xrd_report->physics_sum;
  std::printf("\nphysics results identical across transports: %s\n",
              equal ? "YES" : "NO (bug!)");

  xrd_file->reset();
  (*http_server)->Stop();
  (*xrd_server)->Stop();
  return equal ? 0 : 1;
}
