// davix_get: a command-line downloader built on the public API, in the
// spirit of the davix-get tool that ships with the real davix.
//
//   davix_get <url> [options]
//     --output FILE          write the body to FILE (default: stdout size
//                            summary only)
//     --range A-B[,C-D...]   vectored partial read instead of full GET
//     --resolver URL         metalink resolver (federation) base URL;
//                            enables fail-over
//     --streams N            multi-stream download with N parallel
//                            streams (requires --resolver or a server
//                            that answers ?metalink)
//     --no-keepalive         disable session reuse (HTTP/1.0 style)
//     --demo                 start a throwaway local server with sample
//                            content and fetch from it
//
// Exit code 0 on success.

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/rng.h"
#include "common/string_util.h"
#include "core/context.h"
#include "core/dav_file.h"
#include "core/metalink_engine.h"
#include "httpd/dav_handler.h"
#include "httpd/server.h"

using namespace davix;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "davix_get: %s\n", status.ToString().c_str());
  return 1;
}

Result<std::vector<http::ByteRange>> ParseRangesArg(const std::string& arg) {
  std::vector<http::ByteRange> ranges;
  for (const std::string& spec : SplitAndTrim(arg, ',')) {
    size_t dash = spec.find('-');
    if (dash == std::string::npos) {
      return Status::InvalidArgument("range must be A-B: " + spec);
    }
    auto first = ParseUint64(spec.substr(0, dash));
    auto last = ParseUint64(spec.substr(dash + 1));
    if (!first || !last || *last < *first) {
      return Status::InvalidArgument("bad range: " + spec);
    }
    ranges.push_back(http::ByteRange{*first, *last - *first + 1});
  }
  if (ranges.empty()) return Status::InvalidArgument("empty range list");
  return ranges;
}

}  // namespace

int main(int argc, char** argv) {
  std::string url;
  std::string output;
  std::string ranges_arg;
  std::string resolver;
  size_t streams = 0;
  bool keepalive = true;
  bool demo = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--output" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--range" && i + 1 < argc) {
      ranges_arg = argv[++i];
    } else if (arg == "--resolver" && i + 1 < argc) {
      resolver = argv[++i];
    } else if (arg == "--streams" && i + 1 < argc) {
      streams = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--no-keepalive") {
      keepalive = false;
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg[0] != '-') {
      url = arg;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    }
  }

  // --demo: self-contained mode with a throwaway server.
  std::unique_ptr<httpd::HttpServer> demo_server;
  if (demo) {
    auto store = std::make_shared<httpd::ObjectStore>();
    Rng rng(123);
    store->Put("/sample/data.bin", rng.Bytes(2 << 20));
    auto handler = std::make_shared<httpd::DavHandler>(store);
    auto router = std::make_shared<httpd::Router>();
    handler->Register(router.get(), "/");
    auto server = httpd::HttpServer::Start({}, router);
    if (!server.ok()) return Fail(server.status());
    demo_server = std::move(*server);
    url = demo_server->BaseUrl() + "/sample/data.bin";
    std::printf("demo server started; fetching %s\n", url.c_str());
  }
  if (url.empty()) {
    std::fprintf(stderr,
                 "usage: davix_get <url> [--output F] [--range A-B,..]\n"
                 "       [--resolver URL] [--streams N] [--no-keepalive]\n"
                 "       [--demo]\n");
    return 2;
  }

  core::Context context;
  core::RequestParams params;
  params.keep_alive = keepalive;
  params.metalink_resolver = resolver;
  params.metalink_mode = resolver.empty() ? core::MetalinkMode::kDisabled
                                          : core::MetalinkMode::kFailover;

  auto file = core::DavFile::Make(&context, url);
  if (!file.ok()) return Fail(file.status());

  std::string body;
  if (!ranges_arg.empty()) {
    auto ranges = ParseRangesArg(ranges_arg);
    if (!ranges.ok()) return Fail(ranges.status());
    auto fragments = file->ReadPartialVec(*ranges, params);
    if (!fragments.ok()) return Fail(fragments.status());
    for (const std::string& fragment : *fragments) body += fragment;
  } else if (streams > 1) {
    params.metalink_mode = core::MetalinkMode::kMultiStream;
    params.multistream_max_streams = streams;
    core::HttpClient client(&context);
    core::MetalinkEngine engine(&client);
    auto data = engine.MultiStreamGet(file->url(), params);
    if (!data.ok()) return Fail(data.status());
    body = std::move(*data);
  } else {
    auto data = file->Get(params);
    if (!data.ok()) return Fail(data.status());
    body = std::move(*data);
  }

  if (!output.empty()) {
    std::ofstream out(output, std::ios::binary);
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    if (!out.good()) {
      return Fail(Status::IoError("cannot write " + output));
    }
  }
  IoCounters io = context.SnapshotCounters();
  std::string wrote_note = output.empty() ? "" : ", wrote " + output;
  std::fprintf(stderr,
               "fetched %s (%zu bytes) in %llu request(s), "
               "%llu connection(s)%s\n",
               url.c_str(), body.size(),
               static_cast<unsigned long long>(io.requests),
               static_cast<unsigned long long>(io.connections_opened),
               wrote_note.c_str());
  return 0;
}
