// Quickstart: the davix object API end to end against an embedded
// storage server — PUT, stat, whole-object GET, a ranged read, a §2.3
// vectored read, directory listing, DELETE.
//
// Everything runs in this process; no external services needed.

#include <cstdio>

#include "core/context.h"
#include "core/dav_file.h"
#include "core/dav_posix.h"
#include "httpd/dav_handler.h"
#include "httpd/server.h"

using namespace davix;

namespace {

/// Aborts with a message when an operation fails — examples keep error
/// handling loud and simple.
void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FAILED %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
  std::printf("ok    %s\n", what);
}

}  // namespace

int main() {
  // --- 1. an embedded WebDAV storage node ------------------------------
  auto store = std::make_shared<httpd::ObjectStore>();
  auto handler = std::make_shared<httpd::DavHandler>(store);
  auto router = std::make_shared<httpd::Router>();
  handler->Register(router.get(), "/");
  auto server = httpd::HttpServer::Start({}, router);
  if (!server.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::printf("storage node listening at %s\n",
              (*server)->BaseUrl().c_str());

  // --- 2. the davix client ---------------------------------------------
  core::Context context;  // owns the session pool; share it app-wide
  core::RequestParams params;
  params.metalink_mode = core::MetalinkMode::kDisabled;  // single server

  std::string url = (*server)->BaseUrl() + "/demo/hello.bin";
  auto file = core::DavFile::Make(&context, url);
  Check(file.status(), "parse URL");

  // PUT: atomic object creation (§2.1's CRUD-over-HTTP).
  std::string payload;
  for (int i = 0; i < 1000; ++i) {
    payload += "block-" + std::to_string(i) + " ";
  }
  Check(file->Put(payload, params), "PUT object");

  // Stat via HEAD.
  auto info = file->Stat(params);
  Check(info.status(), "HEAD (stat)");
  std::printf("      size=%llu etag=%s\n",
              static_cast<unsigned long long>(info->size),
              info->etag.c_str());

  // Whole-object GET.
  auto body = file->Get(params);
  Check(body.status(), "GET object");
  std::printf("      fetched %zu bytes, equal=%s\n", body->size(),
              *body == payload ? "yes" : "NO");

  // Ranged partial read.
  auto slice = file->ReadPartial(6, 4, params);
  Check(slice.status(), "ranged GET (bytes 6-9)");
  std::printf("      bytes 6-9 = \"%s\"\n", slice->c_str());

  // Vectored read: scattered fragments in ONE multi-range round trip.
  std::vector<http::ByteRange> ranges = {
      {0, 7}, {100, 9}, {5000, 9}, {8000, 8}};
  auto fragments = file->ReadPartialVec(ranges, params);
  Check(fragments.status(), "vectored GET (4 scattered ranges)");
  for (size_t i = 0; i < fragments->size(); ++i) {
    std::printf("      [%llu,+%llu) = \"%s\"\n",
                static_cast<unsigned long long>(ranges[i].offset),
                static_cast<unsigned long long>(ranges[i].length),
                (*fragments)[i].c_str());
  }
  IoCounters io = context.SnapshotCounters();
  std::printf("      vector queries on the wire: %llu (for %llu ranges)\n",
              static_cast<unsigned long long>(io.vector_queries),
              static_cast<unsigned long long>(io.ranges_requested));

  // POSIX-style facade: listing and namespace ops.
  core::DavPosix posix(&context);
  auto names = posix.ListDir((*server)->BaseUrl() + "/demo", params);
  Check(names.status(), "PROPFIND (list directory)");
  for (const std::string& name : *names) {
    std::printf("      /demo/%s\n", name.c_str());
  }

  // DELETE.
  Check(file->Delete(params), "DELETE object");
  std::printf("      connections opened=%llu reused=%llu\n",
              static_cast<unsigned long long>(
                  context.SnapshotCounters().connections_opened),
              static_cast<unsigned long long>(
                  context.SnapshotCounters().connections_reused));

  (*server)->Stop();
  std::printf("done.\n");
  return 0;
}
