#include "netsim/link_profile.h"

#include <algorithm>

namespace davix {
namespace netsim {
namespace {

// 1 Gbit/s expressed in bytes/second, matching the paper's server link.
constexpr int64_t kGigabitBytesPerSec = 125LL * 1000 * 1000;

}  // namespace

LinkProfile LinkProfile::Loopback() {
  LinkProfile p;
  p.name = "loopback";
  p.rtt_micros = 0;
  p.bandwidth_bytes_per_sec = 0;
  return p;
}

LinkProfile LinkProfile::Lan() {
  LinkProfile p;
  p.name = "LAN";
  p.rtt_micros = 2'000;
  p.bandwidth_bytes_per_sec = kGigabitBytesPerSec;
  return p;
}

LinkProfile LinkProfile::PanEuropean() {
  LinkProfile p;
  p.name = "PAN";
  p.rtt_micros = 16'000;
  p.bandwidth_bytes_per_sec = kGigabitBytesPerSec;
  return p;
}

LinkProfile LinkProfile::Wan() {
  LinkProfile p;
  p.name = "WAN";
  p.rtt_micros = 96'000;
  p.bandwidth_bytes_per_sec = kGigabitBytesPerSec;
  return p;
}

int64_t LinkProfile::SteadyStateThroughput() const {
  int64_t window_limited = 0;
  if (rtt_micros > 0) {
    window_limited = max_cwnd_bytes * 1'000'000 / rtt_micros;
  }
  if (bandwidth_bytes_per_sec == 0) return window_limited;
  if (window_limited == 0) return bandwidth_bytes_per_sec;
  return std::min(bandwidth_bytes_per_sec, window_limited);
}

}  // namespace netsim
}  // namespace davix
