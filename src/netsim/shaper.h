#ifndef DAVIX_NETSIM_SHAPER_H_
#define DAVIX_NETSIM_SHAPER_H_

#include <cstdint>

#include "netsim/link_profile.h"

namespace davix {
namespace netsim {

/// Per-connection TCP behaviour model.
///
/// A server owns one ConnectionShaper per accepted connection and sleeps
/// for the durations this class computes, turning loopback sockets into a
/// deterministic simulation of a wide-area TCP connection:
///
///  - connection establishment costs `connect_handshake_rtts` RTTs,
///  - each request costs half an RTT of upstream propagation,
///  - each response costs half an RTT plus serialisation, sent in
///    congestion-window-sized bursts with one RTT between bursts,
///  - the congestion window starts at `init_cwnd_bytes`, doubles per burst
///    (slow start) and is capped at `max_cwnd_bytes`,
///  - the window persists across requests on the same connection, which is
///    precisely the benefit of HTTP keep-alive / session recycling that
///    §2.2 of the paper exploits.
///
/// All methods only do arithmetic; the caller decides when to sleep. That
/// keeps the model unit-testable with no wall-clock dependence.
class ConnectionShaper {
 public:
  explicit ConnectionShaper(LinkProfile profile);

  /// Delay (µs) to apply when a request of `request_bytes` arrives.
  /// The first call on a connection also pays the handshake cost.
  int64_t OnRequestReceived(int64_t request_bytes);

  /// Delay (µs) to apply before writing a response of `response_bytes`,
  /// advancing the congestion window as a side effect.
  int64_t OnResponseSend(int64_t response_bytes);

  /// Non-blocking variant for reactor-style servers that never sleep:
  /// given the loop's current clock `now_micros`, accounts one full
  /// request/response exchange (OnRequestReceived + OnResponseSend) and
  /// returns the absolute instant at which the response bytes become
  /// eligible to hit the socket. The caller arms a timer instead of
  /// sleeping; on a null link this is simply `now_micros`.
  int64_t ScheduleResponse(int64_t now_micros, int64_t request_bytes,
                           int64_t response_bytes);

  /// Current congestion window in bytes.
  int64_t cwnd_bytes() const { return cwnd_bytes_; }

  /// Number of request/response exchanges seen on this connection.
  int64_t exchanges() const { return exchanges_; }

  const LinkProfile& profile() const { return profile_; }

  /// Models the transfer time (µs) of `bytes` on `profile` for a
  /// connection whose current window is `cwnd` (updated in place).
  /// Exposed for tests and for client-side planning.
  static int64_t TransferMicros(const LinkProfile& profile, int64_t bytes,
                                int64_t* cwnd);

  /// Delay decomposition for one request/response exchange, for servers
  /// that interleave many exchanges on one connection (multiplexing).
  /// The latency component models propagation (and the one-time
  /// handshake): concurrent exchanges overlap it. The bandwidth component
  /// models serialisation on the shared link: the caller must serialise
  /// it (e.g. sleep while holding the connection's write lock).
  struct ExchangePlan {
    int64_t latency_micros = 0;
    int64_t bandwidth_micros = 0;
  };

  /// Computes the plan for an exchange and advances the window state.
  /// Not thread-safe; callers serialise access per connection.
  ExchangePlan PlanExchange(int64_t request_bytes, int64_t response_bytes);

 private:
  LinkProfile profile_;
  int64_t cwnd_bytes_;
  int64_t exchanges_ = 0;
  bool handshake_done_ = false;
};

}  // namespace netsim
}  // namespace davix

#endif  // DAVIX_NETSIM_SHAPER_H_
