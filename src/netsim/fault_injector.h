#ifndef DAVIX_NETSIM_FAULT_INJECTOR_H_
#define DAVIX_NETSIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"

namespace davix {
namespace netsim {

/// What the server should do to a matching request.
enum class FaultAction {
  kNone,
  /// Close the connection without answering (models an offline server /
  /// connection refused for the purposes of the client).
  kRefuseConnection,
  /// Answer 503 Service Unavailable.
  kServerError,
  /// Send the response headers but truncate the body halfway, then close.
  kTruncateBody,
  /// Stall for the configured delay, then close without answering
  /// (client-visible as a timeout).
  kStall,
};

/// One fault rule: requests whose path starts with `path_prefix` suffer
/// `action` with probability `probability`, for at most `max_hits`
/// occurrences (-1 = unlimited).
struct FaultRule {
  std::string path_prefix;
  FaultAction action = FaultAction::kNone;
  double probability = 1.0;
  int64_t max_hits = -1;
  /// Used by kStall.
  int64_t stall_micros = 0;
};

/// Deterministic failure injection for the embedded servers.
///
/// The paper's resilience machinery (§2.4: Metalink fail-over) is
/// exercised by declaring replicas down or flaky through this class. All
/// randomness is seeded, so tests and benchmarks are reproducible.
///
/// Thread-safe: yes — one internal mutex serialises rule mutation, the
/// RNG, and hit counters.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 1) : rng_(seed) {}

  /// Adds a rule. Rules are evaluated in insertion order; the first match
  /// that fires wins.
  void AddRule(FaultRule rule);

  /// Marks the whole server down (every request refused) or back up.
  void SetServerDown(bool down);
  bool server_down() const;

  /// Decides the fate of a request for `path`. Thread-safe; advances rule
  /// hit counters and the RNG.
  FaultRule Decide(std::string_view path);

  /// Removes all rules (server_down flag included).
  void Clear();

  /// Total number of faults that have fired.
  int64_t faults_fired() const;

 private:
  mutable Mutex mu_;
  Rng rng_ GUARDED_BY(mu_);
  std::vector<FaultRule> rules_ GUARDED_BY(mu_);
  std::vector<int64_t> hits_ GUARDED_BY(mu_);
  bool server_down_ GUARDED_BY(mu_) = false;
  int64_t faults_fired_ GUARDED_BY(mu_) = 0;
};

}  // namespace netsim
}  // namespace davix

#endif  // DAVIX_NETSIM_FAULT_INJECTOR_H_
