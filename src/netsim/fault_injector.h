#ifndef DAVIX_NETSIM_FAULT_INJECTOR_H_
#define DAVIX_NETSIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/rng.h"

namespace davix {
namespace netsim {

/// What the server should do to a matching request.
enum class FaultAction {
  kNone,
  /// Close the connection without answering (models an offline server /
  /// connection refused for the purposes of the client).
  kRefuseConnection,
  /// Answer 503 Service Unavailable.
  kServerError,
  /// Send the response headers but truncate the body halfway, then close.
  kTruncateBody,
  /// Stall for the configured delay, then close without answering
  /// (client-visible as a timeout).
  kStall,
  /// Slow-loris body: send the response headers at full speed, then
  /// trickle the body at `body_bytes_per_sec`, then close. Exercises
  /// per-read timeouts that never fire (each trickle arrives in time)
  /// against the client's minimum-throughput stall watchdog.
  kSlowBody,
  /// Answer 503 Service Unavailable with a `Retry-After:
  /// <retry_after_seconds>` header — the server-paced backoff hint the
  /// client honors on idempotent retries.
  kRetryAfter,
  /// Send a partial status line / header block, then close mid-headers.
  /// The client sees a connection reset with bytes already consumed, so
  /// the exchange is NOT replayable on a recycled session — it must
  /// burn a real retry.
  kResetMidHeaders,
};

/// One fault rule: requests whose path starts with `path_prefix` suffer
/// `action` with probability `probability`, for at most `max_hits`
/// occurrences (-1 = unlimited), inside the rule's time window (both
/// bounds 0 = always armed).
struct FaultRule {
  std::string path_prefix;
  FaultAction action = FaultAction::kNone;
  double probability = 1.0;
  int64_t max_hits = -1;
  /// Used by kStall.
  int64_t stall_micros = 0;
  /// Used by kSlowBody: body trickle rate (0 = a very slow 1 byte/s).
  int64_t body_bytes_per_sec = 0;
  /// Used by kRetryAfter: the advertised wait.
  int64_t retry_after_seconds = 1;
  /// Burst window, in micros relative to the injector's epoch (its
  /// construction, or the last ResetWindowClock call). A rule with
  /// window_end_micros > 0 only fires while start <= elapsed < end —
  /// the building block of rolling fault schedules (healthy phase, 503
  /// burst, slow-loris phase, ...) in the soak harness.
  int64_t window_start_micros = 0;
  int64_t window_end_micros = 0;
};

/// Deterministic failure injection for the embedded servers.
///
/// The paper's resilience machinery (§2.4: Metalink fail-over) is
/// exercised by declaring replicas down or flaky through this class. All
/// randomness is seeded, so tests and benchmarks are reproducible.
///
/// Thread-safe: yes — one internal mutex serialises rule mutation, the
/// RNG, and hit counters.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 1) : rng_(seed) {}

  /// Restarts the epoch that rule time windows are measured against.
  /// Call at the start of a scheduled fault phase so window offsets are
  /// relative to "now" rather than injector construction.
  void ResetWindowClock();

  /// Adds a rule. Rules are evaluated in insertion order; the first match
  /// that fires wins.
  void AddRule(FaultRule rule);

  /// Marks the whole server down (every request refused) or back up.
  void SetServerDown(bool down);
  bool server_down() const;

  /// Decides the fate of a request for `path`. Thread-safe; advances rule
  /// hit counters and the RNG.
  FaultRule Decide(std::string_view path);

  /// Removes all rules (server_down flag included).
  void Clear();

  /// Total number of faults that have fired.
  int64_t faults_fired() const;

 private:
  mutable Mutex mu_;
  Rng rng_ GUARDED_BY(mu_);
  std::vector<FaultRule> rules_ GUARDED_BY(mu_);
  std::vector<int64_t> hits_ GUARDED_BY(mu_);
  bool server_down_ GUARDED_BY(mu_) = false;
  int64_t faults_fired_ GUARDED_BY(mu_) = 0;
  int64_t epoch_micros_ GUARDED_BY(mu_) = MonotonicMicros();
};

}  // namespace netsim
}  // namespace davix

#endif  // DAVIX_NETSIM_FAULT_INJECTOR_H_
