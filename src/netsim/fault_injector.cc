#include "netsim/fault_injector.h"

#include "common/string_util.h"

namespace davix {
namespace netsim {

void FaultInjector::AddRule(FaultRule rule) {
  MutexLock lock(mu_);
  rules_.push_back(std::move(rule));
  hits_.push_back(0);
}

void FaultInjector::SetServerDown(bool down) {
  MutexLock lock(mu_);
  server_down_ = down;
}

bool FaultInjector::server_down() const {
  MutexLock lock(mu_);
  return server_down_;
}

void FaultInjector::ResetWindowClock() {
  MutexLock lock(mu_);
  epoch_micros_ = MonotonicMicros();
}

FaultRule FaultInjector::Decide(std::string_view path) {
  MutexLock lock(mu_);
  if (server_down_) {
    FaultRule down;
    down.action = FaultAction::kRefuseConnection;
    ++faults_fired_;
    return down;
  }
  int64_t elapsed = MonotonicMicros() - epoch_micros_;
  for (size_t i = 0; i < rules_.size(); ++i) {
    FaultRule& rule = rules_[i];
    if (rule.action == FaultAction::kNone) continue;
    if (rule.window_end_micros > 0 &&
        (elapsed < rule.window_start_micros ||
         elapsed >= rule.window_end_micros)) {
      continue;
    }
    if (!StartsWith(path, rule.path_prefix)) continue;
    if (rule.max_hits >= 0 && hits_[i] >= rule.max_hits) continue;
    if (rule.probability < 1.0 && !rng_.Chance(rule.probability)) continue;
    ++hits_[i];
    ++faults_fired_;
    return rule;
  }
  return FaultRule{};
}

void FaultInjector::Clear() {
  MutexLock lock(mu_);
  rules_.clear();
  hits_.clear();
  server_down_ = false;
}

int64_t FaultInjector::faults_fired() const {
  MutexLock lock(mu_);
  return faults_fired_;
}

}  // namespace netsim
}  // namespace davix
