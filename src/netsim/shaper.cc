#include "netsim/shaper.h"

#include <algorithm>

namespace davix {
namespace netsim {

ConnectionShaper::ConnectionShaper(LinkProfile profile)
    : profile_(std::move(profile)), cwnd_bytes_(profile_.init_cwnd_bytes) {}

int64_t ConnectionShaper::OnRequestReceived(int64_t request_bytes) {
  if (profile_.IsNullLink()) return 0;
  int64_t delay = 0;
  if (!handshake_done_) {
    delay += profile_.connect_handshake_rtts * profile_.rtt_micros;
    handshake_done_ = true;
  }
  // Upstream propagation: half an RTT plus serialisation of the request.
  delay += profile_.rtt_micros / 2;
  if (profile_.bandwidth_bytes_per_sec > 0) {
    delay += request_bytes * 1'000'000 / profile_.bandwidth_bytes_per_sec;
  }
  return delay;
}

int64_t ConnectionShaper::OnResponseSend(int64_t response_bytes) {
  ++exchanges_;
  if (profile_.IsNullLink()) return 0;
  int64_t delay = profile_.rtt_micros / 2;  // downstream propagation
  delay += TransferMicros(profile_, response_bytes, &cwnd_bytes_);
  return delay;
}

int64_t ConnectionShaper::ScheduleResponse(int64_t now_micros,
                                           int64_t request_bytes,
                                           int64_t response_bytes) {
  return now_micros + OnRequestReceived(request_bytes) +
         OnResponseSend(response_bytes);
}

ConnectionShaper::ExchangePlan ConnectionShaper::PlanExchange(
    int64_t request_bytes, int64_t response_bytes) {
  ExchangePlan plan;
  ++exchanges_;
  if (profile_.IsNullLink()) return plan;
  if (!handshake_done_) {
    plan.latency_micros +=
        profile_.connect_handshake_rtts * profile_.rtt_micros;
    handshake_done_ = true;
  }
  plan.latency_micros += profile_.rtt_micros;  // up + down propagation
  if (profile_.bandwidth_bytes_per_sec > 0) {
    plan.bandwidth_micros +=
        request_bytes * 1'000'000 / profile_.bandwidth_bytes_per_sec;
  }
  plan.bandwidth_micros += TransferMicros(profile_, response_bytes,
                                          &cwnd_bytes_);
  return plan;
}

int64_t ConnectionShaper::TransferMicros(const LinkProfile& profile,
                                         int64_t bytes, int64_t* cwnd) {
  if (bytes <= 0) return 0;
  int64_t delay = 0;
  int64_t remaining = bytes;
  int64_t window = std::max<int64_t>(1, *cwnd);
  while (remaining > 0) {
    int64_t burst = std::min(remaining, window);
    if (profile.bandwidth_bytes_per_sec > 0) {
      delay += burst * 1'000'000 / profile.bandwidth_bytes_per_sec;
    }
    remaining -= burst;
    if (remaining > 0) {
      // Wait for the ACK of this window before opening the next one.
      delay += profile.rtt_micros;
      window = std::min(window * 2, profile.max_cwnd_bytes);
    }
  }
  *cwnd = window;
  return delay;
}

}  // namespace netsim
}  // namespace davix
