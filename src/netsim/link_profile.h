#ifndef DAVIX_NETSIM_LINK_PROFILE_H_
#define DAVIX_NETSIM_LINK_PROFILE_H_

#include <cstdint>
#include <string>

namespace davix {
namespace netsim {

/// Parameters of a simulated network path between a client and a server.
///
/// The paper evaluates davix over three real network classes (§3):
///   LAN          gigabit Ethernet,  RTT <   5 ms
///   PAN-European GEANT CH <-> UK,   RTT <  50 ms
///   WAN          CH <-> USA (BNL),  RTT < 300 ms
///
/// This repository reproduces those classes on loopback by injecting delay
/// server-side. RTTs are scaled down ~3x (LAN 2 ms, PAN 16 ms, WAN 96 ms)
/// so that a full Figure-4 run finishes in seconds; the scaling is uniform,
/// which preserves the relative shape of the results (see DESIGN.md).
struct LinkProfile {
  /// Human-readable name printed by benchmarks ("LAN", "WAN", ...).
  std::string name = "loopback";

  /// Round-trip time of the path, in microseconds. 0 disables shaping.
  int64_t rtt_micros = 0;

  /// Link capacity in bytes/second. 0 means unlimited.
  int64_t bandwidth_bytes_per_sec = 0;

  /// Initial TCP congestion window (RFC 6928's IW10 for a 1460-byte MSS).
  /// Fresh connections start here: the cost the paper attributes to
  /// "the TCP slow start mechanism" for one-connection-per-request HTTP.
  int64_t init_cwnd_bytes = 10 * 1460;

  /// Upper bound on the congestion window (models the TCP buffer /
  /// receive-window limit of mid-2010s stock kernels). Per-connection
  /// throughput on long fat paths is capped near max_cwnd / rtt — ~10 MB/s
  /// on the WAN profile — which is what makes XRootD's sliding-window
  /// read-ahead and multi-stream downloads profitable on WAN but
  /// irrelevant on LAN.
  int64_t max_cwnd_bytes = 1024 * 1024;

  /// Extra round trips consumed by connection establishment (TCP
  /// three-way handshake = 1; a TLS handshake would add more, which is the
  /// paper's §2.2 argument against SPDY's mandatory TLS).
  int64_t connect_handshake_rtts = 1;

  /// No shaping at all: plain loopback.
  static LinkProfile Loopback();
  /// Gigabit LAN, 2 ms RTT (paper: CERN <-> CERN, < 5 ms).
  static LinkProfile Lan();
  /// PAN-European link, 16 ms RTT (paper: CERN <-> UK over GEANT, < 50 ms).
  static LinkProfile PanEuropean();
  /// Transatlantic WAN, 96 ms RTT (paper: CERN <-> BNL, < 300 ms).
  static LinkProfile Wan();

  /// Steady-state throughput of one connection on this path, bytes/sec:
  /// min(bandwidth, max_cwnd / rtt). Returns 0 when unlimited.
  int64_t SteadyStateThroughput() const;

  /// True when this profile injects no delay at all.
  bool IsNullLink() const { return rtt_micros == 0 && bandwidth_bytes_per_sec == 0; }
};

}  // namespace netsim
}  // namespace davix

#endif  // DAVIX_NETSIM_LINK_PROFILE_H_
