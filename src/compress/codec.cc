#include "compress/codec.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/checksum.h"

namespace davix {
namespace compress {
namespace {

constexpr char kMagic[4] = {'D', 'V', 'C', '1'};

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

// ---------------------------------------------------------------- RLE --

/// Token stream: control byte c.
///   c < 0x80: copy (c + 1) literal bytes that follow.
///   c >= 0x80: repeat the next byte (c - 0x80 + 2) times (run 2..129).
std::string RleEncode(std::string_view data) {
  std::string out;
  out.reserve(data.size() / 2 + 16);
  size_t i = 0;
  while (i < data.size()) {
    // Measure the run at i.
    size_t run = 1;
    while (i + run < data.size() && data[i + run] == data[i] && run < 129) {
      ++run;
    }
    if (run >= 2) {
      out.push_back(static_cast<char>(0x80 + run - 2));
      out.push_back(data[i]);
      i += run;
      continue;
    }
    // Literal stretch: until the next run of >= 3 or 128 bytes.
    size_t start = i;
    while (i < data.size() && i - start < 128) {
      size_t lookahead = 1;
      while (i + lookahead < data.size() && data[i + lookahead] == data[i] &&
             lookahead < 3) {
        ++lookahead;
      }
      if (lookahead >= 3) break;
      ++i;
    }
    size_t len = i - start;
    out.push_back(static_cast<char>(len - 1));
    out.append(data.substr(start, len));
  }
  return out;
}

Result<std::string> RleDecode(std::string_view payload, uint64_t orig_size) {
  std::string out;
  out.reserve(orig_size);
  size_t i = 0;
  while (i < payload.size()) {
    unsigned char c = static_cast<unsigned char>(payload[i++]);
    if (c < 0x80) {
      size_t len = c + 1;
      if (i + len > payload.size()) {
        return Status::Corruption("RLE literal overruns payload");
      }
      out.append(payload.substr(i, len));
      i += len;
    } else {
      if (i >= payload.size()) {
        return Status::Corruption("RLE run missing byte");
      }
      size_t run = c - 0x80 + 2;
      out.append(run, payload[i++]);
    }
    if (out.size() > orig_size) {
      return Status::Corruption("RLE output exceeds declared size");
    }
  }
  return out;
}

// ---------------------------------------------------------------- DLZ --

constexpr size_t kWindowSize = 64 * 1024 - 1;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 131;  // 4 + 127
constexpr size_t kHashBits = 15;

uint32_t HashFour(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

/// Token stream: control byte c.
///   c < 0x80: literal run of (c + 1) bytes following.
///   c >= 0x80: match of length (c - 0x80 + kMinMatch), followed by a
///   2-byte little-endian back distance (1..65535).
std::string DlzEncode(std::string_view data) {
  std::string out;
  out.reserve(data.size() / 2 + 16);
  std::vector<int64_t> head(size_t{1} << kHashBits, -1);

  size_t i = 0;
  size_t literal_start = 0;
  auto flush_literals = [&](size_t end) {
    size_t pos = literal_start;
    while (pos < end) {
      size_t len = std::min<size_t>(128, end - pos);
      out.push_back(static_cast<char>(len - 1));
      out.append(data.substr(pos, len));
      pos += len;
    }
  };

  while (i + kMinMatch <= data.size()) {
    uint32_t h = HashFour(data.data() + i);
    int64_t candidate = head[h];
    head[h] = static_cast<int64_t>(i);

    size_t match_len = 0;
    if (candidate >= 0 &&
        i - static_cast<size_t>(candidate) <= kWindowSize) {
      const char* a = data.data() + candidate;
      const char* b = data.data() + i;
      size_t limit = std::min(kMaxMatch, data.size() - i);
      while (match_len < limit && a[match_len] == b[match_len]) ++match_len;
    }

    if (match_len >= kMinMatch) {
      flush_literals(i);
      uint16_t distance = static_cast<uint16_t>(i - candidate);
      out.push_back(static_cast<char>(0x80 + (match_len - kMinMatch)));
      out.push_back(static_cast<char>(distance & 0xFF));
      out.push_back(static_cast<char>(distance >> 8));
      // Insert hash entries inside the match so later data can refer back.
      size_t insert_end = std::min(i + match_len, data.size() - kMinMatch + 1);
      for (size_t j = i + 1; j < insert_end; ++j) {
        head[HashFour(data.data() + j)] = static_cast<int64_t>(j);
      }
      i += match_len;
      literal_start = i;
    } else {
      ++i;
    }
  }
  flush_literals(data.size());
  return out;
}

Result<std::string> DlzDecode(std::string_view payload, uint64_t orig_size) {
  std::string out;
  out.reserve(orig_size);
  size_t i = 0;
  while (i < payload.size()) {
    unsigned char c = static_cast<unsigned char>(payload[i++]);
    if (c < 0x80) {
      size_t len = c + 1;
      if (i + len > payload.size()) {
        return Status::Corruption("DLZ literal overruns payload");
      }
      out.append(payload.substr(i, len));
      i += len;
    } else {
      size_t len = (c - 0x80) + kMinMatch;
      if (i + 2 > payload.size()) {
        return Status::Corruption("DLZ match missing distance");
      }
      uint16_t distance =
          static_cast<uint16_t>(static_cast<unsigned char>(payload[i])) |
          static_cast<uint16_t>(static_cast<unsigned char>(payload[i + 1]))
              << 8;
      i += 2;
      if (distance == 0 || distance > out.size()) {
        return Status::Corruption("DLZ match distance out of window");
      }
      // Byte-by-byte copy: matches may overlap themselves.
      size_t src = out.size() - distance;
      for (size_t k = 0; k < len; ++k) out.push_back(out[src + k]);
    }
    if (out.size() > orig_size) {
      return Status::Corruption("DLZ output exceeds declared size");
    }
  }
  return out;
}

}  // namespace

std::string_view CodecName(CodecType type) {
  switch (type) {
    case CodecType::kNone:
      return "none";
    case CodecType::kRle:
      return "rle";
    case CodecType::kDlz:
      return "dlz";
  }
  return "none";
}

Result<CodecType> ParseCodecName(std::string_view name) {
  if (name == "none") return CodecType::kNone;
  if (name == "rle") return CodecType::kRle;
  if (name == "dlz") return CodecType::kDlz;
  return Status::InvalidArgument("unknown codec: " + std::string(name));
}

std::string Compress(CodecType type, std::string_view data) {
  std::string payload;
  switch (type) {
    case CodecType::kNone:
      payload = std::string(data);
      break;
    case CodecType::kRle:
      payload = RleEncode(data);
      break;
    case CodecType::kDlz:
      payload = DlzEncode(data);
      break;
  }
  // Store uncompressed if the codec failed to shrink the block, like
  // real storage formats do. The codec byte records what we stored.
  if (type != CodecType::kNone && payload.size() >= data.size()) {
    payload = std::string(data);
    type = CodecType::kNone;
  }
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(type));
  PutU32(&out, static_cast<uint32_t>(data.size()));
  PutU32(&out, Crc32(data));
  out += payload;
  return out;
}

Result<std::string> Decompress(std::string_view frame) {
  if (frame.size() < kFrameHeaderSize) {
    return Status::Corruption("frame shorter than header");
  }
  if (std::memcmp(frame.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad frame magic");
  }
  uint8_t codec_byte = static_cast<uint8_t>(frame[4]);
  if (codec_byte > static_cast<uint8_t>(CodecType::kDlz)) {
    return Status::Corruption("unknown codec byte in frame");
  }
  CodecType type = static_cast<CodecType>(codec_byte);
  uint32_t orig_size = GetU32(frame.data() + 5);
  uint32_t crc = GetU32(frame.data() + 9);
  std::string_view payload = frame.substr(kFrameHeaderSize);

  std::string out;
  switch (type) {
    case CodecType::kNone:
      out = std::string(payload);
      break;
    case CodecType::kRle: {
      DAVIX_ASSIGN_OR_RETURN(out, RleDecode(payload, orig_size));
      break;
    }
    case CodecType::kDlz: {
      DAVIX_ASSIGN_OR_RETURN(out, DlzDecode(payload, orig_size));
      break;
    }
  }
  if (out.size() != orig_size) {
    return Status::Corruption("decompressed size mismatch: got " +
                              std::to_string(out.size()) + " want " +
                              std::to_string(orig_size));
  }
  if (Crc32(out) != crc) {
    return Status::Corruption("crc mismatch after decompression");
  }
  return out;
}

Result<uint64_t> FrameOriginalSize(std::string_view frame) {
  if (frame.size() < kFrameHeaderSize) {
    return Status::Corruption("frame shorter than header");
  }
  if (std::memcmp(frame.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad frame magic");
  }
  return GetU32(frame.data() + 5);
}

}  // namespace compress
}  // namespace davix
