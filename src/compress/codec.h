#ifndef DAVIX_COMPRESS_CODEC_H_
#define DAVIX_COMPRESS_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace davix {
namespace compress {

/// Block codecs available for basket compression in the ROOT-like event
/// store. Stand-ins for ROOT's zlib/LZ4 settings: what matters to the I/O
/// path under study is that baskets are individually compressed,
/// checksummed blocks that must be fetched whole.
enum class CodecType : uint8_t {
  /// Stored verbatim.
  kNone = 0,
  /// Run-length encoding; effective on the long constant runs synthetic
  /// event payloads contain.
  kRle = 1,
  /// "DLZ", a from-scratch LZ77 variant: 64 KiB window, greedy hash-chain
  /// match finder, byte-oriented token stream.
  kDlz = 2,
};

std::string_view CodecName(CodecType type);
Result<CodecType> ParseCodecName(std::string_view name);

/// Compresses `data` into a self-describing frame:
///   magic "DVC1" | codec byte | u32 original size | u32 crc32(original) |
///   payload
/// The frame always round-trips through Decompress, whatever the codec.
std::string Compress(CodecType type, std::string_view data);

/// Decompresses a frame produced by Compress. Verifies magic, size and
/// CRC; any mismatch yields kCorruption.
Result<std::string> Decompress(std::string_view frame);

/// Size of the frame header in bytes.
constexpr size_t kFrameHeaderSize = 4 + 1 + 4 + 4;

/// Reads the original (uncompressed) size from a frame without decoding.
Result<uint64_t> FrameOriginalSize(std::string_view frame);

}  // namespace compress
}  // namespace davix

#endif  // DAVIX_COMPRESS_CODEC_H_
