#ifndef DAVIX_HTTPD_CONNECTION_H_
#define DAVIX_HTTPD_CONNECTION_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "http/message.h"
#include "net/tcp_socket.h"
#include "netsim/shaper.h"

namespace davix {
namespace httpd {

/// Lifecycle of one reactor-owned connection.
///
/// kReading accumulates request bytes; kDispatched means the current
/// request is on the worker pool; kWriting flushes the (shaped) response;
/// kLingering has nothing left to say — it holds the fd open briefly
/// after a Connection: close response (so the bytes outrun the RST a
/// hard close could trigger) or during an injected silent stall.
enum class ConnState {
  kReading,
  kDispatched,
  kWriting,
  kLingering,
};

/// Outcome of one incremental parse attempt over a connection's input.
enum class AssembleOutcome {
  /// The buffer does not yet hold a complete request.
  kNeedMore,
  /// A full request was parsed and consumed from the buffer.
  kReady,
  /// Request line or header block exceeds the configured bound -> 431.
  kHeaderTooLarge,
  /// Declared or chunk-encoded body exceeds the configured bound -> 413.
  kBodyTooLarge,
  /// Not HTTP. The connection is dropped without a response.
  kMalformed,
};

/// Incremental HTTP/1.1 request assembler for non-blocking reads.
///
/// The reactor appends whatever recv() produced to a connection's input
/// buffer and calls Poll(); the assembler re-scans the buffered prefix
/// and either consumes one complete request or reports why it cannot.
/// It holds no state between calls, so abandoning a connection mid-parse
/// needs no cleanup, and request-size limits (the 431/413 contract) are
/// enforced on the buffered bytes before anything is parsed.
class RequestAssembler {
 public:
  /// Request-size bounds; see ServerConfig for the knobs behind them.
  struct Limits {
    size_t max_request_line_bytes = 8 * 1024;
    size_t max_header_bytes = 64 * 1024;
    uint64_t max_body_bytes = 1024ull * 1024 * 1024;
  };

  explicit RequestAssembler(Limits limits) : limits_(limits) {}

  /// Attempts to assemble one request from the front of `buf`. On
  /// kReady the request's bytes are erased from `buf`, `out` holds the
  /// parsed request and `wire_bytes` its on-the-wire size. `head_done`
  /// reports whether the header block is already complete — the signal
  /// that separates a header-read timeout from a body-read stall.
  AssembleOutcome Poll(std::string* buf, http::HttpRequest* out,
                       size_t* wire_bytes, bool* head_done) const;

 private:
  Limits limits_;
};

/// Per-connection state owned exclusively by the server's reactor
/// thread. Worker-pool tasks never touch it — they communicate through
/// value-type completions the reactor collects — so none of this needs
/// locking.
struct ServerConnection {
  ServerConnection(uint64_t id_in, net::TcpSocket socket_in,
                   netsim::LinkProfile link, RequestAssembler::Limits limits)
      : id(id_in),
        socket(std::move(socket_in)),
        shaper(std::move(link)),
        assembler(limits) {}

  uint64_t id = 0;
  net::TcpSocket socket;
  netsim::ConnectionShaper shaper;
  RequestAssembler assembler;
  ConnState state = ConnState::kReading;

  /// Input side.
  std::string in_buf;
  bool peer_eof = false;
  bool head_done = false;
  bool first_request = true;
  /// Wire size of the request currently dispatched (shaping input).
  int64_t request_bytes = 0;

  /// Output side. `out_eligible` trails `out.size()` only while an
  /// injected slow-body fault trickles the payload out.
  std::string out;
  size_t out_pos = 0;
  size_t out_eligible = 0;
  bool close_after_write = false;
  /// Half-close and hold after the response instead of a hard close.
  bool linger_after_write = false;
  /// Whether finishing the current response counts as completing a
  /// parsed request (431/413 rejections answer unparsed garbage).
  bool counts_completed = false;
  size_t trickle_step = 0;
  int64_t next_trickle_at = 0;

  /// Timers, absolute µs on the monotonic clock (0 = unarmed).
  int64_t write_ready_at = 0;
  int64_t last_byte_at = 0;
  int64_t request_started_at = 0;
  int64_t write_progress_at = 0;
  int64_t close_at = 0;

  /// Current epoll interest, mirrored to avoid redundant epoll_ctl.
  bool read_interest = true;
  bool write_interest = false;

  /// Whether this connection was admitted (counted in
  /// connections_active) as opposed to accepted only to be shed.
  bool counted_active = false;
};

}  // namespace httpd
}  // namespace davix

#endif  // DAVIX_HTTPD_CONNECTION_H_
