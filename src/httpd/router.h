#ifndef DAVIX_HTTPD_ROUTER_H_
#define DAVIX_HTTPD_ROUTER_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "http/message.h"

namespace davix {
namespace httpd {

/// A request handler fills in `response`; the server owns framing,
/// keep-alive and shaping. Handlers must be thread-safe: the server calls
/// them concurrently from its worker pool.
using HandlerFn =
    std::function<void(const http::HttpRequest& request,
                       http::HttpResponse* response)>;

/// Longest-prefix request router.
///
/// Routes match on an optional method and a path prefix; among matches the
/// longest prefix wins, and on equal prefixes the latest registration wins
/// (so wrappers can override earlier handlers). Unmatched requests get 404.
class Router {
 public:
  /// Registers `handler` for `method` requests under `path_prefix`.
  void Handle(http::Method method, std::string path_prefix,
              HandlerFn handler);

  /// Registers `handler` for every method under `path_prefix`.
  void HandleAll(std::string path_prefix, HandlerFn handler);

  /// Dispatches a request; writes 404 if nothing matches.
  void Dispatch(const http::HttpRequest& request,
                http::HttpResponse* response) const;

 private:
  struct Route {
    std::optional<http::Method> method;
    std::string path_prefix;
    HandlerFn handler;
  };

  std::vector<Route> routes_;
};

}  // namespace httpd
}  // namespace davix

#endif  // DAVIX_HTTPD_ROUTER_H_
