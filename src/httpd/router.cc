#include "httpd/router.h"

#include "common/string_util.h"

namespace davix {
namespace httpd {

void Router::Handle(http::Method method, std::string path_prefix,
                    HandlerFn handler) {
  routes_.push_back(Route{method, std::move(path_prefix), std::move(handler)});
}

void Router::HandleAll(std::string path_prefix, HandlerFn handler) {
  routes_.push_back(
      Route{std::nullopt, std::move(path_prefix), std::move(handler)});
}

void Router::Dispatch(const http::HttpRequest& request,
                      http::HttpResponse* response) const {
  // Strip the query string for matching.
  std::string_view path = request.target;
  size_t q = path.find('?');
  if (q != std::string_view::npos) path = path.substr(0, q);

  const Route* best = nullptr;
  for (const Route& route : routes_) {
    if (route.method && *route.method != request.method) continue;
    if (!StartsWith(path, route.path_prefix)) continue;
    if (best == nullptr ||
        route.path_prefix.size() >= best->path_prefix.size()) {
      best = &route;
    }
  }
  if (best == nullptr) {
    response->status_code = 404;
    response->headers.Set("Content-Type", "text/plain");
    response->body = "no route for " + std::string(path) + "\n";
    return;
  }
  best->handler(request, response);
}

}  // namespace httpd
}  // namespace davix
