#ifndef DAVIX_HTTPD_DAV_HANDLER_H_
#define DAVIX_HTTPD_DAV_HANDLER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "http/message.h"
#include "httpd/object_store.h"
#include "httpd/router.h"

namespace davix {
namespace httpd {

/// Counters describing how the storage endpoint was exercised; benchmarks
/// read these to report server-side load (the paper's multi-stream
/// drawback is "overloading the servers considerably").
struct DavHandlerStats {
  std::atomic<uint64_t> get_requests{0};
  std::atomic<uint64_t> head_requests{0};
  std::atomic<uint64_t> put_requests{0};
  std::atomic<uint64_t> delete_requests{0};
  std::atomic<uint64_t> propfind_requests{0};
  std::atomic<uint64_t> range_requests{0};       ///< single-range GETs
  std::atomic<uint64_t> multirange_requests{0};  ///< multi-range GETs
  std::atomic<uint64_t> ranges_served{0};        ///< total ranges in them
  std::atomic<uint64_t> bytes_served{0};
};

/// WebDAV-flavoured storage endpoint over an ObjectStore.
///
/// Implements what davix exercises against a DPM/dCache-style HTTP door:
/// GET (full, single-range 206, multi-range 206 multipart/byteranges),
/// HEAD, PUT, DELETE, MKCOL, MOVE, OPTIONS and PROPFIND (Depth 0/1).
///
/// `support_multirange = false` simulates servers that ignore the
/// multi-range form and reply 200 with the whole entity — the fallback
/// path a robust vectored-I/O client must handle (§2.3).
class DavHandler : public std::enable_shared_from_this<DavHandler> {
 public:
  explicit DavHandler(std::shared_ptr<ObjectStore> store)
      : store_(std::move(store)) {}

  /// Registers this handler for all methods under `prefix`. When the
  /// handler is owned by a shared_ptr (the usual case), the route shares
  /// ownership, so the handler outlives the router registration even if
  /// the caller drops its reference.
  void Register(Router* router, const std::string& prefix);

  void set_support_multirange(bool enabled) { support_multirange_ = enabled; }
  /// When capped, multi-range GETs with more ranges than the cap are
  /// answered 416, mimicking servers that bound multipart fan-out.
  void set_max_ranges_per_request(size_t cap) { max_ranges_ = cap; }

  DavHandlerStats& stats() { return stats_; }
  ObjectStore& store() { return *store_; }

  /// Entry point used by Register; public for direct testing.
  void Handle(const http::HttpRequest& request, http::HttpResponse* response);

 private:
  void DoGet(const http::HttpRequest& request, http::HttpResponse* response,
             bool head_only);
  void DoPut(const http::HttpRequest& request, http::HttpResponse* response);
  void DoDelete(const http::HttpRequest& request,
                http::HttpResponse* response);
  void DoMkcol(const http::HttpRequest& request, http::HttpResponse* response);
  void DoMove(const http::HttpRequest& request, http::HttpResponse* response);
  void DoCopy(const http::HttpRequest& request, http::HttpResponse* response);
  void DoOptions(http::HttpResponse* response);
  void DoPropfind(const http::HttpRequest& request,
                  http::HttpResponse* response);

  std::shared_ptr<ObjectStore> store_;
  bool support_multirange_ = true;
  size_t max_ranges_ = 0;  // 0 = unlimited
  std::atomic<uint64_t> boundary_salt_{1};
  DavHandlerStats stats_;
};

/// Extracts the path component of a request target (query stripped,
/// percent-decoded). Exposed for reuse by other handlers.
std::string RequestPath(const http::HttpRequest& request);

}  // namespace httpd
}  // namespace davix

#endif  // DAVIX_HTTPD_DAV_HANDLER_H_
