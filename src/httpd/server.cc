#include "httpd/server.h"

#include <sys/socket.h>

#include <algorithm>
#include <set>

#include "common/base64.h"
#include "common/clock.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "http/parser.h"
#include "httpd/dav_handler.h"
#include "net/buffered_reader.h"
#include "netsim/shaper.h"

namespace davix {
namespace httpd {
namespace {

/// Accept-poll period: bounds how long Stop() waits on the accept loop.
constexpr int64_t kAcceptPollMicros = 50'000;

}  // namespace

HttpServer::HttpServer(ServerConfig config, std::shared_ptr<Router> router)
    : config_(std::move(config)),
      router_(std::move(router)),
      faults_(config_.fault_seed) {}

Result<std::unique_ptr<HttpServer>> HttpServer::Start(
    ServerConfig config, std::shared_ptr<Router> router) {
  std::unique_ptr<HttpServer> server(
      new HttpServer(std::move(config), std::move(router)));
  DAVIX_ASSIGN_OR_RETURN(server->listener_,
                         net::TcpListener::Listen(server->config_.port));
  {
    MutexLock lock(server->stop_mu_);
    server->accept_thread_ =
        std::thread([s = server.get()] { s->AcceptLoop(); });
  }
  DAVIX_LOG(kInfo) << "httpd listening on port " << server->port();
  return server;
}

HttpServer::~HttpServer() { Stop(); }

std::string HttpServer::BaseUrl() const {
  return "http://127.0.0.1:" + std::to_string(port());
}

void HttpServer::Stop() {
  stopping_.store(true, std::memory_order_relaxed);
  // stop_mu_ makes concurrent Stop() calls safe: the first caller joins
  // the accept thread (joinable() goes false under the lock), later and
  // concurrent callers find nothing left to join but still wait here
  // until teardown has finished before returning.
  MutexLock lock(stop_mu_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  // The accept loop is down, so no new connection threads can appear
  // after this swap.
  std::vector<std::thread> threads;
  {
    MutexLock conn_lock(conn_mu_);
    // Force-unblock connections parked in idle keep-alive reads.
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<net::TcpSocket> socket = listener_.Accept(kAcceptPollMicros);
    if (!socket.ok()) {
      if (socket.status().IsTimeout()) continue;
      if (!stopping_.load(std::memory_order_relaxed)) {
        DAVIX_LOG(kError) << "accept failed: " << socket.status().ToString();
      }
      return;
    }
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(conn_mu_);
    connection_threads_.emplace_back(
        [this, sock = std::move(*socket)]() mutable {
          HandleConnection(std::move(sock));
        });
  }
}

bool HttpServer::CheckAuth(const http::HttpRequest& request) const {
  std::optional<std::string> authorization =
      request.headers.Get("Authorization");
  if (!authorization) return false;
  std::string_view value = TrimWhitespace(*authorization);
  if (!StartsWith(value, "Basic ")) return false;
  Result<std::string> decoded = Base64Decode(value.substr(6));
  if (!decoded.ok()) return false;
  return *decoded ==
         config_.basic_auth_user + ":" + config_.basic_auth_password;
}

void HttpServer::HandleConnection(net::TcpSocket socket) {
  {
    MutexLock lock(conn_mu_);
    active_fds_.insert(socket.fd());
  }
  stats_.connections_active.fetch_add(1, std::memory_order_relaxed);
  (void)socket.SetNoDelay(true);
  netsim::ConnectionShaper shaper(config_.link);
  net::BufferedReader reader(&socket, config_.idle_timeout_micros);
  bool first_request = true;

  while (!stopping_.load(std::memory_order_relaxed)) {
    uint64_t consumed_before = reader.bytes_consumed();
    Result<http::HttpRequest> head =
        http::MessageReader::ReadRequestHead(&reader);
    if (!head.ok()) {
      // Idle close, timeout, or protocol garbage: drop the connection.
      break;
    }
    http::HttpRequest request = std::move(*head);
    if (!http::MessageReader::ReadRequestBody(&reader, &request).ok()) break;
    uint64_t request_bytes = reader.bytes_consumed() - consumed_before;
    stats_.bytes_received.fetch_add(request_bytes, std::memory_order_relaxed);
    stats_.requests_handled.fetch_add(1, std::memory_order_relaxed);
    if (!first_request) {
      stats_.keepalive_reuses.fetch_add(1, std::memory_order_relaxed);
    }

    // Upstream shaping (handshake on the first exchange + request
    // propagation).
    int64_t in_delay =
        shaper.OnRequestReceived(static_cast<int64_t>(request_bytes));

    // Fault injection decides the fate of this request before routing.
    netsim::FaultRule fault = faults_.Decide(RequestPath(request));
    if (fault.action != netsim::FaultAction::kNone) {
      stats_.faults_injected.fetch_add(1, std::memory_order_relaxed);
    }
    if (fault.action == netsim::FaultAction::kRefuseConnection) {
      break;  // close without answering
    }
    if (fault.action == netsim::FaultAction::kStall) {
      SleepForMicros(fault.stall_micros);
      break;
    }
    if (fault.action == netsim::FaultAction::kResetMidHeaders) {
      // A partial status line + truncated header, then a hard close. The
      // client has consumed bytes, so the exchange is not replayable on a
      // recycled session: it must spend a real retry.
      (void)socket.WriteAll("HTTP/1.1 200 OK\r\nContent-Le");
      break;
    }

    http::HttpResponse response;
    if (fault.action == netsim::FaultAction::kServerError) {
      response.status_code = 503;
      response.headers.Set("Content-Type", "text/plain");
      response.body = "injected fault\n";
    } else if (fault.action == netsim::FaultAction::kRetryAfter) {
      response.status_code = 503;
      response.headers.Set("Content-Type", "text/plain");
      response.headers.Set("Retry-After",
                           std::to_string(fault.retry_after_seconds));
      response.body = "injected fault: retry later\n";
    } else if (!config_.basic_auth_user.empty() && !CheckAuth(request)) {
      response.status_code = 401;
      response.headers.Set("WWW-Authenticate", "Basic realm=\"davix\"");
      response.headers.Set("Content-Type", "text/plain");
      response.body = "authentication required\n";
    } else {
      router_->Dispatch(request, &response);
    }

    bool client_wants_close =
        request.headers.ListContains("Connection", "close") ||
        (request.version == "HTTP/1.0" &&
         !request.headers.ListContains("Connection", "keep-alive"));
    bool keep_alive = config_.enable_keepalive && !client_wants_close &&
                      fault.action != netsim::FaultAction::kTruncateBody &&
                      fault.action != netsim::FaultAction::kSlowBody;

    response.headers.Set("Server", config_.server_name);
    response.headers.Set("Date", http::FormatHttpDate(WallSeconds()));
    response.headers.Set("Connection", keep_alive ? "keep-alive" : "close");

    bool head_request = request.method == http::Method::kHead;
    if (head_request) {
      // HEAD responses advertise the entity length but carry no body.
      if (!response.headers.Has("Content-Length")) {
        response.headers.Set("Content-Length",
                             std::to_string(response.body.size()));
      }
      response.body.clear();
    }

    std::string wire = response.Serialize();
    if (fault.action == netsim::FaultAction::kTruncateBody &&
        !response.body.empty()) {
      wire.resize(wire.size() - response.body.size() / 2 - 1);
    }

    int64_t out_delay =
        shaper.OnResponseSend(static_cast<int64_t>(wire.size()));
    SleepForMicros(in_delay + out_delay);

    if (fault.action == netsim::FaultAction::kSlowBody) {
      // Slow loris: the header block goes out at full speed (the client
      // commits to this response), then the body trickles at the rule's
      // rate until done or the server stops. Closes afterwards.
      size_t head_size = wire.size() - response.body.size();
      if (!socket.WriteAll(std::string_view(wire).substr(0, head_size))
               .ok()) {
        break;
      }
      int64_t rate =
          fault.body_bytes_per_sec > 0 ? fault.body_bytes_per_sec : 1;
      // ~20 writes per second, at least 1 byte each.
      size_t trickle = static_cast<size_t>(std::max<int64_t>(1, rate / 20));
      size_t pos = head_size;
      while (pos < wire.size() && !stopping_.load(std::memory_order_relaxed)) {
        size_t n = std::min(trickle, wire.size() - pos);
        if (!socket.WriteAll(std::string_view(wire).substr(pos, n)).ok()) {
          break;
        }
        pos += n;
        if (pos < wire.size()) SleepForMicros(50'000);
      }
      stats_.bytes_sent.fetch_add(pos, std::memory_order_relaxed);
      break;
    }

    if (!socket.WriteAll(wire).ok()) break;
    stats_.bytes_sent.fetch_add(wire.size(), std::memory_order_relaxed);
    first_request = false;

    if (!keep_alive || fault.action == netsim::FaultAction::kTruncateBody) {
      break;
    }
  }
  {
    MutexLock lock(conn_mu_);
    active_fds_.erase(socket.fd());
  }
  socket.Close();
  stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace httpd
}  // namespace davix
