#include "httpd/server.h"

#include <algorithm>
#include <string_view>
#include <utility>

#include "common/base64.h"
#include "common/clock.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "httpd/dav_handler.h"

namespace davix {
namespace httpd {
namespace {

/// epoll key of the listening socket.
constexpr uint64_t kListenerKey = 0;
/// How long a Connection: close response holds its fd half-closed so the
/// final bytes outrun the RST a hard close with unread input can raise.
constexpr int64_t kLingerMicros = 100'000;
/// Injected slow-body faults trickle ~20 writes per second (matching the
/// old blocking server's cadence, which bench_fault_soak calibrates to).
constexpr int64_t kTrickleIntervalMicros = 50'000;
/// Upper bound on one epoll wait when nothing sooner is scheduled.
constexpr int64_t kMaxWaitMicros = 500'000;
/// Per-event read budget so one firehose connection cannot starve the
/// rest of the loop; level-triggered epoll re-reports the remainder.
constexpr size_t kMaxReadPerEvent = 256 * 1024;
/// Accepts drained per listener event, for the same fairness reason.
constexpr int kMaxAcceptsPerEvent = 256;

}  // namespace

HttpServer::HttpServer(ServerConfig config, std::shared_ptr<Router> router)
    : config_(std::move(config)),
      router_(std::move(router)),
      faults_(config_.fault_seed) {
  max_connections_.store(config_.max_connections, std::memory_order_relaxed);
  max_dispatch_backlog_.store(config_.max_dispatch_backlog,
                              std::memory_order_relaxed);
}

Result<std::unique_ptr<HttpServer>> HttpServer::Start(
    ServerConfig config, std::shared_ptr<Router> router) {
  std::unique_ptr<HttpServer> server(
      new HttpServer(std::move(config), std::move(router)));
  DAVIX_ASSIGN_OR_RETURN(
      server->listener_,
      net::TcpListener::Listen(server->config_.port,
                               server->config_.listen_backlog));
  DAVIX_RETURN_IF_ERROR(server->listener_.SetNonBlocking(true));
  DAVIX_ASSIGN_OR_RETURN(server->poller_, net::Poller::Create());
  DAVIX_RETURN_IF_ERROR(server->poller_.Add(server->listener_.fd(),
                                            kListenerKey, /*readable=*/true,
                                            /*writable=*/false));
  server->pool_ = std::make_unique<ThreadPool>(
      std::max<uint32_t>(1, server->config_.worker_threads));
  {
    MutexLock lock(server->stop_mu_);
    server->reactor_thread_ =
        std::thread([s = server.get()] { s->ReactorLoop(); });
  }
  DAVIX_LOG(kInfo) << "httpd listening on port " << server->port();
  return server;
}

HttpServer::~HttpServer() { Stop(); }

std::string HttpServer::BaseUrl() const {
  return "http://127.0.0.1:" + std::to_string(port());
}

void HttpServer::Stop() {
  stopping_.store(true, std::memory_order_release);
  poller_.Wakeup();
  // stop_mu_ makes concurrent Stop() calls safe: the first caller joins
  // the reactor (joinable() goes false under the lock), later and
  // concurrent callers find nothing left to join but still wait here
  // until teardown has finished before returning.
  MutexLock lock(stop_mu_);
  if (reactor_thread_.joinable()) reactor_thread_.join();
  if (pool_) pool_->Shutdown();
}

void HttpServer::ArmHint(int64_t deadline) {
  if (deadline <= 0) return;
  if (next_deadline_hint_ == 0 || deadline < next_deadline_hint_) {
    next_deadline_hint_ = deadline;
  }
}

int64_t HttpServer::ConnDeadline(const ServerConnection* conn) const {
  int64_t deadline = 0;
  auto consider = [&deadline](int64_t t) {
    if (t > 0 && (deadline == 0 || t < deadline)) deadline = t;
  };
  switch (conn->state) {
    case ConnState::kReading: {
      consider(conn->last_byte_at + config_.idle_timeout_micros);
      if (!conn->in_buf.empty() && !conn->head_done &&
          conn->request_started_at > 0) {
        int64_t header_timeout = config_.header_timeout_micros > 0
                                     ? config_.header_timeout_micros
                                     : config_.idle_timeout_micros;
        consider(conn->request_started_at + header_timeout);
      }
      break;
    }
    case ConnState::kDispatched:
      break;
    case ConnState::kWriting:
      consider(conn->write_ready_at);
      if (conn->trickle_step > 0 && conn->out_eligible < conn->out.size()) {
        consider(conn->next_trickle_at);
      }
      if (conn->write_progress_at > 0) {
        consider(conn->write_progress_at + config_.write_stall_timeout_micros);
      }
      break;
    case ConnState::kLingering:
      consider(conn->close_at);
      break;
  }
  return deadline;
}

void HttpServer::ReactorLoop() {
  std::vector<net::Poller::Event> events;
  while (true) {
    int64_t now = MonotonicMicros();
    if (stopping_.load(std::memory_order_acquire) && !draining_) {
      BeginDrain(now);
    }
    if (draining_) {
      if (conns_.empty()) {
        // Every in-flight response finished inside the deadline.
        stats_.drain_completions.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      if (now >= drain_deadline_) {
        std::vector<uint64_t> ids;
        ids.reserve(conns_.size());
        for (const auto& entry : conns_) ids.push_back(entry.first);
        for (uint64_t id : ids) CloseConn(id);
        break;
      }
    }

    int64_t timeout = kMaxWaitMicros;
    if (next_deadline_hint_ > 0) {
      timeout = std::min(timeout,
                         std::max<int64_t>(0, next_deadline_hint_ - now));
    }
    if (draining_) {
      timeout =
          std::min(timeout, std::max<int64_t>(0, drain_deadline_ - now));
    }
    Result<size_t> waited = poller_.Wait(&events, timeout);
    now = MonotonicMicros();
    if (!waited.ok()) {
      DAVIX_LOG(kError) << "reactor wait failed: "
                        << waited.status().ToString();
      break;
    }
    for (const net::Poller::Event& event : events) {
      if (event.key == kListenerKey) {
        if (!draining_) HandleAccepts(now);
      } else {
        HandleConnEvent(event, now);
      }
    }
    DrainCompletions(now);
    if (next_deadline_hint_ > 0 && now >= next_deadline_hint_) {
      SweepTimers(now);
    }
  }
}

void HttpServer::BeginDrain(int64_t now) {
  draining_ = true;
  drain_deadline_ = now + config_.drain_deadline_micros;
  poller_.Remove(listener_.fd());
  listener_.Close();
  // Connections owing no response bytes go immediately; kDispatched and
  // kWriting (and post-response lingers) are the in-flight set the drain
  // deadline protects.
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& entry : conns_) ids.push_back(entry.first);
  for (uint64_t id : ids) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    ConnState state = it->second->state;
    if (state == ConnState::kReading || state == ConnState::kLingering) {
      CloseConn(id);
    }
  }
  ArmHint(drain_deadline_);
}

void HttpServer::HandleAccepts(int64_t now) {
  for (int i = 0; i < kMaxAcceptsPerEvent; ++i) {
    Result<net::TcpSocket> socket = listener_.AcceptNonBlocking();
    if (!socket.ok()) {
      if (!socket.status().IsTimeout() &&
          !stopping_.load(std::memory_order_relaxed)) {
        DAVIX_LOG(kError) << "accept failed: " << socket.status().ToString();
      }
      return;
    }
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    (void)socket->SetNoDelay(true);

    RequestAssembler::Limits limits;
    limits.max_request_line_bytes = config_.max_request_line_bytes;
    limits.max_header_bytes = config_.max_header_bytes;
    limits.max_body_bytes = config_.max_body_bytes;
    uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<ServerConnection>(id, std::move(*socket),
                                                   config_.link, limits);
    ServerConnection* raw = conn.get();
    raw->last_byte_at = now;

    bool shed = stats_.connections_active.load(std::memory_order_relaxed) >=
                max_connections_.load(std::memory_order_relaxed);
    if (!poller_.Add(raw->socket.fd(), id, /*readable=*/!shed,
                     /*writable=*/false)
             .ok()) {
      continue;  // fd table or epoll exhausted: drop on the floor
    }
    raw->read_interest = !shed;
    conns_.emplace(id, std::move(conn));
    if (shed) {
      stats_.connections_shed.fetch_add(1, std::memory_order_relaxed);
      QueueCanned(raw, 503, "server overloaded; retry later\n",
                  /*retry_after=*/true, /*counts_completed=*/false, now);
    } else {
      raw->counted_active = true;
      stats_.connections_active.fetch_add(1, std::memory_order_relaxed);
      ArmHint(now + config_.idle_timeout_micros);
    }
  }
}

void HttpServer::HandleConnEvent(const net::Poller::Event& event,
                                 int64_t now) {
  auto it = conns_.find(event.key);
  if (it == conns_.end()) return;
  ServerConnection* conn = it->second.get();
  if (event.error) {
    CloseConn(event.key);
    return;
  }
  if (event.readable &&
      (conn->state == ConnState::kReading ||
       conn->state == ConnState::kLingering)) {
    ReadInput(conn, now);
    it = conns_.find(event.key);
    if (it == conns_.end()) return;
    conn = it->second.get();
    if (conn->state == ConnState::kReading) {
      ProcessInput(conn, now);
      it = conns_.find(event.key);
      if (it == conns_.end()) return;
      conn = it->second.get();
    }
  }
  if (event.writable && conn->state == ConnState::kWriting) {
    FlushWrite(conn, now);
    it = conns_.find(event.key);
    if (it == conns_.end()) return;
    conn = it->second.get();
  }
  // Input may have armed a deadline earlier than the current hint (e.g.
  // the first bytes of a header start the slowloris clock).
  ArmHint(ConnDeadline(conn));
}

void HttpServer::ReadInput(ServerConnection* conn, int64_t now) {
  char buf[16384];
  size_t total = 0;
  while (total < kMaxReadPerEvent) {
    Result<size_t> n = conn->socket.ReadNonBlocking(buf, sizeof(buf));
    if (!n.ok()) {
      if (n.status().IsTimeout()) return;  // drained
      CloseConn(conn->id);
      return;
    }
    if (*n == 0) {
      conn->peer_eof = true;
      if (conn->state == ConnState::kLingering) {
        CloseConn(conn->id);
        return;
      }
      UpdateInterest(conn, false, conn->write_interest);
      return;
    }
    if (conn->state == ConnState::kLingering) {
      total += *n;  // discard: the response is already decided
      continue;
    }
    if (conn->in_buf.empty()) conn->request_started_at = now;
    conn->in_buf.append(buf, *n);
    conn->last_byte_at = now;
    total += *n;
  }
}

void HttpServer::ProcessInput(ServerConnection* conn, int64_t now) {
  uint64_t id = conn->id;
  while (conn->state == ConnState::kReading) {
    http::HttpRequest request;
    size_t wire_bytes = 0;
    bool head_done = false;
    AssembleOutcome outcome =
        conn->assembler.Poll(&conn->in_buf, &request, &wire_bytes, &head_done);
    conn->head_done = head_done;
    switch (outcome) {
      case AssembleOutcome::kNeedMore:
        if (conn->peer_eof) CloseConn(id);
        return;
      case AssembleOutcome::kMalformed:
        // Not HTTP: drop silently, as the blocking server always did.
        CloseConn(id);
        return;
      case AssembleOutcome::kHeaderTooLarge:
        QueueCanned(conn, 431, "request header fields too large\n",
                    /*retry_after=*/false, /*counts_completed=*/false, now);
        return;
      case AssembleOutcome::kBodyTooLarge:
        QueueCanned(conn, 413, "payload too large\n",
                    /*retry_after=*/false, /*counts_completed=*/false, now);
        return;
      case AssembleOutcome::kReady:
        break;
    }
    conn->head_done = false;
    conn->request_started_at = conn->in_buf.empty() ? 0 : now;
    OnRequest(conn, std::move(request), wire_bytes, now);
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    conn = it->second.get();
  }
}

void HttpServer::OnRequest(ServerConnection* conn, http::HttpRequest request,
                           size_t wire_bytes, int64_t now) {
  stats_.bytes_received.fetch_add(wire_bytes, std::memory_order_relaxed);
  stats_.requests_handled.fetch_add(1, std::memory_order_relaxed);
  if (!conn->first_request) {
    stats_.keepalive_reuses.fetch_add(1, std::memory_order_relaxed);
  }
  conn->request_bytes = static_cast<int64_t>(wire_bytes);

  netsim::FaultRule fault = faults_.Decide(RequestPath(request));
  if (fault.action != netsim::FaultAction::kNone) {
    stats_.faults_injected.fetch_add(1, std::memory_order_relaxed);
  }
  if (fault.action == netsim::FaultAction::kRefuseConnection) {
    CloseConn(conn->id);  // close without answering
    return;
  }
  if (fault.action == netsim::FaultAction::kStall) {
    // Silent stall: park the fd (ignoring input) and drop it when the
    // rule's budget elapses — no thread sleeps anywhere.
    conn->state = ConnState::kLingering;
    conn->close_at = now + fault.stall_micros;
    UpdateInterest(conn, false, false);
    ArmHint(conn->close_at);
    return;
  }
  if (fault.action == netsim::FaultAction::kResetMidHeaders) {
    // A partial status line + truncated header, then a hard close. The
    // client has consumed bytes, so the exchange is not replayable on a
    // recycled session: it must spend a real retry.
    conn->out = "HTTP/1.1 200 OK\r\nContent-Le";
    conn->out_pos = 0;
    conn->out_eligible = conn->out.size();
    conn->close_after_write = true;
    conn->linger_after_write = false;
    conn->counts_completed = false;
    conn->trickle_step = 0;
    conn->state = ConnState::kWriting;
    conn->write_ready_at = 0;
    conn->write_progress_at = now;
    UpdateInterest(conn, false, false);
    FlushWrite(conn, now);
    return;
  }

  // Admission control: when the worker pool is already saturated, answer
  // 503 + Retry-After from the reactor instead of queueing unboundedly.
  // The PR 7 client honours the Retry-After and comes back later.
  if (dispatch_inflight_.load(std::memory_order_relaxed) >=
      max_dispatch_backlog_.load(std::memory_order_relaxed)) {
    stats_.requests_shed.fetch_add(1, std::memory_order_relaxed);
    QueueCanned(conn, 503, "server overloaded; retry later\n",
                /*retry_after=*/true, /*counts_completed=*/true, now);
    return;
  }

  bool client_wants_close =
      request.headers.ListContains("Connection", "close") ||
      (request.version == "HTTP/1.0" &&
       !request.headers.ListContains("Connection", "keep-alive"));
  bool keep_alive = config_.enable_keepalive && !client_wants_close &&
                    fault.action != netsim::FaultAction::kTruncateBody &&
                    fault.action != netsim::FaultAction::kSlowBody;

  conn->state = ConnState::kDispatched;
  UpdateInterest(conn, false, false);
  dispatch_inflight_.fetch_add(1, std::memory_order_relaxed);
  uint64_t id = conn->id;
  bool submitted = pool_->Submit(
      [this, id, request = std::move(request), fault, keep_alive]() mutable {
        Completion done = BuildResponse(id, std::move(request), fault,
                                        keep_alive);
        {
          MutexLock lock(done_mu_);
          completions_.push_back(std::move(done));
        }
        poller_.Wakeup();
      });
  if (!submitted) {
    dispatch_inflight_.fetch_sub(1, std::memory_order_relaxed);
    CloseConn(id);
  }
}

bool HttpServer::CheckAuth(const http::HttpRequest& request) const {
  std::optional<std::string> authorization =
      request.headers.Get("Authorization");
  if (!authorization) return false;
  std::string_view value = TrimWhitespace(*authorization);
  if (!StartsWith(value, "Basic ")) return false;
  Result<std::string> decoded = Base64Decode(value.substr(6));
  if (!decoded.ok()) return false;
  return *decoded ==
         config_.basic_auth_user + ":" + config_.basic_auth_password;
}

HttpServer::Completion HttpServer::BuildResponse(uint64_t conn_id,
                                                 http::HttpRequest request,
                                                 netsim::FaultRule fault,
                                                 bool keep_alive) const {
  http::HttpResponse response;
  if (fault.action == netsim::FaultAction::kServerError) {
    response.status_code = 503;
    response.headers.Set("Content-Type", "text/plain");
    response.body = "injected fault\n";
  } else if (fault.action == netsim::FaultAction::kRetryAfter) {
    response.status_code = 503;
    response.headers.Set("Content-Type", "text/plain");
    response.headers.Set("Retry-After",
                         std::to_string(fault.retry_after_seconds));
    response.body = "injected fault: retry later\n";
  } else if (!config_.basic_auth_user.empty() && !CheckAuth(request)) {
    response.status_code = 401;
    response.headers.Set("WWW-Authenticate", "Basic realm=\"davix\"");
    response.headers.Set("Content-Type", "text/plain");
    response.body = "authentication required\n";
  } else {
    router_->Dispatch(request, &response);
  }

  response.headers.Set("Server", config_.server_name);
  response.headers.Set("Date", http::FormatHttpDate(WallSeconds()));
  response.headers.Set("Connection", keep_alive ? "keep-alive" : "close");

  if (request.method == http::Method::kHead) {
    // HEAD responses advertise the entity length but carry no body.
    if (!response.headers.Has("Content-Length")) {
      response.headers.Set("Content-Length",
                           std::to_string(response.body.size()));
    }
    response.body.clear();
  }

  Completion done;
  done.conn_id = conn_id;
  done.body_size = response.body.size();
  done.keep_alive = keep_alive;
  done.fault = fault.action;
  done.body_rate = fault.body_bytes_per_sec;
  done.wire = response.Serialize();
  if (fault.action == netsim::FaultAction::kTruncateBody &&
      !response.body.empty()) {
    done.wire.resize(done.wire.size() - response.body.size() / 2 - 1);
  }
  return done;
}

void HttpServer::DrainCompletions(int64_t now) {
  std::vector<Completion> batch;
  {
    MutexLock lock(done_mu_);
    batch.swap(completions_);
  }
  for (Completion& done : batch) {
    dispatch_inflight_.fetch_sub(1, std::memory_order_relaxed);
    auto it = conns_.find(done.conn_id);
    if (it == conns_.end()) continue;  // connection died while computing
    ServerConnection* conn = it->second.get();
    if (conn->state != ConnState::kDispatched) continue;
    StartResponse(conn, std::move(done), now);
  }
}

void HttpServer::StartResponse(ServerConnection* conn, Completion completion,
                               int64_t now) {
  conn->out = std::move(completion.wire);
  conn->out_pos = 0;
  conn->close_after_write = !completion.keep_alive;
  conn->linger_after_write = true;
  conn->counts_completed = true;

  // Shaping becomes a timer: the exchange's modelled delay is the
  // instant the first response byte may hit the socket.
  int64_t ready = conn->shaper.ScheduleResponse(
      now, conn->request_bytes, static_cast<int64_t>(conn->out.size()));
  conn->write_ready_at = ready > now ? ready : 0;
  conn->write_progress_at = ready > now ? 0 : now;

  if (completion.fault == netsim::FaultAction::kSlowBody) {
    // Slow loris: the header block goes out at full speed (the client
    // commits to this response), then the body trickles at the rule's
    // rate until done. Closes afterwards.
    size_t head_size = conn->out.size() - completion.body_size;
    int64_t rate = completion.body_rate > 0 ? completion.body_rate : 1;
    conn->trickle_step =
        static_cast<size_t>(std::max<int64_t>(1, rate / 20));
    conn->out_eligible =
        std::min(conn->out.size(), head_size + conn->trickle_step);
    conn->next_trickle_at = std::max(now, ready) + kTrickleIntervalMicros;
    conn->close_after_write = true;
  } else {
    conn->trickle_step = 0;
    conn->next_trickle_at = 0;
    conn->out_eligible = conn->out.size();
  }

  conn->state = ConnState::kWriting;
  UpdateInterest(conn, false, false);
  if (conn->write_ready_at > 0) {
    ArmHint(conn->write_ready_at);
  } else {
    FlushWrite(conn, now);
  }
}

void HttpServer::QueueCanned(ServerConnection* conn, int status_code,
                             std::string_view body, bool retry_after,
                             bool counts_completed, int64_t now) {
  // Wire-level defenses (shed 503s, 431, 413) skip the shaper: they
  // exist to get the peer off the socket as cheaply as possible.
  http::HttpResponse response;
  response.status_code = status_code;
  response.headers.Set("Content-Type", "text/plain");
  if (retry_after) {
    response.headers.Set("Retry-After",
                         std::to_string(config_.shed_retry_after_seconds));
  }
  response.headers.Set("Server", config_.server_name);
  response.headers.Set("Date", http::FormatHttpDate(WallSeconds()));
  response.headers.Set("Connection", "close");
  response.body = std::string(body);

  conn->out = response.Serialize();
  conn->out_pos = 0;
  conn->out_eligible = conn->out.size();
  conn->close_after_write = true;
  conn->linger_after_write = true;
  conn->counts_completed = counts_completed;
  conn->trickle_step = 0;
  conn->state = ConnState::kWriting;
  conn->write_ready_at = 0;
  conn->write_progress_at = now;
  UpdateInterest(conn, false, false);
  FlushWrite(conn, now);
}

void HttpServer::FlushWrite(ServerConnection* conn, int64_t now) {
  if (conn->write_ready_at > 0) {
    if (now < conn->write_ready_at) {
      ArmHint(conn->write_ready_at);
      return;
    }
    conn->write_ready_at = 0;
    conn->write_progress_at = now;
  }
  while (conn->out_pos < conn->out_eligible) {
    Result<size_t> n = conn->socket.WriteSome(
        std::string_view(conn->out)
            .substr(conn->out_pos, conn->out_eligible - conn->out_pos));
    if (!n.ok()) {
      if (n.status().IsTimeout()) {
        // Send buffer full: backpressure. Wait for EPOLLOUT, bounded by
        // the write-stall watchdog.
        UpdateInterest(conn, conn->read_interest, true);
        ArmHint(conn->write_progress_at + config_.write_stall_timeout_micros);
        return;
      }
      CloseConn(conn->id);
      return;
    }
    if (*n == 0) {
      UpdateInterest(conn, conn->read_interest, true);
      return;
    }
    conn->out_pos += *n;
    conn->write_progress_at = now;
    stats_.bytes_sent.fetch_add(*n, std::memory_order_relaxed);
  }
  if (conn->write_interest) {
    UpdateInterest(conn, conn->read_interest, false);
  }
  if (conn->out_pos < conn->out.size()) {
    ArmHint(conn->next_trickle_at);  // trickle continues on the timer
    return;
  }
  FinishResponse(conn, now);
}

void HttpServer::FinishResponse(ServerConnection* conn, int64_t now) {
  if (conn->counts_completed) {
    stats_.responses_completed.fetch_add(1, std::memory_order_relaxed);
  }
  conn->first_request = false;
  bool close = conn->close_after_write || draining_;
  bool linger = conn->linger_after_write || draining_;
  if (close) {
    if (linger) {
      StartLinger(conn, now + kLingerMicros, now);
    } else {
      CloseConn(conn->id);
    }
    return;
  }
  // Keep-alive: recycle for the next request.
  conn->state = ConnState::kReading;
  conn->out.clear();
  conn->out_pos = 0;
  conn->out_eligible = 0;
  conn->trickle_step = 0;
  conn->next_trickle_at = 0;
  conn->write_ready_at = 0;
  conn->write_progress_at = 0;
  conn->close_after_write = false;
  conn->linger_after_write = false;
  conn->counts_completed = false;
  conn->head_done = false;
  conn->last_byte_at = now;
  conn->request_started_at = conn->in_buf.empty() ? 0 : now;
  UpdateInterest(conn, !conn->peer_eof, false);
  ArmHint(now + config_.idle_timeout_micros);
  ProcessInput(conn, now);  // pipelined requests may already be buffered
}

void HttpServer::StartLinger(ServerConnection* conn, int64_t close_at,
                             int64_t now) {
  (void)now;
  conn->state = ConnState::kLingering;
  conn->close_at = close_at;
  conn->socket.ShutdownWrite();
  UpdateInterest(conn, true, false);  // watch for the peer's EOF
  ArmHint(close_at);
}

void HttpServer::SweepTimers(int64_t now) {
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& entry : conns_) ids.push_back(entry.first);
  for (uint64_t id : ids) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    ServerConnection* conn = it->second.get();
    switch (conn->state) {
      case ConnState::kReading: {
        bool mid_head = !conn->in_buf.empty() && !conn->head_done;
        int64_t header_timeout = config_.header_timeout_micros > 0
                                     ? config_.header_timeout_micros
                                     : config_.idle_timeout_micros;
        if (mid_head && conn->request_started_at > 0 &&
            now >= conn->request_started_at + header_timeout) {
          stats_.header_timeouts.fetch_add(1, std::memory_order_relaxed);
          CloseConn(id);
          break;
        }
        if (now >= conn->last_byte_at + config_.idle_timeout_micros) {
          if (mid_head) {
            stats_.header_timeouts.fetch_add(1, std::memory_order_relaxed);
          }
          CloseConn(id);  // idle keep-alive reap or abandoned request
        }
        break;
      }
      case ConnState::kDispatched:
        break;
      case ConnState::kWriting: {
        if (conn->write_ready_at > 0 && now >= conn->write_ready_at) {
          FlushWrite(conn, now);
          break;
        }
        if (conn->trickle_step > 0 && conn->out_pos == conn->out_eligible &&
            conn->out_eligible < conn->out.size() &&
            now >= conn->next_trickle_at) {
          conn->out_eligible = std::min(
              conn->out.size(), conn->out_eligible + conn->trickle_step);
          conn->next_trickle_at = now + kTrickleIntervalMicros;
          FlushWrite(conn, now);
          break;
        }
        if (conn->write_progress_at > 0 &&
            conn->out_pos < conn->out_eligible &&
            now >= conn->write_progress_at +
                       config_.write_stall_timeout_micros) {
          stats_.write_stall_aborts.fetch_add(1, std::memory_order_relaxed);
          CloseConn(id);
        }
        break;
      }
      case ConnState::kLingering:
        if (now >= conn->close_at) CloseConn(id);
        break;
    }
  }
  next_deadline_hint_ = 0;
  for (const auto& entry : conns_) {
    ArmHint(ConnDeadline(entry.second.get()));
  }
  if (draining_) ArmHint(drain_deadline_);
}

void HttpServer::UpdateInterest(ServerConnection* conn, bool readable,
                                bool writable) {
  if (conn->read_interest == readable && conn->write_interest == writable) {
    return;
  }
  conn->read_interest = readable;
  conn->write_interest = writable;
  (void)poller_.Modify(conn->socket.fd(), conn->id, readable, writable);
}

void HttpServer::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ServerConnection* conn = it->second.get();
  poller_.Remove(conn->socket.fd());
  conn->socket.Close();
  if (conn->counted_active) {
    stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  }
  conns_.erase(it);
}

}  // namespace httpd
}  // namespace davix
