#ifndef DAVIX_HTTPD_SERVER_H_
#define DAVIX_HTTPD_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "net/tcp_socket.h"
#include "netsim/fault_injector.h"
#include "netsim/link_profile.h"
#include "httpd/router.h"

namespace davix {
namespace httpd {

/// Configuration of an embedded HTTP server instance.
struct ServerConfig {
  /// TCP port; 0 picks an ephemeral port (read it back with port()).
  uint16_t port = 0;
  /// Simulated network path between clients and this server. Every
  /// accepted connection gets its own ConnectionShaper over this profile.
  netsim::LinkProfile link = netsim::LinkProfile::Loopback();
  /// Seed for the fault injector.
  uint64_t fault_seed = 1;
  /// Close keep-alive connections idle for longer than this.
  int64_t idle_timeout_micros = 30'000'000;
  /// Honour persistent connections. Disabling forces HTTP/1.0-style
  /// one-request-per-connection behaviour — the configuration the paper's
  /// §2.2 contrasts against.
  bool enable_keepalive = true;
  /// Server token reported in the Server header.
  std::string server_name = "davix-httpd/1.0";
  /// When non-empty, every request must carry HTTP Basic credentials
  /// matching user:password (a light stand-in for the grid's X.509
  /// authentication); others get 401.
  std::string basic_auth_user;
  std::string basic_auth_password;
};

/// Wire-level counters, separate from handler-level DavHandlerStats.
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_active{0};
  std::atomic<uint64_t> requests_handled{0};
  /// Requests served on an already-used connection: keep-alive hits.
  std::atomic<uint64_t> keepalive_reuses{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> bytes_received{0};
  std::atomic<uint64_t> faults_injected{0};
};

/// Minimal multithreaded HTTP/1.1 server (thread per connection) with
/// keep-alive, pipelining-compatible sequential request handling,
/// netsim-based traffic shaping and deterministic fault injection.
///
/// One instance models one storage node of the paper's grid; tests and
/// benchmarks start several of them on loopback to build multi-replica
/// topologies.
///
/// Thread-safe: yes — Stop() may be called from any number of threads
/// concurrently (each returns only once teardown has completed), and the
/// stats/fault accessors are safe while the server is serving.
class HttpServer {
 public:
  /// Starts listening and serving. The router must outlive the server.
  static Result<std::unique_ptr<HttpServer>> Start(
      ServerConfig config, std::shared_ptr<Router> router);

  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Stops accepting, closes active connections, joins all threads.
  void Stop();

  uint16_t port() const { return listener_.port(); }
  /// "http://127.0.0.1:<port>".
  std::string BaseUrl() const;

  netsim::FaultInjector& faults() { return faults_; }
  ServerStats& stats() { return stats_; }
  const ServerConfig& config() const { return config_; }

 private:
  HttpServer(ServerConfig config, std::shared_ptr<Router> router);

  void AcceptLoop();
  void HandleConnection(net::TcpSocket socket);
  bool CheckAuth(const http::HttpRequest& request) const;

  ServerConfig config_;
  std::shared_ptr<Router> router_;
  net::TcpListener listener_;
  netsim::FaultInjector faults_;
  ServerStats stats_;

  std::atomic<bool> stopping_{false};
  /// Serialises Stop() callers: exactly one joins each thread, and every
  /// caller returns only after teardown completed. Start()'s write of
  /// accept_thread_ takes it too, purely for the annotation — no Stop()
  /// can race construction.
  Mutex stop_mu_;
  std::thread accept_thread_ GUARDED_BY(stop_mu_);
  Mutex conn_mu_;
  std::vector<std::thread> connection_threads_ GUARDED_BY(conn_mu_);
  std::set<int> active_fds_ GUARDED_BY(conn_mu_);
};

}  // namespace httpd
}  // namespace davix

#endif  // DAVIX_HTTPD_SERVER_H_
