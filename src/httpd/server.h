#ifndef DAVIX_HTTPD_SERVER_H_
#define DAVIX_HTTPD_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "httpd/connection.h"
#include "httpd/router.h"
#include "net/poller.h"
#include "net/tcp_socket.h"
#include "netsim/fault_injector.h"
#include "netsim/link_profile.h"

namespace davix {
namespace httpd {

/// Configuration of an embedded HTTP server instance.
struct ServerConfig {
  /// TCP port; 0 picks an ephemeral port (read it back with port()).
  uint16_t port = 0;
  /// Simulated network path between clients and this server. Every
  /// accepted connection gets its own ConnectionShaper over this profile.
  netsim::LinkProfile link = netsim::LinkProfile::Loopback();
  /// Seed for the fault injector.
  uint64_t fault_seed = 1;
  /// Close keep-alive connections idle for longer than this.
  int64_t idle_timeout_micros = 30'000'000;
  /// Honour persistent connections. Disabling forces HTTP/1.0-style
  /// one-request-per-connection behaviour — the configuration the paper's
  /// §2.2 contrasts against.
  bool enable_keepalive = true;
  /// Server token reported in the Server header.
  std::string server_name = "davix-httpd/1.0";
  /// When non-empty, every request must carry HTTP Basic credentials
  /// matching user:password (a light stand-in for the grid's X.509
  /// authentication); others get 401.
  std::string basic_auth_user;
  std::string basic_auth_password;

  /// Worker pool executing router handlers. The reactor thread does all
  /// socket I/O; workers only compute responses, so a slow reader can
  /// never pin a worker.
  uint32_t worker_threads = 4;
  /// Hard connection cap. Connections accepted beyond it are shed with
  /// a best-effort 503 + Retry-After and closed (connections_shed).
  uint32_t max_connections = 1024;
  /// Admission control: when this many requests are already queued or
  /// running on the worker pool, further requests are answered 503 +
  /// Retry-After + Connection: close without dispatching (requests_shed).
  uint32_t max_dispatch_backlog = 256;
  /// Retry-After value (seconds) carried by shed responses.
  int shed_retry_after_seconds = 1;
  /// Slowloris defense: a request whose header block is still incomplete
  /// this long after its first byte is dropped (header_timeouts).
  /// 0 falls back to idle_timeout_micros.
  int64_t header_timeout_micros = 0;
  /// A response write that makes no progress for this long (client not
  /// reading, window closed) is aborted (write_stall_aborts).
  int64_t write_stall_timeout_micros = 10'000'000;
  /// Stop(): bound on finishing in-flight responses before hard-closing.
  int64_t drain_deadline_micros = 5'000'000;
  /// Request-size limits (431 on header abuse, 413 on body abuse).
  size_t max_request_line_bytes = 8 * 1024;
  size_t max_header_bytes = 64 * 1024;
  uint64_t max_body_bytes = 1024ull * 1024 * 1024;
  /// listen(2) backlog — deep enough for bench-scale connect bursts.
  int listen_backlog = 256;
};

/// Wire-level counters, separate from handler-level DavHandlerStats.
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_active{0};
  std::atomic<uint64_t> requests_handled{0};
  /// Requests served on an already-used connection: keep-alive hits.
  std::atomic<uint64_t> keepalive_reuses{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> bytes_received{0};
  std::atomic<uint64_t> faults_injected{0};

  /// Overload / degradation counters (docs/SERVER.md).
  /// Connections accepted over max_connections and turned away.
  std::atomic<uint64_t> connections_shed{0};
  /// Parsed requests answered 503 by admission control.
  std::atomic<uint64_t> requests_shed{0};
  /// Connections dropped because a request head stayed incomplete past
  /// the header timeout (server-side slowloris defense).
  std::atomic<uint64_t> header_timeouts{0};
  /// Responses aborted because the peer stopped draining them.
  std::atomic<uint64_t> write_stall_aborts{0};
  /// Graceful drains that finished every in-flight response in time.
  std::atomic<uint64_t> drain_completions{0};
  /// Responses written to the last byte (shed 503s included) — with no
  /// faults injected, a clean drain ends with
  /// requests_handled == responses_completed.
  std::atomic<uint64_t> responses_completed{0};
};

/// Event-driven HTTP/1.1 server: one epoll reactor thread owns every
/// socket (non-blocking, netsim-shaped via timers) and a bounded
/// ThreadPool runs router handlers. Degrades gracefully under overload —
/// connection cap with accept shedding, admission control with 503 +
/// Retry-After, request-size limits (431/413), header/idle/write-stall
/// timeouts, and a drain-deadline Stop() — instead of wedging.
///
/// One instance models one storage node of the paper's grid; tests and
/// benchmarks start several of them on loopback to build multi-replica
/// topologies.
///
/// Thread-safe: yes — Stop() may be called from any number of threads
/// concurrently (each returns only once teardown has completed), and the
/// stats/fault accessors and runtime limit setters are safe while the
/// server is serving.
class HttpServer {
 public:
  /// Starts listening and serving. The router must outlive the server.
  static Result<std::unique_ptr<HttpServer>> Start(
      ServerConfig config, std::shared_ptr<Router> router);

  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Graceful drain: stops accepting, closes idle connections, finishes
  /// in-flight responses within drain_deadline_micros, then closes the
  /// rest and joins the reactor and workers.
  void Stop();

  uint16_t port() const { return listener_.port(); }
  /// "http://127.0.0.1:<port>".
  std::string BaseUrl() const;

  netsim::FaultInjector& faults() { return faults_; }
  ServerStats& stats() { return stats_; }
  const ServerConfig& config() const { return config_; }

  /// Runtime overload-policy adjustment (benches flip these mid-run to
  /// drive healthy -> overload -> recovery phases). 0 sheds everything.
  void SetMaxDispatchBacklog(uint32_t limit) {
    max_dispatch_backlog_.store(limit, std::memory_order_relaxed);
  }
  void SetMaxConnections(uint32_t limit) {
    max_connections_.store(limit, std::memory_order_relaxed);
  }

 private:
  /// A worker-built response travelling back to the reactor thread.
  struct Completion {
    uint64_t conn_id = 0;
    std::string wire;
    size_t body_size = 0;
    bool keep_alive = true;
    netsim::FaultAction fault = netsim::FaultAction::kNone;
    int64_t body_rate = 0;
  };

  HttpServer(ServerConfig config, std::shared_ptr<Router> router);

  void ReactorLoop();

  // All methods below run on the reactor thread only.
  void BeginDrain(int64_t now);
  void HandleAccepts(int64_t now);
  void HandleConnEvent(const net::Poller::Event& event, int64_t now);
  void ReadInput(ServerConnection* conn, int64_t now);
  void ProcessInput(ServerConnection* conn, int64_t now);
  void OnRequest(ServerConnection* conn, http::HttpRequest request,
                 size_t wire_bytes, int64_t now);
  void DrainCompletions(int64_t now);
  void StartResponse(ServerConnection* conn, Completion completion,
                     int64_t now);
  void QueueCanned(ServerConnection* conn, int status_code,
                   std::string_view body, bool retry_after,
                   bool counts_completed, int64_t now);
  void FlushWrite(ServerConnection* conn, int64_t now);
  void FinishResponse(ServerConnection* conn, int64_t now);
  void StartLinger(ServerConnection* conn, int64_t close_at, int64_t now);
  void SweepTimers(int64_t now);
  void UpdateInterest(ServerConnection* conn, bool readable, bool writable);
  void CloseConn(uint64_t conn_id);
  /// Earliest armed deadline on `conn`, or 0 when none.
  int64_t ConnDeadline(const ServerConnection* conn) const;
  void ArmHint(int64_t deadline);

  bool CheckAuth(const http::HttpRequest& request) const;
  Completion BuildResponse(uint64_t conn_id, http::HttpRequest request,
                           netsim::FaultRule fault, bool keep_alive) const;

  ServerConfig config_;
  std::shared_ptr<Router> router_;
  net::TcpListener listener_;
  netsim::FaultInjector faults_;
  ServerStats stats_;

  net::Poller poller_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint32_t> max_connections_{0};
  std::atomic<uint32_t> max_dispatch_backlog_{0};
  /// Requests submitted to the pool whose completions the reactor has
  /// not collected yet — the admission-control backlog signal.
  std::atomic<uint32_t> dispatch_inflight_{0};

  /// Serialises Stop() callers: exactly one joins the reactor, and every
  /// caller returns only after teardown completed. Start()'s write of
  /// reactor_thread_ takes it too, purely for the annotation — no Stop()
  /// can race construction.
  Mutex stop_mu_;
  std::thread reactor_thread_ GUARDED_BY(stop_mu_);

  Mutex done_mu_;
  std::vector<Completion> completions_ GUARDED_BY(done_mu_);

  // Reactor-thread-only state below (no locks by design).
  uint64_t next_conn_id_ = 2;  // 0 = listener key, 1 = reserved
  std::unordered_map<uint64_t, std::unique_ptr<ServerConnection>> conns_;
  /// Earliest armed deadline across all connections (0 = none); a full
  /// sweep recomputes it, state changes only ever pull it earlier.
  int64_t next_deadline_hint_ = 0;
  bool draining_ = false;
  int64_t drain_deadline_ = 0;
};

}  // namespace httpd
}  // namespace davix

#endif  // DAVIX_HTTPD_SERVER_H_
