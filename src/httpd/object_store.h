#ifndef DAVIX_HTTPD_OBJECT_STORE_H_
#define DAVIX_HTTPD_OBJECT_STORE_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"

namespace davix {
namespace httpd {

/// An immutable stored object. Returned by reference-counted pointer so
/// request handlers can serve reads without holding the store lock.
struct StoredObject {
  std::string data;
  int64_t mtime_epoch_seconds = 0;
  std::string etag;
};

/// Metadata-only view of an object or collection.
struct ObjectMeta {
  uint64_t size = 0;
  int64_t mtime_epoch_seconds = 0;
  std::string etag;
  bool is_collection = false;
};

/// In-memory object store backing the embedded HTTP server: the "Disk
/// Pool Manager storage system" of the paper's test setup, reduced to
/// its protocol-visible essentials (a flat namespace of immutable blobs
/// plus WebDAV-style collections).
///
/// Thread-safe: yes — one internal mutex serialises all operations;
/// objects are immutable, so Get hands out shared pointers that outlive
/// the lock.
class ObjectStore {
 public:
  ObjectStore() = default;

  /// Stores (or replaces) the object at `path`. Returns true if the
  /// object already existed (HTTP 204 vs 201 semantics).
  bool Put(std::string_view path, std::string data);

  /// Fetches the object; kNotFound when absent.
  Result<std::shared_ptr<const StoredObject>> Get(std::string_view path) const;

  /// Removes an object or an (empty or not) collection rooted at `path`.
  Status Delete(std::string_view path);

  /// Object or collection metadata.
  Result<ObjectMeta> Stat(std::string_view path) const;

  /// Creates a collection; kInvalidArgument if something exists there.
  Status MakeCollection(std::string_view path);

  /// Renames an object. kNotFound when `from` is absent.
  Status Move(std::string_view from, std::string_view to);

  /// Server-side copy (objects are immutable, so this is O(1) sharing).
  Status Copy(std::string_view from, std::string_view to);

  /// Immediate children of collection `path` (names, not full paths).
  Result<std::vector<std::string>> ListChildren(std::string_view path) const;

  /// Number of stored objects (collections excluded).
  size_t ObjectCount() const;

  /// Sum of stored object sizes in bytes.
  uint64_t TotalBytes() const;

 private:
  static std::string Normalize(std::string_view path);

  mutable Mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const StoredObject>>
      objects_ GUARDED_BY(mu_);
  std::set<std::string> collections_ GUARDED_BY(mu_);
  uint64_t etag_counter_ GUARDED_BY(mu_) = 0;
};

}  // namespace httpd
}  // namespace davix

#endif  // DAVIX_HTTPD_OBJECT_STORE_H_
