#include "httpd/object_store.h"

#include "common/clock.h"
#include "common/string_util.h"

namespace davix {
namespace httpd {

std::string ObjectStore::Normalize(std::string_view path) {
  std::string out(path);
  if (out.empty() || out[0] != '/') out.insert(out.begin(), '/');
  while (out.size() > 1 && out.back() == '/') out.pop_back();
  return out;
}

bool ObjectStore::Put(std::string_view path, std::string data) {
  std::string key = Normalize(path);
  auto object = std::make_shared<StoredObject>();
  object->data = std::move(data);
  object->mtime_epoch_seconds = WallSeconds();
  MutexLock lock(mu_);
  object->etag = "\"dv-" + std::to_string(++etag_counter_) + "\"";
  bool existed = objects_.count(key) > 0;
  objects_[key] = std::move(object);
  // Implicitly create parent collections so PUT to a deep path works like
  // most object stores.
  std::string parent = key;
  while (true) {
    size_t slash = parent.rfind('/');
    if (slash == 0 || slash == std::string::npos) break;
    parent = parent.substr(0, slash);
    collections_.insert(parent);
  }
  return existed;
}

Result<std::shared_ptr<const StoredObject>> ObjectStore::Get(
    std::string_view path) const {
  std::string key = Normalize(path);
  MutexLock lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return Status::NotFound("no such object: " + key);
  }
  return it->second;
}

Status ObjectStore::Delete(std::string_view path) {
  std::string key = Normalize(path);
  MutexLock lock(mu_);
  if (objects_.erase(key) > 0) return Status::OK();
  if (collections_.count(key) > 0) {
    // Remove the collection and everything below it.
    collections_.erase(key);
    std::string prefix = key + "/";
    for (auto it = objects_.begin(); it != objects_.end();) {
      if (StartsWith(it->first, prefix)) {
        it = objects_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = collections_.begin(); it != collections_.end();) {
      if (StartsWith(*it, prefix)) {
        it = collections_.erase(it);
      } else {
        ++it;
      }
    }
    return Status::OK();
  }
  return Status::NotFound("no such object: " + key);
}

Result<ObjectMeta> ObjectStore::Stat(std::string_view path) const {
  std::string key = Normalize(path);
  MutexLock lock(mu_);
  auto it = objects_.find(key);
  if (it != objects_.end()) {
    ObjectMeta meta;
    meta.size = it->second->data.size();
    meta.mtime_epoch_seconds = it->second->mtime_epoch_seconds;
    meta.etag = it->second->etag;
    return meta;
  }
  if (key == "/" || collections_.count(key) > 0) {
    ObjectMeta meta;
    meta.is_collection = true;
    meta.mtime_epoch_seconds = WallSeconds();
    return meta;
  }
  return Status::NotFound("no such object: " + key);
}

Status ObjectStore::MakeCollection(std::string_view path) {
  std::string key = Normalize(path);
  MutexLock lock(mu_);
  if (objects_.count(key) > 0) {
    return Status::InvalidArgument("object exists at " + key);
  }
  collections_.insert(key);
  return Status::OK();
}

Status ObjectStore::Move(std::string_view from, std::string_view to) {
  std::string from_key = Normalize(from);
  std::string to_key = Normalize(to);
  MutexLock lock(mu_);
  auto it = objects_.find(from_key);
  if (it == objects_.end()) {
    return Status::NotFound("no such object: " + from_key);
  }
  objects_[to_key] = it->second;
  objects_.erase(it);
  return Status::OK();
}

Status ObjectStore::Copy(std::string_view from, std::string_view to) {
  std::string from_key = Normalize(from);
  std::string to_key = Normalize(to);
  MutexLock lock(mu_);
  auto it = objects_.find(from_key);
  if (it == objects_.end()) {
    return Status::NotFound("no such object: " + from_key);
  }
  objects_[to_key] = it->second;
  return Status::OK();
}

Result<std::vector<std::string>> ObjectStore::ListChildren(
    std::string_view path) const {
  std::string key = Normalize(path);
  MutexLock lock(mu_);
  if (key != "/" && collections_.count(key) == 0) {
    return Status::NotFound("no such collection: " + key);
  }
  std::string prefix = key == "/" ? "/" : key + "/";
  std::set<std::string> names;
  for (const auto& [object_path, object] : objects_) {
    if (!StartsWith(object_path, prefix)) continue;
    std::string rest = object_path.substr(prefix.size());
    size_t slash = rest.find('/');
    names.insert(slash == std::string::npos ? rest : rest.substr(0, slash));
  }
  for (const std::string& coll : collections_) {
    if (!StartsWith(coll, prefix)) continue;
    std::string rest = coll.substr(prefix.size());
    size_t slash = rest.find('/');
    names.insert(slash == std::string::npos ? rest : rest.substr(0, slash));
  }
  return std::vector<std::string>(names.begin(), names.end());
}

size_t ObjectStore::ObjectCount() const {
  MutexLock lock(mu_);
  return objects_.size();
}

uint64_t ObjectStore::TotalBytes() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& [path, object] : objects_) total += object->data.size();
  return total;
}

}  // namespace httpd
}  // namespace davix
