#include "httpd/connection.h"

#include <algorithm>
#include <string_view>
#include <utility>

#include "http/parser.h"
#include "net/buffered_reader.h"
#include "net/byte_source.h"

namespace davix {
namespace httpd {
namespace {

/// Offset just past the header terminator ("\r\n\r\n", tolerating bare
/// "\n\n" like the line parser does), or npos if not yet buffered.
size_t FindHeaderEnd(std::string_view buf) {
  size_t crlf = buf.find("\r\n\r\n");
  size_t lf = buf.find("\n\n");
  size_t end = std::string_view::npos;
  if (crlf != std::string_view::npos) end = crlf + 4;
  if (lf != std::string_view::npos) end = std::min(end, lf + 2);
  return end;
}

/// Chunked framing adds a size line + CRLF around every chunk. Anything
/// buffered past the decoded-size limit plus this slack without forming
/// a complete body is chunk abuse, not a slow sender.
uint64_t ChunkFramingSlack(uint64_t max_body_bytes) {
  return max_body_bytes / 8 + 4096;
}

}  // namespace

AssembleOutcome RequestAssembler::Poll(std::string* buf,
                                       http::HttpRequest* out,
                                       size_t* wire_bytes,
                                       bool* head_done) const {
  *head_done = false;
  if (buf->empty()) return AssembleOutcome::kNeedMore;

  // Request-line bound: the first line must terminate within budget.
  size_t line_end = buf->find('\n');
  if (line_end == std::string::npos) {
    return buf->size() > limits_.max_request_line_bytes
               ? AssembleOutcome::kHeaderTooLarge
               : AssembleOutcome::kNeedMore;
  }
  if (line_end > limits_.max_request_line_bytes) {
    return AssembleOutcome::kHeaderTooLarge;
  }

  // Header-block bound, enforced on raw bytes before parsing.
  size_t head_end = FindHeaderEnd(*buf);
  if (head_end == std::string::npos) {
    return buf->size() > limits_.max_header_bytes
               ? AssembleOutcome::kHeaderTooLarge
               : AssembleOutcome::kNeedMore;
  }
  if (head_end > limits_.max_header_bytes) {
    return AssembleOutcome::kHeaderTooLarge;
  }
  *head_done = true;

  net::StringSource head_source(buf->substr(0, head_end));
  net::BufferedReader head_reader(&head_source);
  Result<http::HttpRequest> head =
      http::MessageReader::ReadRequestHead(&head_reader);
  if (!head.ok()) return AssembleOutcome::kMalformed;
  http::HttpRequest request = std::move(*head);

  if (request.headers.ListContains("Transfer-Encoding", "chunked")) {
    net::StringSource body_source(buf->substr(head_end));
    net::BufferedReader body_reader(&body_source);
    Status body_status =
        http::MessageReader::ReadRequestBody(&body_reader, &request);
    if (!body_status.ok()) {
      if (body_status.code() != StatusCode::kConnectionReset) {
        return AssembleOutcome::kMalformed;
      }
      // Truncated chunk stream: more bytes may complete it — unless the
      // buffered framing already outgrew any legal body.
      uint64_t buffered = buf->size() - head_end;
      return buffered > limits_.max_body_bytes +
                            ChunkFramingSlack(limits_.max_body_bytes)
                 ? AssembleOutcome::kBodyTooLarge
                 : AssembleOutcome::kNeedMore;
    }
    if (request.body.size() > limits_.max_body_bytes) {
      return AssembleOutcome::kBodyTooLarge;
    }
    *wire_bytes = head_end + body_reader.bytes_consumed();
  } else if (request.headers.Has("Content-Length")) {
    std::optional<uint64_t> content_length =
        request.headers.GetUint64("Content-Length");
    // Unparseable or overflowing declarations get the same answer an
    // honestly-declared oversized body would: 413, not a hung read.
    if (!content_length || *content_length > limits_.max_body_bytes) {
      return AssembleOutcome::kBodyTooLarge;
    }
    if (buf->size() - head_end < *content_length) {
      return AssembleOutcome::kNeedMore;
    }
    request.body = buf->substr(head_end, *content_length);
    *wire_bytes = head_end + static_cast<size_t>(*content_length);
  } else {
    *wire_bytes = head_end;
  }

  buf->erase(0, *wire_bytes);
  *out = std::move(request);
  return AssembleOutcome::kReady;
}

}  // namespace httpd
}  // namespace davix
