#include "httpd/dav_handler.h"

#include <array>

#include "common/base64.h"
#include "common/checksum.h"
#include "common/string_util.h"
#include "common/uri.h"
#include "http/multipart.h"
#include "http/range.h"
#include "xml/xml.h"

namespace davix {
namespace httpd {

std::string RequestPath(const http::HttpRequest& request) {
  std::string_view target = request.target;
  size_t q = target.find('?');
  if (q != std::string_view::npos) target = target.substr(0, q);
  Result<std::string> decoded = UrlDecode(target);
  return decoded.ok() ? *decoded : std::string(target);
}

void DavHandler::Register(Router* router, const std::string& prefix) {
  // Share ownership with the route when possible so the handler cannot
  // dangle behind a long-lived router.
  std::shared_ptr<DavHandler> self = weak_from_this().lock();
  router->HandleAll(prefix,
                    [this, self](const http::HttpRequest& request,
                                 http::HttpResponse* response) {
                      Handle(request, response);
                    });
}

void DavHandler::Handle(const http::HttpRequest& request,
                        http::HttpResponse* response) {
  switch (request.method) {
    case http::Method::kGet:
      stats_.get_requests.fetch_add(1, std::memory_order_relaxed);
      DoGet(request, response, /*head_only=*/false);
      return;
    case http::Method::kHead:
      stats_.head_requests.fetch_add(1, std::memory_order_relaxed);
      DoGet(request, response, /*head_only=*/true);
      return;
    case http::Method::kPut:
      stats_.put_requests.fetch_add(1, std::memory_order_relaxed);
      DoPut(request, response);
      return;
    case http::Method::kDelete:
      stats_.delete_requests.fetch_add(1, std::memory_order_relaxed);
      DoDelete(request, response);
      return;
    case http::Method::kMkcol:
      DoMkcol(request, response);
      return;
    case http::Method::kMove:
      DoMove(request, response);
      return;
    case http::Method::kCopy:
      DoCopy(request, response);
      return;
    case http::Method::kOptions:
      DoOptions(response);
      return;
    case http::Method::kPropfind:
      stats_.propfind_requests.fetch_add(1, std::memory_order_relaxed);
      DoPropfind(request, response);
      return;
    default:
      response->status_code = 405;
      response->headers.Set("Allow",
                            "GET, HEAD, PUT, DELETE, OPTIONS, MKCOL, "
                            "PROPFIND, MOVE");
  }
}

void DavHandler::DoGet(const http::HttpRequest& request,
                       http::HttpResponse* response, bool head_only) {
  std::string path = RequestPath(request);
  Result<std::shared_ptr<const StoredObject>> object = store_->Get(path);
  if (!object.ok()) {
    response->status_code = 404;
    response->body = head_only ? "" : object.status().ToString() + "\n";
    return;
  }
  const StoredObject& obj = **object;
  const uint64_t size = obj.data.size();

  response->headers.Set("ETag", obj.etag);
  response->headers.Set("Last-Modified",
                        http::FormatHttpDate(obj.mtime_epoch_seconds));
  response->headers.Set("Accept-Ranges", "bytes");

  // RFC 3230 instance digests: "Want-Digest: md5" gets the whole-entity
  // md5 back, which davix uses to verify downloads (davix-checksum).
  if (std::optional<std::string> want = request.headers.Get("Want-Digest")) {
    if (want->find("md5") != std::string::npos) {
      Md5 md5;
      md5.Update(obj.data);
      std::array<uint8_t, 16> digest = md5.Digest();
      response->headers.Set(
          "Digest",
          "md5=" + Base64Encode(std::string_view(
                       reinterpret_cast<char*>(digest.data()),
                       digest.size())));
    }
  }

  std::optional<std::string> range_header = request.headers.Get("Range");
  if (range_header && !head_only) {
    Result<std::vector<http::ByteRange>> ranges =
        http::ParseRangeHeader(*range_header, size);
    if (!ranges.ok()) {
      response->status_code = 416;
      response->headers.Set("Content-Range",
                            "bytes */" + std::to_string(size));
      return;
    }
    if (ranges->size() > 1 && !support_multirange_) {
      // Server without multi-range support: serve the full entity (200),
      // which is standards-compliant (Range is a SHOULD).
      response->status_code = 200;
      response->headers.Set("Content-Type", "application/octet-stream");
      response->body = obj.data;
      stats_.bytes_served.fetch_add(size, std::memory_order_relaxed);
      return;
    }
    if (max_ranges_ > 0 && ranges->size() > max_ranges_) {
      response->status_code = 416;
      response->headers.Set("Content-Range",
                            "bytes */" + std::to_string(size));
      return;
    }
    if (ranges->size() == 1) {
      stats_.range_requests.fetch_add(1, std::memory_order_relaxed);
      stats_.ranges_served.fetch_add(1, std::memory_order_relaxed);
      const http::ByteRange& r = (*ranges)[0];
      response->status_code = 206;
      response->headers.Set("Content-Type", "application/octet-stream");
      response->headers.Set("Content-Range",
                            http::FormatContentRange(r, size));
      response->body = obj.data.substr(r.offset, r.length);
      stats_.bytes_served.fetch_add(r.length, std::memory_order_relaxed);
      return;
    }
    // Multi-range: 206 with multipart/byteranges body (§2.3's wire form).
    stats_.multirange_requests.fetch_add(1, std::memory_order_relaxed);
    stats_.ranges_served.fetch_add(ranges->size(), std::memory_order_relaxed);
    std::vector<http::BytesPart> parts;
    parts.reserve(ranges->size());
    for (const http::ByteRange& r : *ranges) {
      http::BytesPart part;
      part.range = r;
      part.total_size = size;
      part.data = obj.data.substr(r.offset, r.length);
      stats_.bytes_served.fetch_add(r.length, std::memory_order_relaxed);
      parts.push_back(std::move(part));
    }
    std::string boundary = http::GenerateBoundary(
        parts, boundary_salt_.fetch_add(1, std::memory_order_relaxed));
    response->status_code = 206;
    response->headers.Set(
        "Content-Type", "multipart/byteranges; boundary=" + boundary);
    response->body = http::BuildMultipartBody(parts, boundary);
    return;
  }

  response->status_code = 200;
  response->headers.Set("Content-Type", "application/octet-stream");
  response->headers.Set("Content-Length", std::to_string(size));
  if (!head_only) {
    response->body = obj.data;
    stats_.bytes_served.fetch_add(size, std::memory_order_relaxed);
  }
}

void DavHandler::DoPut(const http::HttpRequest& request,
                       http::HttpResponse* response) {
  std::string path = RequestPath(request);
  bool existed = store_->Put(path, request.body);
  response->status_code = existed ? 204 : 201;
}

void DavHandler::DoDelete(const http::HttpRequest& request,
                          http::HttpResponse* response) {
  std::string path = RequestPath(request);
  Status st = store_->Delete(path);
  response->status_code = st.ok() ? 204 : 404;
}

void DavHandler::DoMkcol(const http::HttpRequest& request,
                         http::HttpResponse* response) {
  std::string path = RequestPath(request);
  Status st = store_->MakeCollection(path);
  response->status_code = st.ok() ? 201 : 409;
}

void DavHandler::DoMove(const http::HttpRequest& request,
                        http::HttpResponse* response) {
  std::string from = RequestPath(request);
  std::optional<std::string> destination =
      request.headers.Get("Destination");
  if (!destination) {
    response->status_code = 400;
    response->body = "MOVE requires Destination header\n";
    return;
  }
  std::string to = *destination;
  // Destination may be an absolute URL; keep just the path.
  if (to.find("://") != std::string::npos) {
    Result<Uri> uri = Uri::Parse(to);
    if (!uri.ok()) {
      response->status_code = 400;
      return;
    }
    to = uri->path();
  }
  Status st = store_->Move(from, to);
  response->status_code = st.ok() ? 201 : 404;
}

void DavHandler::DoCopy(const http::HttpRequest& request,
                        http::HttpResponse* response) {
  std::string from = RequestPath(request);
  std::optional<std::string> destination = request.headers.Get("Destination");
  if (!destination) {
    response->status_code = 400;
    response->body = "COPY requires Destination header\n";
    return;
  }
  std::string to = *destination;
  if (to.find("://") != std::string::npos) {
    Result<Uri> uri = Uri::Parse(to);
    if (!uri.ok()) {
      response->status_code = 400;
      return;
    }
    to = uri->path();
  }
  Status st = store_->Copy(from, to);
  response->status_code = st.ok() ? 201 : 404;
}

void DavHandler::DoOptions(http::HttpResponse* response) {
  response->status_code = 200;
  response->headers.Set("Allow",
                        "GET, HEAD, PUT, DELETE, OPTIONS, MKCOL, PROPFIND, "
                        "MOVE, COPY");
  response->headers.Set("DAV", "1");
  response->headers.Set("Accept-Ranges", "bytes");
}

namespace {

/// Appends one <D:response> element describing `path`.
void AppendPropfindResponse(xml::XmlNode* multistatus, const std::string& path,
                            const ObjectMeta& meta) {
  xml::XmlNode* resp = multistatus->AddChild("D:response");
  resp->AddChild("D:href")->set_text(UrlEncodePath(path));
  xml::XmlNode* propstat = resp->AddChild("D:propstat");
  xml::XmlNode* prop = propstat->AddChild("D:prop");
  if (meta.is_collection) {
    prop->AddChild("D:resourcetype")->AddChild("D:collection");
  } else {
    prop->AddChild("D:resourcetype");
    prop->AddChild("D:getcontentlength")
        ->set_text(std::to_string(meta.size));
    if (!meta.etag.empty()) prop->AddChild("D:getetag")->set_text(meta.etag);
  }
  prop->AddChild("D:getlastmodified")
      ->set_text(http::FormatHttpDate(meta.mtime_epoch_seconds));
  propstat->AddChild("D:status")->set_text("HTTP/1.1 200 OK");
}

}  // namespace

void DavHandler::DoPropfind(const http::HttpRequest& request,
                            http::HttpResponse* response) {
  std::string path = RequestPath(request);
  Result<ObjectMeta> meta = store_->Stat(path);
  if (!meta.ok()) {
    response->status_code = 404;
    return;
  }
  std::string depth = request.headers.Get("Depth").value_or("1");

  xml::XmlNode multistatus("D:multistatus");
  multistatus.SetAttribute("xmlns:D", "DAV:");
  AppendPropfindResponse(&multistatus, path, *meta);

  if (meta->is_collection && depth != "0") {
    Result<std::vector<std::string>> children = store_->ListChildren(path);
    if (children.ok()) {
      std::string base = path == "/" ? "/" : path + "/";
      for (const std::string& name : *children) {
        std::string child_path = base + name;
        Result<ObjectMeta> child_meta = store_->Stat(child_path);
        if (child_meta.ok()) {
          AppendPropfindResponse(&multistatus, child_path, *child_meta);
        }
      }
    }
  }

  response->status_code = 207;
  response->headers.Set("Content-Type", "application/xml; charset=utf-8");
  response->body = "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n" +
                   multistatus.Serialize(1);
}

}  // namespace httpd
}  // namespace davix
