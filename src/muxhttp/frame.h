#ifndef DAVIX_MUXHTTP_FRAME_H_
#define DAVIX_MUXHTTP_FRAME_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "http/message.h"
#include "net/buffered_reader.h"

namespace davix {
namespace muxhttp {

/// The framed multiplexing wire protocol (the paper's §2.2 SPDY-style
/// alternative, promoted from a demo into a real client transport).
///
/// One TCP connection carries any number of concurrent streams; each
/// stream is one HTTP request/response exchange. Frames from different
/// streams interleave freely, so one slow response never head-of-line
/// blocks the others — the trade-off §2.2 weighs against pooled
/// HTTP/1.1's one-socket-per-request.
///
/// Wire format per frame (all integers little-endian):
///
///   u32 stream_id | u8 type | u8 flags | u32 payload length | payload
///
/// Frame types:
///   HEADERS  payload = a serialised HTTP head (request line or status
///            line, headers, blank line — no body bytes). Opens the
///            stream in the sending direction.
///   DATA     payload = a chunk of body bytes, appended in frame order.
///   RST      payload = 1-byte error code + UTF-8 message. Kills one
///            stream without touching the connection.
///
/// The END_STREAM flag on a HEADERS or DATA frame marks the last frame
/// of that direction of the stream. Bodies are therefore delimited by
/// framing, not by Content-Length; when a Content-Length is present it
/// is cross-checked (mismatch = per-stream error), except that a
/// declared length with a zero-length body is accepted — the shape of a
/// HEAD response.
///
/// Protocol violations are split deliberately:
///   - a RST, a malformed HTTP head, or a body-length mismatch is a
///     *stream* error: that exchange fails, the connection lives on;
///   - an unknown frame type, unknown flags, an oversized length, a
///     duplicate HEADERS, or DATA for a stream never opened is a
///     *connection* error: framing sync is gone, tear it all down.
constexpr size_t kMuxFrameHeaderSize = 10;
constexpr uint32_t kMaxMuxPayload = 256 * 1024 * 1024;
/// Body bytes per DATA frame on the send path. Small enough that a
/// multi-megabyte response releases the connection's write lock many
/// times (other streams interleave), large enough to amortise the
/// 10-byte header.
constexpr size_t kMuxDataChunkBytes = 64 * 1024;

/// Frame kinds on the wire: HEADERS opens a stream and carries the
/// serialized HTTP head, DATA carries body bytes, RST kills one stream.
enum class MuxFrameType : uint8_t {
  kHeaders = 1,
  kData = 2,
  kRst = 3,
};

/// Last frame of this direction of the stream.
constexpr uint8_t kMuxFlagEndStream = 0x01;

/// Error codes carried in the first payload byte of a RST frame.
enum class MuxRstCode : uint8_t {
  kProtocolError = 1,  ///< peer violated the stream's HTTP contract
  kInternalError = 2,  ///< handler failed; nothing wrong with the request
  kRefusedStream = 3,  ///< per-connection stream limit hit; retry elsewhere
  kCancelled = 4,      ///< sender lost interest (deadline expiry, close)
};

/// One decoded frame.
struct MuxFrame {
  uint32_t stream_id = 0;
  MuxFrameType type = MuxFrameType::kHeaders;
  uint8_t flags = 0;
  std::string payload;

  bool end_stream() const { return (flags & kMuxFlagEndStream) != 0; }
};

/// Serialises one frame (header + payload) for the wire.
std::string SerializeMuxFrame(const MuxFrame& frame);

/// Convenience form building the frame inline.
std::string SerializeMuxFrame(uint32_t stream_id, MuxFrameType type,
                              uint8_t flags, std::string_view payload);

/// Reads and validates one frame. Fails with kProtocolError on a zero
/// stream id, unknown type, unknown flag bits, or a length above
/// kMaxMuxPayload — without consuming the oversized payload (never
/// over-reads). kConnectionReset on EOF mid-frame.
Result<MuxFrame> ReadMuxFrame(net::BufferedReader* reader);

/// Builds / parses the RST payload (code byte + message).
std::string MakeRstPayload(MuxRstCode code, std::string_view message);

/// A decoded RST payload: the error code plus its free-text message.
struct MuxRstInfo {
  MuxRstCode code = MuxRstCode::kInternalError;
  std::string message;
};
Result<MuxRstInfo> ParseMuxRstPayload(std::string_view payload);

/// Maps a received RST to the Status the stream's caller sees.
/// kRefusedStream and kInternalError are retryable (kRemoteError /
/// kConnectionFailed); kCancelled maps to kCancelled; kProtocolError to
/// kProtocolError.
Status RstToStatus(const MuxRstInfo& rst);

/// Splits one HTTP message (pre-serialised head + body) into the frame
/// sequence that carries it: HEADERS, then DATA chunks of `chunk_bytes`,
/// END_STREAM on the last frame (on HEADERS itself when the body is
/// empty).
std::vector<MuxFrame> FrameMessage(uint32_t stream_id, std::string head,
                                   std::string_view body,
                                   size_t chunk_bytes = kMuxDataChunkBytes);

/// Reassembles interleaved frames back into complete HTTP messages —
/// the per-connection demux state machine shared by the client (frames
/// in are responses) and the server (frames in are requests).
///
/// OnFrame returns:
///   - an error Status: *connection-fatal* protocol violation — the
///     caller must tear the connection down (every stream dies);
///   - an Event with `stream_error`: that one stream failed (peer RST,
///     malformed head, body-length mismatch); other streams unaffected;
///   - an Event with a complete `request`/`response`;
///   - nullopt: frame absorbed, message still assembling.
///
/// In kResponse mode the set of legal stream ids is closed: the client
/// registers each id via ExpectStream before its request hits the wire,
/// and frames for unregistered ids are connection-fatal (except ids
/// released by Forget — a locally cancelled stream's late frames are
/// dropped silently). In kRequest mode HEADERS opens streams
/// implicitly.
///
/// Thread-safe: no — one assembler belongs to one connection's reader;
/// core::MuxConnection guards it with a mutex because cancel/expect
/// arrive from requester threads.
class MuxStreamAssembler {
 public:
  enum class Mode { kRequest, kResponse };

  struct Event {
    uint32_t stream_id = 0;
    /// Exactly one of the three is set.
    std::optional<http::HttpRequest> request;
    std::optional<http::HttpResponse> response;
    std::optional<Status> stream_error;
  };

  explicit MuxStreamAssembler(Mode mode) : mode_(mode) {}

  /// Feeds one frame; see the class comment for the outcome contract.
  Result<std::optional<Event>> OnFrame(MuxFrame frame);

  /// kResponse mode: registers a stream id about to be used for a
  /// request. `head_only` marks HEAD exchanges, whose responses may
  /// declare a Content-Length they never send.
  void ExpectStream(uint32_t stream_id, bool head_only);

  /// Releases a stream (local cancel / delivery done): state is dropped
  /// and late frames for the id are ignored instead of fatal.
  void Forget(uint32_t stream_id);

  /// Streams currently open or expected (not yet completed/forgotten).
  size_t open_streams() const;

 private:
  struct StreamState {
    bool have_head = false;
    bool head_only = false;
    std::optional<uint64_t> declared_length;
    http::HttpRequest request;
    http::HttpResponse response;
    std::string body;
  };

  /// Completes or fails the stream; always closes it.
  Event FinishStream(uint32_t stream_id, StreamState state);
  Event FailStream(uint32_t stream_id, Status status);

  Mode mode_;
  std::unordered_map<uint32_t, StreamState> streams_;
  /// Ids released by Forget whose late frames must be tolerated. Pruned
  /// wholesale when it grows past a bound — a tolerated id resurfacing
  /// after that many other streams is a peer bug we surface instead.
  std::unordered_set<uint32_t> forgotten_;
};

}  // namespace muxhttp
}  // namespace davix

#endif  // DAVIX_MUXHTTP_FRAME_H_
