#include "muxhttp/mux.h"

#include <sys/socket.h>

#include "common/clock.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "http/parser.h"
#include "net/byte_source.h"
#include "net/socket_address.h"
#include "netsim/shaper.h"

namespace davix {
namespace muxhttp {
namespace {

constexpr int64_t kAcceptPollMicros = 50'000;
constexpr size_t kWorkersPerConnection = 8;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

std::string SerializeMuxFrame(uint32_t stream_id, std::string_view payload) {
  std::string out;
  out.reserve(kMuxFrameHeaderSize + payload.size());
  PutU32(&out, stream_id);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

Result<std::pair<uint32_t, std::string>> ReadMuxFrame(
    net::BufferedReader* reader) {
  std::string head;
  DAVIX_RETURN_IF_ERROR(reader->ReadExact(&head, kMuxFrameHeaderSize));
  uint32_t stream_id = GetU32(head.data());
  uint32_t length = GetU32(head.data() + 4);
  if (length > kMaxMuxPayload) {
    return Status::ProtocolError("mux frame too large");
  }
  std::string payload;
  DAVIX_RETURN_IF_ERROR(reader->ReadExact(&payload, length));
  return std::make_pair(stream_id, std::move(payload));
}

Result<http::HttpResponse> ParseResponsePayload(std::string payload) {
  net::StringSource source(std::move(payload));
  net::BufferedReader reader(&source);
  DAVIX_ASSIGN_OR_RETURN(http::HttpResponse response,
                         http::MessageReader::ReadResponseHead(&reader));
  DAVIX_RETURN_IF_ERROR(
      http::MessageReader::ReadResponseBody(&reader, false, &response));
  return response;
}

Result<http::HttpRequest> ParseRequestPayload(std::string payload) {
  net::StringSource source(std::move(payload));
  net::BufferedReader reader(&source);
  DAVIX_ASSIGN_OR_RETURN(http::HttpRequest request,
                         http::MessageReader::ReadRequestHead(&reader));
  DAVIX_RETURN_IF_ERROR(
      http::MessageReader::ReadRequestBody(&reader, &request));
  return request;
}

// ----------------------------------------------------------------- server

MuxServer::MuxServer(MuxServerConfig config,
                     std::shared_ptr<httpd::Router> router)
    : config_(std::move(config)), router_(std::move(router)) {}

Result<std::unique_ptr<MuxServer>> MuxServer::Start(
    MuxServerConfig config, std::shared_ptr<httpd::Router> router) {
  std::unique_ptr<MuxServer> server(
      new MuxServer(std::move(config), std::move(router)));
  DAVIX_ASSIGN_OR_RETURN(server->listener_,
                         net::TcpListener::Listen(server->config_.port));
  {
    MutexLock lock(server->stop_mu_);
    server->accept_thread_ =
        std::thread([s = server.get()] { s->AcceptLoop(); });
  }
  return server;
}

MuxServer::~MuxServer() { Stop(); }

std::string MuxServer::BaseUrl() const {
  return "muxhttp://127.0.0.1:" + std::to_string(port());
}

void MuxServer::Stop() {
  stopping_.store(true, std::memory_order_relaxed);
  // Same discipline as HttpServer::Stop: stop_mu_ makes concurrent
  // callers safe — one joins, the rest wait for teardown to finish.
  MutexLock lock(stop_mu_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  std::vector<std::thread> threads;
  {
    MutexLock conn_lock(conn_mu_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void MuxServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<net::TcpSocket> socket = listener_.Accept(kAcceptPollMicros);
    if (!socket.ok()) {
      if (socket.status().IsTimeout()) continue;
      return;
    }
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(conn_mu_);
    connection_threads_.emplace_back(
        [this, sock = std::move(*socket)]() mutable {
          HandleConnection(std::move(sock));
        });
  }
}

void MuxServer::HandleConnection(net::TcpSocket socket) {
  {
    MutexLock lock(conn_mu_);
    active_fds_.insert(socket.fd());
  }
  (void)socket.SetNoDelay(true);
  netsim::ConnectionShaper shaper(config_.link);
  Mutex shaper_mu;
  Mutex write_mu;
  net::BufferedReader reader(&socket, config_.idle_timeout_micros);
  ThreadPool workers(kWorkersPerConnection);

  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<std::pair<uint32_t, std::string>> frame = ReadMuxFrame(&reader);
    if (!frame.ok()) break;
    stats_.requests_handled.fetch_add(1, std::memory_order_relaxed);
    uint32_t stream_id = frame->first;
    int64_t request_bytes =
        static_cast<int64_t>(kMuxFrameHeaderSize + frame->second.size());

    auto task = [&, stream_id, payload = std::move(frame->second),
                 request_bytes]() mutable {
      http::HttpResponse response;
      Result<http::HttpRequest> request =
          ParseRequestPayload(std::move(payload));
      if (request.ok()) {
        router_->Dispatch(*request, &response);
      } else {
        response.status_code = 400;
        response.body = request.status().ToString() + "\n";
      }
      response.headers.Set("Server", "davix-muxhttp/1.0");
      std::string wire =
          SerializeMuxFrame(stream_id, response.Serialize());
      netsim::ConnectionShaper::ExchangePlan plan;
      {
        MutexLock lock(shaper_mu);
        plan = shaper.PlanExchange(request_bytes,
                                   static_cast<int64_t>(wire.size()));
      }
      SleepForMicros(plan.latency_micros);
      MutexLock lock(write_mu);
      SleepForMicros(plan.bandwidth_micros);
      (void)socket.WriteAll(wire);
    };
    if (!workers.Submit(std::move(task))) break;
  }
  workers.Shutdown();
  {
    MutexLock lock(conn_mu_);
    active_fds_.erase(socket.fd());
  }
  socket.Close();
}

// ----------------------------------------------------------------- client

Result<std::unique_ptr<MuxClient>> MuxClient::Connect(
    const std::string& host, uint16_t port,
    int64_t operation_timeout_micros) {
  DAVIX_ASSIGN_OR_RETURN(net::SocketAddress address,
                         net::SocketAddress::Resolve(host, port));
  DAVIX_ASSIGN_OR_RETURN(net::TcpSocket socket,
                         net::TcpSocket::Connect(address));
  (void)socket.SetNoDelay(true);
  std::unique_ptr<MuxClient> client(new MuxClient());
  client->socket_ = std::make_unique<net::TcpSocket>(std::move(socket));
  client->reader_ = std::make_unique<net::BufferedReader>(
      client->socket_.get(), operation_timeout_micros);
  client->alive_.store(true, std::memory_order_relaxed);
  client->reader_thread_ = std::thread([c = client.get()] { c->ReaderLoop(); });
  return client;
}

MuxClient::~MuxClient() {
  stopping_.store(true, std::memory_order_relaxed);
  if (socket_ != nullptr && socket_->IsOpen()) {
    ::shutdown(socket_->fd(), SHUT_RDWR);
  }
  if (reader_thread_.joinable()) reader_thread_.join();
  FailAll(Status::Cancelled("client destroyed"));
}

void MuxClient::ReaderLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<std::pair<uint32_t, std::string>> frame =
        ReadMuxFrame(reader_.get());
    if (!frame.ok()) {
      if (!stopping_.load(std::memory_order_relaxed)) {
        FailAll(frame.status().WithContext("mux connection lost"));
      }
      return;
    }
    std::promise<Result<http::HttpResponse>> promise;
    bool found = false;
    {
      MutexLock lock(mu_);
      auto it = pending_.find(frame->first);
      if (it != pending_.end()) {
        promise = std::move(it->second);
        pending_.erase(it);
        found = true;
      }
    }
    if (!found) continue;
    promise.set_value(ParseResponsePayload(std::move(frame->second)));
  }
}

void MuxClient::FailAll(const Status& status) {
  alive_.store(false, std::memory_order_relaxed);
  std::unordered_map<uint32_t, std::promise<Result<http::HttpResponse>>>
      orphans;
  {
    MutexLock lock(mu_);
    orphans.swap(pending_);
  }
  for (auto& [id, promise] : orphans) promise.set_value(status);
}

std::future<Result<http::HttpResponse>> MuxClient::ExecuteAsync(
    const http::HttpRequest& request) {
  std::promise<Result<http::HttpResponse>> failed;
  if (!alive_.load(std::memory_order_relaxed)) {
    failed.set_value(Status::ConnectionReset("mux client not connected"));
    return failed.get_future();
  }
  std::future<Result<http::HttpResponse>> future;
  {
    MutexLock lock(mu_);
    while (pending_.count(next_stream_id_) > 0 || next_stream_id_ == 0) {
      ++next_stream_id_;
    }
    uint32_t stream_id = next_stream_id_++;
    std::promise<Result<http::HttpResponse>> promise;
    future = promise.get_future();
    pending_.emplace(stream_id, std::move(promise));
    std::string wire = SerializeMuxFrame(stream_id, request.Serialize());
    Status write_status = socket_->WriteAll(wire);
    if (!write_status.ok()) {
      auto it = pending_.find(stream_id);
      std::promise<Result<http::HttpResponse>> orphan = std::move(it->second);
      pending_.erase(it);
      orphan.set_value(write_status.WithContext("mux send"));
      return future;
    }
    requests_sent_.fetch_add(1, std::memory_order_relaxed);
  }
  return future;
}

Result<http::HttpResponse> MuxClient::Execute(
    const http::HttpRequest& request) {
  return ExecuteAsync(request).get();
}

}  // namespace muxhttp
}  // namespace davix
