#include "muxhttp/mux.h"

#include <sys/socket.h>

#include <unordered_set>

#include "common/clock.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "netsim/shaper.h"

namespace davix {
namespace muxhttp {
namespace {

constexpr int64_t kAcceptPollMicros = 50'000;
constexpr size_t kWorkersPerConnection = 8;

/// Per-connection state shared between the reader (the connection
/// thread) and the response workers. Lives on HandleConnection's stack;
/// workers.Shutdown() runs before it goes out of scope, so references
/// captured by worker tasks never dangle.
///
/// Thread-safe: yes — `write_mu` serialises socket writes and guards the
/// broken flag and cancel set; `shaper_mu` guards the shared shaper; the
/// socket pointer and link profile are immutable per connection.
struct ConnState {
  ConnState(net::TcpSocket* socket, const netsim::LinkProfile& link)
      : socket(socket), shaper(link) {}

  net::TcpSocket* socket;
  netsim::ConnectionShaper shaper;
  Mutex shaper_mu;

  /// Guards every byte written to the socket, the broken flag, and the
  /// cancel set (checked under the same lock right before each write so
  /// a cancel observed between frames suppresses the rest).
  Mutex write_mu;
  bool write_broken GUARDED_BY(write_mu) = false;
  std::unordered_set<uint32_t> cancelled GUARDED_BY(write_mu);

  std::atomic<int64_t> active_exchanges{0};

  /// The only place muxhttp server code touches the socket's send side.
  Status WriteFrameLocked(const MuxFrame& frame) REQUIRES(write_mu) {
    if (write_broken) return Status::ConnectionReset("mux write side broken");
    Status status = socket->WriteAll(SerializeMuxFrame(frame));
    if (!status.ok()) write_broken = true;
    return status;
  }

  /// Best-effort RST; write errors just mark the connection broken.
  void SendRst(uint32_t stream_id, MuxRstCode code, std::string_view message) {
    MuxFrame rst;
    rst.stream_id = stream_id;
    rst.type = MuxFrameType::kRst;
    rst.payload = MakeRstPayload(code, message);
    MutexLock lock(write_mu);
    (void)WriteFrameLocked(rst);
  }
};

}  // namespace

MuxServer::MuxServer(MuxServerConfig config,
                     std::shared_ptr<httpd::Router> router)
    : config_(std::move(config)), router_(std::move(router)) {}

Result<std::unique_ptr<MuxServer>> MuxServer::Start(
    MuxServerConfig config, std::shared_ptr<httpd::Router> router) {
  std::unique_ptr<MuxServer> server(
      new MuxServer(std::move(config), std::move(router)));
  if (server->config_.max_streams_per_connection == 0) {
    server->config_.max_streams_per_connection = 128;
  }
  if (server->config_.data_chunk_bytes == 0) {
    server->config_.data_chunk_bytes = kMuxDataChunkBytes;
  }
  DAVIX_ASSIGN_OR_RETURN(server->listener_,
                         net::TcpListener::Listen(server->config_.port));
  {
    MutexLock lock(server->stop_mu_);
    server->accept_thread_ =
        std::thread([s = server.get()] { s->AcceptLoop(); });
  }
  return server;
}

MuxServer::~MuxServer() { Stop(); }

std::string MuxServer::BaseUrl() const {
  return "http://127.0.0.1:" + std::to_string(port());
}

void MuxServer::Stop() {
  stopping_.store(true, std::memory_order_relaxed);
  // Same discipline as HttpServer::Stop: stop_mu_ makes concurrent
  // callers safe — one joins, the rest wait for teardown to finish.
  MutexLock lock(stop_mu_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  std::vector<std::thread> threads;
  {
    MutexLock conn_lock(conn_mu_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void MuxServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<net::TcpSocket> socket = listener_.Accept(kAcceptPollMicros);
    if (!socket.ok()) {
      if (socket.status().IsTimeout()) continue;
      return;
    }
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(conn_mu_);
    connection_threads_.emplace_back(
        [this, sock = std::move(*socket)]() mutable {
          HandleConnection(std::move(sock));
        });
  }
}

void MuxServer::HandleConnection(net::TcpSocket socket) {
  {
    MutexLock lock(conn_mu_);
    active_fds_.insert(socket.fd());
  }
  (void)socket.SetNoDelay(true);
  ConnState conn(&socket, config_.link);
  net::BufferedReader reader(&socket, config_.idle_timeout_micros);
  MuxStreamAssembler assembler(MuxStreamAssembler::Mode::kRequest);
  ThreadPool workers(kWorkersPerConnection);

  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<MuxFrame> frame = ReadMuxFrame(&reader);
    if (!frame.ok()) break;
    int64_t request_bytes =
        static_cast<int64_t>(kMuxFrameHeaderSize + frame->payload.size());

    // A client RST is a cancel: record it so workers already streaming
    // the response stop at the next frame boundary, and let the
    // assembler drop any half-received request state.
    if (frame->type == MuxFrameType::kRst) {
      Result<MuxRstInfo> rst = ParseMuxRstPayload(frame->payload);
      if (rst.ok() && rst->code == MuxRstCode::kCancelled) {
        MutexLock lock(conn.write_mu);
        conn.cancelled.insert(frame->stream_id);
        stats_.streams_cancelled.fetch_add(1, std::memory_order_relaxed);
      }
      (void)assembler.OnFrame(std::move(*frame));
      continue;
    }

    Result<std::optional<MuxStreamAssembler::Event>> event =
        assembler.OnFrame(std::move(*frame));
    if (!event.ok()) break;  // framing sync lost: drop the connection
    if (!event->has_value()) continue;
    MuxStreamAssembler::Event& ev = **event;
    if (ev.stream_error.has_value()) {
      stats_.streams_reset.fetch_add(1, std::memory_order_relaxed);
      conn.SendRst(ev.stream_id, MuxRstCode::kProtocolError,
                   ev.stream_error->message());
      continue;
    }
    if (!ev.request.has_value()) continue;

    if (conn.active_exchanges.load(std::memory_order_relaxed) >=
        static_cast<int64_t>(config_.max_streams_per_connection)) {
      stats_.streams_refused.fetch_add(1, std::memory_order_relaxed);
      conn.SendRst(ev.stream_id, MuxRstCode::kRefusedStream,
                   "stream limit reached");
      continue;
    }
    stats_.requests_handled.fetch_add(1, std::memory_order_relaxed);
    conn.active_exchanges.fetch_add(1, std::memory_order_relaxed);

    auto task = [this, &conn, stream_id = ev.stream_id,
                 request = std::move(*ev.request), request_bytes]() mutable {
      netsim::FaultRule fault;
      if (config_.faults != nullptr) {
        std::string path = request.target.substr(0, request.target.find('?'));
        fault = config_.faults->Decide(path);
      }
      bool drop_connection_after = false;
      size_t truncate_at_frames = 0;  // 0 = no truncation
      http::HttpResponse response;
      switch (fault.action) {
        case netsim::FaultAction::kRefuseConnection:
          ::shutdown(conn.socket->fd(), SHUT_RDWR);
          conn.active_exchanges.fetch_sub(1, std::memory_order_relaxed);
          return;
        case netsim::FaultAction::kStall:
          SleepForMicros(fault.stall_micros);
          ::shutdown(conn.socket->fd(), SHUT_RDWR);
          conn.active_exchanges.fetch_sub(1, std::memory_order_relaxed);
          return;
        case netsim::FaultAction::kServerError:
        case netsim::FaultAction::kRetryAfter:
          response.status_code = 503;
          response.body = "injected fault\n";
          if (fault.action == netsim::FaultAction::kRetryAfter) {
            response.headers.Set(
                "Retry-After", std::to_string(fault.retry_after_seconds));
          }
          break;
        case netsim::FaultAction::kTruncateBody:
          router_->Dispatch(request, &response);
          drop_connection_after = true;
          break;
        default:
          router_->Dispatch(request, &response);
          break;
      }
      response.headers.Set("Server", "davix-muxhttp/2.0");
      std::string head = response.SerializeHead(response.body.size());
      std::vector<MuxFrame> frames =
          FrameMessage(stream_id, std::move(head), response.body,
                       config_.data_chunk_bytes);
      if (fault.action == netsim::FaultAction::kTruncateBody &&
          frames.size() > 1) {
        // Head plus half the DATA frames, then the connection dies:
        // the client sees a reset mid-body, never a short "complete"
        // response.
        truncate_at_frames = 1 + (frames.size() - 1) / 2;
      }

      netsim::ConnectionShaper::ExchangePlan plan;
      int64_t response_bytes = 0;
      for (const MuxFrame& f : frames) {
        response_bytes +=
            static_cast<int64_t>(kMuxFrameHeaderSize + f.payload.size());
      }
      {
        MutexLock lock(conn.shaper_mu);
        plan = conn.shaper.PlanExchange(request_bytes, response_bytes);
      }
      SleepForMicros(plan.latency_micros);
      // Bandwidth cost is paid per frame under the write lock: the wire
      // is serialised, but other streams' frames slot in between ours —
      // the interleaving the protocol exists for.
      int64_t per_frame_bandwidth =
          plan.bandwidth_micros / static_cast<int64_t>(frames.size());
      size_t sent = 0;
      for (const MuxFrame& f : frames) {
        if (truncate_at_frames > 0 && sent >= truncate_at_frames) break;
        MutexLock lock(conn.write_mu);
        if (conn.cancelled.count(stream_id) > 0) {
          conn.cancelled.erase(stream_id);
          break;
        }
        SleepForMicros(per_frame_bandwidth);
        if (!conn.WriteFrameLocked(f).ok()) break;
        ++sent;
      }
      if (drop_connection_after) ::shutdown(conn.socket->fd(), SHUT_RDWR);
      conn.active_exchanges.fetch_sub(1, std::memory_order_relaxed);
    };
    if (!workers.Submit(std::move(task))) break;
  }
  workers.Shutdown();
  {
    MutexLock lock(conn_mu_);
    active_fds_.erase(socket.fd());
  }
  socket.Close();
}

}  // namespace muxhttp
}  // namespace davix
