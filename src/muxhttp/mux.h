#ifndef DAVIX_MUXHTTP_MUX_H_
#define DAVIX_MUXHTTP_MUX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "httpd/router.h"
#include "muxhttp/frame.h"
#include "net/tcp_socket.h"
#include "netsim/fault_injector.h"
#include "netsim/link_profile.h"

namespace davix {
namespace muxhttp {

/// Listener knobs of the multiplexed server; port 0 = ephemeral.
struct MuxServerConfig {
  uint16_t port = 0;
  netsim::LinkProfile link = netsim::LinkProfile::Loopback();
  int64_t idle_timeout_micros = 30'000'000;
  /// Concurrent exchanges per connection before new streams are refused
  /// with RST kRefusedStream (the client retries on another connection).
  size_t max_streams_per_connection = 128;
  /// Body bytes per DATA frame; 0 = kMuxDataChunkBytes. Small chunks
  /// make interleaving visible (each chunk releases the write lock).
  size_t data_chunk_bytes = 0;
  /// Optional fault injection, evaluated per completed request against
  /// the request target. Supports kRefuseConnection (drop the whole
  /// connection), kServerError / kRetryAfter (503 on the stream),
  /// kStall (sleep, then drop the connection), kTruncateBody (send the
  /// head and half the DATA frames, then drop the connection).
  std::shared_ptr<netsim::FaultInjector> faults;
};

/// Monotonic server-side counters (thread-safe).
struct MuxServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> requests_handled{0};
  /// RST kRefusedStream sent: the per-connection stream limit was hit.
  std::atomic<uint64_t> streams_refused{0};
  /// RST kProtocolError sent for per-stream violations.
  std::atomic<uint64_t> streams_reset{0};
  /// Client RST kCancelled honored (remaining DATA frames suppressed).
  std::atomic<uint64_t> streams_cancelled{0};
};

/// Server side of the framed mux protocol (muxhttp/frame.h): decodes
/// interleaved request streams, dispatches each completed request to
/// the same Router type the plain HTTP server uses (so a DavHandler
/// serves both protocols), and answers out of order — responses are
/// chunked into DATA frames that interleave across streams, so a large
/// response never head-of-line blocks a small one.
///
/// Thread-safe: yes — Stop() may be called concurrently from any number
/// of threads; each returns only once teardown has completed.
class MuxServer {
 public:
  static Result<std::unique_ptr<MuxServer>> Start(
      MuxServerConfig config, std::shared_ptr<httpd::Router> router);

  ~MuxServer();

  MuxServer(const MuxServer&) = delete;
  MuxServer& operator=(const MuxServer&) = delete;

  void Stop();
  uint16_t port() const { return listener_.port(); }
  /// Plain http:// URL — the mux protocol is an alternative transport
  /// for the same namespace, selected by RequestParams::transport.
  std::string BaseUrl() const;
  MuxServerStats& stats() { return stats_; }

 private:
  MuxServer(MuxServerConfig config, std::shared_ptr<httpd::Router> router);

  void AcceptLoop();
  void HandleConnection(net::TcpSocket socket);

  MuxServerConfig config_;
  std::shared_ptr<httpd::Router> router_;
  net::TcpListener listener_;
  MuxServerStats stats_;

  std::atomic<bool> stopping_{false};
  /// Serialises Stop() callers; Start()'s write of accept_thread_ takes
  /// it purely for the annotation (no Stop() can race construction).
  Mutex stop_mu_;
  std::thread accept_thread_ GUARDED_BY(stop_mu_);
  Mutex conn_mu_;
  std::vector<std::thread> connection_threads_ GUARDED_BY(conn_mu_);
  std::set<int> active_fds_ GUARDED_BY(conn_mu_);
};

}  // namespace muxhttp
}  // namespace davix

#endif  // DAVIX_MUXHTTP_MUX_H_
