#ifndef DAVIX_MUXHTTP_MUX_H_
#define DAVIX_MUXHTTP_MUX_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "http/message.h"
#include "httpd/router.h"
#include "net/buffered_reader.h"
#include "net/tcp_socket.h"
#include "netsim/link_profile.h"

namespace davix {
namespace muxhttp {

/// A SPDY-like session layer: full HTTP messages multiplexed as framed
/// streams over one TCP connection.
///
/// §2.2 of the paper evaluates exactly this design ("SPDY acts as a
/// session layer between HTTP and TCP. It supports multiplexing,
/// prioritization and header compression") and rejects it for davix
/// because it requires protocol changes on both ends (and, in real
/// SPDY, mandatory TLS). This module implements the rejected
/// alternative so the trade-off — one connection and no head-of-line
/// blocking, but no compatibility with stock HTTP infrastructure — can
/// be measured instead of argued.
///
/// Wire format per frame: u32 stream_id | u32 payload length | payload,
/// where the payload is a complete serialised HTTP/1.1 message.
constexpr size_t kMuxFrameHeaderSize = 8;
constexpr uint32_t kMaxMuxPayload = 256 * 1024 * 1024;

/// Serialises one frame.
std::string SerializeMuxFrame(uint32_t stream_id, std::string_view payload);

/// Reads one frame; the payload is returned raw.
Result<std::pair<uint32_t, std::string>> ReadMuxFrame(
    net::BufferedReader* reader);

/// Listener knobs of the multiplexed server; port 0 = ephemeral.
struct MuxServerConfig {
  uint16_t port = 0;
  netsim::LinkProfile link = netsim::LinkProfile::Loopback();
  int64_t idle_timeout_micros = 30'000'000;
};

/// Monotonic server-side counters (thread-safe).
struct MuxServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> requests_handled{0};
};

/// Server side: decodes request frames, dispatches them to the same
/// Router type the plain HTTP server uses (so a DavHandler serves both
/// protocols), and answers out of order — no head-of-line blocking.
///
/// Thread-safe: yes — Stop() may be called concurrently from any number
/// of threads; each returns only once teardown has completed.
class MuxServer {
 public:
  static Result<std::unique_ptr<MuxServer>> Start(
      MuxServerConfig config, std::shared_ptr<httpd::Router> router);

  ~MuxServer();

  MuxServer(const MuxServer&) = delete;
  MuxServer& operator=(const MuxServer&) = delete;

  void Stop();
  uint16_t port() const { return listener_.port(); }
  std::string BaseUrl() const;
  MuxServerStats& stats() { return stats_; }

 private:
  MuxServer(MuxServerConfig config, std::shared_ptr<httpd::Router> router);

  void AcceptLoop();
  void HandleConnection(net::TcpSocket socket);

  MuxServerConfig config_;
  std::shared_ptr<httpd::Router> router_;
  net::TcpListener listener_;
  MuxServerStats stats_;

  std::atomic<bool> stopping_{false};
  /// Serialises Stop() callers; Start()'s write of accept_thread_ takes
  /// it purely for the annotation (no Stop() can race construction).
  Mutex stop_mu_;
  std::thread accept_thread_ GUARDED_BY(stop_mu_);
  Mutex conn_mu_;
  std::vector<std::thread> connection_threads_ GUARDED_BY(conn_mu_);
  std::set<int> active_fds_ GUARDED_BY(conn_mu_);
};

/// Client side: one connection, any number of outstanding requests.
/// Execute returns a future resolving when the matching response frame
/// arrives, in whatever order the server finishes.
///
/// Thread-safe: yes — Execute/ExecuteAsync may be called from any
/// thread; one internal mutex serialises stream allocation and writes.
class MuxClient {
 public:
  static Result<std::unique_ptr<MuxClient>> Connect(
      const std::string& host, uint16_t port,
      int64_t operation_timeout_micros = 120'000'000);

  ~MuxClient();

  MuxClient(const MuxClient&) = delete;
  MuxClient& operator=(const MuxClient&) = delete;

  /// Sends a request on a fresh stream.
  std::future<Result<http::HttpResponse>> ExecuteAsync(
      const http::HttpRequest& request);

  /// Convenience synchronous form.
  Result<http::HttpResponse> Execute(const http::HttpRequest& request);

  bool IsAlive() const { return alive_.load(std::memory_order_relaxed); }
  uint64_t requests_sent() const {
    return requests_sent_.load(std::memory_order_relaxed);
  }

 private:
  MuxClient() = default;

  void ReaderLoop();
  void FailAll(const Status& status);

  std::unique_ptr<net::TcpSocket> socket_;
  std::unique_ptr<net::BufferedReader> reader_;
  std::thread reader_thread_;
  std::atomic<bool> alive_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_sent_{0};

  Mutex mu_;
  std::unordered_map<uint32_t, std::promise<Result<http::HttpResponse>>>
      pending_ GUARDED_BY(mu_);
  uint32_t next_stream_id_ GUARDED_BY(mu_) = 1;
};

/// Parses a complete serialised HTTP response held in memory (a mux
/// frame payload).
Result<http::HttpResponse> ParseResponsePayload(std::string payload);

/// Parses a complete serialised HTTP request held in memory.
Result<http::HttpRequest> ParseRequestPayload(std::string payload);

}  // namespace muxhttp
}  // namespace davix

#endif  // DAVIX_MUXHTTP_MUX_H_
