#include "muxhttp/frame.h"

#include <utility>

#include "http/parser.h"
#include "net/byte_source.h"

namespace davix {
namespace muxhttp {
namespace {

/// Beyond this many tolerated post-Forget ids the set is cleared: a
/// cancelled stream's late frames arrive promptly or not at all, and an
/// id resurfacing after hundreds of other streams is a peer bug better
/// surfaced as a connection error than masked forever.
constexpr size_t kMaxForgottenStreams = 1024;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

bool KnownFrameType(uint8_t type) {
  return type == static_cast<uint8_t>(MuxFrameType::kHeaders) ||
         type == static_cast<uint8_t>(MuxFrameType::kData) ||
         type == static_cast<uint8_t>(MuxFrameType::kRst);
}

/// Parses a head-only payload (no body bytes follow in the source).
Result<http::HttpRequest> ParseRequestHead(std::string head) {
  net::StringSource source(std::move(head));
  net::BufferedReader reader(&source);
  DAVIX_ASSIGN_OR_RETURN(http::HttpRequest request,
                         http::MessageReader::ReadRequestHead(&reader));
  if (source.remaining() > 0 || reader.HasBuffered()) {
    return Status::ProtocolError("bytes after request head in HEADERS frame");
  }
  return request;
}

Result<http::HttpResponse> ParseResponseHead(std::string head) {
  net::StringSource source(std::move(head));
  net::BufferedReader reader(&source);
  DAVIX_ASSIGN_OR_RETURN(http::HttpResponse response,
                         http::MessageReader::ReadResponseHead(&reader));
  if (source.remaining() > 0 || reader.HasBuffered()) {
    return Status::ProtocolError("bytes after response head in HEADERS frame");
  }
  return response;
}

}  // namespace

std::string SerializeMuxFrame(const MuxFrame& frame) {
  std::string out;
  out.reserve(kMuxFrameHeaderSize + frame.payload.size());
  PutU32(&out, frame.stream_id);
  out.push_back(static_cast<char>(frame.type));
  out.push_back(static_cast<char>(frame.flags));
  PutU32(&out, static_cast<uint32_t>(frame.payload.size()));
  out.append(frame.payload);
  return out;
}

std::string SerializeMuxFrame(uint32_t stream_id, MuxFrameType type,
                              uint8_t flags, std::string_view payload) {
  MuxFrame frame;
  frame.stream_id = stream_id;
  frame.type = type;
  frame.flags = flags;
  frame.payload = std::string(payload);
  return SerializeMuxFrame(frame);
}

Result<MuxFrame> ReadMuxFrame(net::BufferedReader* reader) {
  std::string head;
  DAVIX_RETURN_IF_ERROR(reader->ReadExact(&head, kMuxFrameHeaderSize));
  MuxFrame frame;
  frame.stream_id = GetU32(head.data());
  uint8_t raw_type = static_cast<uint8_t>(head[4]);
  frame.flags = static_cast<uint8_t>(head[5]);
  uint32_t length = GetU32(head.data() + 6);
  if (frame.stream_id == 0) {
    return Status::ProtocolError("mux frame with stream id 0");
  }
  if (!KnownFrameType(raw_type)) {
    return Status::ProtocolError("unknown mux frame type " +
                                 std::to_string(raw_type));
  }
  frame.type = static_cast<MuxFrameType>(raw_type);
  if ((frame.flags & ~kMuxFlagEndStream) != 0) {
    return Status::ProtocolError("unknown mux frame flags 0x" +
                                 std::to_string(frame.flags));
  }
  if (length > kMaxMuxPayload) {
    // Validated before any payload byte is consumed: an attacker cannot
    // make the reader allocate or read past the declared bound.
    return Status::ProtocolError("mux frame payload too large (" +
                                 std::to_string(length) + " bytes)");
  }
  DAVIX_RETURN_IF_ERROR(reader->ReadExact(&frame.payload, length));
  return frame;
}

std::string MakeRstPayload(MuxRstCode code, std::string_view message) {
  std::string out;
  out.reserve(1 + message.size());
  out.push_back(static_cast<char>(code));
  out.append(message);
  return out;
}

Result<MuxRstInfo> ParseMuxRstPayload(std::string_view payload) {
  if (payload.empty()) {
    return Status::ProtocolError("empty mux RST payload");
  }
  uint8_t raw = static_cast<uint8_t>(payload[0]);
  if (raw < static_cast<uint8_t>(MuxRstCode::kProtocolError) ||
      raw > static_cast<uint8_t>(MuxRstCode::kCancelled)) {
    return Status::ProtocolError("unknown mux RST code " +
                                 std::to_string(raw));
  }
  MuxRstInfo info;
  info.code = static_cast<MuxRstCode>(raw);
  info.message = std::string(payload.substr(1));
  return info;
}

Status RstToStatus(const MuxRstInfo& rst) {
  std::string message =
      rst.message.empty() ? std::string("stream reset by peer") : rst.message;
  switch (rst.code) {
    case MuxRstCode::kProtocolError:
      return Status::ProtocolError("mux stream reset: " + message);
    case MuxRstCode::kInternalError:
      return Status::RemoteError("mux stream reset: " + message);
    case MuxRstCode::kRefusedStream:
      // Retryable on another connection — maps to the same code a failed
      // connect produces, which Execute's retry loop already handles.
      return Status::ConnectionFailed("mux stream refused: " + message);
    case MuxRstCode::kCancelled:
      return Status::Cancelled("mux stream cancelled: " + message);
  }
  return Status::ProtocolError("mux stream reset: " + message);
}

std::vector<MuxFrame> FrameMessage(uint32_t stream_id, std::string head,
                                   std::string_view body,
                                   size_t chunk_bytes) {
  if (chunk_bytes == 0) chunk_bytes = kMuxDataChunkBytes;
  std::vector<MuxFrame> frames;
  frames.reserve(2 + body.size() / chunk_bytes);
  MuxFrame headers;
  headers.stream_id = stream_id;
  headers.type = MuxFrameType::kHeaders;
  headers.flags = body.empty() ? kMuxFlagEndStream : 0;
  headers.payload = std::move(head);
  frames.push_back(std::move(headers));
  for (size_t offset = 0; offset < body.size(); offset += chunk_bytes) {
    size_t n = std::min(chunk_bytes, body.size() - offset);
    MuxFrame data;
    data.stream_id = stream_id;
    data.type = MuxFrameType::kData;
    data.flags = (offset + n == body.size()) ? kMuxFlagEndStream : 0;
    data.payload = std::string(body.substr(offset, n));
    frames.push_back(std::move(data));
  }
  return frames;
}

// ------------------------------------------------------ stream assembler

void MuxStreamAssembler::ExpectStream(uint32_t stream_id, bool head_only) {
  StreamState state;
  state.head_only = head_only;
  streams_.emplace(stream_id, std::move(state));
  forgotten_.erase(stream_id);
}

void MuxStreamAssembler::Forget(uint32_t stream_id) {
  if (streams_.erase(stream_id) > 0) {
    if (forgotten_.size() >= kMaxForgottenStreams) forgotten_.clear();
    forgotten_.insert(stream_id);
  }
}

size_t MuxStreamAssembler::open_streams() const { return streams_.size(); }

MuxStreamAssembler::Event MuxStreamAssembler::FailStream(uint32_t stream_id,
                                                         Status status) {
  streams_.erase(stream_id);
  Event event;
  event.stream_id = stream_id;
  event.stream_error = std::move(status);
  return event;
}

MuxStreamAssembler::Event MuxStreamAssembler::FinishStream(
    uint32_t stream_id, StreamState state) {
  streams_.erase(stream_id);
  // Cross-check framing against the declared Content-Length. A declared
  // length with zero body bytes is the legal shape of a HEAD response
  // (the peer tells us the entity size without sending it).
  if (state.declared_length.has_value() &&
      *state.declared_length != state.body.size() &&
      !(state.body.empty() && state.head_only)) {
    return FailStream(
        stream_id,
        Status::ProtocolError(
            "mux stream body length mismatch: declared " +
            std::to_string(*state.declared_length) + ", framed " +
            std::to_string(state.body.size())));
  }
  Event event;
  event.stream_id = stream_id;
  if (mode_ == Mode::kRequest) {
    state.request.body = std::move(state.body);
    event.request = std::move(state.request);
  } else {
    state.response.body = std::move(state.body);
    event.response = std::move(state.response);
  }
  return event;
}

Result<std::optional<MuxStreamAssembler::Event>> MuxStreamAssembler::OnFrame(
    MuxFrame frame) {
  auto it = streams_.find(frame.stream_id);
  bool tolerated = forgotten_.count(frame.stream_id) > 0;

  if (frame.type == MuxFrameType::kRst) {
    if (it == streams_.end()) {
      // RST for a stream we never opened / already closed: harmless for
      // forgotten ids (our cancel crossed the peer's reset on the wire)
      // and tolerated otherwise — a reset is idempotent by design.
      return std::optional<Event>();
    }
    Result<MuxRstInfo> rst = ParseMuxRstPayload(frame.payload);
    if (!rst.ok()) {
      // A garbled RST means framing itself is suspect.
      return rst.status();
    }
    return std::optional<Event>(
        FailStream(frame.stream_id, RstToStatus(*rst)));
  }

  if (frame.type == MuxFrameType::kHeaders) {
    if (mode_ == Mode::kResponse) {
      if (it == streams_.end()) {
        if (tolerated) return std::optional<Event>();
        return Status::ProtocolError(
            "mux HEADERS for stream " + std::to_string(frame.stream_id) +
            " that was never requested");
      }
      if (it->second.have_head) {
        return Status::ProtocolError(
            "duplicate mux HEADERS for stream " +
            std::to_string(frame.stream_id));
      }
      Result<http::HttpResponse> head =
          ParseResponseHead(std::move(frame.payload));
      if (!head.ok()) {
        return std::optional<Event>(FailStream(
            frame.stream_id,
            Status::ProtocolError("malformed mux response head: " +
                                  head.status().message())));
      }
      it->second.have_head = true;
      it->second.declared_length = head->headers.GetUint64("Content-Length");
      it->second.response = std::move(*head);
    } else {
      if (it != streams_.end() && it->second.have_head) {
        return Status::ProtocolError(
            "duplicate mux HEADERS for stream " +
            std::to_string(frame.stream_id));
      }
      if (it == streams_.end()) {
        // kRequest mode: HEADERS opens the stream implicitly.
        it = streams_.emplace(frame.stream_id, StreamState{}).first;
        forgotten_.erase(frame.stream_id);
      }
      Result<http::HttpRequest> head =
          ParseRequestHead(std::move(frame.payload));
      if (!head.ok()) {
        return std::optional<Event>(FailStream(
            frame.stream_id,
            Status::ProtocolError("malformed mux request head: " +
                                  head.status().message())));
      }
      it->second.have_head = true;
      it->second.declared_length = head->headers.GetUint64("Content-Length");
      it->second.request = std::move(*head);
    }
    if (frame.end_stream()) {
      auto node = streams_.find(frame.stream_id);
      StreamState state = std::move(node->second);
      return std::optional<Event>(
          FinishStream(frame.stream_id, std::move(state)));
    }
    return std::optional<Event>();
  }

  // DATA.
  if (it == streams_.end()) {
    if (tolerated) return std::optional<Event>();
    return Status::ProtocolError("mux DATA for unknown stream " +
                                 std::to_string(frame.stream_id));
  }
  if (!it->second.have_head) {
    return Status::ProtocolError("mux DATA before HEADERS on stream " +
                                 std::to_string(frame.stream_id));
  }
  it->second.body.append(frame.payload);
  uint64_t bound = it->second.declared_length.value_or(kMaxMuxPayload);
  if (it->second.body.size() > bound) {
    return std::optional<Event>(FailStream(
        frame.stream_id,
        Status::ProtocolError(
            "mux stream body exceeds declared length (" +
            std::to_string(it->second.body.size()) + " > " +
            std::to_string(bound) + ")")));
  }
  if (frame.end_stream()) {
    StreamState state = std::move(it->second);
    return std::optional<Event>(
        FinishStream(frame.stream_id, std::move(state)));
  }
  return std::optional<Event>();
}

}  // namespace muxhttp
}  // namespace davix
