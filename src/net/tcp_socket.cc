#include "net/tcp_socket.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

namespace davix {
namespace net {
namespace {

// Last-resort connect bound for direct TcpSocket users who pass a
// non-positive timeout. Requests routed through core::SessionPool never
// reach it: the pool resolves RequestParams::connect_timeout_micros
// (default 15 s) and caps it by the request's armed deadline first.
constexpr int64_t kDefaultConnectTimeoutMicros = 30'000'000;

Status ErrnoStatus(const char* op, int err) {
  return Status::IoError(std::string(op) + ": " + strerror(err));
}

/// Waits for `events` on fd. Returns kTimeout on expiry.
Status PollFd(int fd, short events, int64_t timeout_micros) {
  pollfd pfd = {};
  pfd.fd = fd;
  pfd.events = events;
  int timeout_ms =
      timeout_micros <= 0
          ? -1
          : static_cast<int>(std::max<int64_t>(1, timeout_micros / 1000));
  while (true) {
    int rc = poll(&pfd, 1, timeout_ms);
    if (rc > 0) return Status::OK();
    if (rc == 0) return Status::Timeout("poll timed out");
    if (errno == EINTR) continue;
    return ErrnoStatus("poll", errno);
  }
}

}  // namespace

TcpSocket::~TcpSocket() { Close(); }

TcpSocket::TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<TcpSocket> TcpSocket::Connect(const SocketAddress& address,
                                     int64_t timeout_micros) {
  if (timeout_micros <= 0) timeout_micros = kDefaultConnectTimeoutMicros;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  TcpSocket sock(fd);

  // Non-blocking connect so the timeout is enforceable.
  int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&address.raw()),
                     sizeof(sockaddr_in));
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      return Status::ConnectionFailed(std::string("connect to ") +
                                      address.ToString() + ": " +
                                      strerror(errno));
    }
    Status st = PollFd(fd, POLLOUT, timeout_micros);
    if (!st.ok()) {
      return Status::ConnectionFailed("connect to " + address.ToString() +
                                      ": " + st.ToString());
    }
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      return Status::ConnectionFailed("connect to " + address.ToString() +
                                      ": " + strerror(err));
    }
  }
  fcntl(fd, F_SETFL, flags);  // back to blocking
  return sock;
}

Result<size_t> TcpSocket::Read(char* buf, size_t len, int64_t timeout_micros) {
  if (!IsOpen()) return Status::ConnectionReset("read on closed socket");
  if (timeout_micros > 0) {
    Status st = PollFd(fd_, POLLIN, timeout_micros);
    if (!st.ok()) return st;
  }
  while (true) {
    ssize_t n = ::recv(fd_, buf, len, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) {
      return Status::ConnectionReset("connection reset by peer");
    }
    return ErrnoStatus("recv", errno);
  }
}

Status TcpSocket::WriteAll(std::string_view data, int64_t timeout_micros) {
  if (!IsOpen()) return Status::ConnectionReset("write on closed socket");
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::send(fd_, data.data() + written, data.size() - written,
                       MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      Status st = PollFd(fd_, POLLOUT, timeout_micros);
      if (!st.ok()) return st;
      continue;
    }
    if (errno == EPIPE || errno == ECONNRESET) {
      return Status::ConnectionReset("peer closed during write");
    }
    return ErrnoStatus("send", errno);
  }
  return Status::OK();
}

Status TcpSocket::SetNonBlocking(bool enabled) {
  if (!IsOpen()) return Status::ConnectionReset("fcntl on closed socket");
  int flags = fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)", errno);
  int wanted = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(fd_, F_SETFL, wanted) != 0) {
    return ErrnoStatus("fcntl(F_SETFL)", errno);
  }
  return Status::OK();
}

Result<size_t> TcpSocket::ReadNonBlocking(char* buf, size_t len) {
  if (!IsOpen()) return Status::ConnectionReset("read on closed socket");
  while (true) {
    ssize_t n = ::recv(fd_, buf, len, MSG_DONTWAIT);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Timeout("read would block");
    }
    if (errno == ECONNRESET) {
      return Status::ConnectionReset("connection reset by peer");
    }
    return ErrnoStatus("recv", errno);
  }
}

Result<size_t> TcpSocket::WriteSome(std::string_view data) {
  if (!IsOpen()) return Status::ConnectionReset("write on closed socket");
  while (true) {
    ssize_t n =
        ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Timeout("write would block");
    }
    if (errno == EPIPE || errno == ECONNRESET) {
      return Status::ConnectionReset("peer closed during write");
    }
    return ErrnoStatus("send", errno);
  }
}

Status TcpSocket::SetNoDelay(bool enabled) {
  int value = enabled ? 1 : 0;
  if (setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &value, sizeof(value)) != 0) {
    return ErrnoStatus("setsockopt(TCP_NODELAY)", errno);
  }
  return Status::OK();
}

void TcpSocket::ShutdownWrite() {
  if (IsOpen()) ::shutdown(fd_, SHUT_WR);
}

void TcpSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<SocketAddress> TcpSocket::LocalAddress() const {
  sockaddr_in addr = {};
  socklen_t len = sizeof(addr);
  if (getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ErrnoStatus("getsockname", errno);
  }
  return SocketAddress::FromSockaddr(addr);
}

TcpListener::~TcpListener() { Close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

Result<TcpListener> TcpListener::Listen(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  TcpListener listener;
  listener.fd_ = fd;

  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  DAVIX_ASSIGN_OR_RETURN(SocketAddress addr,
                         SocketAddress::Resolve("127.0.0.1", port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr.raw()),
             sizeof(sockaddr_in)) != 0) {
    return ErrnoStatus("bind", errno);
  }
  if (::listen(fd, backlog) != 0) return ErrnoStatus("listen", errno);

  sockaddr_in bound = {};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return ErrnoStatus("getsockname", errno);
  }
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Result<TcpSocket> TcpListener::Accept(int64_t timeout_micros) {
  if (!IsOpen()) return Status::ConnectionReset("accept on closed listener");
  Status st = PollFd(fd_, POLLIN, timeout_micros);
  if (!st.ok()) return st;
  while (true) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return TcpSocket(fd);
    if (errno == EINTR) continue;
    return ErrnoStatus("accept", errno);
  }
}

Status TcpListener::SetNonBlocking(bool enabled) {
  if (!IsOpen()) return Status::ConnectionReset("fcntl on closed listener");
  int flags = fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)", errno);
  int wanted = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(fd_, F_SETFL, wanted) != 0) {
    return ErrnoStatus("fcntl(F_SETFL)", errno);
  }
  return Status::OK();
}

Result<TcpSocket> TcpListener::AcceptNonBlocking() {
  if (!IsOpen()) return Status::ConnectionReset("accept on closed listener");
  while (true) {
    int fd = ::accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) return TcpSocket(fd);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Timeout("accept would block");
    }
    return ErrnoStatus("accept4", errno);
  }
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace net
}  // namespace davix
