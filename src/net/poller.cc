#include "net/poller.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>

namespace davix {
namespace net {
namespace {

Status ErrnoStatus(const char* op, int err) {
  return Status::IoError(std::string(op) + ": " + strerror(err));
}

uint32_t InterestMask(bool readable, bool writable) {
  uint32_t mask = 0;
  if (readable) mask |= EPOLLIN;
  if (writable) mask |= EPOLLOUT;
  return mask;
}

}  // namespace

Poller::~Poller() { Close(); }

Poller::Poller(Poller&& other) noexcept
    : epoll_fd_(other.epoll_fd_), wake_fd_(other.wake_fd_) {
  other.epoll_fd_ = -1;
  other.wake_fd_ = -1;
}

Poller& Poller::operator=(Poller&& other) noexcept {
  if (this != &other) {
    Close();
    epoll_fd_ = other.epoll_fd_;
    wake_fd_ = other.wake_fd_;
    other.epoll_fd_ = -1;
    other.wake_fd_ = -1;
  }
  return *this;
}

void Poller::Close() {
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
}

Result<Poller> Poller::Create() {
  Poller poller;
  poller.epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (poller.epoll_fd_ < 0) return ErrnoStatus("epoll_create1", errno);
  poller.wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (poller.wake_fd_ < 0) return ErrnoStatus("eventfd", errno);
  epoll_event ev = {};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeupKey;
  if (::epoll_ctl(poller.epoll_fd_, EPOLL_CTL_ADD, poller.wake_fd_, &ev) !=
      0) {
    return ErrnoStatus("epoll_ctl(ADD wakeup)", errno);
  }
  return poller;
}

Status Poller::Add(int fd, uint64_t key, bool readable, bool writable) {
  epoll_event ev = {};
  ev.events = InterestMask(readable, writable);
  ev.data.u64 = key;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return ErrnoStatus("epoll_ctl(ADD)", errno);
  }
  return Status::OK();
}

Status Poller::Modify(int fd, uint64_t key, bool readable, bool writable) {
  epoll_event ev = {};
  ev.events = InterestMask(readable, writable);
  ev.data.u64 = key;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return ErrnoStatus("epoll_ctl(MOD)", errno);
  }
  return Status::OK();
}

void Poller::Remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

Result<size_t> Poller::Wait(std::vector<Event>* out, int64_t timeout_micros) {
  out->clear();
  epoll_event raw[128];
  int timeout_ms =
      timeout_micros < 0
          ? -1
          : static_cast<int>(
                std::min<int64_t>((timeout_micros + 999) / 1000, 1 << 30));
  int n;
  while (true) {
    n = ::epoll_wait(epoll_fd_, raw, 128, timeout_ms);
    if (n >= 0) break;
    if (errno == EINTR) continue;
    return ErrnoStatus("epoll_wait", errno);
  }
  out->reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (raw[i].data.u64 == kWakeupKey) {
      uint64_t drained = 0;
      // Non-blocking eventfd: swallow the accumulated wake count.
      ssize_t rc = ::read(wake_fd_, &drained, sizeof(drained));
      (void)rc;
      continue;
    }
    Event event;
    event.key = raw[i].data.u64;
    event.readable = (raw[i].events & (EPOLLIN | EPOLLRDHUP)) != 0;
    event.writable = (raw[i].events & EPOLLOUT) != 0;
    event.error = (raw[i].events & (EPOLLERR | EPOLLHUP)) != 0;
    out->push_back(event);
  }
  return out->size();
}

void Poller::Wakeup() {
  if (wake_fd_ < 0) return;
  uint64_t one = 1;
  ssize_t rc = ::write(wake_fd_, &one, sizeof(one));
  (void)rc;
}

}  // namespace net
}  // namespace davix
