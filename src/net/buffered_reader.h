#ifndef DAVIX_NET_BUFFERED_READER_H_
#define DAVIX_NET_BUFFERED_READER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/byte_source.h"

namespace davix {
namespace net {

/// Buffered reads over any ByteSource (TCP socket, in-memory buffer):
/// CRLF-terminated lines for protocol headers, exact-length reads for
/// bodies. Does not own the source.
class BufferedReader {
 public:
  /// `source` must outlive this reader. `timeout_micros` applies to each
  /// underlying read (0 = wait forever).
  explicit BufferedReader(ByteSource* source, int64_t timeout_micros = 0)
      : socket_(source), timeout_micros_(timeout_micros) {}

  BufferedReader(const BufferedReader&) = delete;
  BufferedReader& operator=(const BufferedReader&) = delete;

  /// Reads one line terminated by "\r\n" (tolerates bare "\n"); the
  /// terminator is stripped. Returns kConnectionReset on EOF before any
  /// byte of the line, kProtocolError if the line exceeds `max_len`.
  Result<std::string> ReadLine(size_t max_len = 64 * 1024);

  /// Reads exactly `len` bytes into `out` (appended). Fails with
  /// kConnectionReset on premature EOF.
  Status ReadExact(std::string* out, size_t len);

  /// Reads until EOF, appending to `out`.
  Status ReadToEof(std::string* out);

  /// True when buffered bytes are available (no syscall).
  bool HasBuffered() const { return pos_ < buffer_.size(); }

  /// Per-underlying-read timeout (0 = wait forever). The session pool
  /// re-applies this on every acquire so a recycled connection never
  /// keeps its previous owner's timeout.
  void set_timeout_micros(int64_t timeout_micros) {
    timeout_micros_ = timeout_micros;
  }
  int64_t timeout_micros() const { return timeout_micros_; }

  /// Absolute MonotonicMicros() deadline across all reads (0 = none).
  /// Unlike the per-read timeout — which a server can evade by trickling
  /// one byte per interval — this bounds the total time the reader will
  /// spend: each refill's wait is clipped to the remaining budget and a
  /// refill past the instant fails with kTimeout.
  void set_deadline_micros(int64_t deadline_micros) {
    deadline_micros_ = deadline_micros;
  }
  int64_t deadline_micros() const { return deadline_micros_; }

  uint64_t bytes_consumed() const { return bytes_consumed_; }

 private:
  /// Refills the internal buffer; returns number of new bytes (0 on EOF).
  Result<size_t> Fill();

  ByteSource* socket_;
  int64_t timeout_micros_;
  int64_t deadline_micros_ = 0;
  std::string buffer_;
  size_t pos_ = 0;
  uint64_t bytes_consumed_ = 0;
};

}  // namespace net
}  // namespace davix

#endif  // DAVIX_NET_BUFFERED_READER_H_
