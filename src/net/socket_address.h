#ifndef DAVIX_NET_SOCKET_ADDRESS_H_
#define DAVIX_NET_SOCKET_ADDRESS_H_

#include <netinet/in.h>

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace davix {
namespace net {

/// An IPv4 endpoint. Resolution is deliberately minimal: numeric dotted
/// quads plus "localhost"; every host in this repository's simulated grid
/// lives on loopback.
class SocketAddress {
 public:
  SocketAddress() = default;

  /// Resolves `host` ("127.0.0.1", "localhost") and `port`.
  static Result<SocketAddress> Resolve(std::string_view host, uint16_t port);

  /// Builds from a kernel-provided sockaddr (accept/getsockname).
  static SocketAddress FromSockaddr(const sockaddr_in& addr);

  const sockaddr_in& raw() const { return addr_; }
  uint16_t port() const;
  std::string ip() const;
  std::string ToString() const;

 private:
  sockaddr_in addr_ = {};
};

}  // namespace net
}  // namespace davix

#endif  // DAVIX_NET_SOCKET_ADDRESS_H_
