#ifndef DAVIX_NET_BYTE_SOURCE_H_
#define DAVIX_NET_BYTE_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace davix {
namespace net {

/// Anything BufferedReader can read from: a TCP socket, or an in-memory
/// buffer (frame payloads, tests).
class ByteSource {
 public:
  // Out-of-line so the vtable has a key function and is emitted once in
  // byte_source.cc instead of weakly in every TU that uses a derived
  // class (TcpSocket, StringSource).
  virtual ~ByteSource();

  /// Reads up to `len` bytes. Returns 0 on end of stream.
  virtual Result<size_t> Read(char* buf, size_t len,
                              int64_t timeout_micros) = 0;
};

/// ByteSource over an owned string: lets the HTTP message parsers run on
/// already-received bytes (e.g. a multiplexing frame's payload).
class StringSource : public ByteSource {
 public:
  explicit StringSource(std::string data) : data_(std::move(data)) {}

  Result<size_t> Read(char* buf, size_t len,
                      int64_t timeout_micros) override;

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string data_;
  size_t pos_ = 0;
};

}  // namespace net
}  // namespace davix

#endif  // DAVIX_NET_BYTE_SOURCE_H_
