#include "net/socket_address.h"

#include <arpa/inet.h>

#include <cstring>

#include "common/string_util.h"

namespace davix {
namespace net {

Result<SocketAddress> SocketAddress::Resolve(std::string_view host,
                                             uint16_t port) {
  SocketAddress out;
  out.addr_.sin_family = AF_INET;
  out.addr_.sin_port = htons(port);
  std::string host_str(host);
  if (EqualsIgnoreCase(host_str, "localhost") || host_str.empty()) {
    host_str = "127.0.0.1";
  }
  if (inet_pton(AF_INET, host_str.c_str(), &out.addr_.sin_addr) != 1) {
    return Status::ConnectionFailed("cannot resolve host: " + host_str);
  }
  return out;
}

SocketAddress SocketAddress::FromSockaddr(const sockaddr_in& addr) {
  SocketAddress out;
  out.addr_ = addr;
  return out;
}

uint16_t SocketAddress::port() const { return ntohs(addr_.sin_port); }

std::string SocketAddress::ip() const {
  char buf[INET_ADDRSTRLEN] = {};
  inet_ntop(AF_INET, &addr_.sin_addr, buf, sizeof(buf));
  return buf;
}

std::string SocketAddress::ToString() const {
  return ip() + ":" + std::to_string(port());
}

}  // namespace net
}  // namespace davix
