#include "net/buffered_reader.h"

#include <algorithm>

#include "common/clock.h"

namespace davix {
namespace net {
namespace {

constexpr size_t kReadChunk = 64 * 1024;

}  // namespace

Result<size_t> BufferedReader::Fill() {
  int64_t timeout = timeout_micros_;
  if (deadline_micros_ > 0) {
    int64_t remaining = deadline_micros_ - MonotonicMicros();
    if (remaining <= 0) {
      return Status::Timeout("read deadline exceeded");
    }
    timeout = timeout > 0 ? std::min(timeout, remaining) : remaining;
  }
  if (pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  }
  size_t old_size = buffer_.size();
  buffer_.resize(old_size + kReadChunk);
  Result<size_t> n =
      socket_->Read(buffer_.data() + old_size, kReadChunk, timeout);
  if (!n.ok()) {
    buffer_.resize(old_size);
    return n.status();
  }
  buffer_.resize(old_size + *n);
  return *n;
}

Result<std::string> BufferedReader::ReadLine(size_t max_len) {
  std::string line;
  while (true) {
    // Scan the buffered region for LF.
    size_t nl = buffer_.find('\n', pos_);
    if (nl != std::string::npos) {
      line.append(buffer_, pos_, nl - pos_);
      bytes_consumed_ += nl + 1 - pos_;
      pos_ = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.size() > max_len) {
        return Status::ProtocolError("header line too long");
      }
      return line;
    }
    line.append(buffer_, pos_, buffer_.size() - pos_);
    bytes_consumed_ += buffer_.size() - pos_;
    pos_ = buffer_.size();
    if (line.size() > max_len) {
      return Status::ProtocolError("header line too long");
    }
    DAVIX_ASSIGN_OR_RETURN(size_t n, Fill());
    if (n == 0) {
      if (line.empty()) {
        return Status::ConnectionReset("EOF before line");
      }
      return Status::ConnectionReset("EOF inside line");
    }
  }
}

Status BufferedReader::ReadExact(std::string* out, size_t len) {
  while (len > 0) {
    size_t avail = buffer_.size() - pos_;
    if (avail > 0) {
      size_t take = std::min(avail, len);
      out->append(buffer_, pos_, take);
      pos_ += take;
      bytes_consumed_ += take;
      len -= take;
      continue;
    }
    DAVIX_ASSIGN_OR_RETURN(size_t n, Fill());
    if (n == 0) {
      return Status::ConnectionReset("EOF inside body (" +
                                     std::to_string(len) + " bytes missing)");
    }
  }
  return Status::OK();
}

Status BufferedReader::ReadToEof(std::string* out) {
  while (true) {
    size_t avail = buffer_.size() - pos_;
    if (avail > 0) {
      out->append(buffer_, pos_, avail);
      bytes_consumed_ += avail;
      pos_ = buffer_.size();
    }
    Result<size_t> n = Fill();
    if (!n.ok()) {
      // Treat reset after some data as EOF for read-to-end semantics.
      return Status::OK();
    }
    if (*n == 0) return Status::OK();
  }
}

}  // namespace net
}  // namespace davix
