#include "net/byte_source.h"

#include <algorithm>
#include <cstring>

namespace davix {
namespace net {

ByteSource::~ByteSource() = default;

Result<size_t> StringSource::Read(char* buf, size_t len,
                                  int64_t /*timeout_micros*/) {
  size_t take = std::min(len, data_.size() - pos_);
  std::memcpy(buf, data_.data() + pos_, take);
  pos_ += take;
  return take;
}

}  // namespace net
}  // namespace davix
