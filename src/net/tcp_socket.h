#ifndef DAVIX_NET_TCP_SOCKET_H_
#define DAVIX_NET_TCP_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/byte_source.h"
#include "net/socket_address.h"

namespace davix {
namespace net {

/// RAII TCP connection. Move-only; the destructor closes the fd.
///
/// All operations are blocking with optional deadlines implemented via
/// poll(2). A read timeout of 0 means "wait forever".
class TcpSocket : public ByteSource {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket() override;

  TcpSocket(TcpSocket&& other) noexcept;
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  /// Connects to `address` within `timeout_micros` (0 = default 30 s).
  static Result<TcpSocket> Connect(const SocketAddress& address,
                                   int64_t timeout_micros = 0);

  bool IsOpen() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Reads up to `len` bytes. Returns 0 on orderly peer shutdown.
  Result<size_t> Read(char* buf, size_t len,
                      int64_t timeout_micros = 0) override;

  /// Writes the whole buffer or fails.
  Status WriteAll(std::string_view data, int64_t timeout_micros = 0);

  /// Disables Nagle's algorithm. The paper (§2.2) notes HTTP pipelining
  /// interacts badly with Nagle; both our client and server disable it.
  Status SetNoDelay(bool enabled);

  /// Half-closes the write side (signals EOF to the peer).
  void ShutdownWrite();

  void Close();

  /// Local endpoint of a connected/bound socket.
  Result<SocketAddress> LocalAddress() const;

 private:
  int fd_ = -1;
};

/// Listening socket. Bind to port 0 to get an ephemeral port, then read it
/// back with `port()` — how the in-process test servers are wired up.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on 127.0.0.1:`port`.
  static Result<TcpListener> Listen(uint16_t port, int backlog = 64);

  /// Accepts one connection. Blocks up to `timeout_micros` (0 = forever);
  /// times out with kTimeout so accept loops can poll a stop flag.
  Result<TcpSocket> Accept(int64_t timeout_micros = 0);

  uint16_t port() const { return port_; }
  bool IsOpen() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace davix

#endif  // DAVIX_NET_TCP_SOCKET_H_
