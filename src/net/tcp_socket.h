#ifndef DAVIX_NET_TCP_SOCKET_H_
#define DAVIX_NET_TCP_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/byte_source.h"
#include "net/socket_address.h"

namespace davix {
namespace net {

/// RAII TCP connection. Move-only; the destructor closes the fd.
///
/// All operations are blocking with optional deadlines implemented via
/// poll(2). A read timeout of 0 means "wait forever".
class TcpSocket : public ByteSource {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket() override;

  TcpSocket(TcpSocket&& other) noexcept;
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  /// Connects to `address` within `timeout_micros` (0 = default 30 s).
  static Result<TcpSocket> Connect(const SocketAddress& address,
                                   int64_t timeout_micros = 0);

  bool IsOpen() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Reads up to `len` bytes. Returns 0 on orderly peer shutdown.
  Result<size_t> Read(char* buf, size_t len,
                      int64_t timeout_micros = 0) override;

  /// Writes the whole buffer or fails.
  Status WriteAll(std::string_view data, int64_t timeout_micros = 0);

  /// Switches the fd between blocking and O_NONBLOCK mode.
  Status SetNonBlocking(bool enabled);

  /// Non-blocking read for reactor loops: reads whatever is available,
  /// returning 0 on orderly peer shutdown and kTimeout ("would block")
  /// when the socket has no bytes ready. Never polls.
  Result<size_t> ReadNonBlocking(char* buf, size_t len);

  /// Non-blocking write: writes as much as the socket accepts and
  /// returns the count, or kTimeout ("would block") when the send
  /// buffer is full. Never polls.
  Result<size_t> WriteSome(std::string_view data);

  /// Disables Nagle's algorithm. The paper (§2.2) notes HTTP pipelining
  /// interacts badly with Nagle; both our client and server disable it.
  Status SetNoDelay(bool enabled);

  /// Half-closes the write side (signals EOF to the peer).
  void ShutdownWrite();

  void Close();

  /// Local endpoint of a connected/bound socket.
  Result<SocketAddress> LocalAddress() const;

 private:
  int fd_ = -1;
};

/// Listening socket. Bind to port 0 to get an ephemeral port, then read it
/// back with `port()` — how the in-process test servers are wired up.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on 127.0.0.1:`port`.
  static Result<TcpListener> Listen(uint16_t port, int backlog = 64);

  /// Accepts one connection. Blocks up to `timeout_micros` (0 = forever);
  /// times out with kTimeout so accept loops can poll a stop flag.
  Result<TcpSocket> Accept(int64_t timeout_micros = 0);

  /// Puts the listening fd in O_NONBLOCK mode (for reactor accept loops).
  Status SetNonBlocking(bool enabled);

  /// Accepts one connection without blocking; the returned socket is
  /// already in non-blocking mode. Returns kTimeout ("would block") when
  /// the accept queue is empty.
  Result<TcpSocket> AcceptNonBlocking();

  uint16_t port() const { return port_; }
  int fd() const { return fd_; }
  bool IsOpen() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace davix

#endif  // DAVIX_NET_TCP_SOCKET_H_
