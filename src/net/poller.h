#ifndef DAVIX_NET_POLLER_H_
#define DAVIX_NET_POLLER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace davix {
namespace net {

/// RAII wrapper around an epoll instance plus an eventfd wake channel —
/// the readiness core of the reactor-style httpd server (and of the
/// many-client load harness, which drives thousands of sockets from a
/// handful of driver threads).
///
/// Level-triggered. Each registered fd carries a caller-chosen 64-bit
/// key that comes back in the events; the key `kWakeupKey` is reserved
/// for the internal eventfd.
///
/// Thread-safe: no, except Wakeup() — any thread may call Wakeup() to
/// make a concurrent or future Wait() return early; everything else is
/// owned by the loop thread.
class Poller {
 public:
  /// One readiness notification. `error` reports EPOLLERR/EPOLLHUP —
  /// the fd is dead or half-dead and should usually be closed.
  struct Event {
    uint64_t key = 0;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };

  /// Reserved key for the internal wake eventfd; never reported.
  static constexpr uint64_t kWakeupKey = ~0ull;

  Poller() = default;
  ~Poller();

  Poller(Poller&& other) noexcept;
  Poller& operator=(Poller&& other) noexcept;
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// Creates the epoll instance and its wake eventfd.
  static Result<Poller> Create();

  bool IsOpen() const { return epoll_fd_ >= 0; }
  void Close();

  /// Registers `fd` with interest in read/write readiness.
  Status Add(int fd, uint64_t key, bool readable, bool writable);

  /// Updates the interest set of a registered fd.
  Status Modify(int fd, uint64_t key, bool readable, bool writable);

  /// Deregisters `fd`. Safe to call for fds epoll already forgot.
  void Remove(int fd);

  /// Waits up to `timeout_micros` (<0 = forever, 0 = poll) and appends
  /// ready events to `out` (cleared first). Returns the event count;
  /// 0 means the wait timed out or was woken by Wakeup().
  Result<size_t> Wait(std::vector<Event>* out, int64_t timeout_micros);

  /// Wakes a blocked (or the next) Wait(). Callable from any thread.
  void Wakeup();

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
};

}  // namespace net
}  // namespace davix

#endif  // DAVIX_NET_POLLER_H_
