#ifndef DAVIX_HTTP_MESSAGE_H_
#define DAVIX_HTTP_MESSAGE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "http/header_map.h"

namespace davix {
namespace http {

/// HTTP methods used by data access: the CRUD set (§2.1 of the paper) plus
/// the WebDAV verbs davix needs for namespace operations.
enum class Method {
  kGet,
  kHead,
  kPut,
  kDelete,
  kOptions,
  kPost,
  kMkcol,     // WebDAV: create collection (directory)
  kPropfind,  // WebDAV: stat / listing
  kMove,      // WebDAV: rename
  kCopy,      // WebDAV: server-side copy
};

std::string_view MethodName(Method method);
Result<Method> ParseMethod(std::string_view name);

/// Reason phrase for a status code ("OK", "Partial Content", ...).
std::string_view ReasonPhrase(int status_code);

/// Status code classification helpers.
inline bool IsSuccess(int code) { return code >= 200 && code < 300; }
inline bool IsRedirect(int code) {
  return code == 301 || code == 302 || code == 303 || code == 307 ||
         code == 308;
}

/// An HTTP/1.1 request as written to / read from the wire.
struct HttpRequest {
  Method method = Method::kGet;
  /// Origin-form target: path plus optional "?query".
  std::string target = "/";
  /// Always "HTTP/1.1" when emitted by this library.
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  /// Serialises head + body for the wire. Adds Content-Length for
  /// non-empty bodies if absent.
  std::string Serialize() const;

  /// Serialises the head only (request line + headers + blank line),
  /// declaring `body_size` via Content-Length when non-zero and not
  /// already set. Lets callers write head and payload as two socket
  /// writes instead of concatenating them — the zero-copy send path for
  /// large PUT bodies.
  std::string SerializeHead(size_t body_size) const;
};

/// An HTTP/1.1 response.
struct HttpResponse {
  int status_code = 200;
  std::string reason;
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  /// True if, per RFC 7230 §6.3 and our headers, the connection can be
  /// reused for another response after this one.
  bool KeepsConnectionAlive() const;

  /// Serialises the head only (status line + headers + blank line),
  /// declaring `body_size` via Content-Length when neither a length nor
  /// chunked framing is already set. Lets the mux server write the head
  /// as a HEADERS frame and stream the body as separate DATA frames.
  std::string SerializeHead(size_t body_size) const;

  std::string Serialize() const;
};

/// Formats `epoch_seconds` as an IMF-fixdate ("Sun, 06 Nov 1994 08:49:37
/// GMT") for Date / Last-Modified headers.
std::string FormatHttpDate(int64_t epoch_seconds);

/// Parses an IMF-fixdate back to epoch seconds.
Result<int64_t> ParseHttpDate(std::string_view value);

/// Parses a Retry-After header value (RFC 9110 §10.2.3) to a wait in
/// seconds: either delta-seconds ("120") or an HTTP-date, interpreted
/// against `now_epoch_seconds` (a date in the past yields 0). Fails with
/// kInvalidArgument on anything else.
Result<int64_t> ParseRetryAfter(std::string_view value,
                                int64_t now_epoch_seconds);

}  // namespace http
}  // namespace davix

#endif  // DAVIX_HTTP_MESSAGE_H_
