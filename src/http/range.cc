#include "http/range.h"

#include <algorithm>

#include "common/string_util.h"

namespace davix {
namespace http {

std::string FormatRangeHeader(const std::vector<ByteRange>& ranges) {
  std::string out = "bytes=";
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(ranges[i].offset);
    out += '-';
    out += std::to_string(ranges[i].end_inclusive());
  }
  return out;
}

Result<std::vector<ByteRange>> ParseRangeHeader(std::string_view value,
                                                uint64_t resource_size) {
  std::string_view v = TrimWhitespace(value);
  if (!StartsWith(v, "bytes=")) {
    return Status::InvalidArgument("unsupported range unit: " +
                                   std::string(value));
  }
  v.remove_prefix(6);
  std::vector<ByteRange> out;
  for (const std::string& spec : SplitAndTrim(v, ',')) {
    size_t dash = spec.find('-');
    if (dash == std::string::npos) {
      return Status::InvalidArgument("range spec missing '-': " + spec);
    }
    std::string_view first = TrimWhitespace(std::string_view(spec).substr(0, dash));
    std::string_view last = TrimWhitespace(std::string_view(spec).substr(dash + 1));
    if (first.empty()) {
      // Suffix form "-n": the final n bytes.
      std::optional<uint64_t> n = ParseUint64(last);
      if (!n) return Status::InvalidArgument("bad suffix range: " + spec);
      if (*n == 0 || resource_size == 0) continue;  // unsatisfiable spec
      uint64_t len = std::min(*n, resource_size);
      out.push_back(ByteRange{resource_size - len, len});
      continue;
    }
    std::optional<uint64_t> start = ParseUint64(first);
    if (!start) return Status::InvalidArgument("bad range start: " + spec);
    if (*start >= resource_size) continue;  // beyond EOF: unsatisfiable
    uint64_t end;
    if (last.empty()) {
      end = resource_size - 1;  // "a-": to end of resource
    } else {
      std::optional<uint64_t> e = ParseUint64(last);
      if (!e) return Status::InvalidArgument("bad range end: " + spec);
      if (*e < *start) {
        return Status::InvalidArgument("range end before start: " + spec);
      }
      end = std::min(*e, resource_size - 1);
    }
    out.push_back(ByteRange{*start, end - *start + 1});
  }
  if (out.empty()) {
    return Status::RangeNotSatisfiable("no satisfiable range in: " +
                                       std::string(value));
  }
  return out;
}

std::string FormatContentRange(const ByteRange& range, uint64_t total_size) {
  return "bytes " + std::to_string(range.offset) + "-" +
         std::to_string(range.end_inclusive()) + "/" +
         std::to_string(total_size);
}

Result<ContentRange> ParseContentRange(std::string_view value) {
  std::string_view v = TrimWhitespace(value);
  if (!StartsWith(v, "bytes ")) {
    return Status::InvalidArgument("unsupported content-range unit: " +
                                   std::string(value));
  }
  v.remove_prefix(6);
  size_t slash = v.find('/');
  if (slash == std::string_view::npos) {
    return Status::InvalidArgument("content-range missing '/': " +
                                   std::string(value));
  }
  std::string_view range_part = v.substr(0, slash);
  std::string_view total_part = v.substr(slash + 1);

  size_t dash = range_part.find('-');
  if (dash == std::string_view::npos) {
    return Status::InvalidArgument("content-range missing '-': " +
                                   std::string(value));
  }
  std::optional<uint64_t> start = ParseUint64(range_part.substr(0, dash));
  std::optional<uint64_t> end = ParseUint64(range_part.substr(dash + 1));
  if (!start || !end || *end < *start) {
    return Status::InvalidArgument("bad content-range bounds: " +
                                   std::string(value));
  }
  ContentRange out;
  out.range = ByteRange{*start, *end - *start + 1};
  if (total_part != "*") {
    std::optional<uint64_t> total = ParseUint64(total_part);
    if (!total) {
      return Status::InvalidArgument("bad content-range total: " +
                                     std::string(value));
    }
    out.total_size = *total;
  }
  return out;
}

}  // namespace http
}  // namespace davix
