#include "http/message.h"

#include <algorithm>
#include <cstdio>
#include <ctime>

#include "common/string_util.h"

namespace davix {
namespace http {

std::string_view MethodName(Method method) {
  switch (method) {
    case Method::kGet:
      return "GET";
    case Method::kHead:
      return "HEAD";
    case Method::kPut:
      return "PUT";
    case Method::kDelete:
      return "DELETE";
    case Method::kOptions:
      return "OPTIONS";
    case Method::kPost:
      return "POST";
    case Method::kMkcol:
      return "MKCOL";
    case Method::kPropfind:
      return "PROPFIND";
    case Method::kMove:
      return "MOVE";
    case Method::kCopy:
      return "COPY";
  }
  return "GET";
}

Result<Method> ParseMethod(std::string_view name) {
  static constexpr struct {
    std::string_view name;
    Method method;
  } kMethods[] = {
      {"GET", Method::kGet},         {"HEAD", Method::kHead},
      {"PUT", Method::kPut},         {"DELETE", Method::kDelete},
      {"OPTIONS", Method::kOptions}, {"POST", Method::kPost},
      {"MKCOL", Method::kMkcol},     {"PROPFIND", Method::kPropfind},
      {"MOVE", Method::kMove},       {"COPY", Method::kCopy},
  };
  for (const auto& entry : kMethods) {
    if (entry.name == name) return entry.method;
  }
  return Status::NotSupported("unsupported method: " + std::string(name));
}

std::string_view ReasonPhrase(int status_code) {
  switch (status_code) {
    case 100:
      return "Continue";
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 204:
      return "No Content";
    case 206:
      return "Partial Content";
    case 207:
      return "Multi-Status";
    case 301:
      return "Moved Permanently";
    case 302:
      return "Found";
    case 303:
      return "See Other";
    case 304:
      return "Not Modified";
    case 307:
      return "Temporary Redirect";
    case 308:
      return "Permanent Redirect";
    case 400:
      return "Bad Request";
    case 401:
      return "Unauthorized";
    case 403:
      return "Forbidden";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 409:
      return "Conflict";
    case 411:
      return "Length Required";
    case 416:
      return "Range Not Satisfiable";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string HttpRequest::SerializeHead(size_t body_size) const {
  std::string out;
  out.reserve(256);
  out += MethodName(method);
  out += ' ';
  out += target;
  out += ' ';
  out += version;
  out += "\r\n";
  bool has_length = false;
  for (const auto& [name, value] : headers.entries()) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
    if (EqualsIgnoreCase(name, "Content-Length")) has_length = true;
  }
  if (body_size > 0 && !has_length) {
    out += "Content-Length: " + std::to_string(body_size) + "\r\n";
  }
  out += "\r\n";
  return out;
}

std::string HttpRequest::Serialize() const {
  std::string out = SerializeHead(body.size());
  out += body;
  return out;
}

bool HttpResponse::KeepsConnectionAlive() const {
  if (headers.ListContains("Connection", "close")) return false;
  if (version == "HTTP/1.0") {
    return headers.ListContains("Connection", "keep-alive");
  }
  return true;  // HTTP/1.1 default is persistent
}

std::string HttpResponse::SerializeHead(size_t body_size) const {
  std::string out;
  out.reserve(256);
  out += version;
  out += ' ';
  out += std::to_string(status_code);
  out += ' ';
  out += reason.empty() ? std::string(ReasonPhrase(status_code)) : reason;
  out += "\r\n";
  bool has_length = false;
  for (const auto& [name, value] : headers.entries()) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
    if (EqualsIgnoreCase(name, "Content-Length")) has_length = true;
  }
  bool chunked = headers.ListContains("Transfer-Encoding", "chunked");
  if (!has_length && !chunked) {
    out += "Content-Length: " + std::to_string(body_size) + "\r\n";
  }
  out += "\r\n";
  return out;
}

std::string HttpResponse::Serialize() const {
  std::string out = SerializeHead(body.size());
  out += body;
  return out;
}

std::string FormatHttpDate(int64_t epoch_seconds) {
  std::time_t t = static_cast<std::time_t>(epoch_seconds);
  std::tm tm_utc = {};
  gmtime_r(&t, &tm_utc);
  char buf[64];
  std::strftime(buf, sizeof(buf), "%a, %d %b %Y %H:%M:%S GMT", &tm_utc);
  return buf;
}

Result<int64_t> ParseHttpDate(std::string_view value) {
  std::tm tm_utc = {};
  std::string s(value);
  if (strptime(s.c_str(), "%a, %d %b %Y %H:%M:%S GMT", &tm_utc) == nullptr) {
    return Status::InvalidArgument("unparseable HTTP date: " + s);
  }
  return static_cast<int64_t>(timegm(&tm_utc));
}

Result<int64_t> ParseRetryAfter(std::string_view value,
                                int64_t now_epoch_seconds) {
  while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
    value.remove_prefix(1);
  }
  while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
    value.remove_suffix(1);
  }
  if (value.empty()) {
    return Status::InvalidArgument("empty Retry-After value");
  }
  bool all_digits = true;
  for (char c : value) {
    if (c < '0' || c > '9') {
      all_digits = false;
      break;
    }
  }
  if (all_digits) {
    // Cap the digit count before converting so a hostile header cannot
    // overflow; 9 digits (~31 years) is already beyond any sane wait.
    if (value.size() > 9) {
      return Status::InvalidArgument("Retry-After delta too large");
    }
    int64_t seconds = 0;
    for (char c : value) seconds = seconds * 10 + (c - '0');
    return seconds;
  }
  DAVIX_ASSIGN_OR_RETURN(int64_t date, ParseHttpDate(value));
  return std::max<int64_t>(0, date - now_epoch_seconds);
}

}  // namespace http
}  // namespace davix
