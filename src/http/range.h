#ifndef DAVIX_HTTP_RANGE_H_
#define DAVIX_HTTP_RANGE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace davix {
namespace http {

/// A byte range of a remote resource: `length` bytes starting at `offset`.
/// Lengths are always concrete (> 0) inside this library; the open-ended
/// wire forms ("500-", "-200") are resolved against the resource size at
/// parse time.
struct ByteRange {
  uint64_t offset = 0;
  uint64_t length = 0;

  uint64_t end_inclusive() const { return offset + length - 1; }

  friend bool operator==(const ByteRange& a, const ByteRange& b) {
    return a.offset == b.offset && a.length == b.length;
  }
};

/// Formats a Range header value: "bytes=0-99,200-249". The multi-range
/// form is the §2.3 mechanism davix uses for vectored reads.
std::string FormatRangeHeader(const std::vector<ByteRange>& ranges);

/// Parses a Range header value against a resource of `resource_size`
/// bytes. Supports "a-b", "a-" and suffix "-n" specs, clamps overlong
/// ranges, and fails with kRangeNotSatisfiable when no spec yields at
/// least one byte.
Result<std::vector<ByteRange>> ParseRangeHeader(std::string_view value,
                                                uint64_t resource_size);

/// Formats a Content-Range value: "bytes 0-99/1234".
std::string FormatContentRange(const ByteRange& range, uint64_t total_size);

/// Parsed Content-Range data.
struct ContentRange {
  ByteRange range;
  /// Total resource size, or 0 when the server sent "/*".
  uint64_t total_size = 0;
};

/// Parses "bytes 0-99/1234" (and "bytes 0-99/*").
Result<ContentRange> ParseContentRange(std::string_view value);

}  // namespace http
}  // namespace davix

#endif  // DAVIX_HTTP_RANGE_H_
