#ifndef DAVIX_HTTP_HEADER_MAP_H_
#define DAVIX_HTTP_HEADER_MAP_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace davix {
namespace http {

/// Ordered, case-insensitive HTTP header collection.
///
/// Headers keep their insertion order (required for deterministic wire
/// output) and compare names ASCII-case-insensitively per RFC 7230.
/// Multiple headers with the same name are allowed.
class HeaderMap {
 public:
  HeaderMap() = default;

  /// Appends a header, keeping existing ones with the same name.
  void Add(std::string_view name, std::string_view value);

  /// Replaces all headers named `name` with a single one.
  void Set(std::string_view name, std::string_view value);

  /// First value for `name`, if any.
  std::optional<std::string> Get(std::string_view name) const;

  /// All values for `name`, in insertion order.
  std::vector<std::string> GetAll(std::string_view name) const;

  bool Has(std::string_view name) const { return Get(name).has_value(); }

  /// Removes all headers named `name`; returns how many were removed.
  size_t Remove(std::string_view name);

  /// Parses the first `name` value as a non-negative integer
  /// (Content-Length and friends).
  std::optional<uint64_t> GetUint64(std::string_view name) const;

  /// True when `name`'s value equals `token` case-insensitively
  /// ("Connection: close" style checks).
  bool ValueEquals(std::string_view name, std::string_view token) const;

  /// True when the comma-separated list in `name` contains `token`
  /// (case-insensitive), e.g. Connection: keep-alive, TE.
  bool ListContains(std::string_view name, std::string_view token) const;

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void Clear() { entries_.clear(); }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace http
}  // namespace davix

#endif  // DAVIX_HTTP_HEADER_MAP_H_
