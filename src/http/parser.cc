#include "http/parser.h"

#include "common/string_util.h"

namespace davix {
namespace http {
namespace {

/// Parses "Name: value" lines into `headers` until the blank line.
Status ReadHeaderBlock(net::BufferedReader* reader, HeaderMap* headers) {
  size_t total = 0;
  while (true) {
    DAVIX_ASSIGN_OR_RETURN(std::string line, reader->ReadLine());
    if (line.empty()) return Status::OK();
    total += line.size();
    if (total > MessageReader::kMaxHeaderBytes) {
      return Status::ProtocolError("header block too large");
    }
    size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::ProtocolError("malformed header line: " + line);
    }
    std::string_view name =
        TrimWhitespace(std::string_view(line).substr(0, colon));
    std::string_view value =
        TrimWhitespace(std::string_view(line).substr(colon + 1));
    headers->Add(name, value);
  }
}

Result<uint64_t> ParseChunkSizeLine(std::string_view line) {
  // Chunk extensions after ';' are ignored.
  size_t semi = line.find(';');
  std::string_view hex = TrimWhitespace(
      semi == std::string_view::npos ? line : line.substr(0, semi));
  if (hex.empty()) return Status::ProtocolError("empty chunk size");
  uint64_t value = 0;
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return Status::ProtocolError("bad chunk size: " + std::string(line));
    }
    if (value > (0xFFFFFFFFFFFFFFFFull - static_cast<uint64_t>(digit)) / 16) {
      return Status::ProtocolError("chunk size overflow");
    }
    value = value * 16 + static_cast<uint64_t>(digit);
  }
  return value;
}

Status ReadChunkedBody(net::BufferedReader* reader, std::string* body) {
  while (true) {
    DAVIX_ASSIGN_OR_RETURN(std::string size_line, reader->ReadLine());
    DAVIX_ASSIGN_OR_RETURN(uint64_t chunk_size, ParseChunkSizeLine(size_line));
    if (chunk_size == 0) break;
    if (body->size() + chunk_size > MessageReader::kMaxBodyBytes) {
      return Status::ProtocolError("chunked body too large");
    }
    DAVIX_RETURN_IF_ERROR(reader->ReadExact(body, chunk_size));
    DAVIX_ASSIGN_OR_RETURN(std::string crlf, reader->ReadLine());
    if (!crlf.empty()) {
      return Status::ProtocolError("chunk data not followed by CRLF");
    }
  }
  // Trailer section: header lines until blank.
  while (true) {
    DAVIX_ASSIGN_OR_RETURN(std::string line, reader->ReadLine());
    if (line.empty()) return Status::OK();
  }
}

}  // namespace

Result<HttpRequest> MessageReader::ReadRequestHead(
    net::BufferedReader* reader) {
  Result<std::string> line = reader->ReadLine();
  if (!line.ok()) {
    if (line.status().code() == StatusCode::kConnectionReset) {
      return Status::ConnectionReset("idle close");
    }
    return line.status();
  }
  HttpRequest request;
  std::vector<std::string> parts = SplitString(*line, ' ');
  if (parts.size() != 3) {
    return Status::ProtocolError("malformed request line: " + *line);
  }
  DAVIX_ASSIGN_OR_RETURN(request.method, ParseMethod(parts[0]));
  request.target = parts[1];
  request.version = parts[2];
  if (request.version != "HTTP/1.1" && request.version != "HTTP/1.0") {
    return Status::ProtocolError("unsupported HTTP version: " +
                                 request.version);
  }
  DAVIX_RETURN_IF_ERROR(ReadHeaderBlock(reader, &request.headers));
  return request;
}

Status MessageReader::ReadRequestBody(net::BufferedReader* reader,
                                      HttpRequest* request) {
  if (request->headers.ListContains("Transfer-Encoding", "chunked")) {
    return ReadChunkedBody(reader, &request->body);
  }
  std::optional<uint64_t> length = request->headers.GetUint64("Content-Length");
  if (!length || *length == 0) return Status::OK();
  if (*length > kMaxBodyBytes) {
    return Status::ProtocolError("request body too large");
  }
  return reader->ReadExact(&request->body, *length);
}

Result<HttpResponse> MessageReader::ReadResponseHead(
    net::BufferedReader* reader) {
  DAVIX_ASSIGN_OR_RETURN(std::string line, reader->ReadLine());
  HttpResponse response;
  // Status line: HTTP-version SP status-code SP reason-phrase (reason may
  // contain spaces or be absent).
  size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) {
    return Status::ProtocolError("malformed status line: " + line);
  }
  response.version = line.substr(0, sp1);
  if (response.version != "HTTP/1.1" && response.version != "HTTP/1.0") {
    return Status::ProtocolError("unsupported HTTP version: " +
                                 response.version);
  }
  size_t sp2 = line.find(' ', sp1 + 1);
  std::string code_str = sp2 == std::string::npos
                             ? line.substr(sp1 + 1)
                             : line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::optional<uint64_t> code = ParseUint64(code_str);
  if (!code || *code < 100 || *code > 599) {
    return Status::ProtocolError("bad status code: " + code_str);
  }
  response.status_code = static_cast<int>(*code);
  if (sp2 != std::string::npos) response.reason = line.substr(sp2 + 1);
  DAVIX_RETURN_IF_ERROR(ReadHeaderBlock(reader, &response.headers));
  return response;
}

Status MessageReader::ReadResponseBody(net::BufferedReader* reader,
                                       bool was_head_request,
                                       HttpResponse* response) {
  int code = response->status_code;
  if (was_head_request || code / 100 == 1 || code == 204 || code == 304) {
    return Status::OK();
  }
  if (response->headers.ListContains("Transfer-Encoding", "chunked")) {
    return ReadChunkedBody(reader, &response->body);
  }
  std::optional<uint64_t> length =
      response->headers.GetUint64("Content-Length");
  if (length) {
    if (*length > kMaxBodyBytes) {
      return Status::ProtocolError("response body too large");
    }
    return reader->ReadExact(&response->body, *length);
  }
  // No framing: body is delimited by connection close (HTTP/1.0 style).
  return reader->ReadToEof(&response->body);
}

std::string ChunkedEncode(std::string_view data, size_t chunk_size) {
  if (chunk_size == 0) chunk_size = 4096;
  std::string out;
  out.reserve(data.size() + data.size() / chunk_size * 16 + 32);
  size_t pos = 0;
  char size_buf[32];
  while (pos < data.size()) {
    size_t n = std::min(chunk_size, data.size() - pos);
    std::snprintf(size_buf, sizeof(size_buf), "%zx\r\n", n);
    out += size_buf;
    out += data.substr(pos, n);
    out += "\r\n";
    pos += n;
  }
  out += "0\r\n\r\n";
  return out;
}

}  // namespace http
}  // namespace davix
