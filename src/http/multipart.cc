#include "http/multipart.h"

#include "common/string_util.h"

namespace davix {
namespace http {
namespace {

constexpr std::string_view kCrlf = "\r\n";

bool AnyPartContains(const std::vector<BytesPart>& parts,
                     std::string_view needle) {
  for (const BytesPart& part : parts) {
    if (part.data.find(needle) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

std::string GenerateBoundary(const std::vector<BytesPart>& parts,
                             uint64_t salt) {
  // Candidates look like "davixpartA0001"; regenerate on (rare) collision
  // with part payloads.
  for (uint64_t attempt = 0;; ++attempt) {
    std::string candidate =
        "davixpart" + std::to_string((salt * 1000003 + attempt) & 0xFFFFFF);
    if (!AnyPartContains(parts, candidate)) return candidate;
  }
}

std::string BuildMultipartBody(const std::vector<BytesPart>& parts,
                               std::string_view boundary) {
  std::string out;
  size_t payload = 0;
  for (const BytesPart& part : parts) payload += part.data.size() + 128;
  out.reserve(payload);
  for (const BytesPart& part : parts) {
    out += "--";
    out += boundary;
    out += kCrlf;
    out += "Content-Type: application/octet-stream";
    out += kCrlf;
    out += "Content-Range: ";
    out += FormatContentRange(part.range, part.total_size);
    out += kCrlf;
    out += kCrlf;
    out += part.data;
    out += kCrlf;
  }
  out += "--";
  out += boundary;
  out += "--";
  out += kCrlf;
  return out;
}

Result<std::string> ExtractBoundary(std::string_view content_type) {
  for (const std::string& param : SplitAndTrim(content_type, ';')) {
    std::string_view p = param;
    size_t eq = p.find('=');
    if (eq == std::string_view::npos) continue;
    std::string_view key = TrimWhitespace(p.substr(0, eq));
    if (!EqualsIgnoreCase(key, "boundary")) continue;
    std::string_view val = TrimWhitespace(p.substr(eq + 1));
    if (val.size() >= 2 && val.front() == '"' && val.back() == '"') {
      val = val.substr(1, val.size() - 2);
    }
    if (val.empty()) {
      return Status::ProtocolError("empty multipart boundary");
    }
    return std::string(val);
  }
  return Status::ProtocolError("no boundary in content-type: " +
                               std::string(content_type));
}

Result<std::vector<BytesPartView>> ParseMultipartViews(
    std::string_view body, std::string_view boundary) {
  std::vector<BytesPartView> parts;
  const std::string delimiter = "--" + std::string(boundary);

  // Skip any preamble up to the first delimiter.
  size_t pos = body.find(delimiter);
  if (pos == std::string_view::npos) {
    return Status::ProtocolError("multipart body missing first boundary");
  }
  pos += delimiter.size();

  while (true) {
    // After a delimiter: "--" means final; otherwise expect CRLF.
    if (body.substr(pos, 2) == "--") {
      return parts;  // closing delimiter
    }
    if (body.substr(pos, 2) != kCrlf) {
      return Status::ProtocolError("malformed boundary line in multipart");
    }
    pos += 2;

    // Part headers until blank line.
    BytesPartView part;
    bool have_content_range = false;
    while (true) {
      size_t eol = body.find(kCrlf, pos);
      if (eol == std::string_view::npos) {
        return Status::ProtocolError("truncated multipart part headers");
      }
      std::string_view line = body.substr(pos, eol - pos);
      pos = eol + 2;
      if (line.empty()) break;
      size_t colon = line.find(':');
      if (colon == std::string_view::npos) {
        return Status::ProtocolError("malformed part header: " +
                                     std::string(line));
      }
      std::string_view name = TrimWhitespace(line.substr(0, colon));
      std::string_view value = TrimWhitespace(line.substr(colon + 1));
      if (EqualsIgnoreCase(name, "Content-Range")) {
        DAVIX_ASSIGN_OR_RETURN(ContentRange cr, ParseContentRange(value));
        part.range = cr.range;
        part.total_size = cr.total_size;
        have_content_range = true;
      }
    }
    if (!have_content_range) {
      return Status::ProtocolError("multipart part without Content-Range");
    }

    // Body: exactly range.length bytes, then CRLF + next delimiter. The
    // part keeps a view into `body` — no payload copy.
    if (pos + part.range.length > body.size()) {
      return Status::ProtocolError("truncated multipart part body");
    }
    part.data = body.substr(pos, part.range.length);
    pos += part.range.length;
    if (body.substr(pos, 2) != kCrlf) {
      return Status::ProtocolError("part body not followed by CRLF");
    }
    pos += 2;
    if (body.compare(pos, delimiter.size(), delimiter) != 0) {
      return Status::ProtocolError("part not followed by boundary");
    }
    pos += delimiter.size();
    parts.push_back(part);
  }
}

Result<std::vector<BytesPart>> ParseMultipartBody(std::string_view body,
                                                  std::string_view boundary) {
  DAVIX_ASSIGN_OR_RETURN(std::vector<BytesPartView> views,
                         ParseMultipartViews(body, boundary));
  std::vector<BytesPart> parts;
  parts.reserve(views.size());
  for (const BytesPartView& view : views) {
    BytesPart part;
    part.range = view.range;
    part.total_size = view.total_size;
    part.data = std::string(view.data);
    parts.push_back(std::move(part));
  }
  return parts;
}

}  // namespace http
}  // namespace davix
