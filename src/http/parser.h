#ifndef DAVIX_HTTP_PARSER_H_
#define DAVIX_HTTP_PARSER_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/status.h"
#include "http/message.h"
#include "net/buffered_reader.h"

namespace davix {
namespace http {

/// Reads HTTP/1.1 messages from a buffered connection.
///
/// Head and body are separate steps so servers can decide routing (and
/// fault injection) before consuming a request body, and clients can
/// stream large response bodies.
class MessageReader {
 public:
  /// Reads a request line plus headers. An EOF before the first byte is a
  /// clean idle-connection close and is reported as kConnectionReset with
  /// message "idle close" so keep-alive loops can tell it apart from a
  /// mid-message drop.
  static Result<HttpRequest> ReadRequestHead(net::BufferedReader* reader);

  /// Reads the request body per Content-Length / Transfer-Encoding.
  static Status ReadRequestBody(net::BufferedReader* reader,
                                HttpRequest* request);

  /// Reads a status line plus headers.
  static Result<HttpResponse> ReadResponseHead(net::BufferedReader* reader);

  /// Reads the response body. `was_head_request` suppresses the body for
  /// responses to HEAD regardless of framing headers (RFC 7230 §3.3.3).
  static Status ReadResponseBody(net::BufferedReader* reader,
                                 bool was_head_request,
                                 HttpResponse* response);

  /// Upper bound on accepted header block size; guards servers against
  /// unbounded memory from malicious clients.
  static constexpr size_t kMaxHeaderBytes = 256 * 1024;
  /// Upper bound on bodies buffered in memory.
  static constexpr size_t kMaxBodyBytes = 1024ull * 1024 * 1024;
};

/// Encodes `data` with chunked transfer coding using chunks of
/// `chunk_size` bytes (the terminating 0-chunk included).
std::string ChunkedEncode(std::string_view data, size_t chunk_size);

}  // namespace http
}  // namespace davix

#endif  // DAVIX_HTTP_PARSER_H_
