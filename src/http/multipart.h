#ifndef DAVIX_HTTP_MULTIPART_H_
#define DAVIX_HTTP_MULTIPART_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "http/range.h"

namespace davix {
namespace http {

/// One part of a multipart/byteranges payload: the bytes of `range` of a
/// resource whose size is `total_size`.
struct BytesPart {
  ByteRange range;
  uint64_t total_size = 0;
  std::string data;

  friend bool operator==(const BytesPart& a, const BytesPart& b) {
    return a.range == b.range && a.total_size == b.total_size &&
           a.data == b.data;
  }
};

/// Generates a boundary token that does not occur in any part's data.
/// `salt` seeds the candidate so concurrent responses differ.
std::string GenerateBoundary(const std::vector<BytesPart>& parts,
                             uint64_t salt);

/// Serialises `parts` as a multipart/byteranges body using `boundary`.
/// This is the payload of a 206 response to a multi-range GET (§2.3):
/// each part carries its own Content-Range header.
std::string BuildMultipartBody(const std::vector<BytesPart>& parts,
                               std::string_view boundary);

/// Extracts the boundary parameter from a Content-Type value like
/// `multipart/byteranges; boundary=THIS`.
Result<std::string> ExtractBoundary(std::string_view content_type);

/// One part of a multipart/byteranges payload viewed in place: `data`
/// aliases the parsed body buffer (no copy) and is valid only while that
/// buffer lives. This is the zero-copy scatter path of the vectored-read
/// client — payload bytes travel response body -> user buffer directly.
struct BytesPartView {
  ByteRange range;
  uint64_t total_size = 0;
  std::string_view data;
};

/// Parses a multipart/byteranges body into in-place views over `body`.
/// Strict about delimiter syntax; fails with kProtocolError on any
/// malformation so a broken server cannot silently corrupt a vectored
/// read.
Result<std::vector<BytesPartView>> ParseMultipartViews(
    std::string_view body, std::string_view boundary);

/// Owning variant of ParseMultipartViews: copies each part's payload.
/// Prefer the view form on hot paths.
Result<std::vector<BytesPart>> ParseMultipartBody(std::string_view body,
                                                  std::string_view boundary);

}  // namespace http
}  // namespace davix

#endif  // DAVIX_HTTP_MULTIPART_H_
