#include "http/header_map.h"

#include "common/string_util.h"

namespace davix {
namespace http {

void HeaderMap::Add(std::string_view name, std::string_view value) {
  entries_.emplace_back(std::string(name), std::string(value));
}

void HeaderMap::Set(std::string_view name, std::string_view value) {
  Remove(name);
  Add(name, value);
}

std::optional<std::string> HeaderMap::Get(std::string_view name) const {
  for (const auto& [key, value] : entries_) {
    if (EqualsIgnoreCase(key, name)) return value;
  }
  return std::nullopt;
}

std::vector<std::string> HeaderMap::GetAll(std::string_view name) const {
  std::vector<std::string> out;
  for (const auto& [key, value] : entries_) {
    if (EqualsIgnoreCase(key, name)) out.push_back(value);
  }
  return out;
}

size_t HeaderMap::Remove(std::string_view name) {
  size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (EqualsIgnoreCase(it->first, name)) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::optional<uint64_t> HeaderMap::GetUint64(std::string_view name) const {
  std::optional<std::string> value = Get(name);
  if (!value) return std::nullopt;
  return ParseUint64(TrimWhitespace(*value));
}

bool HeaderMap::ValueEquals(std::string_view name,
                            std::string_view token) const {
  std::optional<std::string> value = Get(name);
  return value && EqualsIgnoreCase(TrimWhitespace(*value), token);
}

bool HeaderMap::ListContains(std::string_view name,
                             std::string_view token) const {
  for (const std::string& value : GetAll(name)) {
    for (const std::string& item : SplitAndTrim(value, ',')) {
      if (EqualsIgnoreCase(item, token)) return true;
    }
  }
  return false;
}

}  // namespace http
}  // namespace davix
