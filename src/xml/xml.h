#ifndef DAVIX_XML_XML_H_
#define DAVIX_XML_XML_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace davix {
namespace xml {

/// One element of an XML document tree.
///
/// The feature set is the subset Metalink (RFC 5854) and WebDAV PROPFIND
/// responses need: elements, attributes, text content, comments skipped,
/// entity escaping for &<>'" — no DTDs, namespaces kept as literal
/// prefixes in names.
class XmlNode {
 public:
  explicit XmlNode(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Concatenated text content directly inside this element.
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }
  void AppendText(std::string_view text) { text_.append(text); }

  /// Attribute access.
  void SetAttribute(std::string_view name, std::string_view value);
  std::optional<std::string> GetAttribute(std::string_view name) const;
  const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }

  /// Adds a child element and returns a pointer to it (owned by this).
  XmlNode* AddChild(std::string name);

  /// Takes ownership of an already-built child (used by the parser).
  void AdoptChild(std::unique_ptr<XmlNode> child);

  const std::vector<std::unique_ptr<XmlNode>>& children() const {
    return children_;
  }

  /// First child with `name` (local comparison, namespace prefix
  /// stripped), or nullptr.
  const XmlNode* FirstChild(std::string_view name) const;

  /// All children with `name`.
  std::vector<const XmlNode*> Children(std::string_view name) const;

  /// Text of the first child named `name`, or "" when absent.
  std::string ChildText(std::string_view name) const;

  /// Serialises this subtree. `indent` < 0 produces compact output.
  std::string Serialize(int indent = -1) const;

 private:
  void SerializeTo(std::string* out, int indent, int depth) const;

  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<std::unique_ptr<XmlNode>> children_;
};

/// Parses a document; returns its root element.
Result<std::unique_ptr<XmlNode>> ParseXml(std::string_view input);

/// Escapes &<>"' for use in text nodes and attribute values.
std::string EscapeXml(std::string_view text);

}  // namespace xml
}  // namespace davix

#endif  // DAVIX_XML_XML_H_
