#include "xml/xml.h"

#include <cctype>

#include "common/string_util.h"

namespace davix {
namespace xml {
namespace {

/// Strips a namespace prefix: "ml:url" -> "url".
std::string_view LocalName(std::string_view name) {
  size_t colon = name.find(':');
  return colon == std::string_view::npos ? name : name.substr(colon + 1);
}

/// Decodes the five predefined entities plus numeric character refs
/// (ASCII range only).
Result<std::string> UnescapeXml(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c != '&') {
      out.push_back(c);
      continue;
    }
    size_t semi = text.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 12) {
      return Status::ProtocolError("unterminated XML entity");
    }
    std::string_view entity = text.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out.push_back('&');
    } else if (entity == "lt") {
      out.push_back('<');
    } else if (entity == "gt") {
      out.push_back('>');
    } else if (entity == "quot") {
      out.push_back('"');
    } else if (entity == "apos") {
      out.push_back('\'');
    } else if (!entity.empty() && entity[0] == '#') {
      std::string_view num = entity.substr(1);
      uint64_t value = 0;
      if (!num.empty() && (num[0] == 'x' || num[0] == 'X')) {
        for (char h : num.substr(1)) {
          int d;
          if (h >= '0' && h <= '9') {
            d = h - '0';
          } else if (h >= 'a' && h <= 'f') {
            d = h - 'a' + 10;
          } else if (h >= 'A' && h <= 'F') {
            d = h - 'A' + 10;
          } else {
            return Status::ProtocolError("bad numeric entity");
          }
          value = value * 16 + static_cast<uint64_t>(d);
        }
      } else {
        std::optional<uint64_t> v = ParseUint64(num);
        if (!v) return Status::ProtocolError("bad numeric entity");
        value = *v;
      }
      if (value == 0 || value > 127) {
        return Status::ProtocolError("numeric entity outside ASCII");
      }
      out.push_back(static_cast<char>(value));
    } else {
      return Status::ProtocolError("unknown XML entity: " +
                                   std::string(entity));
    }
    i = semi;
  }
  return out;
}

/// Recursive-descent XML parser over a flat string.
class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<std::unique_ptr<XmlNode>> ParseDocument() {
    SkipProlog();
    DAVIX_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> root, ParseElement());
    SkipMisc();
    if (pos_ != input_.size()) {
      return Status::ProtocolError("trailing content after XML root");
    }
    return root;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool SkipComment() {
    if (input_.compare(pos_, 4, "<!--") != 0) return false;
    size_t end = input_.find("-->", pos_ + 4);
    pos_ = end == std::string_view::npos ? input_.size() : end + 3;
    return true;
  }

  void SkipProlog() {
    while (true) {
      SkipWhitespace();
      if (input_.compare(pos_, 2, "<?") == 0) {
        size_t end = input_.find("?>", pos_);
        pos_ = end == std::string_view::npos ? input_.size() : end + 2;
        continue;
      }
      if (input_.compare(pos_, 2, "<!") == 0 &&
          input_.compare(pos_, 4, "<!--") != 0) {
        // DOCTYPE etc.: skip to closing '>'.
        size_t end = input_.find('>', pos_);
        pos_ = end == std::string_view::npos ? input_.size() : end + 1;
        continue;
      }
      if (SkipComment()) continue;
      return;
    }
  }

  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (!SkipComment()) return;
    }
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == ':' ||
          c == '_' || c == '-' || c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      return Status::ProtocolError("expected XML name at offset " +
                                   std::to_string(pos_));
    }
    return std::string(input_.substr(start, pos_ - start));
  }

  Result<std::unique_ptr<XmlNode>> ParseElement() {
    if (pos_ >= input_.size() || input_[pos_] != '<') {
      return Status::ProtocolError("expected '<' at offset " +
                                   std::to_string(pos_));
    }
    ++pos_;
    DAVIX_ASSIGN_OR_RETURN(std::string name, ParseName());
    auto node = std::make_unique<XmlNode>(std::move(name));

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (pos_ >= input_.size()) {
        return Status::ProtocolError("unterminated start tag");
      }
      if (input_[pos_] == '>') {
        ++pos_;
        break;
      }
      if (input_.compare(pos_, 2, "/>") == 0) {
        pos_ += 2;
        return node;  // empty element
      }
      DAVIX_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipWhitespace();
      if (pos_ >= input_.size() || input_[pos_] != '=') {
        return Status::ProtocolError("attribute without '='");
      }
      ++pos_;
      SkipWhitespace();
      if (pos_ >= input_.size() ||
          (input_[pos_] != '"' && input_[pos_] != '\'')) {
        return Status::ProtocolError("attribute value must be quoted");
      }
      char quote = input_[pos_++];
      size_t end = input_.find(quote, pos_);
      if (end == std::string_view::npos) {
        return Status::ProtocolError("unterminated attribute value");
      }
      DAVIX_ASSIGN_OR_RETURN(std::string value,
                             UnescapeXml(input_.substr(pos_, end - pos_)));
      node->SetAttribute(attr_name, value);
      pos_ = end + 1;
    }

    // Content: text, children, comments, CDATA, then the end tag.
    while (true) {
      if (pos_ >= input_.size()) {
        return Status::ProtocolError("unterminated element: " + node->name());
      }
      if (input_[pos_] == '<') {
        if (SkipComment()) continue;
        if (input_.compare(pos_, 9, "<![CDATA[") == 0) {
          size_t end = input_.find("]]>", pos_ + 9);
          if (end == std::string_view::npos) {
            return Status::ProtocolError("unterminated CDATA");
          }
          node->AppendText(input_.substr(pos_ + 9, end - pos_ - 9));
          pos_ = end + 3;
          continue;
        }
        if (input_.compare(pos_, 2, "</") == 0) {
          pos_ += 2;
          DAVIX_ASSIGN_OR_RETURN(std::string end_name, ParseName());
          if (end_name != node->name()) {
            return Status::ProtocolError("mismatched end tag: expected " +
                                         node->name() + " got " + end_name);
          }
          SkipWhitespace();
          if (pos_ >= input_.size() || input_[pos_] != '>') {
            return Status::ProtocolError("malformed end tag");
          }
          ++pos_;
          return node;
        }
        DAVIX_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> child, ParseElement());
        node->AdoptChild(std::move(child));
        continue;
      }
      size_t next = input_.find('<', pos_);
      if (next == std::string_view::npos) {
        return Status::ProtocolError("unterminated element content");
      }
      DAVIX_ASSIGN_OR_RETURN(std::string text,
                             UnescapeXml(input_.substr(pos_, next - pos_)));
      node->AppendText(text);
      pos_ = next;
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

void XmlNode::SetAttribute(std::string_view name, std::string_view value) {
  for (auto& [k, v] : attributes_) {
    if (k == name) {
      v = std::string(value);
      return;
    }
  }
  attributes_.emplace_back(std::string(name), std::string(value));
}

std::optional<std::string> XmlNode::GetAttribute(std::string_view name) const {
  for (const auto& [k, v] : attributes_) {
    if (k == name || LocalName(k) == name) return v;
  }
  return std::nullopt;
}

XmlNode* XmlNode::AddChild(std::string name) {
  children_.push_back(std::make_unique<XmlNode>(std::move(name)));
  return children_.back().get();
}

void XmlNode::AdoptChild(std::unique_ptr<XmlNode> child) {
  children_.push_back(std::move(child));
}

const XmlNode* XmlNode::FirstChild(std::string_view name) const {
  for (const auto& child : children_) {
    if (child->name() == name || LocalName(child->name()) == name) {
      return child.get();
    }
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::Children(std::string_view name) const {
  std::vector<const XmlNode*> out;
  for (const auto& child : children_) {
    if (child->name() == name || LocalName(child->name()) == name) {
      out.push_back(child.get());
    }
  }
  return out;
}

std::string XmlNode::ChildText(std::string_view name) const {
  const XmlNode* child = FirstChild(name);
  return child ? std::string(TrimWhitespace(child->text())) : std::string();
}

std::string XmlNode::Serialize(int indent) const {
  std::string out;
  SerializeTo(&out, indent, 0);
  return out;
}

void XmlNode::SerializeTo(std::string* out, int indent, int depth) const {
  std::string pad =
      indent >= 0 ? std::string(static_cast<size_t>(indent * depth), ' ') : "";
  *out += pad;
  *out += '<';
  *out += name_;
  for (const auto& [k, v] : attributes_) {
    *out += ' ';
    *out += k;
    *out += "=\"";
    *out += EscapeXml(v);
    *out += '"';
  }
  if (text_.empty() && children_.empty()) {
    *out += "/>";
    if (indent >= 0) *out += '\n';
    return;
  }
  *out += '>';
  *out += EscapeXml(text_);
  if (!children_.empty()) {
    if (indent >= 0) *out += '\n';
    for (const auto& child : children_) {
      child->SerializeTo(out, indent, depth + 1);
    }
    *out += pad;
  }
  *out += "</";
  *out += name_;
  *out += '>';
  if (indent >= 0) *out += '\n';
}

Result<std::unique_ptr<XmlNode>> ParseXml(std::string_view input) {
  Parser parser(input);
  return parser.ParseDocument();
}

std::string EscapeXml(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace xml
}  // namespace davix
