#include "xrootd/readahead.h"

#include <algorithm>

namespace davix {
namespace xrootd {

XrdReadAheadStream::XrdReadAheadStream(XrdClient* client, uint32_t handle,
                                       uint64_t file_size,
                                       ReadAheadConfig config)
    : client_(client),
      handle_(handle),
      file_size_(file_size),
      config_(config) {
  if (config_.chunk_bytes == 0) config_.chunk_bytes = 256 * 1024;
}

void XrdReadAheadStream::TopUpWindow() {
  while (window_.size() < std::max<size_t>(1, config_.window_chunks) &&
         window_end_ < file_size_) {
    Chunk chunk;
    chunk.offset = window_end_;
    chunk.length = std::min<uint64_t>(config_.chunk_bytes,
                                      file_size_ - window_end_);
    chunk.future = client_->ReadAsync(handle_, chunk.offset,
                                      static_cast<uint32_t>(chunk.length));
    window_end_ += chunk.length;
    window_.push_back(std::move(chunk));
    if (config_.window_chunks == 0) break;  // strict synchronous mode
  }
}

void XrdReadAheadStream::Seek(uint64_t offset) {
  if (offset == position_) return;
  position_ = offset;
  // A seek outside what the window covers invalidates the in-flight
  // chunks; simplest correct behaviour is to drop them all.
  window_.clear();
  window_end_ = offset;
}

Result<std::string> XrdReadAheadStream::Read(size_t count) {
  if (position_ >= file_size_ || count == 0) return std::string();
  uint64_t want = std::min<uint64_t>(count, file_size_ - position_);
  std::string out;
  out.reserve(want);

  while (want > 0) {
    if (window_.empty() || window_.front().offset > position_) {
      // Window does not cover the cursor (first read or after seek).
      window_.clear();
      window_end_ = position_;
    }
    TopUpWindow();
    Chunk& front = window_.front();
    if (!front.resolved) {
      Result<std::string> data = front.future.get();
      DAVIX_RETURN_IF_ERROR(data.status());
      if (data->size() != front.length) {
        return Status::ProtocolError("readahead chunk short read");
      }
      front.data = std::move(*data);
      front.resolved = true;
    }
    uint64_t chunk_pos = position_ - front.offset;
    uint64_t take = std::min<uint64_t>(want, front.length - chunk_pos);
    out.append(front.data, chunk_pos, take);
    position_ += take;
    want -= take;
    if (position_ >= front.offset + front.length) {
      window_.pop_front();
      TopUpWindow();  // keep the pipe full while we consume
    }
  }
  return out;
}

}  // namespace xrootd
}  // namespace davix
