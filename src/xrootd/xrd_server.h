#ifndef DAVIX_XROOTD_XRD_SERVER_H_
#define DAVIX_XROOTD_XRD_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "httpd/object_store.h"
#include "net/tcp_socket.h"
#include "netsim/fault_injector.h"
#include "netsim/link_profile.h"

namespace davix {
namespace xrootd {

/// Configuration of the xrootd-like data server.
struct XrdServerConfig {
  uint16_t port = 0;
  netsim::LinkProfile link = netsim::LinkProfile::Loopback();
  uint64_t fault_seed = 1;
  int64_t idle_timeout_micros = 30'000'000;
  /// Extra round trips consumed by the login/auth handshake on top of the
  /// TCP handshake. The paper's LAN result (HTTP 0.7 % faster) reflects
  /// the heavier connection setup of the HPC protocol.
  int64_t login_rtts = 2;
};

/// Monotonic server-side counters (thread-safe).
struct XrdServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> requests_handled{0};
  std::atomic<uint64_t> read_requests{0};
  std::atomic<uint64_t> readv_requests{0};
  std::atomic<uint64_t> ranges_served{0};
  std::atomic<uint64_t> bytes_served{0};
};

/// Baseline data server speaking the framed protocol of frame.h.
///
/// Requests from one connection are decoded by a reader loop and executed
/// by detached worker tasks, so responses can overlap and complete out of
/// order — the protocol-level multiplexing (no head-of-line blocking)
/// that §2.2 credits XRootD with. Traffic shaping splits each exchange
/// into an overlappable latency part and a serialised bandwidth part.
///
/// Serves objects from the same ObjectStore type as the HTTP server, so
/// benchmarks can point both protocols at identical content.
///
/// Thread-safe: yes — Stop() may be called concurrently from any number
/// of threads; each returns only once teardown has completed.
class XrdServer {
 public:
  static Result<std::unique_ptr<XrdServer>> Start(
      XrdServerConfig config, std::shared_ptr<httpd::ObjectStore> store);

  ~XrdServer();

  XrdServer(const XrdServer&) = delete;
  XrdServer& operator=(const XrdServer&) = delete;

  void Stop();

  uint16_t port() const { return listener_.port(); }
  /// "root://127.0.0.1:<port>".
  std::string BaseUrl() const;

  XrdServerStats& stats() { return stats_; }
  netsim::FaultInjector& faults() { return faults_; }

 private:
  XrdServer(XrdServerConfig config, std::shared_ptr<httpd::ObjectStore> store);

  void AcceptLoop();
  void HandleConnection(net::TcpSocket socket);

  XrdServerConfig config_;
  std::shared_ptr<httpd::ObjectStore> store_;
  net::TcpListener listener_;
  netsim::FaultInjector faults_;
  XrdServerStats stats_;

  std::atomic<bool> stopping_{false};
  /// Serialises Stop() callers; Start()'s write of accept_thread_ takes
  /// it purely for the annotation (no Stop() can race construction).
  Mutex stop_mu_;
  std::thread accept_thread_ GUARDED_BY(stop_mu_);
  Mutex conn_mu_;
  std::vector<std::thread> connection_threads_ GUARDED_BY(conn_mu_);
  std::set<int> active_fds_ GUARDED_BY(conn_mu_);
};

}  // namespace xrootd
}  // namespace davix

#endif  // DAVIX_XROOTD_XRD_SERVER_H_
