#ifndef DAVIX_XROOTD_READAHEAD_H_
#define DAVIX_XROOTD_READAHEAD_H_

#include <cstdint>
#include <deque>
#include <future>
#include <string>

#include "common/status.h"
#include "xrootd/xrd_client.h"

namespace davix {
namespace xrootd {

/// Sliding-window read-ahead parameters.
struct ReadAheadConfig {
  /// Bytes fetched per asynchronous chunk request.
  uint64_t chunk_bytes = 256 * 1024;
  /// Chunks kept in flight ahead of the consumer. 0 disables read-ahead
  /// (every Read is a synchronous round trip) — the ablation baseline.
  size_t window_chunks = 4;
};

/// Client-side sliding-window buffering for sequential reads — the
/// mechanism §3 of the paper credits for XRootD's WAN advantage ("the
/// sliding windows buffering algorithm of XRootD which allows to
/// minimize the number of network round trips").
///
/// The stream keeps up to `window_chunks` asynchronous reads in flight
/// ahead of the consumer's position, so on a high-RTT path the next
/// chunk's latency is hidden behind consumption of the current one.
class XrdReadAheadStream {
 public:
  /// `client` must outlive the stream; `handle` must be open on it.
  XrdReadAheadStream(XrdClient* client, uint32_t handle, uint64_t file_size,
                     ReadAheadConfig config = {});

  /// Sequential read of up to `count` bytes; shorter only at EOF
  /// (empty return = EOF).
  Result<std::string> Read(size_t count);

  /// Repositions the stream; out-of-window seeks discard the window.
  void Seek(uint64_t offset);

  uint64_t position() const { return position_; }

 private:
  struct Chunk {
    uint64_t offset = 0;
    uint64_t length = 0;
    std::future<Result<std::string>> future;
    std::string data;
    bool resolved = false;
  };

  /// Issues async reads until the window is full or EOF is covered.
  void TopUpWindow();

  XrdClient* client_;
  uint32_t handle_;
  uint64_t file_size_;
  ReadAheadConfig config_;
  uint64_t position_ = 0;
  /// Next offset not yet covered by an in-flight chunk.
  uint64_t window_end_ = 0;
  std::deque<Chunk> window_;
};

}  // namespace xrootd
}  // namespace davix

#endif  // DAVIX_XROOTD_READAHEAD_H_
