#include "xrootd/xrd_client.h"

#include <sys/socket.h>

#include "common/logging.h"
#include "net/socket_address.h"

namespace davix {
namespace xrootd {

XrdClient::XrdClient(XrdClientConfig config) : config_(config) {}

Result<std::unique_ptr<XrdClient>> XrdClient::Connect(const std::string& host,
                                                      uint16_t port,
                                                      XrdClientConfig config) {
  DAVIX_ASSIGN_OR_RETURN(net::SocketAddress address,
                         net::SocketAddress::Resolve(host, port));
  DAVIX_ASSIGN_OR_RETURN(
      net::TcpSocket socket,
      net::TcpSocket::Connect(address, config.connect_timeout_micros));
  (void)socket.SetNoDelay(true);

  std::unique_ptr<XrdClient> client(new XrdClient(config));
  client->socket_ = std::make_unique<net::TcpSocket>(std::move(socket));
  client->reader_ = std::make_unique<net::BufferedReader>(
      client->socket_.get(), config.operation_timeout_micros);
  client->alive_.store(true, std::memory_order_relaxed);
  client->reader_thread_ = std::thread([c = client.get()] { c->ReaderLoop(); });
  return client;
}

XrdClient::~XrdClient() {
  stopping_.store(true, std::memory_order_relaxed);
  if (socket_ != nullptr && socket_->IsOpen()) {
    ::shutdown(socket_->fd(), SHUT_RDWR);
  }
  if (reader_thread_.joinable()) reader_thread_.join();
  FailAll(Status::Cancelled("client destroyed"));
}

void XrdClient::ReaderLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<Frame> frame = ReadFrame(reader_.get());
    if (!frame.ok()) {
      if (!stopping_.load(std::memory_order_relaxed)) {
        FailAll(frame.status().WithContext("xrd connection lost"));
      }
      return;
    }
    Pending pending;
    bool found = false;
    {
      MutexLock lock(mu_);
      auto it = pending_.find(frame->header.stream_id);
      if (it != pending_.end()) {
        pending = std::move(it->second);
        pending_.erase(it);
        found = true;
      }
    }
    if (!found) {
      DAVIX_LOG(kWarn) << "xrd response for unknown stream "
                       << frame->header.stream_id;
      continue;
    }
    if (pending.arg_out != nullptr) *pending.arg_out = frame->header.arg;
    switch (static_cast<RespStatus>(frame->header.opcode)) {
      case RespStatus::kOk:
        pending.promise.set_value(std::move(frame->payload));
        break;
      case RespStatus::kNotFound:
        pending.promise.set_value(Status::NotFound(frame->payload));
        break;
      case RespStatus::kBadRequest:
        pending.promise.set_value(Status::InvalidArgument(frame->payload));
        break;
      default:
        pending.promise.set_value(Status::RemoteError(frame->payload));
        break;
    }
  }
}

void XrdClient::FailAll(const Status& status) {
  alive_.store(false, std::memory_order_relaxed);
  std::unordered_map<uint16_t, Pending> orphans;
  {
    MutexLock lock(mu_);
    orphans.swap(pending_);
  }
  for (auto& [id, pending] : orphans) {
    pending.promise.set_value(status);
  }
}

std::future<Result<std::string>> XrdClient::Submit(Opcode opcode, uint64_t arg,
                                                   std::string payload,
                                                   uint64_t* arg_out) {
  std::promise<Result<std::string>> failed;
  if (!alive_.load(std::memory_order_relaxed)) {
    failed.set_value(Status::ConnectionReset("xrd client not connected"));
    return failed.get_future();
  }
  FrameHeader header;
  header.opcode = static_cast<uint16_t>(opcode);
  header.arg = arg;

  std::future<Result<std::string>> future;
  std::string wire;
  {
    MutexLock lock(mu_);
    // Pick a free stream id (u16 wraps; skip ids still in flight).
    while (pending_.count(next_stream_id_) > 0 || next_stream_id_ == 0) {
      ++next_stream_id_;
    }
    header.stream_id = next_stream_id_++;
    Pending pending;
    pending.arg_out = arg_out;
    future = pending.promise.get_future();
    pending_.emplace(header.stream_id, std::move(pending));
    wire = SerializeFrame(header, payload);

    Status write_status = socket_->WriteAll(wire);
    if (!write_status.ok()) {
      auto it = pending_.find(header.stream_id);
      Pending orphan = std::move(it->second);
      pending_.erase(it);
      orphan.promise.set_value(write_status.WithContext("xrd send"));
      return future;
    }
    requests_sent_.fetch_add(1, std::memory_order_relaxed);
  }
  return future;
}

Status XrdClient::Login() {
  Result<std::string> response = Submit(Opcode::kLogin, 0, "", nullptr).get();
  return response.ok() ? Status::OK() : response.status();
}

Result<OpenInfo> XrdClient::Open(const std::string& path) {
  uint64_t handle_arg = 0;
  Result<std::string> response =
      Submit(Opcode::kOpen, 0, path, &handle_arg).get();
  DAVIX_RETURN_IF_ERROR(response.status().WithContext("open " + path));
  if (response->size() != 8) {
    return Status::ProtocolError("bad open response payload");
  }
  OpenInfo info;
  info.handle = static_cast<uint32_t>(handle_arg);
  info.size = ReadU64(response->data());
  return info;
}

Result<uint64_t> XrdClient::StatSize(const std::string& path) {
  Result<std::string> response = Submit(Opcode::kStat, 0, path, nullptr).get();
  DAVIX_RETURN_IF_ERROR(response.status().WithContext("stat " + path));
  if (response->size() != 8) {
    return Status::ProtocolError("bad stat response payload");
  }
  return ReadU64(response->data());
}

Status XrdClient::Close(uint32_t handle) {
  std::string payload;
  AppendU32(&payload, handle);
  Result<std::string> response =
      Submit(Opcode::kClose, 0, std::move(payload), nullptr).get();
  return response.ok() ? Status::OK() : response.status();
}

Result<std::string> XrdClient::Read(uint32_t handle, uint64_t offset,
                                    uint32_t length) {
  return ReadAsync(handle, offset, length).get();
}

std::future<Result<std::string>> XrdClient::ReadAsync(uint32_t handle,
                                                      uint64_t offset,
                                                      uint32_t length) {
  return Submit(Opcode::kRead, offset, EncodeReadPayload(handle, length),
                nullptr);
}

Result<std::vector<std::string>> XrdClient::ReadVector(
    uint32_t handle, const std::vector<http::ByteRange>& ranges) {
  Result<std::string> raw = ReadVectorRawAsync(handle, ranges).get();
  DAVIX_RETURN_IF_ERROR(raw.status());
  return DecodeReadVectorResponse(*raw, ranges.size());
}

std::future<Result<std::string>> XrdClient::ReadVectorRawAsync(
    uint32_t handle, const std::vector<http::ByteRange>& ranges) {
  return Submit(Opcode::kReadVector, 0,
                EncodeReadVectorPayload(handle, ranges), nullptr);
}

Result<std::vector<std::string>> DecodeReadVectorResponse(
    std::string_view payload, size_t range_count) {
  std::vector<std::string> out;
  out.reserve(range_count);
  size_t pos = 0;
  for (size_t i = 0; i < range_count; ++i) {
    if (pos + 4 > payload.size()) {
      return Status::ProtocolError("truncated readv response");
    }
    uint32_t len = ReadU32(payload.data() + pos);
    pos += 4;
    if (pos + len > payload.size()) {
      return Status::ProtocolError("readv response overruns payload");
    }
    out.emplace_back(payload.substr(pos, len));
    pos += len;
  }
  if (pos != payload.size()) {
    return Status::ProtocolError("readv response has trailing bytes");
  }
  return out;
}

}  // namespace xrootd
}  // namespace davix
