#ifndef DAVIX_XROOTD_FRAME_H_
#define DAVIX_XROOTD_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "http/range.h"
#include "net/buffered_reader.h"
#include "net/tcp_socket.h"

namespace davix {
namespace xrootd {

/// Request opcodes of the simplified xrootd-like protocol. The real
/// XRootD protocol is much richer; this subset carries exactly the
/// operations the paper's data-analysis workload exercises.
enum class Opcode : uint16_t {
  kLogin = 1,
  kOpen = 2,
  kStat = 3,
  kRead = 4,
  kReadVector = 5,
  kClose = 6,
};

/// Response status codes (the opcode field of response frames).
enum class RespStatus : uint16_t {
  kOk = 0,
  kError = 1,
  kNotFound = 2,
  kBadRequest = 3,
};

/// Fixed 16-byte frame header, little-endian on the wire:
///   u16 stream_id | u16 opcode/status | u32 payload length | u64 arg
///
/// stream_id is the multiplexing key (§2.2's contrast: "the XRootD
/// framework ... supports parallel asynchronous data access on top of
/// its own I/O multiplexing"): responses carry the id of their request
/// and may arrive in any order.
struct FrameHeader {
  uint16_t stream_id = 0;
  uint16_t opcode = 0;
  uint32_t length = 0;
  uint64_t arg = 0;
};

constexpr size_t kFrameHeaderSize = 16;
/// Payload ceiling: guards both sides against garbage lengths.
constexpr uint32_t kMaxFramePayload = 256 * 1024 * 1024;

/// One full frame.
struct Frame {
  FrameHeader header;
  std::string payload;
};

/// Serialises header + payload for the wire.
std::string SerializeFrame(const FrameHeader& header,
                           std::string_view payload);

/// Reads one frame (blocking, using the reader's timeout).
Result<Frame> ReadFrame(net::BufferedReader* reader);

/// Payload of a kRead request: u32 handle | u32 length (offset in arg).
std::string EncodeReadPayload(uint32_t handle, uint32_t length);
Result<std::pair<uint32_t, uint32_t>> DecodeReadPayload(
    std::string_view payload);

/// Payload of a kReadVector request: u32 handle, then per range
/// u64 offset | u32 length. The response payload is the concatenation of
/// the range contents in request order.
std::string EncodeReadVectorPayload(uint32_t handle,
                                    const std::vector<http::ByteRange>& ranges);
Result<std::pair<uint32_t, std::vector<http::ByteRange>>>
DecodeReadVectorPayload(std::string_view payload);

/// Little-endian integer helpers shared by client and server.
void AppendU32(std::string* out, uint32_t value);
void AppendU64(std::string* out, uint64_t value);
uint32_t ReadU32(const char* p);
uint64_t ReadU64(const char* p);

}  // namespace xrootd
}  // namespace davix

#endif  // DAVIX_XROOTD_FRAME_H_
