#ifndef DAVIX_XROOTD_XRD_CLIENT_H_
#define DAVIX_XROOTD_XRD_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "http/range.h"
#include "net/buffered_reader.h"
#include "net/tcp_socket.h"
#include "xrootd/frame.h"

namespace davix {
namespace xrootd {

/// Transport timeouts of the xrootd-like client.
struct XrdClientConfig {
  int64_t connect_timeout_micros = 15'000'000;
  int64_t operation_timeout_micros = 120'000'000;
};

/// Result of Open: server-side handle plus file size.
struct OpenInfo {
  uint32_t handle = 0;
  uint64_t size = 0;
};

/// Asynchronous multiplexing client for the xrootd-like protocol.
///
/// One TCP connection carries any number of outstanding requests, keyed
/// by stream id; a background reader thread completes them as responses
/// arrive (in any order). This is the baseline architecture the paper
/// compares davix against: "parallel asynchronous data access on top of
/// its own I/O multiplexing".
///
/// Thread-safe: yes — all calls may come from any thread; one internal
/// mutex serialises stream allocation and frame writes.
class XrdClient {
 public:
  static Result<std::unique_ptr<XrdClient>> Connect(
      const std::string& host, uint16_t port, XrdClientConfig config = {});

  ~XrdClient();

  XrdClient(const XrdClient&) = delete;
  XrdClient& operator=(const XrdClient&) = delete;

  /// Login handshake; must be the first call (the real protocol
  /// requires it, and it is where the connection-setup RTTs go).
  Status Login();

  Result<OpenInfo> Open(const std::string& path);
  Result<uint64_t> StatSize(const std::string& path);
  Status Close(uint32_t handle);

  /// Synchronous positional read.
  Result<std::string> Read(uint32_t handle, uint64_t offset, uint32_t length);

  /// Asynchronous positional read; the future resolves when the response
  /// frame arrives.
  std::future<Result<std::string>> ReadAsync(uint32_t handle, uint64_t offset,
                                             uint32_t length);

  /// Synchronous vectored read (one kReadVector frame, one round trip).
  /// results[i] holds ranges[i]'s bytes, truncated at EOF.
  Result<std::vector<std::string>> ReadVector(
      uint32_t handle, const std::vector<http::ByteRange>& ranges);

  /// Asynchronous vectored read. The future resolves to the raw response
  /// payload; decode it with DecodeReadVectorResponse (declared below)
  /// once ready. Raw form keeps the reader thread free of copies.
  std::future<Result<std::string>> ReadVectorRawAsync(
      uint32_t handle, const std::vector<http::ByteRange>& ranges);

  /// True until the connection dies; afterwards every call fails fast.
  bool IsAlive() const { return alive_.load(std::memory_order_relaxed); }

  /// Frames sent (== round trips consumed, since each request frame
  /// yields one response frame).
  uint64_t requests_sent() const {
    return requests_sent_.load(std::memory_order_relaxed);
  }

 private:
  struct Pending {
    std::promise<Result<std::string>> promise;  // raw response payload
    uint64_t* arg_out = nullptr;                // optional response arg sink
  };

  XrdClient(XrdClientConfig config);

  void ReaderLoop();

  /// Sends a frame and registers a pending completion; returns the
  /// future resolving to the raw response payload.
  std::future<Result<std::string>> Submit(Opcode opcode, uint64_t arg,
                                          std::string payload,
                                          uint64_t* arg_out);

  /// Fails every pending request with `status` and marks the client dead.
  void FailAll(const Status& status);

  XrdClientConfig config_;
  std::unique_ptr<net::TcpSocket> socket_;
  std::unique_ptr<net::BufferedReader> reader_;
  std::thread reader_thread_;
  std::atomic<bool> alive_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_sent_{0};

  Mutex mu_;  // also serialises socket writes
  std::unordered_map<uint16_t, Pending> pending_ GUARDED_BY(mu_);
  uint16_t next_stream_id_ GUARDED_BY(mu_) = 1;
};

/// Slices a kReadVector response payload back into per-range strings.
Result<std::vector<std::string>> DecodeReadVectorResponse(
    std::string_view payload, size_t range_count);

}  // namespace xrootd
}  // namespace davix

#endif  // DAVIX_XROOTD_XRD_CLIENT_H_
