#include "xrootd/xrd_server.h"

#include <sys/socket.h>

#include <algorithm>

#include "common/clock.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "net/buffered_reader.h"
#include "netsim/shaper.h"
#include "xrootd/frame.h"

namespace davix {
namespace xrootd {
namespace {

constexpr int64_t kAcceptPollMicros = 50'000;
/// Worker tasks per connection: the server-side concurrency available to
/// one client's multiplexed requests.
constexpr size_t kWorkersPerConnection = 8;

}  // namespace

XrdServer::XrdServer(XrdServerConfig config,
                     std::shared_ptr<httpd::ObjectStore> store)
    : config_(std::move(config)),
      store_(std::move(store)),
      faults_(config_.fault_seed) {}

Result<std::unique_ptr<XrdServer>> XrdServer::Start(
    XrdServerConfig config, std::shared_ptr<httpd::ObjectStore> store) {
  std::unique_ptr<XrdServer> server(
      new XrdServer(std::move(config), std::move(store)));
  DAVIX_ASSIGN_OR_RETURN(server->listener_,
                         net::TcpListener::Listen(server->config_.port));
  {
    MutexLock lock(server->stop_mu_);
    server->accept_thread_ =
        std::thread([s = server.get()] { s->AcceptLoop(); });
  }
  DAVIX_LOG(kInfo) << "xrd server listening on port " << server->port();
  return server;
}

XrdServer::~XrdServer() { Stop(); }

std::string XrdServer::BaseUrl() const {
  return "root://127.0.0.1:" + std::to_string(port());
}

void XrdServer::Stop() {
  stopping_.store(true, std::memory_order_relaxed);
  // Same discipline as HttpServer::Stop: stop_mu_ makes concurrent
  // callers safe — one joins, the rest wait for teardown to finish.
  MutexLock lock(stop_mu_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  std::vector<std::thread> threads;
  {
    MutexLock conn_lock(conn_mu_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void XrdServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<net::TcpSocket> socket = listener_.Accept(kAcceptPollMicros);
    if (!socket.ok()) {
      if (socket.status().IsTimeout()) continue;
      return;
    }
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(conn_mu_);
    connection_threads_.emplace_back(
        [this, sock = std::move(*socket)]() mutable {
          HandleConnection(std::move(sock));
        });
  }
}

void XrdServer::HandleConnection(net::TcpSocket socket) {
  {
    MutexLock lock(conn_mu_);
    active_fds_.insert(socket.fd());
  }
  (void)socket.SetNoDelay(true);

  netsim::ConnectionShaper shaper(config_.link);
  Mutex shaper_mu;
  Mutex write_mu;
  net::BufferedReader reader(&socket, config_.idle_timeout_micros);

  // Per-connection open-file table.
  Mutex files_mu;
  std::unordered_map<uint32_t, std::shared_ptr<const httpd::StoredObject>>
      open_files;
  uint32_t next_handle = 1;

  ThreadPool workers(kWorkersPerConnection);

  // Sends one response frame with shaping: the latency part overlaps
  // across workers, the bandwidth part is serialised by the write lock.
  auto send_response = [&](uint16_t stream_id, RespStatus status,
                           uint64_t arg, std::string payload,
                           int64_t request_bytes, int64_t extra_latency) {
    FrameHeader header;
    header.stream_id = stream_id;
    header.opcode = static_cast<uint16_t>(status);
    header.arg = arg;
    std::string wire = SerializeFrame(header, payload);
    netsim::ConnectionShaper::ExchangePlan plan;
    {
      MutexLock lock(shaper_mu);
      plan = shaper.PlanExchange(request_bytes,
                                 static_cast<int64_t>(wire.size()));
    }
    SleepForMicros(plan.latency_micros + extra_latency);
    MutexLock lock(write_mu);
    SleepForMicros(plan.bandwidth_micros);
    (void)socket.WriteAll(wire);
    stats_.bytes_served.fetch_add(wire.size(), std::memory_order_relaxed);
  };

  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<Frame> frame_result = ReadFrame(&reader);
    if (!frame_result.ok()) break;
    if (faults_.server_down()) break;
    Frame frame = std::move(*frame_result);
    stats_.requests_handled.fetch_add(1, std::memory_order_relaxed);
    int64_t request_bytes =
        static_cast<int64_t>(kFrameHeaderSize + frame.payload.size());

    auto task = [&, frame = std::move(frame), request_bytes]() mutable {
      uint16_t sid = frame.header.stream_id;
      switch (static_cast<Opcode>(frame.header.opcode)) {
        case Opcode::kLogin: {
          // The login/auth handshake costs extra round trips; that is
          // the connection-setup weight HPC protocols carry (§3: HTTP is
          // marginally faster on LAN).
          int64_t extra =
              config_.login_rtts * config_.link.rtt_micros;
          send_response(sid, RespStatus::kOk, 0, "", request_bytes, extra);
          return;
        }
        case Opcode::kOpen: {
          netsim::FaultRule fault = faults_.Decide(frame.payload);
          if (fault.action != netsim::FaultAction::kNone) {
            send_response(sid, RespStatus::kError, 0, "injected fault",
                          request_bytes, 0);
            return;
          }
          Result<std::shared_ptr<const httpd::StoredObject>> object =
              store_->Get(frame.payload);
          if (!object.ok()) {
            send_response(sid, RespStatus::kNotFound, 0,
                          object.status().ToString(), request_bytes, 0);
            return;
          }
          uint32_t handle;
          {
            MutexLock lock(files_mu);
            handle = next_handle++;
            open_files[handle] = *object;
          }
          std::string payload;
          AppendU64(&payload, (*object)->data.size());
          send_response(sid, RespStatus::kOk, handle, std::move(payload),
                        request_bytes, 0);
          return;
        }
        case Opcode::kStat: {
          Result<httpd::ObjectMeta> meta = store_->Stat(frame.payload);
          if (!meta.ok()) {
            send_response(sid, RespStatus::kNotFound, 0,
                          meta.status().ToString(), request_bytes, 0);
            return;
          }
          std::string payload;
          AppendU64(&payload, meta->size);
          send_response(sid, RespStatus::kOk, 0, std::move(payload),
                        request_bytes, 0);
          return;
        }
        case Opcode::kRead: {
          Result<std::pair<uint32_t, uint32_t>> decoded =
              DecodeReadPayload(frame.payload);
          if (!decoded.ok()) {
            send_response(sid, RespStatus::kBadRequest, 0,
                          decoded.status().ToString(), request_bytes, 0);
            return;
          }
          auto [handle, length] = *decoded;
          uint64_t offset = frame.header.arg;
          std::shared_ptr<const httpd::StoredObject> object;
          {
            MutexLock lock(files_mu);
            auto it = open_files.find(handle);
            if (it != open_files.end()) object = it->second;
          }
          if (object == nullptr) {
            send_response(sid, RespStatus::kBadRequest, 0, "bad handle",
                          request_bytes, 0);
            return;
          }
          stats_.read_requests.fetch_add(1, std::memory_order_relaxed);
          std::string data;
          if (offset < object->data.size()) {
            data = object->data.substr(
                offset,
                std::min<uint64_t>(length, object->data.size() - offset));
          }
          send_response(sid, RespStatus::kOk, offset, std::move(data),
                        request_bytes, 0);
          return;
        }
        case Opcode::kReadVector: {
          auto decoded = DecodeReadVectorPayload(frame.payload);
          if (!decoded.ok()) {
            send_response(sid, RespStatus::kBadRequest, 0,
                          decoded.status().ToString(), request_bytes, 0);
            return;
          }
          auto& [handle, ranges] = *decoded;
          std::shared_ptr<const httpd::StoredObject> object;
          {
            MutexLock lock(files_mu);
            auto it = open_files.find(handle);
            if (it != open_files.end()) object = it->second;
          }
          if (object == nullptr) {
            send_response(sid, RespStatus::kBadRequest, 0, "bad handle",
                          request_bytes, 0);
            return;
          }
          stats_.readv_requests.fetch_add(1, std::memory_order_relaxed);
          stats_.ranges_served.fetch_add(ranges.size(),
                                         std::memory_order_relaxed);
          // Response: per range, u32 actual length then the bytes
          // (ranges past EOF come back shorter, like preadv).
          std::string payload;
          for (const http::ByteRange& r : ranges) {
            uint64_t avail =
                r.offset < object->data.size()
                    ? std::min<uint64_t>(r.length,
                                         object->data.size() - r.offset)
                    : 0;
            AppendU32(&payload, static_cast<uint32_t>(avail));
            payload.append(object->data, r.offset, avail);
          }
          send_response(sid, RespStatus::kOk, 0, std::move(payload),
                        request_bytes, 0);
          return;
        }
        case Opcode::kClose: {
          if (frame.payload.size() == 4) {
            uint32_t handle = ReadU32(frame.payload.data());
            MutexLock lock(files_mu);
            open_files.erase(handle);
          }
          send_response(sid, RespStatus::kOk, 0, "", request_bytes, 0);
          return;
        }
      }
      send_response(sid, RespStatus::kBadRequest, 0, "unknown opcode",
                    request_bytes, 0);
    };
    if (!workers.Submit(std::move(task))) break;
  }
  workers.Shutdown();
  {
    MutexLock lock(conn_mu_);
    active_fds_.erase(socket.fd());
  }
  socket.Close();
}

}  // namespace xrootd
}  // namespace davix
