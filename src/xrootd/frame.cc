#include "xrootd/frame.h"

namespace davix {
namespace xrootd {

void AppendU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>(value >> (8 * i)));
  }
}

void AppendU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>(value >> (8 * i)));
  }
}

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t ReadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

std::string SerializeFrame(const FrameHeader& header,
                           std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.push_back(static_cast<char>(header.stream_id & 0xFF));
  out.push_back(static_cast<char>(header.stream_id >> 8));
  out.push_back(static_cast<char>(header.opcode & 0xFF));
  out.push_back(static_cast<char>(header.opcode >> 8));
  AppendU32(&out, static_cast<uint32_t>(payload.size()));
  AppendU64(&out, header.arg);
  out.append(payload);
  return out;
}

Result<Frame> ReadFrame(net::BufferedReader* reader) {
  std::string head;
  DAVIX_RETURN_IF_ERROR(reader->ReadExact(&head, kFrameHeaderSize));
  Frame frame;
  frame.header.stream_id =
      static_cast<uint16_t>(static_cast<unsigned char>(head[0])) |
      static_cast<uint16_t>(static_cast<unsigned char>(head[1])) << 8;
  frame.header.opcode =
      static_cast<uint16_t>(static_cast<unsigned char>(head[2])) |
      static_cast<uint16_t>(static_cast<unsigned char>(head[3])) << 8;
  frame.header.length = ReadU32(head.data() + 4);
  frame.header.arg = ReadU64(head.data() + 8);
  if (frame.header.length > kMaxFramePayload) {
    return Status::ProtocolError("frame payload too large: " +
                                 std::to_string(frame.header.length));
  }
  if (frame.header.length > 0) {
    DAVIX_RETURN_IF_ERROR(reader->ReadExact(&frame.payload,
                                            frame.header.length));
  }
  return frame;
}

std::string EncodeReadPayload(uint32_t handle, uint32_t length) {
  std::string out;
  AppendU32(&out, handle);
  AppendU32(&out, length);
  return out;
}

Result<std::pair<uint32_t, uint32_t>> DecodeReadPayload(
    std::string_view payload) {
  if (payload.size() != 8) {
    return Status::ProtocolError("bad read payload size");
  }
  return std::make_pair(ReadU32(payload.data()), ReadU32(payload.data() + 4));
}

std::string EncodeReadVectorPayload(
    uint32_t handle, const std::vector<http::ByteRange>& ranges) {
  std::string out;
  AppendU32(&out, handle);
  AppendU32(&out, static_cast<uint32_t>(ranges.size()));
  for (const http::ByteRange& r : ranges) {
    AppendU64(&out, r.offset);
    AppendU32(&out, static_cast<uint32_t>(r.length));
  }
  return out;
}

Result<std::pair<uint32_t, std::vector<http::ByteRange>>>
DecodeReadVectorPayload(std::string_view payload) {
  if (payload.size() < 8) {
    return Status::ProtocolError("bad readv payload size");
  }
  uint32_t handle = ReadU32(payload.data());
  uint32_t count = ReadU32(payload.data() + 4);
  if (payload.size() != 8 + static_cast<size_t>(count) * 12) {
    return Status::ProtocolError("readv payload size mismatch");
  }
  std::vector<http::ByteRange> ranges;
  ranges.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const char* p = payload.data() + 8 + i * 12;
    ranges.push_back(http::ByteRange{ReadU64(p), ReadU32(p + 8)});
  }
  return std::make_pair(handle, std::move(ranges));
}

}  // namespace xrootd
}  // namespace davix
