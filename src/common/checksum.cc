#include "common/checksum.h"

#include <cstring>

#include "common/string_util.h"

namespace davix {
namespace {

// Generated lazily: table[i] = CRC of the single byte i.
const uint32_t* Crc32Table() {
  static uint32_t table[256];
  static bool initialized = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)initialized;
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

namespace {

// RFC 1321 constants.
constexpr uint32_t kMd5K[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

constexpr int kMd5Shift[64] = {7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
                               7, 12, 17, 22, 5, 9,  14, 20, 5, 9,  14, 20,
                               5, 9,  14, 20, 5, 9,  14, 20, 4, 11, 16, 23,
                               4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
                               6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
                               6, 10, 15, 21};

uint32_t RotateLeft(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

}  // namespace

Md5::Md5() {
  state_[0] = 0x67452301;
  state_[1] = 0xefcdab89;
  state_[2] = 0x98badcfe;
  state_[3] = 0x10325476;
}

void Md5::Update(std::string_view data) {
  length_ += data.size();
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data());
  size_t remaining = data.size();
  if (buffered_ > 0) {
    size_t take = std::min(remaining, sizeof(buffer_) - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    remaining -= take;
    if (buffered_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffered_ = 0;
    }
  }
  while (remaining >= 64) {
    ProcessBlock(p);
    p += 64;
    remaining -= 64;
  }
  if (remaining > 0) {
    std::memcpy(buffer_, p, remaining);
    buffered_ = remaining;
  }
}

void Md5::ProcessBlock(const uint8_t* block) {
  uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<uint32_t>(block[i * 4]) |
           static_cast<uint32_t>(block[i * 4 + 1]) << 8 |
           static_cast<uint32_t>(block[i * 4 + 2]) << 16 |
           static_cast<uint32_t>(block[i * 4 + 3]) << 24;
  }
  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  for (int i = 0; i < 64; ++i) {
    uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    uint32_t temp = d;
    d = c;
    c = b;
    b = b + RotateLeft(a + f + kMd5K[i] + m[g], kMd5Shift[i]);
    a = temp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

std::array<uint8_t, 16> Md5::Digest() {
  if (!finalized_) {
    uint64_t bit_length = length_ * 8;
    // Pad: 0x80 then zeros to 56 mod 64, then the 64-bit little-endian
    // message length.
    uint8_t pad[72] = {0x80};
    size_t pad_len = (buffered_ < 56) ? 56 - buffered_ : 120 - buffered_;
    Update(std::string_view(reinterpret_cast<char*>(pad), pad_len));
    uint8_t len_bytes[8];
    for (int i = 0; i < 8; ++i) {
      len_bytes[i] = static_cast<uint8_t>(bit_length >> (8 * i));
    }
    // Update() would grow length_, but we already captured bit_length.
    const uint8_t* p = len_bytes;
    std::memcpy(buffer_ + buffered_, p, 8);
    buffered_ += 8;
    ProcessBlock(buffer_);
    buffered_ = 0;
    finalized_ = true;
  }
  std::array<uint8_t, 16> digest;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      digest[i * 4 + j] = static_cast<uint8_t>(state_[i] >> (8 * j));
    }
  }
  return digest;
}

std::string Md5::HexDigest(std::string_view data) {
  Md5 md5;
  md5.Update(data);
  std::array<uint8_t, 16> digest = md5.Digest();
  return HexEncode(
      std::string_view(reinterpret_cast<char*>(digest.data()), digest.size()));
}

}  // namespace davix
