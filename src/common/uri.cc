#include "common/uri.h"

#include <cctype>

#include "common/string_util.h"

namespace davix {
namespace {

bool IsValidSchemeChar(char c, bool first) {
  if (std::isalpha(static_cast<unsigned char>(c))) return true;
  if (first) return false;
  return std::isdigit(static_cast<unsigned char>(c)) || c == '+' || c == '-' ||
         c == '.';
}

uint16_t DefaultPortForScheme(std::string_view scheme) {
  if (EqualsIgnoreCase(scheme, "http") || EqualsIgnoreCase(scheme, "dav")) {
    return 80;
  }
  if (EqualsIgnoreCase(scheme, "https") || EqualsIgnoreCase(scheme, "davs")) {
    return 443;
  }
  if (EqualsIgnoreCase(scheme, "root") || EqualsIgnoreCase(scheme, "xroot")) {
    return 1094;
  }
  return 0;
}

int HexDigitValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Result<Uri> Uri::Parse(std::string_view input) {
  Uri uri;
  std::string_view rest = TrimWhitespace(input);
  if (rest.empty()) return Status::InvalidArgument("empty URL");

  size_t scheme_end = rest.find("://");
  if (scheme_end == std::string_view::npos || scheme_end == 0) {
    return Status::InvalidArgument("URL missing scheme: " +
                                   std::string(input));
  }
  std::string_view scheme = rest.substr(0, scheme_end);
  for (size_t i = 0; i < scheme.size(); ++i) {
    if (!IsValidSchemeChar(scheme[i], i == 0)) {
      return Status::InvalidArgument("invalid scheme: " + std::string(scheme));
    }
  }
  uri.scheme_ = AsciiLower(scheme);
  rest.remove_prefix(scheme_end + 3);

  // Fragment first so '?' inside fragments is not misread as a query.
  size_t frag = rest.find('#');
  if (frag != std::string_view::npos) {
    uri.fragment_ = std::string(rest.substr(frag + 1));
    rest = rest.substr(0, frag);
  }

  size_t path_start = rest.find('/');
  std::string_view authority =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  std::string_view path_query = path_start == std::string_view::npos
                                    ? std::string_view()
                                    : rest.substr(path_start);

  // A query can appear with an empty path: http://h?x=1
  size_t auth_query = authority.find('?');
  if (auth_query != std::string_view::npos) {
    uri.query_ = std::string(authority.substr(auth_query + 1));
    authority = authority.substr(0, auth_query);
  }

  size_t at = authority.rfind('@');
  if (at != std::string_view::npos) {
    uri.userinfo_ = std::string(authority.substr(0, at));
    authority.remove_prefix(at + 1);
  }
  if (authority.empty()) {
    return Status::InvalidArgument("URL missing host: " + std::string(input));
  }

  size_t colon = authority.rfind(':');
  if (colon != std::string_view::npos) {
    std::string_view port_str = authority.substr(colon + 1);
    std::optional<uint64_t> port = ParseUint64(port_str);
    if (!port || *port == 0 || *port > 65535) {
      return Status::InvalidArgument("invalid port: " + std::string(port_str));
    }
    uri.port_ = static_cast<uint16_t>(*port);
    uri.explicit_port_ = true;
    authority = authority.substr(0, colon);
  } else {
    uri.port_ = DefaultPortForScheme(uri.scheme_);
  }
  uri.host_ = AsciiLower(authority);
  if (uri.host_.empty()) {
    return Status::InvalidArgument("URL missing host: " + std::string(input));
  }

  if (!path_query.empty()) {
    size_t q = path_query.find('?');
    if (q != std::string_view::npos) {
      uri.query_ = std::string(path_query.substr(q + 1));
      path_query = path_query.substr(0, q);
    }
    uri.path_ = std::string(path_query);
  }
  if (uri.path_.empty()) uri.path_ = "/";
  return uri;
}

std::string Uri::PathWithQuery() const {
  if (query_.empty()) return path_;
  return path_ + "?" + query_;
}

std::string Uri::ToString() const {
  std::string out = scheme_ + "://";
  if (!userinfo_.empty()) {
    out += userinfo_;
    out += '@';
  }
  out += host_;
  if (explicit_port_) {
    out += ':';
    out += std::to_string(port_);
  }
  out += path_;
  if (!query_.empty()) {
    out += '?';
    out += query_;
  }
  if (!fragment_.empty()) {
    out += '#';
    out += fragment_;
  }
  return out;
}

Uri Uri::WithPath(std::string_view path_and_query) const {
  Uri out = *this;
  out.fragment_.clear();
  std::string_view pq = path_and_query;
  size_t q = pq.find('?');
  if (q != std::string_view::npos) {
    out.query_ = std::string(pq.substr(q + 1));
    pq = pq.substr(0, q);
  } else {
    out.query_.clear();
  }
  out.path_ = pq.empty() ? "/" : std::string(pq);
  if (out.path_[0] != '/') out.path_.insert(out.path_.begin(), '/');
  return out;
}

std::string Uri::HostPortKey() const {
  return host_ + ":" + std::to_string(port_);
}

Result<Uri> Uri::Resolve(std::string_view location) const {
  std::string_view loc = TrimWhitespace(location);
  if (loc.empty()) return Status::InvalidArgument("empty redirect location");
  if (loc.find("://") != std::string_view::npos) return Uri::Parse(loc);
  if (loc[0] == '/') return WithPath(loc);
  // Relative reference: resolve against the parent directory of this path.
  std::string base = path_;
  size_t slash = base.rfind('/');
  base = base.substr(0, slash + 1);
  return WithPath(base + std::string(loc));
}

std::string UrlEncodePath(std::string_view path) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(path.size());
  for (unsigned char c : path) {
    bool unreserved = std::isalnum(c) || c == '-' || c == '.' || c == '_' ||
                      c == '~' || c == '/';
    if (unreserved) {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xf]);
    }
  }
  return out;
}

Result<std::string> UrlDecode(std::string_view encoded) {
  std::string out;
  out.reserve(encoded.size());
  for (size_t i = 0; i < encoded.size(); ++i) {
    char c = encoded[i];
    if (c != '%') {
      out.push_back(c == '+' ? ' ' : c);
      continue;
    }
    if (i + 2 >= encoded.size()) {
      return Status::InvalidArgument("truncated percent escape");
    }
    int hi = HexDigitValue(encoded[i + 1]);
    int lo = HexDigitValue(encoded[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("invalid percent escape");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

}  // namespace davix
