#include "common/clock.h"

#include <thread>

namespace davix {

void SleepForMicros(int64_t micros) {
  if (micros <= 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

}  // namespace davix
