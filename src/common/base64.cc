#include "common/base64.h"

#include <array>

namespace davix {
namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<int8_t, 256> BuildReverse() {
  std::array<int8_t, 256> rev;
  rev.fill(-1);
  for (int i = 0; i < 64; ++i) {
    rev[static_cast<unsigned char>(kAlphabet[i])] = static_cast<int8_t>(i);
  }
  return rev;
}

}  // namespace

std::string Base64Encode(std::string_view data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  size_t i = 0;
  while (i + 3 <= data.size()) {
    uint32_t n = static_cast<unsigned char>(data[i]) << 16 |
                 static_cast<unsigned char>(data[i + 1]) << 8 |
                 static_cast<unsigned char>(data[i + 2]);
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back(kAlphabet[n & 63]);
    i += 3;
  }
  size_t rest = data.size() - i;
  if (rest == 1) {
    uint32_t n = static_cast<unsigned char>(data[i]) << 16;
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back('=');
    out.push_back('=');
  } else if (rest == 2) {
    uint32_t n = static_cast<unsigned char>(data[i]) << 16 |
                 static_cast<unsigned char>(data[i + 1]) << 8;
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

Result<std::string> Base64Decode(std::string_view encoded) {
  static const std::array<int8_t, 256> kReverse = BuildReverse();
  // Strip trailing padding.
  while (!encoded.empty() && encoded.back() == '=') {
    encoded.remove_suffix(1);
  }
  if (encoded.size() % 4 == 1) {
    return Status::InvalidArgument("base64 length % 4 == 1 is impossible");
  }
  std::string out;
  out.reserve(encoded.size() * 3 / 4);
  uint32_t acc = 0;
  int bits = 0;
  for (char c : encoded) {
    int8_t v = kReverse[static_cast<unsigned char>(c)];
    if (v < 0) {
      return Status::InvalidArgument("invalid base64 character");
    }
    acc = (acc << 6) | static_cast<uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<char>((acc >> bits) & 0xFF));
    }
  }
  return out;
}

}  // namespace davix
