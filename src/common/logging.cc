#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/clock.h"

namespace davix {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level_) << " " << MonotonicMicros() / 1000
          << "ms " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  // One fputs keeps concurrent log lines from interleaving mid-line.
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace internal
}  // namespace davix
