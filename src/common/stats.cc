#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace davix {

void SampleStats::Add(double value) { samples_.push_back(value); }

double SampleStats::Mean() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double SampleStats::Stddev() const {
  if (samples_.size() < 2) return 0;
  double mean = Mean();
  double acc = 0;
  for (double v : samples_) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleStats::Min() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::Max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleStats::Percentile(double q) const {
  if (samples_.empty()) return 0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

std::string SampleStats::Summary(const std::string& unit) const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "mean=%.3f%s sd=%.3f min=%.3f max=%.3f n=%zu", Mean(),
                unit.c_str(), Stddev(), Min(), Max(), count());
  return buf;
}

std::string IoCounters::ToString() const {
  char buf[1280];
  std::snprintf(
      buf, sizeof(buf),
      "requests=%llu rtts=%llu bytes_read=%llu bytes_written=%llu "
      "conn_opened=%llu conn_reused=%llu redirects=%llu retries=%llu "
      "retry_after_honored=%llu deadline_expirations=%llu stall_aborts=%llu "
      "breaker_opens=%llu breaker_closes=%llu breaker_fast_fails=%llu "
      "breaker_half_open_probes=%llu "
      "failovers=%llu quarantines=%llu validator_rejects=%llu "
      "multisource_chunks=%llu multisource_cache_chunks=%llu "
      "vector_queries=%llu ranges=%llu cache_hits=%llu "
      "cache_misses=%llu cache_evictions=%llu cache_bytes_saved=%llu "
      "mux_conn_opened=%llu mux_conn_lost=%llu mux_streams=%llu "
      "mux_streams_reset=%llu mux_backpressure_waits=%llu",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(network_round_trips),
      static_cast<unsigned long long>(bytes_read),
      static_cast<unsigned long long>(bytes_written),
      static_cast<unsigned long long>(connections_opened),
      static_cast<unsigned long long>(connections_reused),
      static_cast<unsigned long long>(redirects_followed),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(retry_after_honored),
      static_cast<unsigned long long>(deadline_expirations),
      static_cast<unsigned long long>(stall_aborts),
      static_cast<unsigned long long>(breaker_opens),
      static_cast<unsigned long long>(breaker_closes),
      static_cast<unsigned long long>(breaker_fast_fails),
      static_cast<unsigned long long>(breaker_half_open_probes),
      static_cast<unsigned long long>(replica_failovers),
      static_cast<unsigned long long>(replica_quarantines),
      static_cast<unsigned long long>(replica_validator_rejects),
      static_cast<unsigned long long>(multisource_chunks),
      static_cast<unsigned long long>(multisource_cache_chunks),
      static_cast<unsigned long long>(vector_queries),
      static_cast<unsigned long long>(ranges_requested),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses),
      static_cast<unsigned long long>(cache_evictions),
      static_cast<unsigned long long>(cache_bytes_saved),
      static_cast<unsigned long long>(mux_connections_opened),
      static_cast<unsigned long long>(mux_connections_lost),
      static_cast<unsigned long long>(mux_streams_opened),
      static_cast<unsigned long long>(mux_streams_reset),
      static_cast<unsigned long long>(mux_backpressure_waits));
  return buf;
}

}  // namespace davix
