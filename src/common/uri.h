#ifndef DAVIX_COMMON_URI_H_
#define DAVIX_COMMON_URI_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace davix {

/// Parsed form of an http:// or dav:// style URL.
///
/// Only the subset of RFC 3986 that data-access URLs use is supported:
/// scheme://host[:port]/path[?query][#fragment]. Userinfo is accepted and
/// preserved but not interpreted.
class Uri {
 public:
  Uri() = default;

  /// Parses `input`. Fails with kInvalidArgument on malformed URLs.
  static Result<Uri> Parse(std::string_view input);

  const std::string& scheme() const { return scheme_; }
  const std::string& userinfo() const { return userinfo_; }
  const std::string& host() const { return host_; }
  /// Port from the URL, or the scheme default (http 80, https 443,
  /// root 1094) when absent.
  uint16_t port() const { return port_; }
  /// True if the URL spelled an explicit port.
  bool has_explicit_port() const { return explicit_port_; }
  /// Path component, always beginning with '/' (empty paths normalise
  /// to "/").
  const std::string& path() const { return path_; }
  const std::string& query() const { return query_; }
  const std::string& fragment() const { return fragment_; }

  /// Path plus "?query" when a query is present: what goes on an HTTP
  /// request line.
  std::string PathWithQuery() const;

  /// Reassembles the full URL string.
  std::string ToString() const;

  /// Returns a copy with the path (and optional query) replaced; used to
  /// follow relative redirects and to build replica URLs.
  Uri WithPath(std::string_view path_and_query) const;

  /// "host:port" key used to identify a connection pool bucket.
  std::string HostPortKey() const;

  /// Resolves `location` (absolute URL or absolute path) against this URI,
  /// as needed for HTTP Location headers.
  Result<Uri> Resolve(std::string_view location) const;

  friend bool operator==(const Uri& a, const Uri& b) {
    return a.ToString() == b.ToString();
  }

 private:
  std::string scheme_;
  std::string userinfo_;
  std::string host_;
  uint16_t port_ = 0;
  bool explicit_port_ = false;
  std::string path_ = "/";
  std::string query_;
  std::string fragment_;
};

/// Percent-encodes characters outside the RFC 3986 unreserved set plus '/'.
std::string UrlEncodePath(std::string_view path);

/// Decodes %XX escapes; fails on truncated or non-hex escapes.
Result<std::string> UrlDecode(std::string_view encoded);

}  // namespace davix

#endif  // DAVIX_COMMON_URI_H_
