#ifndef DAVIX_COMMON_RNG_H_
#define DAVIX_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace davix {

/// Deterministic 64-bit PRNG (splitmix64 seeded xorshift128+).
///
/// Every randomised component of this repository — workload generators,
/// fault plans, property tests — draws from this generator so that runs are
/// reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into two non-zero lanes.
    uint64_t z = seed;
    s0_ = SplitMix(&z);
    s1_ = SplitMix(&z);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Approximately normal (Irwin–Hall of 8 uniforms), mean 0 stddev ~1.
  double NextGaussian() {
    double sum = 0;
    for (int i = 0; i < 8; ++i) sum += NextDouble();
    return (sum - 4.0) * 1.2247448713915890;  // sqrt(12/8)
  }

  /// Random bytes, for payload generation.
  std::string Bytes(size_t n) {
    std::string out;
    out.resize(n);
    size_t i = 0;
    while (i + 8 <= n) {
      uint64_t v = Next();
      for (int k = 0; k < 8; ++k) out[i++] = static_cast<char>(v >> (8 * k));
    }
    uint64_t v = Next();
    while (i < n) {
      out[i++] = static_cast<char>(v);
      v >>= 8;
    }
    return out;
  }

  /// Compressible text-like bytes (drawn from a small alphabet with runs),
  /// so codec benchmarks see realistic ratios.
  std::string CompressibleBytes(size_t n);

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace davix

#endif  // DAVIX_COMMON_RNG_H_
