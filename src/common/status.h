#ifndef DAVIX_COMMON_STATUS_H_
#define DAVIX_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace davix {

/// Error taxonomy shared by every layer of the library.
///
/// Codes are deliberately coarse: callers branch on the category of a
/// failure (retryable? replica-level? protocol-level?), not on the exact
/// syscall that produced it. The human-readable detail lives in the message.
enum class StatusCode {
  kOk = 0,
  /// Generic invalid argument supplied by the caller.
  kInvalidArgument,
  /// Resource (path, host, replica) does not exist.
  kNotFound,
  /// Authentication / permission failure (HTTP 401/403).
  kPermissionDenied,
  /// Connection could not be established (refused, unreachable, DNS).
  kConnectionFailed,
  /// Connection died mid-operation (reset, EOF inside a message).
  kConnectionReset,
  /// Operation exceeded its deadline.
  kTimeout,
  /// Peer spoke the protocol incorrectly (malformed HTTP/frame/XML).
  kProtocolError,
  /// Server reported an internal error (HTTP 5xx, xrootd kErr).
  kRemoteError,
  /// Redirect limit exceeded or redirect loop.
  kRedirectLoop,
  /// Range/vector request not satisfiable (HTTP 416).
  kRangeNotSatisfiable,
  /// Local I/O failure (file system).
  kIoError,
  /// Data failed integrity verification (checksum mismatch, bad magic).
  kCorruption,
  /// Feature not implemented / not supported by the peer.
  kNotSupported,
  /// All replicas of a resource were tried and none worked.
  kAllReplicasFailed,
  /// Operation cancelled by the caller.
  kCancelled,
  /// Internal invariant violation; indicates a bug in this library.
  kInternal,
};

/// Returns a stable lower-case identifier such as "ok" or "timeout".
std::string_view StatusCodeName(StatusCode code);

/// Arrow/RocksDB-style status object. Functions that can fail return a
/// Status (or a Result<T>, below) instead of throwing: no exception ever
/// crosses a public API boundary of this library.
///
/// The OK status carries no allocation and is cheap to copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status ConnectionFailed(std::string msg) {
    return Status(StatusCode::kConnectionFailed, std::move(msg));
  }
  static Status ConnectionReset(std::string msg) {
    return Status(StatusCode::kConnectionReset, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status ProtocolError(std::string msg) {
    return Status(StatusCode::kProtocolError, std::move(msg));
  }
  static Status RemoteError(std::string msg) {
    return Status(StatusCode::kRemoteError, std::move(msg));
  }
  static Status RedirectLoop(std::string msg) {
    return Status(StatusCode::kRedirectLoop, std::move(msg));
  }
  static Status RangeNotSatisfiable(std::string msg) {
    return Status(StatusCode::kRangeNotSatisfiable, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status AllReplicasFailed(std::string msg) {
    return Status(StatusCode::kAllReplicasFailed, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }

  /// True for failures where retrying the same request (possibly on a fresh
  /// connection or another replica) has a chance of succeeding.
  bool IsRetryable() const {
    switch (code_) {
      case StatusCode::kConnectionFailed:
      case StatusCode::kConnectionReset:
      case StatusCode::kTimeout:
      case StatusCode::kRemoteError:
        return true;
      default:
        return false;
    }
  }

  /// Renders "code: message" for logs and test diagnostics.
  std::string ToString() const;

  /// Returns a copy of this status with `context` prepended to the message,
  /// used to build an error trail as a failure propagates upward.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> is either a value or a Status; exactly one is present.
/// Mirrors arrow::Result / absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Intentionally implicit so `return value;` works in functions returning
  /// Result<T>, mirroring arrow::Result.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Intentionally implicit so `return status;` propagates failures.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Accessing the value of a failed Result aborts.
  T& value() & {
    CheckOk();
    return *value_;
  }
  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  T* operator->() {
    CheckOk();
    return &*value_;
  }
  const T* operator->() const {
    CheckOk();
    return &*value_;
  }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const;

  std::optional<T> value_;
  Status status_;
};

namespace internal {
/// Aborts the process with `status` printed; used for Result misuse, which
/// is a programming error rather than a runtime failure.
[[noreturn]] void DieBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::CheckOk() const {
  if (!ok()) internal::DieBadResultAccess(status_);
}

/// Propagates a failing Status from an expression, Arrow-style.
#define DAVIX_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::davix::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                       \
  } while (0)

/// Evaluates a Result<T> expression; on failure returns its Status, on
/// success assigns the value to `lhs`.
#define DAVIX_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define DAVIX_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define DAVIX_ASSIGN_OR_RETURN_NAME(a, b) DAVIX_ASSIGN_OR_RETURN_CONCAT(a, b)
#define DAVIX_ASSIGN_OR_RETURN(lhs, expr)                                  \
  DAVIX_ASSIGN_OR_RETURN_IMPL(                                             \
      DAVIX_ASSIGN_OR_RETURN_NAME(_davix_result_, __COUNTER__), lhs, expr)

}  // namespace davix

#endif  // DAVIX_COMMON_STATUS_H_
