#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace davix {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kPermissionDenied:
      return "permission_denied";
    case StatusCode::kConnectionFailed:
      return "connection_failed";
    case StatusCode::kConnectionReset:
      return "connection_reset";
    case StatusCode::kTimeout:
      return "timeout";
    case StatusCode::kProtocolError:
      return "protocol_error";
    case StatusCode::kRemoteError:
      return "remote_error";
    case StatusCode::kRedirectLoop:
      return "redirect_loop";
    case StatusCode::kRangeNotSatisfiable:
      return "range_not_satisfiable";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kNotSupported:
      return "not_supported";
    case StatusCode::kAllReplicasFailed:
      return "all_replicas_failed";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

namespace internal {

void DieBadResultAccess(const Status& status) {
  std::fprintf(stderr, "fatal: value() called on failed Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace davix
