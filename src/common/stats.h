#ifndef DAVIX_COMMON_STATS_H_
#define DAVIX_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace davix {

/// Accumulates samples (latencies, run times) and reports summary
/// statistics; the measurement core of the benchmark harness.
class SampleStats {
 public:
  void Add(double value);

  size_t count() const { return samples_.size(); }
  double Mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for < 2 samples.
  double Stddev() const;
  double Min() const;
  double Max() const;
  /// Linear-interpolation percentile, q in [0, 100].
  double Percentile(double q) const;

  /// "mean=12.3 sd=0.4 min=11.8 max=13.1 n=5" with the given unit suffix.
  std::string Summary(const std::string& unit) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// Counter set shared by clients/servers to report I/O behaviour:
/// the paper's claims are about *numbers of operations and connections*,
/// so those are first-class measurables here.
struct IoCounters {
  uint64_t requests = 0;           ///< protocol-level requests issued
  uint64_t network_round_trips = 0;///< request/response exchanges on the wire
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t connections_opened = 0;
  uint64_t connections_reused = 0;
  uint64_t redirects_followed = 0;
  uint64_t retries = 0;           ///< retry attempts (backoff or Retry-After)
  uint64_t retry_after_honored = 0;///< 503/429 retries paced by Retry-After
  uint64_t deadline_expirations = 0;///< operations aborted by total budget
  uint64_t stall_aborts = 0;       ///< fetches aborted by the throughput watchdog
  uint64_t breaker_opens = 0;      ///< circuit breakers tripped open
  uint64_t breaker_closes = 0;     ///< breakers closed by a successful probe
  uint64_t breaker_fast_fails = 0; ///< acquires refused by an open breaker
  uint64_t breaker_half_open_probes = 0; ///< half-open probe slots handed out
  uint64_t replica_failovers = 0;
  uint64_t replica_quarantines = 0;///< replicas quarantined (health/generation)
  uint64_t replica_validator_rejects = 0; ///< responses dropped: wrong generation
  uint64_t multisource_chunks = 0; ///< striped chunk range-GETs put on the wire
  uint64_t multisource_cache_chunks = 0;  ///< striped chunks served by the cache
  uint64_t vector_queries = 0;     ///< multi-range queries issued
  uint64_t ranges_requested = 0;   ///< individual ranges inside them
  uint64_t cache_hits = 0;         ///< block-cache lookups that served bytes
  uint64_t cache_misses = 0;       ///< block-cache lookups that went to the wire
  uint64_t cache_evictions = 0;    ///< blocks evicted by the cache budget
  uint64_t cache_bytes_saved = 0;  ///< payload bytes served from cache, not wire
  uint64_t mux_connections_opened = 0;  ///< framed mux connections opened
  uint64_t mux_connections_lost = 0;    ///< mux connections torn down by errors
  uint64_t mux_streams_opened = 0;      ///< exchanges multiplexed as streams
  uint64_t mux_streams_reset = 0;       ///< streams ended by RST / cancel
  uint64_t mux_backpressure_waits = 0;  ///< waits for a free mux stream slot

  void Reset() { *this = IoCounters{}; }
  std::string ToString() const;
};

}  // namespace davix

#endif  // DAVIX_COMMON_STATS_H_
