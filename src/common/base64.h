#ifndef DAVIX_COMMON_BASE64_H_
#define DAVIX_COMMON_BASE64_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace davix {

/// Standard base64 with padding (RFC 4648 §4); used for HTTP Basic auth
/// and binary fields in XML documents.
std::string Base64Encode(std::string_view data);

/// Decodes standard base64; tolerates absent padding, rejects other
/// malformed input.
Result<std::string> Base64Decode(std::string_view encoded);

}  // namespace davix

#endif  // DAVIX_COMMON_BASE64_H_
