#ifndef DAVIX_COMMON_STRING_UTIL_H_
#define DAVIX_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace davix {

/// Splits `input` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> SplitString(std::string_view input, char sep);

/// Splits on `sep`, trimming ASCII whitespace from each field and dropping
/// fields that end up empty. Suited to HTTP list-style header values.
std::vector<std::string> SplitAndTrim(std::string_view input, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// ASCII case-insensitive equality (HTTP header names, schemes, hosts).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Lower-cases ASCII characters only.
std::string AsciiLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a non-negative decimal integer. Rejects empty strings, signs,
/// non-digits and overflow.
std::optional<uint64_t> ParseUint64(std::string_view s);

/// Parses a signed decimal integer.
std::optional<int64_t> ParseInt64(std::string_view s);

/// Joins `parts` with `sep` ({"a","b"} + "," -> "a,b").
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Formats a byte count for humans: "1.5 MiB", "312 B".
std::string HumanBytes(uint64_t bytes);

/// Lower-case hex encoding of arbitrary bytes.
std::string HexEncode(std::string_view data);

}  // namespace davix

#endif  // DAVIX_COMMON_STRING_UTIL_H_
