#include "common/rng.h"

namespace davix {

std::string Rng::CompressibleBytes(size_t n) {
  static constexpr char kWords[] =
      "event track muon pion kaon jet vertex cluster energy momentum ";
  std::string out;
  out.reserve(n);
  while (out.size() < n) {
    if (Chance(0.3)) {
      // Run of a repeated byte.
      char c = static_cast<char>('a' + Below(26));
      size_t len = 4 + Below(24);
      out.append(std::min(len, n - out.size()), c);
    } else {
      // len can reach 11, so start must leave 11 readable characters
      // (excluding the trailing NUL) or the append reads past kWords.
      size_t start = Below(sizeof(kWords) - 12);
      size_t len = 4 + Below(8);
      out.append(kWords + start, std::min(len, n - out.size()));
    }
  }
  return out;
}

}  // namespace davix
