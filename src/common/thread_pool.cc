#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace davix {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  return queue_.Push(std::move(task));
}

void ThreadPool::Shutdown() {
  queue_.Close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::optional<std::function<void()>> task = queue_.Pop();
    if (!task) return;
    (*task)();
  }
}

void ParallelFor(size_t n, size_t parallelism,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  size_t threads = std::min(std::max<size_t>(1, parallelism), n);
  if (threads == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      while (true) {
        size_t i = next.fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

bool ParallelForCancellable(size_t n, size_t parallelism,
                            const std::function<bool(size_t)>& fn) {
  if (n == 0) return true;
  size_t threads = std::min(std::max<size_t>(1, parallelism), n);
  if (threads == 1) {
    for (size_t i = 0; i < n; ++i) {
      if (!fn(i)) return false;
    }
    return true;
  }
  std::atomic<size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      while (!cancelled.load(std::memory_order_acquire)) {
        size_t i = next.fetch_add(1);
        if (i >= n) return;
        if (!fn(i)) {
          cancelled.store(true, std::memory_order_release);
          return;
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  return !cancelled.load(std::memory_order_relaxed);
}

}  // namespace davix
