#include "common/thread_pool.h"

#include <algorithm>
#include <memory>

#include "common/mutex.h"

namespace davix {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  // Counted before the push so tasks_executed() can never be observed
  // ahead of tasks_submitted() (their difference is the backlog).
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (!queue_.Push(std::move(task))) {
    submitted_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void ThreadPool::Shutdown() {
  queue_.Close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::optional<std::function<void()>> task = queue_.Pop();
    if (!task) return;
    (*task)();
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

namespace {

/// Shared claim/completion state of one parallel-for call. Helper tasks
/// hold it by shared_ptr: a helper that only gets scheduled after the
/// call already returned (every index claimed by faster executors) finds
/// nothing to do and exits without touching the caller's frame.
///
/// Thread-safe: yes — `mu` guards the claim cursor and completion
/// counters; `n` and `fn` are immutable after construction.
struct ParallelState {
  Mutex mu;
  CondVar cv;
  size_t next GUARDED_BY(mu) = 0;       ///< next unclaimed index
  size_t executing GUARDED_BY(mu) = 0;  ///< fn calls currently in flight
  bool cancelled GUARDED_BY(mu) = false;
  size_t n = 0;                         ///< immutable after construction
  std::function<bool(size_t)> fn;       ///< immutable after construction
};

/// Claim loop run by the caller and by every helper task: claim an
/// index, run fn outside the lock, repeat until exhausted or cancelled.
void RunClaimLoop(const std::shared_ptr<ParallelState>& state) {
  MutexLock lock(state->mu);
  while (!state->cancelled && state->next < state->n) {
    size_t i = state->next++;
    ++state->executing;
    lock.Unlock();
    bool keep_going = state->fn(i);
    lock.Lock();
    --state->executing;
    if (!keep_going) state->cancelled = true;
    if (state->executing == 0 &&
        (state->cancelled || state->next >= state->n)) {
      state->cv.NotifyAll();
    }
  }
}

bool RunParallel(ThreadPool* pool, size_t n, size_t parallelism,
                 std::function<bool(size_t)> fn) {
  if (n == 0) return true;
  size_t executors = std::min(std::max<size_t>(1, parallelism), n);
  if (executors == 1 || pool == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      if (!fn(i)) return false;
    }
    return true;
  }

  auto state = std::make_shared<ParallelState>();
  state->n = n;
  state->fn = std::move(fn);

  // The caller is one executor; the rest are pool tasks. A Submit
  // rejected by a shutting-down pool just means fewer helpers — the
  // caller's own loop still covers every index.
  for (size_t t = 1; t < executors; ++t) {
    if (!pool->Submit([state] { RunClaimLoop(state); })) break;
  }
  RunClaimLoop(state);

  MutexLock lock(state->mu);
  state->cv.Wait(state->mu, [&]() REQUIRES(state->mu) {
    return state->executing == 0 &&
           (state->cancelled || state->next >= state->n);
  });
  return !state->cancelled;
}

}  // namespace

void ParallelFor(ThreadPool* pool, size_t n, size_t parallelism,
                 const std::function<void(size_t)>& fn) {
  RunParallel(pool, n, parallelism, [&fn](size_t i) {
    fn(i);
    return true;
  });
}

bool ParallelForCancellable(ThreadPool* pool, size_t n, size_t parallelism,
                            const std::function<bool(size_t)>& fn) {
  return RunParallel(pool, n, parallelism, fn);
}

}  // namespace davix
