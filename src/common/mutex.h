#ifndef DAVIX_COMMON_MUTEX_H_
#define DAVIX_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <utility>

#include "common/thread_annotations.h"

namespace davix {

/// Capability-annotated wrapper over std::mutex — the only mutex type
/// used in this codebase. The wrapper exists because libstdc++'s
/// std::mutex carries no Clang capability attributes, so GUARDED_BY /
/// REQUIRES annotations (see common/thread_annotations.h) can only be
/// checked against an annotated type. scripts/check_concurrency_lint.py
/// rejects raw std::mutex outside this header.
///
/// Thread-safe: yes — it *is* the synchronisation primitive.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped lock over Mutex, with explicit Unlock/Lock so claim-loop
/// style code (run work outside the lock, reacquire to publish) stays a
/// single analysable scope. Not recursive, not movable.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }
  ~MutexLock() RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early (e.g. before running a callback); the destructor
  /// then does nothing unless Lock() reacquires.
  void Unlock() RELEASE() {
    held_ = false;
    mu_.Unlock();
  }

  /// Reacquires after an early Unlock().
  void Lock() ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable paired with Mutex (std::condition_variable_any
/// under the hood). Waits logically keep the capability held across the
/// internal release/reacquire, matching how the thread-safety analysis
/// models condition-variable waits.
///
/// Thread-safe: yes.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. As with std::condition_variable, spurious
  /// wakeups happen; prefer the predicate overload.
  void Wait(Mutex& mu) REQUIRES(mu) {
    LockView view{mu};
    cv_.wait(view);
  }

  /// Blocks until `pred()` is true. `pred` runs with `mu` held; when it
  /// reads GUARDED_BY members, annotate the lambda itself REQUIRES(mu).
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) REQUIRES(mu) {
    LockView view{mu};
    cv_.wait(view, std::move(pred));
  }

  /// Predicate wait with a deadline; returns pred() at wakeup time
  /// (false = timed out with the predicate still unsatisfied).
  template <typename Pred>
  bool WaitFor(Mutex& mu, int64_t timeout_micros, Pred pred) REQUIRES(mu) {
    LockView view{mu};
    return cv_.wait_for(view, std::chrono::microseconds(timeout_micros),
                        std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  /// BasicLockable view over Mutex handed to condition_variable_any.
  /// The unannotated lock/unlock are what lets a Wait release and
  /// reacquire the mutex without the analysis seeing a capability
  /// change — exactly the condition-variable semantics.
  struct LockView {
    Mutex& mu;
    void lock() NO_THREAD_SAFETY_ANALYSIS { mu.mu_.lock(); }
    void unlock() NO_THREAD_SAFETY_ANALYSIS { mu.mu_.unlock(); }
  };

  std::condition_variable_any cv_;
};

}  // namespace davix

#endif  // DAVIX_COMMON_MUTEX_H_
