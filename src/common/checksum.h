#ifndef DAVIX_COMMON_CHECKSUM_H_
#define DAVIX_COMMON_CHECKSUM_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace davix {

/// CRC-32 (IEEE 802.3 polynomial, the zlib crc32). Used to protect
/// compressed baskets and protocol frames.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

/// Incremental MD5 (RFC 1321). Metalink documents carry md5 hashes of
/// whole files; davix verifies downloads against them.
class Md5 {
 public:
  Md5();

  void Update(std::string_view data);

  /// Finalises and returns the 16-byte digest. The object must not be
  /// updated afterwards.
  std::array<uint8_t, 16> Digest();

  /// Convenience: hex digest of `data` in one call.
  static std::string HexDigest(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[4];
  uint64_t length_ = 0;
  uint8_t buffer_[64];
  size_t buffered_ = 0;
  bool finalized_ = false;
};

}  // namespace davix

#endif  // DAVIX_COMMON_CHECKSUM_H_
