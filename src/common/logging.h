#ifndef DAVIX_COMMON_LOGGING_H_
#define DAVIX_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace davix {

/// Severity of a log statement; kTrace is the chattiest. The process
/// threshold lives in SetLogLevel / DAVIX_LOG.
enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Sets the process-wide minimum level that is emitted. Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits one line to stderr on destruction.
/// Use through the DAVIX_LOG macro, not directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Usage: DAVIX_LOG(kInfo) << "pool size " << n;
/// The message is dropped with no formatting cost when the level is below
/// the configured threshold.
#define DAVIX_LOG(severity)                                             \
  if (::davix::LogLevel::severity < ::davix::GetLogLevel()) {           \
  } else                                                                \
    ::davix::internal::LogMessage(::davix::LogLevel::severity, __FILE__, \
                                  __LINE__)                             \
        .stream()

}  // namespace davix

#endif  // DAVIX_COMMON_LOGGING_H_
