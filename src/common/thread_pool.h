#ifndef DAVIX_COMMON_THREAD_POOL_H_
#define DAVIX_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"

namespace davix {

/// Fixed-size worker pool executing std::function tasks FIFO.
///
/// Used for the server-side request workers, for the client-side
/// parallel operations (multi-stream downloads, concurrent dispatch),
/// and as the per-Context dispatcher behind the parallel-for primitives
/// and the asynchronous read-ahead window.
///
/// Thread-safe: yes — Submit/Shutdown and the accessors may be called
/// from any thread; the queue provides the synchronisation.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);

  /// Stops accepting tasks, runs what is queued, joins all workers.
  /// Idempotent; also called by the destructor.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

  /// Task accounting: accepted by Submit / finished executing. The
  /// difference is the queued-or-running backlog.
  uint64_t tasks_submitted() const {
    return submitted_.load(std::memory_order_relaxed);
  }
  uint64_t tasks_executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

  /// Queued-or-running tasks right now — the admission-control signal
  /// the reactor server sheds load on. Both counters are monotonic, and
  /// executed trails submitted, so the subtraction cannot wrap.
  uint64_t backlog() const {
    uint64_t submitted = tasks_submitted();
    uint64_t executed = tasks_executed();
    return submitted > executed ? submitted - executed : 0;
  }

 private:
  void WorkerLoop();

  BlockingQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> executed_{0};
};

/// Runs `fn(i)` for i in [0, n) across up to `parallelism` concurrent
/// executors drawn from `pool`, and waits for completion. The calling
/// thread always participates in the work, so the call makes progress
/// (and cannot deadlock) even when every pool worker is busy — including
/// when the caller itself runs on one of `pool`'s threads. `pool` may be
/// null, which degrades to a serial loop on the caller. Exceptions must
/// not escape fn.
void ParallelFor(ThreadPool* pool, size_t n, size_t parallelism,
                 const std::function<void(size_t)>& fn);

/// Like ParallelFor, but `fn` returning false requests cancellation:
/// indices no executor has claimed yet are skipped, while calls already
/// in flight run to completion. Returns true iff every index ran and
/// returned true — the first-error-cancellation primitive behind the
/// parallel vectored-read dispatcher.
bool ParallelForCancellable(ThreadPool* pool, size_t n, size_t parallelism,
                            const std::function<bool(size_t)>& fn);

}  // namespace davix

#endif  // DAVIX_COMMON_THREAD_POOL_H_
