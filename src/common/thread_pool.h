#ifndef DAVIX_COMMON_THREAD_POOL_H_
#define DAVIX_COMMON_THREAD_POOL_H_

#include <functional>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"

namespace davix {

/// Fixed-size worker pool executing std::function tasks FIFO.
///
/// Used for the server-side request workers and for the client-side
/// parallel operations (multi-stream downloads, concurrent dispatch).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);

  /// Stops accepting tasks, runs what is queued, joins all workers.
  /// Idempotent; also called by the destructor.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  BlockingQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
};

/// Runs `fn(i)` for i in [0, n) across up to `parallelism` threads and
/// waits for completion. Exceptions must not escape fn.
void ParallelFor(size_t n, size_t parallelism,
                 const std::function<void(size_t)>& fn);

/// Like ParallelFor, but `fn` returning false requests cancellation:
/// indices no worker has claimed yet are skipped, while calls already in
/// flight run to completion. Returns true iff every index ran and
/// returned true — the first-error-cancellation primitive behind the
/// parallel vectored-read dispatcher.
bool ParallelForCancellable(size_t n, size_t parallelism,
                            const std::function<bool(size_t)>& fn);

}  // namespace davix

#endif  // DAVIX_COMMON_THREAD_POOL_H_
