#ifndef DAVIX_COMMON_CLOCK_H_
#define DAVIX_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace davix {

/// Microseconds on a monotonic clock, for durations and deadlines.
inline int64_t MonotonicMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Seconds since the Unix epoch on the wall clock, for HTTP Date headers.
inline int64_t WallSeconds() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Sleeps the calling thread; the unit of pacing in the network simulator.
void SleepForMicros(int64_t micros);

/// Wall-clock stopwatch used by benchmarks and tests.
class Stopwatch {
 public:
  Stopwatch() : start_(MonotonicMicros()) {}

  void Restart() { start_ = MonotonicMicros(); }
  int64_t ElapsedMicros() const { return MonotonicMicros() - start_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  int64_t start_;
};

}  // namespace davix

#endif  // DAVIX_COMMON_CLOCK_H_
