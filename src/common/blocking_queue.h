#ifndef DAVIX_COMMON_BLOCKING_QUEUE_H_
#define DAVIX_COMMON_BLOCKING_QUEUE_H_

#include <deque>
#include <optional>
#include <utility>

#include "common/mutex.h"

namespace davix {

/// Unbounded multi-producer multi-consumer FIFO with shutdown support.
/// The dispatch backbone of the thread pool and of the servers.
///
/// Thread-safe: yes — every method may be called from any thread.
template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueues an item. Returns false (dropping the item) after Close().
  bool Push(T item) {
    {
      MutexLock lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  /// Returns nullopt only on closed-and-empty.
  std::optional<T> Pop() {
    MutexLock lock(mu_);
    cv_.Wait(mu_, [this]() REQUIRES(mu_) {
      return closed_ || !items_.empty();
    });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Wakes all blocked consumers; subsequent Push calls are rejected.
  /// Items already queued are still delivered.
  void Close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  size_t Size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace davix

#endif  // DAVIX_COMMON_BLOCKING_QUEUE_H_
