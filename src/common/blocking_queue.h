#ifndef DAVIX_COMMON_BLOCKING_QUEUE_H_
#define DAVIX_COMMON_BLOCKING_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace davix {

/// Unbounded multi-producer multi-consumer FIFO with shutdown support.
/// The dispatch backbone of the thread pool and of the servers.
template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueues an item. Returns false (dropping the item) after Close().
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  /// Returns nullopt only on closed-and-empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Wakes all blocked consumers; subsequent Push calls are rejected.
  /// Items already queued are still delivered.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace davix

#endif  // DAVIX_COMMON_BLOCKING_QUEUE_H_
