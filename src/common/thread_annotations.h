#ifndef DAVIX_COMMON_THREAD_ANNOTATIONS_H_
#define DAVIX_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety (capability) annotation macros, in the style of
// abseil's thread_annotations.h. On Clang the static analysis behind
// -Wthread-safety proves at compile time that every access to a
// GUARDED_BY member happens with the right lock held; the CI clang leg
// builds with -Werror=thread-safety so a violation fails the build. On
// other compilers every macro expands to nothing.
//
// Conventions (see docs/CONCURRENCY.md):
//  - every member protected by a lock is declared GUARDED_BY(mu_);
//  - private helpers named *Locked take REQUIRES(mu_) instead of the
//    lock itself;
//  - locks are only ever taken through common/mutex.h wrappers
//    (davix::Mutex / davix::MutexLock / davix::CondVar), never through
//    std::mutex directly — scripts/check_concurrency_lint.py enforces
//    this greppably so the annotations cannot be bypassed.

#if defined(__clang__)
#define DAVIX_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define DAVIX_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// Declares a type to be a lockable capability ("mutex").
#define CAPABILITY(x) DAVIX_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define SCOPED_CAPABILITY DAVIX_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Declares that a data member may only be accessed while holding `x`.
#define GUARDED_BY(x) DAVIX_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Declares that the data pointed to by a pointer member may only be
/// accessed while holding `x` (the pointer itself is unguarded).
#define PT_GUARDED_BY(x) DAVIX_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Declares that a function may only be called while holding the given
/// capabilities (the *Locked helper convention).
#define REQUIRES(...) \
  DAVIX_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Shared (reader) variant of REQUIRES.
#define REQUIRES_SHARED(...) \
  DAVIX_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Declares that a function acquires the given capabilities and does not
/// release them before returning.
#define ACQUIRE(...) \
  DAVIX_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Declares that a function releases the given capabilities.
#define RELEASE(...) \
  DAVIX_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Declares that a function attempts to acquire the given capabilities
/// and succeeded when it returned `b`.
#define TRY_ACQUIRE(b, ...) \
  DAVIX_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(b, __VA_ARGS__))

/// Declares that a function must NOT be called while holding the given
/// capabilities (deadlock prevention on self-locking entry points).
#define EXCLUDES(...) \
  DAVIX_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Declares the lock returned by a getter.
#define RETURN_CAPABILITY(x) \
  DAVIX_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Declares an acquisition-order edge between two locks.
#define ACQUIRED_BEFORE(...) \
  DAVIX_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  DAVIX_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Asserts at runtime semantics level that the capability is held
/// (turns the analysis on for the rest of the scope).
#define ASSERT_CAPABILITY(x) \
  DAVIX_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Escape hatch for functions whose locking discipline is correct but
/// beyond the analysis (single-owner handoffs, lock views). Every use
/// carries a comment explaining why the access is safe.
#define NO_THREAD_SAFETY_ANALYSIS \
  DAVIX_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // DAVIX_COMMON_THREAD_ANNOTATIONS_H_
