#include "common/string_util.h"

#include <cctype>
#include <cstdio>
#include <limits>

namespace davix {

std::vector<std::string> SplitString(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitAndTrim(std::string_view input, char sep) {
  std::vector<std::string> out;
  for (const std::string& field : SplitString(input, sep)) {
    std::string_view trimmed = TrimWhitespace(field);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<uint64_t> ParseUint64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      return std::nullopt;  // overflow
    }
    value = value * 10 + digit;
  }
  return value;
}

std::optional<int64_t> ParseInt64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  bool negative = false;
  if (s[0] == '-' || s[0] == '+') {
    negative = (s[0] == '-');
    s.remove_prefix(1);
  }
  std::optional<uint64_t> magnitude = ParseUint64(s);
  if (!magnitude) return std::nullopt;
  if (negative) {
    if (*magnitude >
        static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) + 1) {
      return std::nullopt;
    }
    // Negate in the unsigned domain: -INT64_MIN is not representable,
    // so `-static_cast<int64_t>(m)` would be UB for m == 2^63.
    return static_cast<int64_t>(0u - *magnitude);
  }
  if (*magnitude > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    return std::nullopt;
  }
  return static_cast<int64_t>(*magnitude);
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string HexEncode(std::string_view data) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (unsigned char c : data) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xf]);
  }
  return out;
}

}  // namespace davix
