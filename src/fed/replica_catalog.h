#ifndef DAVIX_FED_REPLICA_CATALOG_H_
#define DAVIX_FED_REPLICA_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "metalink/metalink.h"

namespace davix {
namespace fed {

/// Logical-name -> replica-set catalogue: the state behind a DynaFed-like
/// "Dynamic Storage Federation" endpoint (§2.4). Keys are logical paths
/// ("/atlas/events.root"); values are the Metalink fields for that
/// resource.
///
/// Thread-safe: yes — one internal mutex serialises all operations.
class ReplicaCatalog {
 public:
  ReplicaCatalog() = default;

  /// Adds (or re-prioritises) one replica of `path`.
  void AddReplica(std::string_view path, std::string_view url, int priority);

  /// Records content metadata used in generated Metalinks.
  void SetFileMeta(std::string_view path, uint64_t size,
                   std::string_view md5_hex);

  /// Removes one replica URL; true if it was present.
  bool RemoveReplica(std::string_view path, std::string_view url);

  /// Drops the whole entry.
  void Remove(std::string_view path);

  /// Metalink document data for `path`; kNotFound when unknown. The
  /// returned replicas are deterministically ordered: priority
  /// ascending, equal priorities by URL — so generated Metalinks do not
  /// depend on registration order.
  Result<metalink::MetalinkFile> Lookup(std::string_view path) const;

  /// All registered logical paths (sorted).
  std::vector<std::string> Paths() const;

 private:
  static std::string Normalize(std::string_view path);

  mutable Mutex mu_;
  std::map<std::string, metalink::MetalinkFile> entries_ GUARDED_BY(mu_);
};

}  // namespace fed
}  // namespace davix

#endif  // DAVIX_FED_REPLICA_CATALOG_H_
