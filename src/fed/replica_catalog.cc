#include "fed/replica_catalog.h"

#include <algorithm>

namespace davix {
namespace fed {

std::string ReplicaCatalog::Normalize(std::string_view path) {
  std::string out(path);
  if (out.empty() || out[0] != '/') out.insert(out.begin(), '/');
  while (out.size() > 1 && out.back() == '/') out.pop_back();
  return out;
}

namespace {

/// Canonical replica order of the catalogue: priority ascending, URL
/// breaking ties — so generated Metalinks (and the redirect target
/// choice) do not depend on registration order.
void SortReplicas(std::vector<metalink::Replica>* replicas) {
  std::stable_sort(replicas->begin(), replicas->end(),
                   [](const metalink::Replica& a, const metalink::Replica& b) {
                     if (a.priority != b.priority) {
                       return a.priority < b.priority;
                     }
                     return a.url < b.url;
                   });
}

}  // namespace

void ReplicaCatalog::AddReplica(std::string_view path, std::string_view url,
                                int priority) {
  std::string key = Normalize(path);
  MutexLock lock(mu_);
  metalink::MetalinkFile& entry = entries_[key];
  if (entry.name.empty()) {
    size_t slash = key.rfind('/');
    entry.name = key.substr(slash + 1);
  }
  bool updated = false;
  for (metalink::Replica& replica : entry.replicas) {
    if (replica.url == url) {
      replica.priority = priority;
      updated = true;
      break;
    }
  }
  if (!updated) {
    metalink::Replica replica;
    replica.url = std::string(url);
    replica.priority = priority;
    entry.replicas.push_back(std::move(replica));
  }
  // Keep entries sorted at mutation time: Lookup sits on the federation
  // server's per-request path and stays a plain copy.
  SortReplicas(&entry.replicas);
}

void ReplicaCatalog::SetFileMeta(std::string_view path, uint64_t size,
                                 std::string_view md5_hex) {
  std::string key = Normalize(path);
  MutexLock lock(mu_);
  metalink::MetalinkFile& entry = entries_[key];
  entry.size = size;
  entry.md5 = std::string(md5_hex);
}

bool ReplicaCatalog::RemoveReplica(std::string_view path,
                                   std::string_view url) {
  std::string key = Normalize(path);
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  auto& replicas = it->second.replicas;
  auto removed = std::remove_if(
      replicas.begin(), replicas.end(),
      [&](const metalink::Replica& r) { return r.url == url; });
  bool found = removed != replicas.end();
  replicas.erase(removed, replicas.end());
  return found;
}

void ReplicaCatalog::Remove(std::string_view path) {
  MutexLock lock(mu_);
  entries_.erase(Normalize(path));
}

Result<metalink::MetalinkFile> ReplicaCatalog::Lookup(
    std::string_view path) const {
  std::string key = Normalize(path);
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.replicas.empty()) {
    return Status::NotFound("no replicas registered for " + key);
  }
  // Replicas are kept in canonical order by AddReplica (priority
  // ascending, URL breaking ties), so this is a plain copy.
  return it->second;
}

std::vector<std::string> ReplicaCatalog::Paths() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [path, entry] : entries_) out.push_back(path);
  return out;
}

}  // namespace fed
}  // namespace davix
