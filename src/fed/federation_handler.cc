#include "fed/federation_handler.h"

#include "common/string_util.h"
#include "httpd/dav_handler.h"

namespace davix {
namespace fed {

bool FederationHandler::WantsMetalink(const http::HttpRequest& request) {
  std::optional<std::string> accept = request.headers.Get("Accept");
  if (accept && accept->find("metalink4+xml") != std::string::npos) {
    return true;
  }
  std::string_view target = request.target;
  size_t q = target.find('?');
  if (q != std::string_view::npos) {
    std::string_view query = target.substr(q + 1);
    for (const std::string& param : SplitAndTrim(query, '&')) {
      if (param == "metalink" || StartsWith(param, "metalink=")) return true;
    }
    target = target.substr(0, q);
  }
  return EndsWith(target, ".meta4");
}

void FederationHandler::Register(httpd::Router* router,
                                 const std::string& prefix) {
  std::shared_ptr<FederationHandler> self = weak_from_this().lock();
  router->HandleAll(prefix,
                    [this, self, prefix](const http::HttpRequest& request,
                                         http::HttpResponse* response) {
                      Handle(prefix, request, response, nullptr);
                    });
}

void FederationHandler::RegisterWithFallback(httpd::Router* router,
                                             const std::string& prefix,
                                             httpd::HandlerFn fallback) {
  std::shared_ptr<FederationHandler> self = weak_from_this().lock();
  auto shared_fallback =
      std::make_shared<httpd::HandlerFn>(std::move(fallback));
  router->HandleAll(prefix, [this, self, prefix, shared_fallback](
                                const http::HttpRequest& request,
                                http::HttpResponse* response) {
    Handle(prefix, request, response, shared_fallback.get());
  });
}

void FederationHandler::Handle(const std::string& prefix,
                               const http::HttpRequest& request,
                               http::HttpResponse* response,
                               const httpd::HandlerFn* fallback) {
  bool wants_metalink = WantsMetalink(request);
  if (!wants_metalink && fallback != nullptr) {
    (*fallback)(request, response);
    return;
  }
  if (request.method != http::Method::kGet &&
      request.method != http::Method::kHead) {
    response->status_code = 405;
    response->headers.Set("Allow", "GET, HEAD");
    return;
  }

  std::string path = httpd::RequestPath(request);
  // Strip the registration prefix and a ".meta4" suffix to get the
  // logical name.
  std::string logical = path;
  if (prefix != "/" && StartsWith(logical, prefix)) {
    logical = logical.substr(prefix.size());
    if (logical.empty() || logical[0] != '/') {
      logical.insert(logical.begin(), '/');
    }
  }
  if (EndsWith(logical, ".meta4")) {
    logical = logical.substr(0, logical.size() - 6);
  }

  Result<metalink::MetalinkFile> entry = catalog_->Lookup(logical);
  (entry.ok() ? catalog_hits_ : catalog_misses_)
      .fetch_add(1, std::memory_order_relaxed);
  if (!entry.ok()) {
    response->status_code = 404;
    response->headers.Set("Content-Type", "text/plain");
    response->body = "unknown federated resource: " + logical + "\n";
    return;
  }

  if (wants_metalink) {
    metalinks_served_.fetch_add(1, std::memory_order_relaxed);
    response->status_code = 200;
    response->headers.Set("Content-Type",
                          std::string(metalink::kMetalinkContentType));
    response->body = metalink::WriteMetalink(*entry);
    return;
  }

  // Redirect mode: send the client to the best replica.
  const std::vector<metalink::Replica> ordered = entry->SortedReplicas();
  redirects_served_.fetch_add(1, std::memory_order_relaxed);
  response->status_code = 302;
  response->headers.Set("Location", ordered.front().url);
}

}  // namespace fed
}  // namespace davix
