#ifndef DAVIX_FED_FEDERATION_HANDLER_H_
#define DAVIX_FED_FEDERATION_HANDLER_H_

#include <atomic>
#include <memory>
#include <string>

#include "fed/replica_catalog.h"
#include "httpd/router.h"

namespace davix {
namespace fed {

/// HTTP face of the federation (the DynaFed role, §2.4).
///
/// For a GET on a federated logical path:
///  - if the client asked for a Metalink (Accept:
///    application/metalink4+xml, or a `metalink` query parameter, or a
///    ".meta4" suffix), answer 200 with the generated Metalink document;
///  - otherwise answer 302 to the highest-priority replica — the
///    "classical hierarchical data federation" redirect behaviour.
///
/// HEAD mirrors GET's redirect. Everything else is 405.
class FederationHandler
    : public std::enable_shared_from_this<FederationHandler> {
 public:
  explicit FederationHandler(std::shared_ptr<ReplicaCatalog> catalog)
      : catalog_(std::move(catalog)) {}

  /// Registers this handler for all requests under `prefix`. Logical
  /// paths are looked up with `prefix` stripped.
  void Register(httpd::Router* router, const std::string& prefix);

  /// Registers a combined endpoint: Metalink requests go to the
  /// federation, everything else to `fallback` (typically a DavHandler
  /// serving the bytes) — the davix "ask the original host for its
  /// Metalink" convention.
  void RegisterWithFallback(httpd::Router* router, const std::string& prefix,
                            httpd::HandlerFn fallback);

  ReplicaCatalog& catalog() { return *catalog_; }

  /// Metalink documents served (benchmark visibility).
  uint64_t metalinks_served() const {
    return metalinks_served_.load(std::memory_order_relaxed);
  }
  /// Redirects issued.
  uint64_t redirects_served() const {
    return redirects_served_.load(std::memory_order_relaxed);
  }
  /// Catalogue lookups that found a registered resource.
  uint64_t catalog_hits() const {
    return catalog_hits_.load(std::memory_order_relaxed);
  }
  /// Catalogue lookups for unknown resources (answered 404) — the
  /// federation-side view of clients chasing unregistered paths.
  uint64_t catalog_misses() const {
    return catalog_misses_.load(std::memory_order_relaxed);
  }

 private:
  void Handle(const std::string& prefix, const http::HttpRequest& request,
              http::HttpResponse* response, const httpd::HandlerFn* fallback);

  static bool WantsMetalink(const http::HttpRequest& request);

  std::shared_ptr<ReplicaCatalog> catalog_;
  std::atomic<uint64_t> metalinks_served_{0};
  std::atomic<uint64_t> redirects_served_{0};
  std::atomic<uint64_t> catalog_hits_{0};
  std::atomic<uint64_t> catalog_misses_{0};
};

}  // namespace fed
}  // namespace davix

#endif  // DAVIX_FED_FEDERATION_HANDLER_H_
