#ifndef DAVIX_CORE_SESSION_POOL_H_
#define DAVIX_CORE_SESSION_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/uri.h"
#include "core/request_params.h"
#include "core/resilience.h"
#include "net/buffered_reader.h"
#include "net/tcp_socket.h"

namespace davix {
namespace core {

/// One client-side HTTP connection, possibly recycled across requests.
///
/// Owns the socket (kept behind a unique_ptr so the BufferedReader's
/// pointer stays valid when the Session moves between pool and user).
class Session {
 public:
  Session(std::string key, net::TcpSocket socket);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  net::TcpSocket& socket() { return *socket_; }
  net::BufferedReader& reader() { return reader_; }

  /// Pool bucket key: "host:port".
  const std::string& key() const { return key_; }

  /// True when this session came out of the pool rather than from a fresh
  /// connect — i.e. a §2.2 session-recycling hit.
  bool recycled() const { return recycled_; }
  void set_recycled(bool recycled) { recycled_ = recycled; }

  /// Request/response exchanges completed on this connection.
  uint64_t exchanges() const { return exchanges_; }
  void IncrementExchanges() { ++exchanges_; }

  int64_t last_used_micros() const { return last_used_micros_; }
  void TouchLastUsed();

 private:
  std::string key_;
  std::unique_ptr<net::TcpSocket> socket_;
  net::BufferedReader reader_;
  bool recycled_ = false;
  uint64_t exchanges_ = 0;
  int64_t last_used_micros_ = 0;
};

/// Pool behaviour knobs. Fixed at Context construction; a copy is
/// readable through SessionPool::config().
struct SessionPoolConfig {
  /// Idle sessions kept per host:port bucket. Also the auto bound of
  /// RequestParams::max_parallel_range_requests == 0: the vectored
  /// dispatcher bursts at most this many connections at one host, so
  /// the whole burst can be parked and recycled afterwards.
  size_t max_idle_per_host = 32;
  /// Idle sessions older than this are dropped at acquire time.
  int64_t max_idle_age_micros = 30'000'000;
};

/// Aggregate pool counters (all monotonic except current_idle).
struct SessionPoolStats {
  std::atomic<uint64_t> connects{0};        ///< fresh TCP connections made
  std::atomic<uint64_t> recycled{0};        ///< sessions served from pool
  std::atomic<uint64_t> discarded{0};       ///< broken sessions dropped
  std::atomic<uint64_t> expired{0};         ///< idle sessions aged out
  std::atomic<uint64_t> current_idle{0};    ///< sessions parked right now
  /// Contention view of Acquire: a hit found a usable idle session, a
  /// miss found none (bucket empty, drained by concurrent acquirers, or
  /// everything aged out) and had to pay a fresh connect. The parallel
  /// vectored dispatcher bursts N acquires at one host; hits/misses show
  /// how well the pool absorbs that burst across calls.
  std::atomic<uint64_t> acquire_hits{0};
  std::atomic<uint64_t> acquire_misses{0};
};

/// §2.2 of the paper: "a hybrid solution based on a dynamic connection
/// pool with a thread-safe query dispatch system and a session recycling
/// mechanism", with "an aggressive usage of the HTTP KeepAlive feature
/// ... to maximize the re-utilization of the TCP connections and to
/// minimize the effect of the TCP slow start."
///
/// Buckets are keyed by host:port. Acquire pops the most recently used
/// idle session (LIFO keeps congestion windows warm); Release parks a
/// healthy keep-alive session back; Discard destroys a broken one. The
/// pool grows with the level of concurrency — the paper's §2.2 notes this
/// is the designed trade-off versus SPDY-style multiplexing.
///
/// Ownership: owned by the Context; sessions move out by unique_ptr on
/// Acquire and back in on Release, so exactly one owner exists at any
/// time. Thread-safe: yes (one internal mutex; no call blocks on the
/// network while holding it — fresh connects happen outside the lock).
class SessionPool {
 public:
  explicit SessionPool(SessionPoolConfig config = {});

  /// Gets a session to `uri`'s host — recycled if possible, freshly
  /// connected otherwise. Consults the host's circuit breaker first:
  /// while it is open the acquire fast-fails with a retryable
  /// kConnectionFailed ("circuit breaker open for <host:port>") without
  /// touching the network, so fail-over moves to another replica
  /// immediately. Connect failures feed the breaker here; exchange
  /// outcomes on the acquired session are reported by HttpClient.
  /// The connect timeout (params.connect_timeout_micros, <= 0 resolving
  /// to 15 s) and the recycled/fresh reader timeout are both capped by
  /// params.deadline when it is armed.
  Result<std::unique_ptr<Session>> Acquire(const Uri& uri,
                                           const RequestParams& params);

  /// Parks a healthy session for reuse. Sessions with unread buffered
  /// bytes (protocol desync) are destroyed instead.
  void Release(std::unique_ptr<Session> session);

  /// Destroys a broken session.
  void Discard(std::unique_ptr<Session> session);

  /// Drops every idle session.
  void Clear();

  /// Idle sessions currently parked (over all buckets).
  size_t IdleCount() const;

  /// Number of host:port buckets currently held. Drained buckets are
  /// erased eagerly, so this tracks hosts with parked sessions, not every
  /// host ever contacted.
  size_t BucketCount() const;

  const SessionPoolConfig& config() const { return config_; }

  SessionPoolStats& stats() { return stats_; }

  /// The per-host circuit breakers living alongside the host buckets
  /// (one breaker per "host:port" key, shared by every request through
  /// this pool's Context).
  CircuitBreakerRegistry& breakers() { return breakers_; }
  const CircuitBreakerRegistry& breakers() const { return breakers_; }

 private:
  SessionPoolConfig config_;
  mutable Mutex mu_;
  std::unordered_map<std::string, std::vector<std::unique_ptr<Session>>>
      idle_ GUARDED_BY(mu_);
  SessionPoolStats stats_;
  CircuitBreakerRegistry breakers_;
};

}  // namespace core
}  // namespace davix

#endif  // DAVIX_CORE_SESSION_POOL_H_
