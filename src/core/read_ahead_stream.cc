#include "core/read_ahead_stream.h"

#include <algorithm>
#include <utility>

namespace davix {
namespace core {

ReadAheadStream::ReadAheadStream(ReadAheadFetchFn fetch, ThreadPool* pool,
                                 ReadAheadStreamConfig config)
    : fetch_(std::move(fetch)), pool_(pool), config_(config) {
  if (config_.chunk_bytes == 0) config_.chunk_bytes = 256 * 1024;
  if (config_.window_chunks == 0) config_.window_chunks = 1;
}

ReadAheadStream::~ReadAheadStream() { Invalidate(); }

void ReadAheadStream::Invalidate() {
  for (Chunk& chunk : window_) {
    chunk.state->abandoned.store(true, std::memory_order_release);
  }
  window_.clear();
}

void ReadAheadStream::TopUp() {
  while (window_.size() < config_.window_chunks &&
         window_end_ < config_.file_size) {
    Chunk chunk;
    chunk.offset = window_end_;
    chunk.length =
        std::min<uint64_t>(config_.chunk_bytes, config_.file_size - window_end_);
    chunk.state = std::make_shared<ChunkState>();
    window_end_ += chunk.length;

    if (config_.probe) {
      // Cache probe: a locally-satisfiable chunk completes on the spot —
      // no dispatcher task, no range-GET on the wire.
      std::string cached;
      if (config_.probe(chunk.offset, chunk.length, &cached)) {
        chunk.state->claimed.store(true, std::memory_order_release);
        // Uncontended (the state was just constructed); locked for the
        // GUARDED_BY discipline.
        MutexLock lock(chunk.state->mu);
        chunk.state->done = true;
        chunk.state->data = std::move(cached);
        window_.push_back(std::move(chunk));
        continue;
      }
    }

    auto state = chunk.state;
    auto fetch = fetch_;
    uint64_t offset = chunk.offset;
    uint64_t length = chunk.length;
    auto task = [state, fetch, offset, length] {
      if (state->claimed.exchange(true, std::memory_order_acq_rel)) {
        return;  // the consumer ran (or is running) this fetch inline
      }
      Result<std::string> data{std::string()};
      if (state->abandoned.load(std::memory_order_acquire)) {
        // Cancelled before starting: never touches the network.
        data = Status::IoError("read-ahead fetch cancelled");
      } else {
        data = fetch(offset, length);
      }
      MutexLock lock(state->mu);
      state->data = std::move(data);
      state->done = true;
      state->cv.NotifyAll();
    };
    // A pool that stopped accepting work (Context teardown) degrades to
    // a synchronous fetch on the consumer thread.
    if (pool_ == nullptr || !pool_->Submit(task)) task();

    window_.push_back(std::move(chunk));
  }
}

Result<std::string> ReadAheadStream::WaitForChunk(const Chunk& chunk) {
  if (!chunk.state->claimed.exchange(true, std::memory_order_acq_rel)) {
    // The pool task for this chunk has not started — it may be queued
    // behind this very thread if the consumer runs on the dispatcher
    // pool. Execute the fetch inline instead of blocking on it; the
    // task, when it eventually runs, sees `claimed` and exits.
    Result<std::string> data = fetch_(chunk.offset, chunk.length);
    MutexLock lock(chunk.state->mu);
    chunk.state->data = std::move(data);
    chunk.state->done = true;
  }
  MutexLock lock(chunk.state->mu);
  chunk.state->cv.Wait(chunk.state->mu, [&]() REQUIRES(chunk.state->mu) {
    return chunk.state->done;
  });
  Result<std::string> data = std::move(chunk.state->data);
  DAVIX_RETURN_IF_ERROR(data.status());
  if (data->size() != chunk.length) {
    return Status::ProtocolError("read-ahead chunk short read");
  }
  return data;
}

Result<std::string> ReadAheadStream::Read(uint64_t position, size_t count) {
  if (position >= config_.file_size || count == 0) return std::string();
  uint64_t want = std::min<uint64_t>(count, config_.file_size - position);

  // Re-align the window with the cursor: chunks entirely behind it are
  // dropped (forward seek inside the window keeps the rest in flight);
  // a cursor the window does not cover at all re-seeds from scratch.
  while (!window_.empty() &&
         window_.front().offset + window_.front().length <= position) {
    window_.front().state->abandoned.store(true, std::memory_order_release);
    window_.pop_front();
  }
  if (window_.empty() || window_.front().offset > position) {
    Invalidate();
    window_end_ = position;
  }

  std::string out;
  out.reserve(want);
  while (want > 0) {
    TopUp();
    Chunk& front = window_.front();
    Result<std::string> data = WaitForChunk(front);
    if (!data.ok()) {
      // First error surfaces here, exactly once: the rest of the window
      // is cancelled and the next Read re-seeds at the caller's cursor.
      Invalidate();
      return data.status();
    }
    uint64_t chunk_pos = position - front.offset;
    uint64_t take = std::min<uint64_t>(want, front.length - chunk_pos);
    out.append(*data, chunk_pos, take);
    position += take;
    want -= take;
    if (position >= front.offset + front.length) {
      // Chunk fully consumed; pop and immediately keep the pipe full.
      window_.pop_front();
      TopUp();
    } else {
      // Partially consumed front: restore its payload for the next Read.
      // The fetch task finished (done is true), so the lock is
      // uncontended — taken for the GUARDED_BY discipline.
      MutexLock lock(front.state->mu);
      front.state->data = std::move(data);
    }
  }
  return out;
}

}  // namespace core
}  // namespace davix
