#ifndef DAVIX_CORE_VECTOR_IO_H_
#define DAVIX_CORE_VECTOR_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "http/range.h"

namespace davix {
namespace core {

/// A wire-level range produced by coalescing one or more user ranges.
struct CoalescedRange {
  /// The range actually requested from the server.
  http::ByteRange range;
  /// Indices into the user's range vector that this wire range covers.
  std::vector<size_t> sources;
};

/// Plans the §2.3 vectored query: sorts the user's scattered ranges and
/// merges neighbours whose gap is at most `max_gap` bytes into single
/// wire ranges (the data-sieving idea: reading a small gap and throwing
/// it away is cheaper than another round trip). Overlapping and duplicate
/// user ranges are handled; zero-length ranges are skipped.
///
/// Invariants of the output (property-tested):
///  - wire ranges are sorted by offset and pairwise disjoint with gaps
///    strictly greater than `max_gap`,
///  - every non-empty user range is fully contained in exactly one wire
///    range (its entry appears in that range's `sources`),
///  - total wire bytes <= sum of user bytes + gap allowance.
std::vector<CoalescedRange> CoalesceRanges(
    const std::vector<http::ByteRange>& requested, uint64_t max_gap);

/// Re-splits oversized wire ranges for multi-stream dispatch: a coalesced
/// range longer than `max_chunk_bytes` is cut back into consecutive runs
/// of its source ranges, each run spanning at most `max_chunk_bytes`
/// (always at least one source per chunk, so a single huge user range is
/// never split — scatter slots are filled exactly once). Cuts land only
/// on source boundaries, preserving the CoalesceRanges containment
/// invariant. `max_chunk_bytes == 0` returns the input unchanged.
/// `requested` must be the same user vector the ranges were coalesced
/// from (source extents are re-read to place the cuts).
std::vector<CoalescedRange> SplitOversized(
    std::vector<CoalescedRange> coalesced,
    const std::vector<http::ByteRange>& requested, uint64_t max_chunk_bytes);

/// Splits the coalesced ranges into batches of at most `max_per_batch`
/// wire ranges — one batch becomes one HTTP multi-range request. When
/// `max_bytes_per_batch` > 0 a batch is also closed once it reaches that
/// many wire bytes (a batch always takes at least one range), so chunked
/// vectors dispatch as several concurrent wire requests.
std::vector<std::vector<CoalescedRange>> SplitBatches(
    std::vector<CoalescedRange> coalesced, size_t max_per_batch,
    uint64_t max_bytes_per_batch = 0);

/// Copies the bytes of one fetched wire range into the user result slots
/// it covers. `data` must be exactly `wire.range.length` bytes.
///
/// Slots already sized to their user range length are written in place —
/// no allocation — which is what lets the parallel dispatcher preallocate
/// every slot once and have concurrent batch workers scatter straight
/// into them (each user range belongs to exactly one wire range, so no
/// two workers touch the same slot). Differently-sized slots are resized
/// first.
Status ScatterWireRange(const CoalescedRange& wire, std::string_view data,
                        const std::vector<http::ByteRange>& requested,
                        std::vector<std::string>* results);

}  // namespace core
}  // namespace davix

#endif  // DAVIX_CORE_VECTOR_IO_H_
