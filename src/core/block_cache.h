#ifndef DAVIX_CORE_BLOCK_CACHE_H_
#define DAVIX_CORE_BLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/uri.h"

namespace davix {
namespace core {

/// HTTP validation metadata observed on a response for one resource
/// (RFC 9110 §8.8). Captured at block-fill time and compared on every
/// later fill: a change means the remote object was replaced, so the
/// cached blocks are stale and must be dropped.
struct BlockValidator {
  std::string etag;
  int64_t mtime_epoch_seconds = 0;

  /// True when neither validator is present (server sent no ETag and no
  /// Last-Modified) — such responses never invalidate existing blocks.
  bool empty() const { return etag.empty() && mtime_epoch_seconds == 0; }

  friend bool operator==(const BlockValidator& a, const BlockValidator& b) {
    return a.etag == b.etag &&
           a.mtime_epoch_seconds == b.mtime_epoch_seconds;
  }
};

/// Shape knobs of the per-Context block cache. Every knob follows the
/// repository's 0 = auto/disabled convention.
struct BlockCacheConfig {
  /// Total payload-byte budget across all shards. 0 (default) disables
  /// the cache entirely: every operation becomes a no-op and all read
  /// paths behave bit-identically to a cache-less build.
  uint64_t capacity_bytes = 0;
  /// Cache line size: remote objects are cached as aligned blocks of
  /// this many bytes (the final block of an object may be shorter).
  /// 0 = default 256 KiB.
  uint64_t block_bytes = 0;
  /// Lock shards. Blocks are spread over the shards by
  /// (URL, block index) hash, so one large object uses the whole
  /// budget, not capacity/shards. 0 = auto (8).
  size_t shards = 0;
};

/// Monotonic counters plus a point-in-time residency view, snapshotted
/// coherently per shard (not across shards).
struct BlockCacheCounters {
  uint64_t hits = 0;          ///< lookups (prefix/suffix/probe) that served bytes
  uint64_t misses = 0;        ///< lookups that found no usable block
  uint64_t insertions = 0;    ///< blocks written into the cache
  uint64_t evictions = 0;     ///< blocks evicted by the LRU budget
  uint64_t invalidations = 0; ///< blocks dropped by validator mismatch / purge
  uint64_t bytes_saved = 0;   ///< payload bytes served from cache (not the wire)
  uint64_t bytes_inserted = 0;///< payload bytes written into the cache
  uint64_t resident_bytes = 0; ///< payload bytes held right now
  uint64_t resident_blocks = 0;///< blocks held right now
};

/// Bounded, sharded LRU block cache shared by every read path of one
/// `Context` — the layer that removes redundant transfers from repeated-
/// access workloads (the "caching" direction of the ROADMAP): a warm
/// re-read of data any path already fetched is served from memory
/// instead of the wire.
///
/// Keying: `(canonical URL, block index)`. The canonical URL (UrlKey)
/// drops userinfo and fragments and always spells the port, so replica
/// fail-over reads and differently-spelled aliases of one resource share
/// blocks keyed by the primary URL. Objects are cached as aligned
/// `block_bytes` lines; only blocks fully covered by a fetched span are
/// inserted (plus the final short block when the object size is known),
/// so cached bytes are always exactly what the server sent.
///
/// Validation: the fill path records the response's ETag/Last-Modified.
/// A later fill observing different validators drops every cached block
/// of that URL before inserting the new data — a changed remote object
/// can never be patched together from two generations. Read paths may
/// additionally revalidate with a HEAD per
/// `RequestParams::cache_revalidation`.
///
/// Ownership: owned by `Context`, same lifetime; never owns network
/// state. Block payloads are handed out by `shared_ptr`, so an eviction
/// or invalidation racing an in-flight read only drops the cache's
/// reference — the reader's copy-out stays valid.
///
/// Thread-safe: yes. Blocks are spread over lock
/// shards by (URL, block index) hash; lookups take only the shard
/// mutexes they touch, with payload copy-out outside the lock.
/// Mutations (fills, invalidations) additionally serialize on a small
/// URL registry mutex — the lock that makes "a resident block always
/// belongs to the URL's current validator generation" an invariant —
/// which is cheap because fills are network-paced. Lock order:
/// registry, then shard.
class BlockCache {
 public:
  explicit BlockCache(BlockCacheConfig config);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// False when constructed with capacity_bytes == 0; every other method
  /// is then a cheap no-op.
  bool enabled() const { return config_.capacity_bytes > 0; }

  uint64_t block_bytes() const { return config_.block_bytes; }
  const BlockCacheConfig& config() const { return config_; }

  /// Canonical cache key for `url`: scheme://host:port/path?query —
  /// explicit port, no userinfo, no fragment.
  static std::string UrlKey(const Uri& url);

  /// Copies the longest cached prefix of [offset, offset+length) into
  /// `dest` (which must hold `length` bytes) and returns its size; 0
  /// when the first byte is not cached. Counts one miss when the span
  /// could not be served completely.
  uint64_t ReadPrefix(const std::string& url_key, uint64_t offset,
                      uint64_t length, char* dest);

  /// Copies the longest cached suffix of [offset, offset+length) into
  /// the tail of `dest` (the span's base pointer, suffix bytes land at
  /// dest[length-n .. length)) and returns its size. Never counts a
  /// miss — it runs after ReadPrefix already accounted for the span.
  uint64_t ReadSuffix(const std::string& url_key, uint64_t offset,
                      uint64_t length, char* dest);

  /// All-or-nothing read of [offset, offset+length) into `*out` — the
  /// read-ahead window's synchronous probe. Counts a hit on success and
  /// nothing on failure (the fallback network fetch re-consults the
  /// cache and accounts the miss there).
  bool TryReadFull(const std::string& url_key, uint64_t offset,
                   uint64_t length, std::string* out);

  /// Records the validators observed on a response for `url_key`. A
  /// mismatch with previously recorded validators drops every cached
  /// block of the URL (counted as invalidations). Empty validators are
  /// ignored, and so are URLs with nothing resident — there is nothing
  /// stale to protect, and the next fill records its own validators —
  /// which keeps the registry from accumulating entries for URLs that
  /// are opened but never read. Returns true when blocks were
  /// invalidated.
  bool NoteValidator(const std::string& url_key, const BlockValidator& v);

  /// True when any block of `url_key` is resident (used to skip
  /// revalidation HEADs that could not possibly save anything).
  bool HasUrl(const std::string& url_key) const;

  /// Validators currently recorded for `url_key` while any of its
  /// blocks is resident; nullopt otherwise. Multi-source readers
  /// (core::ReplicaSet) compare this against their agreed generation
  /// before delivering a cache-probe hit, so a cache refilled by a
  /// concurrent reader observing a newer object can never leak
  /// mixed-generation bytes into an in-flight stream.
  std::optional<BlockValidator> UrlValidator(
      const std::string& url_key) const;

  /// Accounts `lookups` misses without performing them. Read paths
  /// that skip per-range lookups after a negative HasUrl probe call
  /// this so the hit/miss ratio still reflects every read that went to
  /// the wire.
  void RecordMisses(uint64_t lookups);

  /// Monotonic counter bumped whenever any URL's blocks are purged
  /// (validator mismatch, PurgeUrl, Clear) — by this thread or any
  /// other. A read path snapshots it before serving cached bytes and
  /// compares after its network fill: a change means some generation
  /// turnover happened mid-read (possibly via a concurrent dispatch),
  /// so bytes already served from the cache may predate the object the
  /// wire just answered for, and the read must be refetched coherently.
  uint64_t PurgeEpoch() const {
    return purge_epoch_.load(std::memory_order_acquire);
  }

  /// Slices [offset, offset+data.size()) into aligned blocks and inserts
  /// every block the span fully covers. `total_size` (0 = unknown)
  /// additionally permits the final short block of the object. Records
  /// `validator` first (see NoteValidator), so a fill from a new
  /// generation of the object atomically replaces the old one. Returns
  /// true when that reconciliation purged a previous generation — the
  /// signal read paths use to detect that bytes they already served
  /// from the cache belonged to a replaced object.
  bool Insert(const std::string& url_key, const BlockValidator& validator,
              uint64_t offset, std::string_view data,
              uint64_t total_size = 0);

  /// Drops every cached block of `url_key` (counted as invalidations).
  void PurgeUrl(const std::string& url_key);

  /// Drops everything (counted as invalidations).
  void Clear();

  BlockCacheCounters Snapshot() const;

  /// Zeroes the monotonic counters; resident blocks stay cached.
  void ResetCounters();

 private:
  /// Interned per-URL record; block keys reference it by raw pointer
  /// while the registry (and any in-flight lookup) keeps it alive via
  /// shared_ptr. Entries are reclaimed when their last resident block
  /// leaves the cache, so the registry is bounded by the URLs that
  /// currently have cached data, not by every URL ever touched.
  struct UrlInfo {
    /// Registry key, kept here so block removal can queue the entry
    /// for reclamation.
    std::string key;
    /// Guarded by the cache's registry_mu_ (not expressible as a
    /// GUARDED_BY: the guard lives on the enclosing BlockCache).
    BlockValidator validator;
    /// Resident blocks of this URL (maintained under shard locks);
    /// lets HasUrl answer without sweeping the shards.
    std::atomic<uint64_t> block_count{0};
  };

  /// (url, block index) identity of one resident block.
  using BlockKey = std::pair<UrlInfo*, uint64_t>;

  /// Total order on BlockKey via std::less on the pointer half, so one
  /// URL's blocks are a contiguous key range (lower_bound sweep on
  /// purge) without relying on raw pointer operator<.
  struct BlockKeyLess {
    bool operator()(const BlockKey& a, const BlockKey& b) const {
      if (a.first != b.first) return std::less<UrlInfo*>{}(a.first, b.first);
      return a.second < b.second;
    }
  };

  struct Block {
    /// Payload, shared with in-flight readers so eviction never
    /// invalidates a concurrent copy-out.
    std::shared_ptr<const std::string> data;
    std::list<BlockKey>::iterator lru_it;
  };

  struct Shard {
    mutable Mutex mu;
    std::map<BlockKey, Block, BlockKeyLess> blocks GUARDED_BY(mu);
    std::list<BlockKey> lru GUARDED_BY(mu);  ///< front = most recently used
    uint64_t resident_bytes GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const UrlInfo* url, uint64_t block_index) const;

  /// Registry lookup (registry lock taken inside); null when the URL
  /// has no registry entry. The shared_ptr keeps the record alive for
  /// the duration of a lookup even if a concurrent mutation reclaims
  /// the registry entry.
  std::shared_ptr<UrlInfo> FindUrl(const std::string& url_key) const;

  /// Drops one block by map iterator. Caller holds the shard lock AND
  /// the registry lock (every removal path is a mutator): an entry
  /// whose last block goes is queued on `empties_` for reclamation.
  void RemoveBlockLocked(Shard* shard,
                         std::map<BlockKey, Block, BlockKeyLess>::iterator it,
                         std::atomic<uint64_t>* counter)
      REQUIRES(shard->mu, registry_mu_);
  /// Evicts LRU-tail blocks until the shard fits its budget (shard and
  /// registry locks held).
  void EvictLocked(Shard* shard) REQUIRES(shard->mu, registry_mu_);
  /// Drops every block of `url` across all shards (registry lock held
  /// by the caller), counting invalidations.
  void PurgeBlocksOf(UrlInfo* url) REQUIRES(registry_mu_);
  /// Erases registry entries queued on `empties_` that still have no
  /// blocks (registry lock held). Runs at the end of every mutator.
  void ReclaimEmptiesLocked() REQUIRES(registry_mu_);

  BlockCacheConfig config_;
  uint64_t shard_budget_ = 0;
  mutable std::vector<std::unique_ptr<Shard>> shards_;

  /// Guards the registry map and serializes every mutation that can
  /// change which generation of a URL is resident (Insert,
  /// NoteValidator, PurgeUrl, Clear). Lock order: registry_mu_ before
  /// any shard mutex.
  mutable Mutex registry_mu_;
  std::map<std::string, std::shared_ptr<UrlInfo>> registry_
      GUARDED_BY(registry_mu_);
  /// Keys of entries whose last block was just removed; reclaimed at
  /// the end of the mutator that emptied them.
  std::vector<std::string> empties_ GUARDED_BY(registry_mu_);

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> bytes_saved_{0};
  std::atomic<uint64_t> bytes_inserted_{0};
  /// See PurgeEpoch(). Bumped under registry_mu_ by PurgeBlocksOf.
  std::atomic<uint64_t> purge_epoch_{0};
};

}  // namespace core
}  // namespace davix

#endif  // DAVIX_CORE_BLOCK_CACHE_H_
