#ifndef DAVIX_CORE_CONTEXT_H_
#define DAVIX_CORE_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/session_pool.h"

namespace davix {
namespace core {

/// Atomic mirror of IoCounters, updated concurrently by every request
/// issued through a Context.
struct ContextStats {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> network_round_trips{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> redirects_followed{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> replica_failovers{0};
  std::atomic<uint64_t> vector_queries{0};
  std::atomic<uint64_t> ranges_requested{0};
};

/// Root object of the library, like davix::Context: owns the session
/// pool (§2.2), the shared dispatcher thread pool, and the I/O
/// accounting. One Context is meant to be shared by all threads of an
/// application; everything on it is thread-safe.
class Context {
 public:
  /// `dispatcher_threads` bounds the shared dispatcher pool; 0 = auto
  /// (hardware concurrency, clamped to [4, 16]).
  explicit Context(SessionPoolConfig pool_config = {},
                   size_t dispatcher_threads = 0);

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  SessionPool& pool() { return *pool_; }
  ContextStats& stats() { return stats_; }

  /// The shared dispatcher pool: a lazily started, bounded ThreadPool
  /// that runs every concurrent client-side operation issued through
  /// this Context — parallel vectored-read batches, multi-stream
  /// downloads, and the asynchronous read-ahead window. Starting it on
  /// first use keeps Contexts that never fan out thread-free.
  ThreadPool& dispatcher();

  /// True once dispatcher() has been called (the pool is running).
  bool dispatcher_started() const;

  /// Consistent snapshot of the counters (plus pool connection counts)
  /// as a plain IoCounters value for reporting.
  IoCounters SnapshotCounters() const;

  /// Zeroes all counters (pool stats included); benchmarks call this
  /// between phases.
  void ResetCounters();

 private:
  std::unique_ptr<SessionPool> pool_;
  ContextStats stats_;
  size_t dispatcher_threads_;
  mutable std::mutex dispatcher_mu_;
  /// Declared last: destroyed first, so in-flight dispatcher tasks that
  /// touch the session pool or the stats finish before those members go.
  std::unique_ptr<ThreadPool> dispatcher_;
};

}  // namespace core
}  // namespace davix

#endif  // DAVIX_CORE_CONTEXT_H_
