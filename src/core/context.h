#ifndef DAVIX_CORE_CONTEXT_H_
#define DAVIX_CORE_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/mutex.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/block_cache.h"
#include "core/mux_transport.h"
#include "core/session_pool.h"

namespace davix {
namespace core {

/// Atomic mirror of IoCounters, updated concurrently by every request
/// issued through a Context.
struct ContextStats {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> network_round_trips{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> redirects_followed{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> retry_after_honored{0};
  std::atomic<uint64_t> deadline_expirations{0};
  std::atomic<uint64_t> stall_aborts{0};
  std::atomic<uint64_t> replica_failovers{0};
  std::atomic<uint64_t> replica_quarantines{0};
  std::atomic<uint64_t> replica_validator_rejects{0};
  std::atomic<uint64_t> multisource_chunks{0};
  std::atomic<uint64_t> multisource_cache_chunks{0};
  std::atomic<uint64_t> vector_queries{0};
  std::atomic<uint64_t> ranges_requested{0};
};

/// Root object of the library, like davix::Context: owns the session
/// pool (§2.2), the shared dispatcher thread pool, the per-Context block
/// cache, and the I/O accounting.
///
/// Ownership: the Context owns everything it hands out references to;
/// `DavFile`/`DavPosix`/`HttpClient` objects hold a raw `Context*` and
/// require the Context to outlive them. One Context is meant to be
/// shared by all threads of an application.
///
/// Thread-safe: yes — every member function and every object reachable
/// from one (pool, dispatcher, cache, stats) is thread-safe.
class Context {
 public:
  /// `dispatcher_threads` bounds the shared dispatcher pool; 0 = auto
  /// (hardware concurrency, clamped to [4, 16]). `cache_config` shapes
  /// the shared block cache; the default (capacity 0) disables caching
  /// entirely, keeping all read paths bit-identical to previous
  /// behaviour.
  explicit Context(SessionPoolConfig pool_config = {},
                   size_t dispatcher_threads = 0,
                   BlockCacheConfig cache_config = {});

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  SessionPool& pool() { return *pool_; }
  ContextStats& stats() { return stats_; }

  /// The shared block cache consulted and filled by every read path
  /// (DavPosix::Read/PRead, the read-ahead window, ReadPartialVec).
  /// Always present; `enabled()` is false when the Context was built
  /// without a cache budget, and every operation is then a no-op.
  BlockCache& block_cache() { return *block_cache_; }

  /// The shared dispatcher pool: a lazily started, bounded ThreadPool
  /// that runs every concurrent client-side operation issued through
  /// this Context — parallel vectored-read batches, multi-stream
  /// downloads, and the asynchronous read-ahead window. Starting it on
  /// first use keeps Contexts that never fan out thread-free.
  ThreadPool& dispatcher();

  /// True once dispatcher() has been called (the pool is running).
  bool dispatcher_started() const;

  /// The shared mux transport behind RequestParams::transport == kMux:
  /// lazily created on first use (like the dispatcher), so Contexts
  /// that stay on pooled HTTP/1.1 never open a framed connection or
  /// start a reader thread.
  MuxTransport& mux_transport();

  /// True once mux_transport() has been called.
  bool mux_transport_started() const;

  /// Consistent snapshot of the counters (plus pool connection counts
  /// and block-cache hit/miss/bytes-saved totals) as a plain IoCounters
  /// value for reporting.
  IoCounters SnapshotCounters() const;

  /// Zeroes all counters (pool and cache stats included); benchmarks
  /// call this between phases. Cached blocks stay resident — only the
  /// accounting resets.
  void ResetCounters();

 private:
  std::unique_ptr<SessionPool> pool_;
  std::unique_ptr<BlockCache> block_cache_;
  ContextStats stats_;
  size_t dispatcher_threads_;
  mutable Mutex dispatcher_mu_;
  mutable Mutex mux_mu_;
  /// Lazily created, same discipline as dispatcher_; thread-safe once
  /// the reference escapes mux_transport().
  std::unique_ptr<MuxTransport> mux_transport_ GUARDED_BY(mux_mu_);
  /// Declared last: destroyed first, so in-flight dispatcher tasks that
  /// touch the session pool, the cache, or the stats finish before
  /// those members go. The lock covers creation; the pool object itself
  /// is thread-safe once the reference escapes dispatcher().
  std::unique_ptr<ThreadPool> dispatcher_ GUARDED_BY(dispatcher_mu_);
};

}  // namespace core
}  // namespace davix

#endif  // DAVIX_CORE_CONTEXT_H_
