#ifndef DAVIX_CORE_CONTEXT_H_
#define DAVIX_CORE_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/stats.h"
#include "core/session_pool.h"

namespace davix {
namespace core {

/// Atomic mirror of IoCounters, updated concurrently by every request
/// issued through a Context.
struct ContextStats {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> network_round_trips{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> redirects_followed{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> replica_failovers{0};
  std::atomic<uint64_t> vector_queries{0};
  std::atomic<uint64_t> ranges_requested{0};
};

/// Root object of the library, like davix::Context: owns the session
/// pool (§2.2) and the I/O accounting. One Context is meant to be shared
/// by all threads of an application; everything on it is thread-safe.
class Context {
 public:
  explicit Context(SessionPoolConfig pool_config = {});

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  SessionPool& pool() { return *pool_; }
  ContextStats& stats() { return stats_; }

  /// Consistent snapshot of the counters (plus pool connection counts)
  /// as a plain IoCounters value for reporting.
  IoCounters SnapshotCounters() const;

  /// Zeroes all counters (pool stats included); benchmarks call this
  /// between phases.
  void ResetCounters();

 private:
  std::unique_ptr<SessionPool> pool_;
  ContextStats stats_;
};

}  // namespace core
}  // namespace davix

#endif  // DAVIX_CORE_CONTEXT_H_
