#include "core/block_cache.h"

#include <algorithm>
#include <cstring>

namespace davix {
namespace core {

namespace {

constexpr uint64_t kDefaultBlockBytes = 256 * 1024;
constexpr size_t kDefaultShards = 8;

/// One contiguous piece of a lookup, copied out after the shard lock is
/// released; `data` keeps the block alive across a racing eviction.
struct Segment {
  std::shared_ptr<const std::string> data;
  uint64_t src_offset = 0;   ///< offset inside the block payload
  uint64_t dest_offset = 0;  ///< offset inside the caller's span
  uint64_t size = 0;
};

void CopyOut(const std::vector<Segment>& segments, char* dest) {
  for (const Segment& segment : segments) {
    std::memcpy(dest + segment.dest_offset,
                segment.data->data() + segment.src_offset, segment.size);
  }
}

}  // namespace

BlockCache::BlockCache(BlockCacheConfig config) : config_(config) {
  if (config_.block_bytes == 0) config_.block_bytes = kDefaultBlockBytes;
  if (config_.shards == 0) config_.shards = kDefaultShards;
  if (enabled()) {
    // Never run more shards than the capacity can give a whole block
    // each, so a budget-respecting insert always has room somewhere.
    size_t max_useful =
        static_cast<size_t>(config_.capacity_bytes / config_.block_bytes);
    config_.shards = std::clamp<size_t>(config_.shards, 1,
                                        std::max<size_t>(1, max_useful));
    shard_budget_ = config_.capacity_bytes / config_.shards;
    shards_.reserve(config_.shards);
    for (size_t i = 0; i < config_.shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }
}

std::string BlockCache::UrlKey(const Uri& url) {
  std::string key = url.scheme() + "://" + url.host() + ":" +
                    std::to_string(url.port()) + url.path();
  if (!url.query().empty()) key += "?" + url.query();
  return key;
}

BlockCache::Shard& BlockCache::ShardFor(const UrlInfo* url,
                                        uint64_t block_index) const {
  // Consecutive blocks of one URL land on different shards, so a
  // sequential scan of one large object spreads over the whole budget
  // (and over all shard locks) instead of thrashing capacity/shards.
  size_t h = std::hash<const void*>{}(url) +
             static_cast<size_t>(block_index) * 0x9e3779b97f4a7c15ull;
  return *shards_[h % shards_.size()];
}

std::shared_ptr<BlockCache::UrlInfo> BlockCache::FindUrl(
    const std::string& url_key) const {
  MutexLock lock(registry_mu_);
  auto it = registry_.find(url_key);
  return it == registry_.end() ? nullptr : it->second;
}

uint64_t BlockCache::ReadPrefix(const std::string& url_key, uint64_t offset,
                                uint64_t length, char* dest) {
  if (!enabled() || length == 0) return 0;
  const uint64_t block_bytes = config_.block_bytes;
  uint64_t covered = 0;
  std::shared_ptr<UrlInfo> url_ref = FindUrl(url_key);
  UrlInfo* url = url_ref.get();
  if (url != nullptr &&
      url->block_count.load(std::memory_order_relaxed) > 0) {
    std::vector<Segment> segments;
    uint64_t pos = offset;
    const uint64_t end = offset + length;
    while (pos < end) {
      uint64_t index = pos / block_bytes;
      Shard& shard = ShardFor(url, index);
      std::shared_ptr<const std::string> payload;
      {
        MutexLock lock(shard.mu);
        auto it = shard.blocks.find(BlockKey{url, index});
        if (it == shard.blocks.end()) break;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
        payload = it->second.data;
      }
      uint64_t block_end = index * block_bytes + payload->size();
      if (block_end <= pos) break;  // short block ends before pos
      uint64_t take = std::min(end, block_end) - pos;
      segments.push_back(
          {std::move(payload), pos - index * block_bytes, covered, take});
      covered += take;
      pos += take;
      // A short block is the object's last: nothing follows it.
      if (segments.back().data->size() < block_bytes) break;
    }
    CopyOut(segments, dest);
  }
  if (covered > 0) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    bytes_saved_.fetch_add(covered, std::memory_order_relaxed);
  }
  if (covered < length) misses_.fetch_add(1, std::memory_order_relaxed);
  return covered;
}

uint64_t BlockCache::ReadSuffix(const std::string& url_key, uint64_t offset,
                                uint64_t length, char* dest) {
  if (!enabled() || length == 0) return 0;
  const uint64_t block_bytes = config_.block_bytes;
  uint64_t covered = 0;
  std::shared_ptr<UrlInfo> url_ref = FindUrl(url_key);
  UrlInfo* url = url_ref.get();
  if (url != nullptr &&
      url->block_count.load(std::memory_order_relaxed) > 0) {
    std::vector<Segment> segments;
    const uint64_t end = offset + length;
    uint64_t pos_end = end;  // exclusive end of the uncovered span
    while (pos_end > offset) {
      uint64_t index = (pos_end - 1) / block_bytes;
      Shard& shard = ShardFor(url, index);
      std::shared_ptr<const std::string> payload;
      {
        MutexLock lock(shard.mu);
        auto it = shard.blocks.find(BlockKey{url, index});
        if (it == shard.blocks.end()) break;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
        payload = it->second.data;
      }
      uint64_t block_start = index * block_bytes;
      uint64_t block_end = block_start + payload->size();
      if (block_end < pos_end) break;  // block does not reach the span
      uint64_t from = std::max(offset, block_start);
      uint64_t take = pos_end - from;
      segments.push_back(
          {std::move(payload), from - block_start, from - offset, take});
      covered += take;
      pos_end = from;
    }
    CopyOut(segments, dest);
  }
  if (covered > 0) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    bytes_saved_.fetch_add(covered, std::memory_order_relaxed);
  }
  return covered;
}

bool BlockCache::TryReadFull(const std::string& url_key, uint64_t offset,
                             uint64_t length, std::string* out) {
  if (!enabled() || length == 0) return false;
  const uint64_t block_bytes = config_.block_bytes;
  std::shared_ptr<UrlInfo> url_ref = FindUrl(url_key);
  UrlInfo* url = url_ref.get();
  if (url == nullptr ||
      url->block_count.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  std::vector<Segment> segments;
  uint64_t pos = offset;
  const uint64_t end = offset + length;
  while (pos < end) {
    uint64_t index = pos / block_bytes;
    Shard& shard = ShardFor(url, index);
    std::shared_ptr<const std::string> payload;
    {
      MutexLock lock(shard.mu);
      auto it = shard.blocks.find(BlockKey{url, index});
      if (it == shard.blocks.end()) return false;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      payload = it->second.data;
    }
    uint64_t block_end = index * block_bytes + payload->size();
    if (block_end <= pos) return false;
    uint64_t take = std::min(end, block_end) - pos;
    bool is_short = payload->size() < block_bytes;
    segments.push_back(
        {std::move(payload), pos - index * block_bytes, pos - offset, take});
    pos += take;
    if (pos < end && is_short) return false;
  }
  out->resize(length);
  CopyOut(segments, out->data());
  hits_.fetch_add(1, std::memory_order_relaxed);
  bytes_saved_.fetch_add(length, std::memory_order_relaxed);
  return true;
}

bool BlockCache::NoteValidator(const std::string& url_key,
                               const BlockValidator& v) {
  if (!enabled() || v.empty()) return false;
  MutexLock lock(registry_mu_);
  auto it = registry_.find(url_key);
  if (it == registry_.end()) return false;  // nothing resident to protect
  UrlInfo* url = it->second.get();
  bool purged = false;
  if (!url->validator.empty() && !(url->validator == v)) {
    PurgeBlocksOf(url);
    purged = true;
  }
  url->validator = v;
  ReclaimEmptiesLocked();
  return purged;
}

bool BlockCache::HasUrl(const std::string& url_key) const {
  if (!enabled()) return false;
  std::shared_ptr<UrlInfo> url = FindUrl(url_key);
  return url != nullptr &&
         url->block_count.load(std::memory_order_relaxed) > 0;
}

std::optional<BlockValidator> BlockCache::UrlValidator(
    const std::string& url_key) const {
  if (!enabled()) return std::nullopt;
  // Read under the registry lock: NoteValidator mutates the validator
  // in place there, and the block_count gate mirrors HasUrl.
  MutexLock lock(registry_mu_);
  auto it = registry_.find(url_key);
  if (it == registry_.end() ||
      it->second->block_count.load(std::memory_order_relaxed) == 0) {
    return std::nullopt;
  }
  return it->second->validator;
}

void BlockCache::RecordMisses(uint64_t lookups) {
  if (enabled() && lookups > 0) {
    misses_.fetch_add(lookups, std::memory_order_relaxed);
  }
}

bool BlockCache::Insert(const std::string& url_key,
                        const BlockValidator& validator, uint64_t offset,
                        std::string_view data, uint64_t total_size) {
  if (!enabled() || data.empty()) return false;
  const uint64_t block_bytes = config_.block_bytes;
  const uint64_t end = offset + data.size();

  // Aligned blocks the span fully covers; the final block may be short
  // when the span provably reaches the end of the object.
  uint64_t first = (offset + block_bytes - 1) / block_bytes;
  struct Slice {
    uint64_t index;
    std::shared_ptr<const std::string> payload;
  };
  std::vector<Slice> slices;
  for (uint64_t index = first;; ++index) {
    uint64_t block_start = index * block_bytes;
    if (block_start >= end) break;
    uint64_t block_end = block_start + block_bytes;
    if (total_size != 0) block_end = std::min(block_end, total_size);
    if (block_end > end || block_end <= block_start) break;
    slices.push_back(
        {index, std::make_shared<const std::string>(
                    data.substr(block_start - offset,
                                block_end - block_start))});
  }

  // The registry lock is held across validator reconciliation AND the
  // block inserts: a racing invalidation of the same URL can therefore
  // never interleave between them, which is what keeps "resident block
  // == current generation" an invariant. Fills are network-paced, so
  // this serialization is never the bottleneck.
  MutexLock lock(registry_mu_);
  auto [it, inserted] = registry_.try_emplace(url_key);
  if (inserted) {
    it->second = std::make_shared<UrlInfo>();
    it->second->key = url_key;
  }
  UrlInfo* url = it->second.get();
  bool purged = false;
  if (!validator.empty()) {
    if (!url->validator.empty() && !(url->validator == validator)) {
      PurgeBlocksOf(url);
      purged = true;
    }
    url->validator = validator;
  }
  for (Slice& slice : slices) {
    if (slice.payload->size() > shard_budget_) continue;  // can never fit
    Shard& shard = ShardFor(url, slice.index);
    MutexLock shard_lock(shard.mu);
    auto [block_it, fresh] =
        shard.blocks.try_emplace(BlockKey{url, slice.index});
    Block& block = block_it->second;
    if (!fresh) {
      // Same generation, same bytes: refresh recency, keep the payload.
      shard.lru.splice(shard.lru.begin(), shard.lru, block.lru_it);
      continue;
    }
    shard.lru.push_front(BlockKey{url, slice.index});
    block.lru_it = shard.lru.begin();
    shard.resident_bytes += slice.payload->size();
    url->block_count.fetch_add(1, std::memory_order_relaxed);
    bytes_inserted_.fetch_add(slice.payload->size(),
                              std::memory_order_relaxed);
    insertions_.fetch_add(1, std::memory_order_relaxed);
    block.data = std::move(slice.payload);
    EvictLocked(&shard);
  }
  // Covers the corner where every slice was skipped (oversized blocks)
  // or immediately evicted: an entry left without blocks is reclaimed.
  if (url->block_count.load(std::memory_order_relaxed) == 0) {
    empties_.push_back(url_key);
  }
  ReclaimEmptiesLocked();
  return purged;
}

void BlockCache::RemoveBlockLocked(
    Shard* shard, std::map<BlockKey, Block, BlockKeyLess>::iterator it,
    std::atomic<uint64_t>* counter) {
  shard->resident_bytes -= it->second.data->size();
  shard->lru.erase(it->second.lru_it);
  UrlInfo* url = it->first.first;
  if (url->block_count.fetch_sub(1, std::memory_order_relaxed) == 1) {
    // Last block gone: queue the registry entry for reclamation by the
    // mutator that holds registry_mu_ right now.
    empties_.push_back(url->key);
  }
  shard->blocks.erase(it);
  counter->fetch_add(1, std::memory_order_relaxed);
}

void BlockCache::EvictLocked(Shard* shard) {
  while (shard->resident_bytes > shard_budget_ && !shard->lru.empty()) {
    RemoveBlockLocked(shard, shard->blocks.find(shard->lru.back()),
                      &evictions_);
  }
}

void BlockCache::PurgeBlocksOf(UrlInfo* url) {
  purge_epoch_.fetch_add(1, std::memory_order_acq_rel);
  for (std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    MutexLock lock(shard->mu);
    auto it = shard->blocks.lower_bound(BlockKey{url, 0});
    while (it != shard->blocks.end() && it->first.first == url) {
      auto next = std::next(it);
      RemoveBlockLocked(shard, it, &invalidations_);
      it = next;
    }
  }
}

void BlockCache::ReclaimEmptiesLocked() {
  for (const std::string& key : empties_) {
    auto it = registry_.find(key);
    if (it != registry_.end() &&
        it->second->block_count.load(std::memory_order_relaxed) == 0) {
      // In-flight lookups may still hold the shared_ptr; the record
      // itself stays alive until they drop it.
      registry_.erase(it);
    }
  }
  empties_.clear();
}

void BlockCache::PurgeUrl(const std::string& url_key) {
  if (!enabled()) return;
  MutexLock lock(registry_mu_);
  auto it = registry_.find(url_key);
  if (it == registry_.end()) return;
  PurgeBlocksOf(it->second.get());
  ReclaimEmptiesLocked();
}

void BlockCache::Clear() {
  if (!enabled()) return;
  MutexLock lock(registry_mu_);
  for (auto& [key, url] : registry_) {
    PurgeBlocksOf(url.get());
  }
  registry_.clear();
  empties_.clear();
}

BlockCacheCounters BlockCache::Snapshot() const {
  BlockCacheCounters out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.insertions = insertions_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.invalidations = invalidations_.load(std::memory_order_relaxed);
  out.bytes_saved = bytes_saved_.load(std::memory_order_relaxed);
  out.bytes_inserted = bytes_inserted_.load(std::memory_order_relaxed);
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    const Shard* shard = shard_ptr.get();
    MutexLock lock(shard->mu);
    out.resident_bytes += shard->resident_bytes;
    out.resident_blocks += shard->lru.size();
  }
  return out;
}

void BlockCache::ResetCounters() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  insertions_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  invalidations_.store(0, std::memory_order_relaxed);
  bytes_saved_.store(0, std::memory_order_relaxed);
  bytes_inserted_.store(0, std::memory_order_relaxed);
}

}  // namespace core
}  // namespace davix
