#ifndef DAVIX_CORE_HTTP_CLIENT_H_
#define DAVIX_CORE_HTTP_CLIENT_H_

#include <string>

#include "common/status.h"
#include "common/uri.h"
#include "core/context.h"
#include "core/request_params.h"
#include "http/message.h"

namespace davix {
namespace core {

/// Maps an HTTP status code to a library Status (2xx => OK).
Status HttpStatusToStatus(int code, const std::string& context);

/// Thread-safe HTTP request executor on top of the session pool.
///
/// Responsibilities: build wire requests, recycle or open connections via
/// SessionPool, follow redirects, replay transparently when a recycled
/// connection turns out dead, and retry retryable failures of idempotent
/// methods. This is the "thread-safe query dispatch system" of §2.2 —
/// many application threads call Execute concurrently, each drawing its
/// own connection from the shared pool.
class HttpClient {
 public:
  /// Result of a completed exchange: the final response plus the URL it
  /// actually came from (after redirects).
  struct Exchange {
    http::HttpResponse response;
    Uri final_url;
  };

  /// `context` must outlive the client.
  explicit HttpClient(Context* context) : context_(context) {}

  /// Executes `method` on `url`. Any response (including 4xx/5xx) is a
  /// successful Exchange; only transport-level failures surface as
  /// errors. `extra_headers` are appended to the generated ones.
  ///
  /// Resilience (docs/RESILIENCE.md): arms `params`' deadline from
  /// total_timeout_micros and threads it through every connect, write,
  /// read, retry and redirect, failing with kTimeout (and counting a
  /// deadline_expiration) once the budget is gone. Retries of idempotent
  /// methods pace with full-jitter exponential backoff (core::Backoff);
  /// a 503/429 carrying Retry-After instead sleeps the server-requested
  /// wait when it fits retry_after_max_micros and the remaining budget.
  /// Exchange outcomes feed the host's circuit breaker (any complete
  /// response is a success, transport failures count against it).
  Result<Exchange> Execute(const Uri& url, http::Method method,
                           const RequestParams& params,
                           std::string body = std::string(),
                           const http::HeaderMap* extra_headers = nullptr);

  Context* context() { return context_; }

 private:
  /// One request/response on one connection. Sets `*replayable` when the
  /// failure happened on a recycled connection before any response byte,
  /// meaning the pooled connection was stale and the request can be
  /// replayed on a fresh one without observing a double execution.
  /// Routes to ExecuteOnceMux when params.transport == kMux — the
  /// transport seam: everything above (retries, Retry-After pacing,
  /// redirects, deadline accounting in Execute) is transport-agnostic.
  Result<http::HttpResponse> ExecuteOnce(const Uri& url, http::Method method,
                                         const RequestParams& params,
                                         const std::string& body,
                                         const http::HeaderMap* extra_headers,
                                         bool* replayable);

  /// The same single attempt over the Context's shared MuxTransport:
  /// identical request headers, breaker admission and outcome feedback
  /// keyed by host:port exactly like the pooled path. Mux exchanges are
  /// never replayable (a stream either completes or fails for real).
  Result<http::HttpResponse> ExecuteOnceMux(
      const Uri& url, http::Method method, const RequestParams& params,
      const std::string& body, const http::HeaderMap* extra_headers,
      bool* replayable);

  Context* context_;
};

}  // namespace core
}  // namespace davix

#endif  // DAVIX_CORE_HTTP_CLIENT_H_
