#ifndef DAVIX_CORE_METALINK_ENGINE_H_
#define DAVIX_CORE_METALINK_ENGINE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/uri.h"
#include "core/http_client.h"
#include "core/request_params.h"
#include "metalink/metalink.h"

namespace davix {
namespace core {

/// Fetches and exploits Metalink replica descriptions (§2.4).
class MetalinkEngine {
 public:
  /// `client` must outlive the engine.
  explicit MetalinkEngine(HttpClient* client) : client_(client) {}

  /// Obtains the Metalink for `resource`.
  ///
  /// With a configured resolver (RequestParams::metalink_resolver, the
  /// DynaFed-like federation service) the document is requested from
  /// `<resolver>/<resource-path>`; otherwise the resource's own host is
  /// asked with `?metalink` plus an Accept header, davix's convention.
  Result<metalink::MetalinkFile> Fetch(const Uri& resource,
                                       const RequestParams& params);

  /// Resolves the replica URLs of `resource`, ordered by priority.
  Result<std::vector<Uri>> ResolveReplicas(const Uri& resource,
                                           const RequestParams& params);

  /// §2.4 "multi-stream" strategy: downloads the whole resource by
  /// fetching chunks in parallel from the replicas round-robin. Chunks
  /// that fail on one replica fail over to the others. When the Metalink
  /// carries an md5, the assembled content is verified against it.
  Result<std::string> MultiStreamGet(const Uri& resource,
                                     const RequestParams& params);

 private:
  HttpClient* client_;
};

}  // namespace core
}  // namespace davix

#endif  // DAVIX_CORE_METALINK_ENGINE_H_
