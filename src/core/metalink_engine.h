#ifndef DAVIX_CORE_METALINK_ENGINE_H_
#define DAVIX_CORE_METALINK_ENGINE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/uri.h"
#include "core/http_client.h"
#include "core/replica_set.h"
#include "core/request_params.h"
#include "metalink/metalink.h"

namespace davix {
namespace core {

/// Fetches and exploits Metalink replica descriptions (§2.4).
class MetalinkEngine {
 public:
  /// `client` must outlive the engine.
  explicit MetalinkEngine(HttpClient* client) : client_(client) {}

  /// Obtains the Metalink for `resource`.
  ///
  /// With a configured resolver (RequestParams::metalink_resolver, the
  /// DynaFed-like federation service) the document is requested from
  /// `<resolver>/<resource-path>`; otherwise the resource's own host is
  /// asked with `?metalink` plus an Accept header, davix's convention.
  Result<metalink::MetalinkFile> Fetch(const Uri& resource,
                                       const RequestParams& params);

  /// Resolves the replica URLs of `resource`, ordered by priority.
  Result<std::vector<Uri>> ResolveReplicas(const Uri& resource,
                                           const RequestParams& params);

  /// §2.4 "multi-stream" strategy, sink-based: resolves the resource's
  /// ReplicaSet and streams the whole object through `sink` in offset
  /// order, striping chunk range-GETs across the healthy replicas on
  /// the Context's dispatcher — with health-based failover, block-cache
  /// probe/publish, and generation quarantine (see core::ReplicaSet).
  /// When the Metalink carries an md5, the stream is verified
  /// incrementally and a mismatch surfaces as kCorruption after the
  /// last span.
  Status MultiStreamTo(const Uri& resource, const RequestParams& params,
                       const ReplicaSpanSink& sink);

  /// Legacy whole-object form: thin wrapper over MultiStreamTo that
  /// assembles the spans into one string.
  Result<std::string> MultiStreamGet(const Uri& resource,
                                     const RequestParams& params);

 private:
  HttpClient* client_;
};

}  // namespace core
}  // namespace davix

#endif  // DAVIX_CORE_METALINK_ENGINE_H_
