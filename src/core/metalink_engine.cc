#include "core/metalink_engine.h"

#include "common/checksum.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/replica_set.h"

namespace davix {
namespace core {

Result<metalink::MetalinkFile> MetalinkEngine::Fetch(
    const Uri& resource, const RequestParams& params) {
  Uri metalink_url = resource;
  if (!params.metalink_resolver.empty()) {
    DAVIX_ASSIGN_OR_RETURN(Uri resolver, Uri::Parse(params.metalink_resolver));
    std::string base = resolver.path();
    if (base == "/") base.clear();
    metalink_url = resolver.WithPath(base + resource.path());
  } else {
    metalink_url = resource.WithPath(resource.path() + "?metalink");
  }

  http::HeaderMap headers;
  headers.Set("Accept", std::string(metalink::kMetalinkContentType));
  // Metalink fetches must not themselves trigger metalink recursion.
  RequestParams fetch_params = params;
  fetch_params.metalink_mode = MetalinkMode::kDisabled;

  DAVIX_ASSIGN_OR_RETURN(
      HttpClient::Exchange exchange,
      client_->Execute(metalink_url, http::Method::kGet, fetch_params,
                       std::string(), &headers));
  DAVIX_RETURN_IF_ERROR(HttpStatusToStatus(
      exchange.response.status_code,
      "fetching metalink " + metalink_url.ToString()));
  Result<metalink::MetalinkFile> parsed =
      metalink::ParseMetalink(exchange.response.body);
  if (!parsed.ok()) {
    return parsed.status().WithContext("parsing metalink for " +
                                       resource.ToString());
  }
  return parsed;
}

Result<std::vector<Uri>> MetalinkEngine::ResolveReplicas(
    const Uri& resource, const RequestParams& params) {
  DAVIX_ASSIGN_OR_RETURN(metalink::MetalinkFile file,
                         Fetch(resource, params));
  std::vector<Uri> replicas;
  for (const metalink::Replica& replica : file.SortedReplicas()) {
    Result<Uri> uri = Uri::Parse(replica.url);
    if (uri.ok()) {
      replicas.push_back(std::move(*uri));
    } else {
      DAVIX_LOG(kWarn) << "skipping unparseable replica URL " << replica.url;
    }
  }
  if (replicas.empty()) {
    return Status::AllReplicasFailed("metalink for " + resource.ToString() +
                                     " lists no usable replicas");
  }
  return replicas;
}

Status MetalinkEngine::MultiStreamTo(const Uri& resource,
                                     const RequestParams& params,
                                     const ReplicaSpanSink& sink) {
  DAVIX_ASSIGN_OR_RETURN(
      std::shared_ptr<ReplicaSet> set,
      ReplicaSet::Resolve(client_->context(), resource, params));
  DAVIX_ASSIGN_OR_RETURN(uint64_t size, set->ResolveSize(params));

  // The sink delivers in offset order, so the Metalink md5 verifies
  // incrementally — no whole-object buffer on this path.
  bool verify = !set->md5().empty();
  Md5 md5;
  DAVIX_RETURN_IF_ERROR(set->Stream(
      0, size, params, [&](uint64_t offset, std::string_view data) {
        if (verify) md5.Update(data);
        return sink(offset, data);
      }));
  if (verify) {
    std::array<uint8_t, 16> digest = md5.Digest();
    std::string hex = HexEncode(std::string_view(
        reinterpret_cast<const char*>(digest.data()), digest.size()));
    if (hex != set->md5()) {
      return Status::Corruption("multi-stream md5 mismatch for " +
                                resource.ToString() + ": got " + hex +
                                " want " + set->md5());
    }
  }
  return Status::OK();
}

Result<std::string> MetalinkEngine::MultiStreamGet(
    const Uri& resource, const RequestParams& params) {
  std::string assembled;
  DAVIX_RETURN_IF_ERROR(MultiStreamTo(
      resource, params, [&](uint64_t offset, std::string_view data) {
        if (offset != assembled.size()) {
          return Status::Internal("multi-stream sink out of order at " +
                                  std::to_string(offset));
        }
        assembled.append(data);
        return Status::OK();
      }));
  return assembled;
}

}  // namespace core
}  // namespace davix
