#include "core/metalink_engine.h"

#include <atomic>
#include <mutex>

#include "common/checksum.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "http/range.h"

namespace davix {
namespace core {

Result<metalink::MetalinkFile> MetalinkEngine::Fetch(
    const Uri& resource, const RequestParams& params) {
  Uri metalink_url = resource;
  if (!params.metalink_resolver.empty()) {
    DAVIX_ASSIGN_OR_RETURN(Uri resolver, Uri::Parse(params.metalink_resolver));
    std::string base = resolver.path();
    if (base == "/") base.clear();
    metalink_url = resolver.WithPath(base + resource.path());
  } else {
    metalink_url = resource.WithPath(resource.path() + "?metalink");
  }

  http::HeaderMap headers;
  headers.Set("Accept", std::string(metalink::kMetalinkContentType));
  // Metalink fetches must not themselves trigger metalink recursion.
  RequestParams fetch_params = params;
  fetch_params.metalink_mode = MetalinkMode::kDisabled;

  DAVIX_ASSIGN_OR_RETURN(
      HttpClient::Exchange exchange,
      client_->Execute(metalink_url, http::Method::kGet, fetch_params,
                       std::string(), &headers));
  DAVIX_RETURN_IF_ERROR(HttpStatusToStatus(
      exchange.response.status_code,
      "fetching metalink " + metalink_url.ToString()));
  Result<metalink::MetalinkFile> parsed =
      metalink::ParseMetalink(exchange.response.body);
  if (!parsed.ok()) {
    return parsed.status().WithContext("parsing metalink for " +
                                       resource.ToString());
  }
  return parsed;
}

Result<std::vector<Uri>> MetalinkEngine::ResolveReplicas(
    const Uri& resource, const RequestParams& params) {
  DAVIX_ASSIGN_OR_RETURN(metalink::MetalinkFile file,
                         Fetch(resource, params));
  std::vector<Uri> replicas;
  for (const metalink::Replica& replica : file.SortedReplicas()) {
    Result<Uri> uri = Uri::Parse(replica.url);
    if (uri.ok()) {
      replicas.push_back(std::move(*uri));
    } else {
      DAVIX_LOG(kWarn) << "skipping unparseable replica URL " << replica.url;
    }
  }
  if (replicas.empty()) {
    return Status::AllReplicasFailed("metalink for " + resource.ToString() +
                                     " lists no usable replicas");
  }
  return replicas;
}

Result<std::string> MetalinkEngine::MultiStreamGet(
    const Uri& resource, const RequestParams& params) {
  DAVIX_ASSIGN_OR_RETURN(metalink::MetalinkFile file,
                         Fetch(resource, params));
  std::vector<Uri> replicas;
  for (const metalink::Replica& replica : file.SortedReplicas()) {
    Result<Uri> uri = Uri::Parse(replica.url);
    if (uri.ok()) replicas.push_back(std::move(*uri));
  }
  if (replicas.empty()) {
    return Status::AllReplicasFailed(
        "multi-stream: no usable replicas for " + resource.ToString());
  }

  // Size must be known to plan chunks: prefer the Metalink, fall back to
  // a HEAD on the first answering replica.
  uint64_t size = file.size;
  if (size == 0) {
    Status last = Status::AllReplicasFailed("no replica answered HEAD");
    for (const Uri& replica : replicas) {
      RequestParams head_params = params;
      head_params.metalink_mode = MetalinkMode::kDisabled;
      Result<HttpClient::Exchange> exchange = client_->Execute(
          replica, http::Method::kHead, head_params);
      if (!exchange.ok()) {
        last = exchange.status();
        continue;
      }
      Status st = HttpStatusToStatus(exchange->response.status_code, "HEAD");
      if (!st.ok()) {
        last = st;
        continue;
      }
      std::optional<uint64_t> length =
          exchange->response.headers.GetUint64("Content-Length");
      if (length) {
        size = *length;
        break;
      }
    }
    if (size == 0) {
      return last.WithContext("multi-stream: cannot determine size of " +
                              resource.ToString());
    }
  }

  // Stream plan: one contiguous shard per stream, each stream pinned to
  // one replica (round-robin). Pinning keeps each stream on a single
  // warm keep-alive connection — hopping replicas per chunk would pay
  // the TCP slow-start ramp over and over. Within a shard the stream
  // fetches chunk-sized ranges sequentially; a failing chunk fails over
  // to the other replicas.
  uint64_t chunk_bytes =
      params.multistream_chunk_bytes == 0 ? (1 << 20)
                                          : params.multistream_chunk_bytes;
  size_t streams = std::min(params.multistream_max_streams, replicas.size());
  if (streams == 0) streams = 1;
  uint64_t shard_bytes = (size + streams - 1) / streams;

  std::string assembled(size, '\0');
  std::mutex error_mu;
  Status first_error = Status::OK();

  ThreadPool* dispatcher =
      streams > 1 ? &client_->context()->dispatcher() : nullptr;
  ParallelFor(dispatcher, streams, streams, [&](size_t stream) {
    uint64_t shard_begin = static_cast<uint64_t>(stream) * shard_bytes;
    uint64_t shard_end = std::min(size, shard_begin + shard_bytes);
    RequestParams chunk_params = params;
    chunk_params.metalink_mode = MetalinkMode::kDisabled;

    for (uint64_t offset = shard_begin; offset < shard_end;
         offset += chunk_bytes) {
      uint64_t length = std::min(chunk_bytes, shard_end - offset);
      http::HeaderMap headers;
      headers.Set("Range", http::FormatRangeHeader(
                               {http::ByteRange{offset, length}}));
      Status last = Status::AllReplicasFailed("no replica tried");
      bool done = false;
      for (size_t attempt = 0; attempt < replicas.size() && !done;
           ++attempt) {
        const Uri& replica = replicas[(stream + attempt) % replicas.size()];
        Result<HttpClient::Exchange> exchange =
            client_->Execute(replica, http::Method::kGet, chunk_params,
                             std::string(), &headers);
        if (!exchange.ok()) {
          last = exchange.status();
          continue;
        }
        const http::HttpResponse& response = exchange->response;
        if (response.status_code == 206 && response.body.size() == length) {
          assembled.replace(offset, length, response.body);
          done = true;
          break;
        }
        if (response.status_code == 200 && response.body.size() == size) {
          // Replica ignored the Range header; salvage the chunk.
          assembled.replace(offset, length, response.body, offset, length);
          done = true;
          break;
        }
        last = HttpStatusToStatus(response.status_code,
                                  "multi-stream chunk GET");
        if (last.ok()) {
          last = Status::ProtocolError("unexpected partial-content shape");
        }
        if (attempt + 1 < replicas.size()) {
          client_->context()->stats().replica_failovers.fetch_add(
              1, std::memory_order_relaxed);
        }
      }
      if (!done) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) {
          first_error = last.WithContext(
              "shard " + std::to_string(stream) + " offset " +
              std::to_string(offset));
        }
        return;
      }
    }
  });

  if (!first_error.ok()) return first_error;

  if (!file.md5.empty()) {
    std::string digest = Md5::HexDigest(assembled);
    if (digest != file.md5) {
      return Status::Corruption("multi-stream md5 mismatch for " +
                                resource.ToString() + ": got " + digest +
                                " want " + file.md5);
    }
  }
  return assembled;
}

}  // namespace core
}  // namespace davix
