#ifndef DAVIX_CORE_DAV_POSIX_H_
#define DAVIX_CORE_DAV_POSIX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/dav_file.h"

namespace davix {
namespace core {

/// POSIX-like remote file access, mirroring davix's DavPosix facade: the
/// API an I/O framework (like the ROOT plugin, TDavixFile) binds to.
///
/// Descriptors are plain ints handed out by Open. All calls are
/// thread-safe; concurrent PRead calls on the same descriptor proceed in
/// parallel, each drawing its own pooled connection (§2.2 dispatch).
class DavPosix {
 public:
  /// `context` must outlive this object.
  explicit DavPosix(Context* context) : context_(context) {}

  DavPosix(const DavPosix&) = delete;
  DavPosix& operator=(const DavPosix&) = delete;

  /// Opens `url` for reading; verifies existence with a Stat.
  Result<int> Open(const std::string& url, const RequestParams& params = {});

  /// Sequential read of up to `count` bytes at the descriptor's cursor.
  /// Returns fewer bytes only at EOF (empty string = EOF). When
  /// RequestParams::readahead_bytes is set, reads are served from a
  /// sliding read-ahead buffer.
  Result<std::string> Read(int fd, size_t count);

  /// Positional read, no cursor interaction.
  Result<std::string> PRead(int fd, uint64_t offset, size_t count);

  /// §2.3 vectored positional read; results[i] are the bytes of
  /// ranges[i]. This is the call TTreeCache-style clients batch into.
  Result<std::vector<std::string>> PReadVec(
      int fd, const std::vector<http::ByteRange>& ranges);

  /// Repositions the cursor. `whence` follows lseek: SEEK_SET/CUR/END
  /// (0/1/2). Returns the new absolute offset.
  Result<uint64_t> LSeek(int fd, int64_t offset, int whence);

  Status Close(int fd);

  /// Remote metadata without opening.
  Result<FileInfo> Stat(const std::string& url,
                        const RequestParams& params = {});

  /// Namespace operations (WebDAV verbs).
  Status Unlink(const std::string& url, const RequestParams& params = {});
  Status MkDir(const std::string& url, const RequestParams& params = {});
  Status Rename(const std::string& url, const std::string& destination_path,
                const RequestParams& params = {});

  /// Directory listing via PROPFIND Depth: 1; returns child names.
  Result<std::vector<std::string>> ListDir(const std::string& url,
                                           const RequestParams& params = {});

  /// Number of descriptors currently open.
  size_t OpenCount() const;

 private:
  struct OpenFile {
    std::unique_ptr<DavFile> file;
    RequestParams params;
    uint64_t size = 0;
    uint64_t cursor = 0;
    // Read-ahead window (valid when params.readahead_bytes > 0).
    uint64_t buffer_offset = 0;
    std::string buffer;
    std::mutex mu;  // guards cursor + buffer
  };

  Result<std::shared_ptr<OpenFile>> Lookup(int fd) const;

  Context* context_;
  mutable std::mutex mu_;
  std::map<int, std::shared_ptr<OpenFile>> open_files_;
  int next_fd_ = 3;
};

}  // namespace core
}  // namespace davix

#endif  // DAVIX_CORE_DAV_POSIX_H_
