#ifndef DAVIX_CORE_DAV_POSIX_H_
#define DAVIX_CORE_DAV_POSIX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "core/dav_file.h"
#include "core/read_ahead_stream.h"

namespace davix {
namespace core {

/// POSIX-like remote file access, mirroring davix's DavPosix facade: the
/// API an I/O framework (like the ROOT plugin, TDavixFile) binds to.
///
/// Descriptors are plain ints handed out by Open.
///
/// Thread-safe: yes — concurrent PRead calls on the same descriptor
/// proceed in parallel, each drawing its own pooled connection (§2.2
/// dispatch), while cursor-moving calls (Read/LSeek) serialize per
/// descriptor.
///
/// Ownership: holds a raw pointer to the Context (which must outlive
/// it) and shares ownership of each open file with any in-flight
/// read-ahead fetches, so Close — and even DavPosix destruction — is
/// safe while chunks are on the wire.
///
/// Caching: every read path consults and fills the Context's block
/// cache when one is configured (see RequestParams::use_block_cache
/// and cache_revalidation; Open's Stat doubles as revalidation under
/// the default kOnOpen policy).
class DavPosix {
 public:
  /// `context` must outlive this object.
  explicit DavPosix(Context* context) : context_(context) {}

  DavPosix(const DavPosix&) = delete;
  DavPosix& operator=(const DavPosix&) = delete;

  /// Opens `url` for reading; verifies existence with a Stat.
  Result<int> Open(const std::string& url, const RequestParams& params = {});

  /// Sequential read of up to `count` bytes at the descriptor's cursor.
  /// Returns fewer bytes only at EOF (empty string = EOF). When
  /// RequestParams::readahead_bytes is set, reads are served from a
  /// read-ahead buffer: a synchronous single-window one by default, or —
  /// when RequestParams::readahead_window_chunks > 0 — an asynchronous
  /// sliding window that keeps that many chunk fetches in flight on the
  /// Context's dispatcher pool.
  Result<std::string> Read(int fd, size_t count);

  /// Positional read, no cursor interaction.
  Result<std::string> PRead(int fd, uint64_t offset, size_t count);

  /// §2.3 vectored positional read; results[i] are the bytes of
  /// ranges[i]. This is the call TTreeCache-style clients batch into.
  Result<std::vector<std::string>> PReadVec(
      int fd, const std::vector<http::ByteRange>& ranges);

  /// Repositions the cursor. `whence` follows lseek: SEEK_SET/CUR/END
  /// (0/1/2). Returns the new absolute offset.
  Result<uint64_t> LSeek(int fd, int64_t offset, int whence);

  Status Close(int fd);

  /// Remote metadata without opening.
  Result<FileInfo> Stat(const std::string& url,
                        const RequestParams& params = {});

  /// Namespace operations (WebDAV verbs).
  Status Unlink(const std::string& url, const RequestParams& params = {});
  Status MkDir(const std::string& url, const RequestParams& params = {});
  Status Rename(const std::string& url, const std::string& destination_path,
                const RequestParams& params = {});

  /// Directory listing via PROPFIND Depth: 1; returns child names.
  Result<std::vector<std::string>> ListDir(const std::string& url,
                                           const RequestParams& params = {});

  /// Number of descriptors currently open.
  size_t OpenCount() const;

 private:
  struct OpenFile {
    /// Shared so in-flight read-ahead fetches can keep the remote file
    /// (and its HttpClient) alive across a Close that races them.
    /// `file`, `params` and `size` are immutable after Open — only the
    /// cursor-moving state needs the descriptor lock.
    std::shared_ptr<DavFile> file;
    RequestParams params;
    uint64_t size = 0;
    Mutex mu;
    uint64_t cursor GUARDED_BY(mu) = 0;
    // Synchronous read-ahead buffer (params.readahead_bytes > 0,
    // params.readahead_window_chunks == 0).
    uint64_t buffer_offset GUARDED_BY(mu) = 0;
    std::string buffer GUARDED_BY(mu);
    // Asynchronous sliding window (params.readahead_window_chunks > 0),
    // created lazily on the first buffered Read.
    std::unique_ptr<ReadAheadStream> stream GUARDED_BY(mu);
  };

  Result<std::shared_ptr<OpenFile>> Lookup(int fd) const;

  /// Serves Read from the synchronous single-buffer window.
  Result<std::string> ReadBuffered(OpenFile* file, uint64_t want)
      REQUIRES(file->mu);
  /// Serves Read from the asynchronous sliding window.
  Result<std::string> ReadWindowed(OpenFile* file, uint64_t want)
      REQUIRES(file->mu);

  Context* context_;
  mutable Mutex mu_;
  std::map<int, std::shared_ptr<OpenFile>> open_files_ GUARDED_BY(mu_);
  int next_fd_ GUARDED_BY(mu_) = 3;
};

}  // namespace core
}  // namespace davix

#endif  // DAVIX_CORE_DAV_POSIX_H_
