#include "core/http_client.h"

#include <atomic>

#include "common/base64.h"
#include "common/clock.h"
#include "common/logging.h"
#include "core/resilience.h"
#include "http/parser.h"

namespace davix {
namespace core {
namespace {

bool IsIdempotent(http::Method method) {
  return method != http::Method::kPost;
}

// Longest server-dictated Retry-After pause honored when the request
// does not override retry_after_max_micros.
constexpr int64_t kDefaultRetryAfterMaxMicros = 30'000'000;

BackoffConfig BackoffConfigFrom(const RequestParams& params) {
  BackoffConfig config;
  config.base_delay_micros = params.retry_delay_micros;
  if (params.retry_backoff_max_micros > 0) {
    config.max_delay_micros = params.retry_backoff_max_micros;
  }
  if (config.max_delay_micros < config.base_delay_micros) {
    config.max_delay_micros = config.base_delay_micros;
  }
  return config;
}

// A fixed retry_jitter_seed reproduces the exact delay sequence; the
// default decorrelates concurrent requests (the point of full jitter)
// by folding a process-wide counter into the clock.
uint64_t ResolveJitterSeed(const RequestParams& params) {
  if (params.retry_jitter_seed != 0) return params.retry_jitter_seed;
  static std::atomic<uint64_t> counter{0};
  return static_cast<uint64_t>(MonotonicMicros()) ^
         ((counter.fetch_add(1, std::memory_order_relaxed) + 1) *
          0x9e3779b97f4a7c15ULL);
}

// Same resolution as the session pool's (0 = default, < 0 = disabled);
// the mux path admits against the identical breaker table, it just
// doesn't go through SessionPool::Acquire.
CircuitBreakerConfig MuxBreakerConfigFrom(const RequestParams& params) {
  CircuitBreakerConfig config;
  if (params.breaker_failure_threshold != 0) {
    config.failure_threshold = params.breaker_failure_threshold;
  }
  if (params.breaker_cooldown_micros > 0) {
    config.cooldown_micros = params.breaker_cooldown_micros;
  }
  return config;
}

// The wire request both transports send — byte-identical head, so a
// response served over mux is comparable bit-for-bit with the pooled
// path.
http::HttpRequest BuildWireRequest(const Uri& url, http::Method method,
                                   const RequestParams& params,
                                   const http::HeaderMap* extra_headers) {
  http::HttpRequest request;
  request.method = method;
  request.target = UrlEncodePath(url.path());
  if (!url.query().empty()) request.target += "?" + url.query();
  request.headers.Set("Host", url.HostPortKey());
  request.headers.Set("User-Agent", params.user_agent);
  request.headers.Set("Connection",
                      params.keep_alive ? "keep-alive" : "close");
  if (!params.username.empty()) {
    request.headers.Set(
        "Authorization",
        "Basic " + Base64Encode(params.username + ":" + params.password));
  }
  if (extra_headers != nullptr) {
    for (const auto& [name, value] : extra_headers->entries()) {
      request.headers.Set(name, value);
    }
  }
  return request;
}

}  // namespace

Status HttpStatusToStatus(int code, const std::string& context) {
  if (http::IsSuccess(code)) return Status::OK();
  std::string msg = context + ": HTTP " + std::to_string(code) + " " +
                    std::string(http::ReasonPhrase(code));
  switch (code) {
    case 404:
    case 410:
      return Status::NotFound(msg);
    case 401:
    case 403:
      return Status::PermissionDenied(msg);
    case 408:
      return Status::Timeout(msg);
    case 416:
      return Status::RangeNotSatisfiable(msg);
    case 501:
    case 505:
      return Status::NotSupported(msg);
    default:
      if (code >= 500) return Status::RemoteError(msg);
      if (http::IsRedirect(code)) {
        return Status::ProtocolError(msg + " (redirect without Location)");
      }
      return Status::InvalidArgument(msg);
  }
}

Result<HttpClient::Exchange> HttpClient::Execute(
    const Uri& url, http::Method method, const RequestParams& caller_params,
    std::string body, const http::HeaderMap* extra_headers) {
  RequestParams params = caller_params;
  params.ArmDeadline();
  Backoff backoff(BackoffConfigFrom(params), ResolveJitterSeed(params));
  Uri current = url;
  int redirects = 0;
  int retries_used = 0;
  Status last_error = Status::OK();

  while (true) {
    if (params.deadline.Expired()) {
      context_->stats().deadline_expirations.fetch_add(
          1, std::memory_order_relaxed);
      std::string msg = "deadline exceeded: " +
                        std::string(http::MethodName(method)) + " " +
                        current.ToString();
      if (!last_error.ok()) msg += " (last error: " + last_error.ToString() + ")";
      return Status::Timeout(msg);
    }
    bool replayable = false;
    Result<http::HttpResponse> response =
        ExecuteOnce(current, method, params, body, extra_headers, &replayable);

    if (!response.ok()) {
      last_error = response.status();
      if (replayable) {
        // A recycled connection died before yielding a single response
        // byte: the server closed an idle keep-alive connection under us.
        // Replaying on a fresh connection is always safe and does not
        // consume the retry budget.
        DAVIX_LOG(kDebug) << "stale pooled connection to "
                          << current.HostPortKey() << ", replaying";
        continue;
      }
      if (response.status().IsRetryable() && IsIdempotent(method) &&
          retries_used < params.max_retries && !params.deadline.Expired()) {
        ++retries_used;
        context_->stats().retries.fetch_add(1, std::memory_order_relaxed);
        backoff.SleepWithJitter(retries_used - 1, params.deadline);
        continue;
      }
      return response.status().WithContext(
          std::string(http::MethodName(method)) + " " + current.ToString());
    }

    // A server asking us to pace off (503/429 with Retry-After) gets its
    // wish when the wait fits the per-request cap and the remaining
    // deadline; otherwise the response goes back to the caller as usual
    // (fail-over decides what to do with it).
    if ((response->status_code == 503 || response->status_code == 429) &&
        IsIdempotent(method) && retries_used < params.max_retries) {
      std::optional<std::string> retry_after =
          response->headers.Get("Retry-After");
      Result<int64_t> wait_seconds =
          retry_after ? http::ParseRetryAfter(*retry_after, WallSeconds())
                      : Result<int64_t>(Status::NotFound("no Retry-After"));
      if (wait_seconds.ok()) {
        int64_t wait_micros = *wait_seconds * 1'000'000;
        int64_t cap = params.retry_after_max_micros > 0
                          ? params.retry_after_max_micros
                          : kDefaultRetryAfterMaxMicros;
        if (wait_micros <= cap &&
            (!params.deadline.armed() ||
             wait_micros < params.deadline.RemainingMicros())) {
          ++retries_used;
          context_->stats().retries.fetch_add(1, std::memory_order_relaxed);
          context_->stats().retry_after_honored.fetch_add(
              1, std::memory_order_relaxed);
          SleepBudgeted(wait_micros, params.deadline);
          continue;
        }
      }
    }

    if (params.follow_redirects && http::IsRedirect(response->status_code)) {
      std::optional<std::string> location =
          response->headers.Get("Location");
      if (location) {
        if (++redirects > params.max_redirects) {
          return Status::RedirectLoop("too many redirects for " +
                                      url.ToString());
        }
        DAVIX_ASSIGN_OR_RETURN(current, current.Resolve(*location));
        context_->stats().redirects_followed.fetch_add(
            1, std::memory_order_relaxed);
        continue;
      }
    }

    Exchange exchange;
    exchange.response = std::move(*response);
    exchange.final_url = current;
    return exchange;
  }
}

Result<http::HttpResponse> HttpClient::ExecuteOnce(
    const Uri& url, http::Method method, const RequestParams& params,
    const std::string& body, const http::HeaderMap* extra_headers,
    bool* replayable) {
  *replayable = false;
  if (params.transport == TransportKind::kMux) {
    return ExecuteOnceMux(url, method, params, body, extra_headers,
                          replayable);
  }
  // A fast-fail or connect failure is accounted to the breaker by the
  // pool itself; this function reports only post-acquire outcomes, so
  // no host is ever double-counted for one attempt.
  DAVIX_ASSIGN_OR_RETURN(std::unique_ptr<Session> session,
                         context_->pool().Acquire(url, params));
  bool recycled = session->recycled();
  CircuitBreakerRegistry& breakers = context_->pool().breakers();
  const std::string host_key = session->key();
  const int64_t io_timeout =
      params.deadline.CapTimeout(params.operation_timeout_micros);

  http::HttpRequest request =
      BuildWireRequest(url, method, params, extra_headers);
  // Zero-copy send: the payload never gets concatenated into the wire
  // buffer (for a PUT that used to mean one full extra copy of the
  // body). The head goes out first, then the caller's body directly.
  std::string wire_head = request.SerializeHead(body.size());
  context_->stats().requests.fetch_add(1, std::memory_order_relaxed);
  context_->stats().network_round_trips.fetch_add(1,
                                                  std::memory_order_relaxed);
  context_->stats().bytes_written.fetch_add(wire_head.size() + body.size(),
                                            std::memory_order_relaxed);

  Status write_status = session->socket().WriteAll(wire_head, io_timeout);
  if (write_status.ok() && !body.empty()) {
    write_status = session->socket().WriteAll(body, io_timeout);
  }
  uint64_t consumed_before = session->reader().bytes_consumed();
  if (!write_status.ok()) {
    context_->pool().Discard(std::move(session));
    *replayable = recycled;
    // A stale recycled connection is routine keep-alive churn, not a
    // host-health signal; everything else counts against the breaker.
    if (!*replayable) breakers.RecordFailure(host_key, MonotonicMicros());
    return write_status.WithContext("writing request");
  }

  Result<http::HttpResponse> head =
      http::MessageReader::ReadResponseHead(&session->reader());
  if (!head.ok()) {
    bool nothing_read =
        session->reader().bytes_consumed() == consumed_before;
    context_->pool().Discard(std::move(session));
    *replayable = recycled && nothing_read;
    if (!*replayable) breakers.RecordFailure(host_key, MonotonicMicros());
    return head.status().WithContext("reading response head");
  }
  http::HttpResponse response = std::move(*head);
  Status body_status = http::MessageReader::ReadResponseBody(
      &session->reader(), method == http::Method::kHead, &response);
  if (!body_status.ok()) {
    context_->pool().Discard(std::move(session));
    breakers.RecordFailure(host_key, MonotonicMicros());
    return body_status.WithContext("reading response body");
  }
  context_->stats().bytes_read.fetch_add(
      session->reader().bytes_consumed() - consumed_before,
      std::memory_order_relaxed);

  // Any complete HTTP response — 5xx included — proves the host is
  // talking; breaker health tracks the transport, not the status code.
  breakers.RecordSuccess(host_key);
  session->IncrementExchanges();
  if (params.keep_alive && response.KeepsConnectionAlive()) {
    context_->pool().Release(std::move(session));
  } else {
    context_->pool().Discard(std::move(session));
  }
  return response;
}

Result<http::HttpResponse> HttpClient::ExecuteOnceMux(
    const Uri& url, http::Method method, const RequestParams& params,
    const std::string& body, const http::HeaderMap* extra_headers,
    bool* replayable) {
  // A mux exchange is never replayable: the stream either completes or
  // fails for real (there is no "stale recycled connection" — dead
  // connections are pruned by the transport and failures come back as
  // retryable statuses that consume the retry budget).
  *replayable = false;
  const std::string host_key = url.HostPortKey();
  CircuitBreakerRegistry& breakers = context_->pool().breakers();
  switch (breakers.Admit(host_key, MuxBreakerConfigFrom(params),
                         MonotonicMicros())) {
    case CircuitBreaker::Decision::kFastFail:
      return Status::ConnectionFailed("circuit breaker open for " + host_key);
    case CircuitBreaker::Decision::kAdmit:
    case CircuitBreaker::Decision::kProbe:
      break;
  }

  http::HttpRequest request =
      BuildWireRequest(url, method, params, extra_headers);
  request.body = body;
  context_->stats().requests.fetch_add(1, std::memory_order_relaxed);
  context_->stats().network_round_trips.fetch_add(1,
                                                  std::memory_order_relaxed);
  context_->stats().bytes_written.fetch_add(
      request.SerializeHead(body.size()).size() + body.size(),
      std::memory_order_relaxed);

  Result<http::HttpResponse> response = context_->mux_transport().Execute(
      url, request, method == http::Method::kHead, params);
  if (!response.ok()) {
    breakers.RecordFailure(host_key, MonotonicMicros());
    return response.status().WithContext("mux exchange");
  }
  context_->stats().bytes_read.fetch_add(
      response->SerializeHead(response->body.size()).size() +
          response->body.size(),
      std::memory_order_relaxed);
  // Any complete response — 5xx included — proves the host is talking;
  // breaker health tracks the transport, not the status code.
  breakers.RecordSuccess(host_key);
  return response;
}

}  // namespace core
}  // namespace davix
