#include "core/http_client.h"

#include "common/base64.h"
#include "common/clock.h"
#include "common/logging.h"
#include "http/parser.h"

namespace davix {
namespace core {
namespace {

bool IsIdempotent(http::Method method) {
  return method != http::Method::kPost;
}

}  // namespace

Status HttpStatusToStatus(int code, const std::string& context) {
  if (http::IsSuccess(code)) return Status::OK();
  std::string msg = context + ": HTTP " + std::to_string(code) + " " +
                    std::string(http::ReasonPhrase(code));
  switch (code) {
    case 404:
    case 410:
      return Status::NotFound(msg);
    case 401:
    case 403:
      return Status::PermissionDenied(msg);
    case 408:
      return Status::Timeout(msg);
    case 416:
      return Status::RangeNotSatisfiable(msg);
    case 501:
    case 505:
      return Status::NotSupported(msg);
    default:
      if (code >= 500) return Status::RemoteError(msg);
      if (http::IsRedirect(code)) {
        return Status::ProtocolError(msg + " (redirect without Location)");
      }
      return Status::InvalidArgument(msg);
  }
}

Result<HttpClient::Exchange> HttpClient::Execute(
    const Uri& url, http::Method method, const RequestParams& params,
    std::string body, const http::HeaderMap* extra_headers) {
  Uri current = url;
  int redirects = 0;
  int retries_used = 0;

  while (true) {
    bool replayable = false;
    Result<http::HttpResponse> response =
        ExecuteOnce(current, method, params, body, extra_headers, &replayable);

    if (!response.ok()) {
      if (replayable) {
        // A recycled connection died before yielding a single response
        // byte: the server closed an idle keep-alive connection under us.
        // Replaying on a fresh connection is always safe and does not
        // consume the retry budget.
        DAVIX_LOG(kDebug) << "stale pooled connection to "
                          << current.HostPortKey() << ", replaying";
        continue;
      }
      if (response.status().IsRetryable() && IsIdempotent(method) &&
          retries_used < params.max_retries) {
        ++retries_used;
        context_->stats().retries.fetch_add(1, std::memory_order_relaxed);
        SleepForMicros(params.retry_delay_micros);
        continue;
      }
      return response.status().WithContext(
          std::string(http::MethodName(method)) + " " + current.ToString());
    }

    if (params.follow_redirects && http::IsRedirect(response->status_code)) {
      std::optional<std::string> location =
          response->headers.Get("Location");
      if (location) {
        if (++redirects > params.max_redirects) {
          return Status::RedirectLoop("too many redirects for " +
                                      url.ToString());
        }
        DAVIX_ASSIGN_OR_RETURN(current, current.Resolve(*location));
        context_->stats().redirects_followed.fetch_add(
            1, std::memory_order_relaxed);
        continue;
      }
    }

    Exchange exchange;
    exchange.response = std::move(*response);
    exchange.final_url = current;
    return exchange;
  }
}

Result<http::HttpResponse> HttpClient::ExecuteOnce(
    const Uri& url, http::Method method, const RequestParams& params,
    const std::string& body, const http::HeaderMap* extra_headers,
    bool* replayable) {
  *replayable = false;
  DAVIX_ASSIGN_OR_RETURN(std::unique_ptr<Session> session,
                         context_->pool().Acquire(url, params));
  bool recycled = session->recycled();

  http::HttpRequest request;
  request.method = method;
  request.target = UrlEncodePath(url.path());
  if (!url.query().empty()) request.target += "?" + url.query();
  request.headers.Set("Host", url.HostPortKey());
  request.headers.Set("User-Agent", params.user_agent);
  request.headers.Set("Connection",
                      params.keep_alive ? "keep-alive" : "close");
  if (!params.username.empty()) {
    request.headers.Set(
        "Authorization",
        "Basic " + Base64Encode(params.username + ":" + params.password));
  }
  if (extra_headers != nullptr) {
    for (const auto& [name, value] : extra_headers->entries()) {
      request.headers.Set(name, value);
    }
  }
  // Zero-copy send: the payload never gets concatenated into the wire
  // buffer (for a PUT that used to mean one full extra copy of the
  // body). The head goes out first, then the caller's body directly.
  std::string wire_head = request.SerializeHead(body.size());
  context_->stats().requests.fetch_add(1, std::memory_order_relaxed);
  context_->stats().network_round_trips.fetch_add(1,
                                                  std::memory_order_relaxed);
  context_->stats().bytes_written.fetch_add(wire_head.size() + body.size(),
                                            std::memory_order_relaxed);

  Status write_status =
      session->socket().WriteAll(wire_head, params.operation_timeout_micros);
  if (write_status.ok() && !body.empty()) {
    write_status =
        session->socket().WriteAll(body, params.operation_timeout_micros);
  }
  uint64_t consumed_before = session->reader().bytes_consumed();
  if (!write_status.ok()) {
    context_->pool().Discard(std::move(session));
    *replayable = recycled;
    return write_status.WithContext("writing request");
  }

  Result<http::HttpResponse> head =
      http::MessageReader::ReadResponseHead(&session->reader());
  if (!head.ok()) {
    bool nothing_read =
        session->reader().bytes_consumed() == consumed_before;
    context_->pool().Discard(std::move(session));
    *replayable = recycled && nothing_read;
    return head.status().WithContext("reading response head");
  }
  http::HttpResponse response = std::move(*head);
  Status body_status = http::MessageReader::ReadResponseBody(
      &session->reader(), method == http::Method::kHead, &response);
  if (!body_status.ok()) {
    context_->pool().Discard(std::move(session));
    return body_status.WithContext("reading response body");
  }
  context_->stats().bytes_read.fetch_add(
      session->reader().bytes_consumed() - consumed_before,
      std::memory_order_relaxed);

  session->IncrementExchanges();
  if (params.keep_alive && response.KeepsConnectionAlive()) {
    context_->pool().Release(std::move(session));
  } else {
    context_->pool().Discard(std::move(session));
  }
  return response;
}

}  // namespace core
}  // namespace davix
