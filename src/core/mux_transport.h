#ifndef DAVIX_CORE_MUX_TRANSPORT_H_
#define DAVIX_CORE_MUX_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/uri.h"
#include "core/request_params.h"
#include "http/message.h"
#include "muxhttp/frame.h"
#include "net/buffered_reader.h"
#include "net/tcp_socket.h"

namespace davix {
namespace core {

/// Counters of the mux transport (thread-safe; mirrored into
/// IoCounters by Context::SnapshotCounters).
struct MuxTransportStats {
  std::atomic<uint64_t> connections_opened{0};
  /// Connections torn down by read errors / protocol violations.
  std::atomic<uint64_t> connections_lost{0};
  std::atomic<uint64_t> streams_opened{0};
  /// Streams that ended in a per-stream error (peer RST, malformed
  /// response, local deadline cancel).
  std::atomic<uint64_t> streams_reset{0};
  /// Execute calls that had to wait for a stream slot because every
  /// connection to the host was saturated and the per-host connection
  /// limit was reached.
  std::atomic<uint64_t> backpressure_waits{0};
};

/// One framed client connection carrying many concurrent streams
/// (muxhttp/frame.h). A dedicated reader thread demultiplexes response
/// frames into per-stream waiters; requesters block on a condition
/// variable until their stream completes, fails, or their deadline
/// expires (expiry sends RST kCancelled so the server stops streaming).
///
/// Thread-safe: yes — any number of threads may run exchanges
/// concurrently. Lock order: mu_, demux_mu_ and write_mu_ are all leaf
/// locks; no code path holds two of them at once.
class MuxConnection {
 public:
  /// Connects to `url`'s host (connect timeout from `params`, capped by
  /// its deadline) and starts the reader thread.
  static Result<std::shared_ptr<MuxConnection>> Connect(
      const Uri& url, const RequestParams& params);

  ~MuxConnection();

  MuxConnection(const MuxConnection&) = delete;
  MuxConnection& operator=(const MuxConnection&) = delete;

  /// Reserves a stream slot and allocates its id. Returns 0 (never a
  /// valid id) when the connection is dead or already carries
  /// `max_streams` exchanges — the caller then tries another connection
  /// or waits. A reserved slot MUST be consumed by FinishExchange.
  uint32_t TryBeginStream(size_t max_streams, bool head_request);

  /// Sends `request` on stream `stream_id` (from TryBeginStream) and
  /// blocks until the response arrives, the stream fails, or the wait
  /// budget — operation_timeout_micros capped by the armed deadline —
  /// runs out. Expiry cancels the stream on the wire (RST kCancelled)
  /// and returns kTimeout. Connection loss fails with a retryable
  /// kConnectionReset.
  Result<http::HttpResponse> FinishExchange(uint32_t stream_id,
                                            const http::HttpRequest& request,
                                            const RequestParams& params,
                                            MuxTransportStats* stats);

  bool alive() const { return alive_.load(std::memory_order_acquire); }
  size_t active_streams() const {
    return active_.load(std::memory_order_relaxed);
  }

  /// Fails every in-flight stream and closes the socket. Idempotent.
  void Shutdown(const Status& reason);

 private:
  MuxConnection() = default;

  void ReaderLoop();
  /// Marks the connection dead and completes every waiter with
  /// `reason`. Safe from any thread.
  void FailAll(const Status& reason);

  /// One in-flight exchange; requester and reader share it by
  /// shared_ptr so completion survives a timed-out requester leaving.
  struct Waiter {
    bool done = false;
    Status status;
    http::HttpResponse response;
  };

  std::unique_ptr<net::TcpSocket> socket_;
  std::unique_ptr<net::BufferedReader> reader_;
  std::thread reader_thread_;
  std::atomic<bool> alive_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> active_{0};

  Mutex mu_;
  CondVar cv_;
  std::unordered_map<uint32_t, std::shared_ptr<Waiter>> pending_
      GUARDED_BY(mu_);
  uint32_t next_stream_id_ GUARDED_BY(mu_) = 1;

  /// The demux state machine, fed by the reader and registered into by
  /// requesters (ExpectStream / Forget).
  Mutex demux_mu_;
  muxhttp::MuxStreamAssembler assembler_ GUARDED_BY(demux_mu_){
      muxhttp::MuxStreamAssembler::Mode::kResponse};

  Mutex write_mu_;
  bool write_broken_ GUARDED_BY(write_mu_) = false;
  /// The only place client mux code writes to the socket.
  Status WriteFramesLocked(const std::vector<muxhttp::MuxFrame>& frames)
      REQUIRES(write_mu_);
};

/// The client-side mux transport: per-host buckets of a few shared
/// MuxConnections, each multiplexing up to
/// RequestParams::mux_max_streams_per_connection concurrent exchanges.
/// Execute picks the least-loaded live connection with a free stream
/// slot, opens a new connection while under the per-host limit
/// (mux_max_connections_per_host), and otherwise blocks until a slot
/// frees up — bounded connection count is the point of the transport.
///
/// Ownership: owned by the Context (lazily, like the dispatcher pool);
/// HttpClient::ExecuteOnce routes exchanges here when
/// RequestParams::transport == TransportKind::kMux.
///
/// Thread-safe: yes.
class MuxTransport {
 public:
  MuxTransport() = default;
  ~MuxTransport();

  MuxTransport(const MuxTransport&) = delete;
  MuxTransport& operator=(const MuxTransport&) = delete;

  /// Runs one exchange over a mux connection to `url`'s host. The
  /// request must be fully built (headers, body); `head_request` marks
  /// HEAD so a bodyless response with Content-Length is accepted.
  Result<http::HttpResponse> Execute(const Uri& url,
                                     const http::HttpRequest& request,
                                     bool head_request,
                                     const RequestParams& params);

  /// Live connections to `host_key` ("host:port") right now — the
  /// bounded-connection assertion hook for tests and benches.
  size_t ConnectionCount(const std::string& host_key) const;

  /// Live connections across all hosts.
  size_t TotalConnections() const;

  /// Shuts down and drops every connection (in-flight exchanges fail
  /// with kCancelled).
  void Clear();

  MuxTransportStats& stats() { return stats_; }

 private:
  struct Bucket {
    std::vector<std::shared_ptr<MuxConnection>> connections;
    /// Connects in flight, counted toward the per-host limit so a burst
    /// of first requests cannot overshoot it.
    size_t connecting = 0;
  };

  mutable Mutex mu_;
  CondVar cv_;
  std::unordered_map<std::string, Bucket> buckets_ GUARDED_BY(mu_);
  MuxTransportStats stats_;
};

}  // namespace core
}  // namespace davix

#endif  // DAVIX_CORE_MUX_TRANSPORT_H_
