#include "core/context.h"

#include <algorithm>
#include <thread>

namespace davix {
namespace core {

Context::Context(SessionPoolConfig pool_config, size_t dispatcher_threads,
                 BlockCacheConfig cache_config)
    : pool_(std::make_unique<SessionPool>(pool_config)),
      block_cache_(std::make_unique<BlockCache>(cache_config)),
      dispatcher_threads_(dispatcher_threads) {}

ThreadPool& Context::dispatcher() {
  MutexLock lock(dispatcher_mu_);
  if (!dispatcher_) {
    size_t threads = dispatcher_threads_;
    if (threads == 0) {
      threads = std::clamp<size_t>(std::thread::hardware_concurrency(), 4, 16);
    }
    dispatcher_ = std::make_unique<ThreadPool>(threads);
  }
  return *dispatcher_;
}

bool Context::dispatcher_started() const {
  MutexLock lock(dispatcher_mu_);
  return dispatcher_ != nullptr;
}

MuxTransport& Context::mux_transport() {
  MutexLock lock(mux_mu_);
  if (!mux_transport_) {
    mux_transport_ = std::make_unique<MuxTransport>();
  }
  return *mux_transport_;
}

bool Context::mux_transport_started() const {
  MutexLock lock(mux_mu_);
  return mux_transport_ != nullptr;
}

IoCounters Context::SnapshotCounters() const {
  IoCounters out;
  out.requests = stats_.requests.load(std::memory_order_relaxed);
  out.network_round_trips =
      stats_.network_round_trips.load(std::memory_order_relaxed);
  out.bytes_read = stats_.bytes_read.load(std::memory_order_relaxed);
  out.bytes_written = stats_.bytes_written.load(std::memory_order_relaxed);
  out.redirects_followed =
      stats_.redirects_followed.load(std::memory_order_relaxed);
  out.retries = stats_.retries.load(std::memory_order_relaxed);
  out.retry_after_honored =
      stats_.retry_after_honored.load(std::memory_order_relaxed);
  out.deadline_expirations =
      stats_.deadline_expirations.load(std::memory_order_relaxed);
  out.stall_aborts = stats_.stall_aborts.load(std::memory_order_relaxed);
  CircuitBreakerStats& breaker = pool_->breakers().stats();
  out.breaker_opens = breaker.opens.load(std::memory_order_relaxed);
  out.breaker_closes = breaker.closes.load(std::memory_order_relaxed);
  out.breaker_fast_fails = breaker.fast_fails.load(std::memory_order_relaxed);
  out.breaker_half_open_probes =
      breaker.half_open_probes.load(std::memory_order_relaxed);
  out.replica_failovers =
      stats_.replica_failovers.load(std::memory_order_relaxed);
  out.replica_quarantines =
      stats_.replica_quarantines.load(std::memory_order_relaxed);
  out.replica_validator_rejects =
      stats_.replica_validator_rejects.load(std::memory_order_relaxed);
  out.multisource_chunks =
      stats_.multisource_chunks.load(std::memory_order_relaxed);
  out.multisource_cache_chunks =
      stats_.multisource_cache_chunks.load(std::memory_order_relaxed);
  out.vector_queries = stats_.vector_queries.load(std::memory_order_relaxed);
  out.ranges_requested =
      stats_.ranges_requested.load(std::memory_order_relaxed);
  out.connections_opened =
      pool_->stats().connects.load(std::memory_order_relaxed);
  out.connections_reused =
      pool_->stats().recycled.load(std::memory_order_relaxed);
  {
    MutexLock lock(mux_mu_);
    if (mux_transport_) {
      MuxTransportStats& mux = mux_transport_->stats();
      out.mux_connections_opened =
          mux.connections_opened.load(std::memory_order_relaxed);
      out.mux_connections_lost =
          mux.connections_lost.load(std::memory_order_relaxed);
      out.mux_streams_opened =
          mux.streams_opened.load(std::memory_order_relaxed);
      out.mux_streams_reset =
          mux.streams_reset.load(std::memory_order_relaxed);
      out.mux_backpressure_waits =
          mux.backpressure_waits.load(std::memory_order_relaxed);
    }
  }
  BlockCacheCounters cache = block_cache_->Snapshot();
  out.cache_hits = cache.hits;
  out.cache_misses = cache.misses;
  out.cache_evictions = cache.evictions;
  out.cache_bytes_saved = cache.bytes_saved;
  return out;
}

void Context::ResetCounters() {
  stats_.requests.store(0, std::memory_order_relaxed);
  stats_.network_round_trips.store(0, std::memory_order_relaxed);
  stats_.bytes_read.store(0, std::memory_order_relaxed);
  stats_.bytes_written.store(0, std::memory_order_relaxed);
  stats_.redirects_followed.store(0, std::memory_order_relaxed);
  stats_.retries.store(0, std::memory_order_relaxed);
  stats_.retry_after_honored.store(0, std::memory_order_relaxed);
  stats_.deadline_expirations.store(0, std::memory_order_relaxed);
  stats_.stall_aborts.store(0, std::memory_order_relaxed);
  stats_.replica_failovers.store(0, std::memory_order_relaxed);
  stats_.replica_quarantines.store(0, std::memory_order_relaxed);
  stats_.replica_validator_rejects.store(0, std::memory_order_relaxed);
  stats_.multisource_chunks.store(0, std::memory_order_relaxed);
  stats_.multisource_cache_chunks.store(0, std::memory_order_relaxed);
  stats_.vector_queries.store(0, std::memory_order_relaxed);
  stats_.ranges_requested.store(0, std::memory_order_relaxed);
  pool_->stats().connects.store(0, std::memory_order_relaxed);
  pool_->stats().recycled.store(0, std::memory_order_relaxed);
  pool_->stats().discarded.store(0, std::memory_order_relaxed);
  pool_->stats().expired.store(0, std::memory_order_relaxed);
  CircuitBreakerStats& breaker = pool_->breakers().stats();
  breaker.opens.store(0, std::memory_order_relaxed);
  breaker.closes.store(0, std::memory_order_relaxed);
  breaker.fast_fails.store(0, std::memory_order_relaxed);
  breaker.half_open_probes.store(0, std::memory_order_relaxed);
  {
    MutexLock lock(mux_mu_);
    if (mux_transport_) {
      MuxTransportStats& mux = mux_transport_->stats();
      mux.connections_opened.store(0, std::memory_order_relaxed);
      mux.connections_lost.store(0, std::memory_order_relaxed);
      mux.streams_opened.store(0, std::memory_order_relaxed);
      mux.streams_reset.store(0, std::memory_order_relaxed);
      mux.backpressure_waits.store(0, std::memory_order_relaxed);
    }
  }
  block_cache_->ResetCounters();
}

}  // namespace core
}  // namespace davix
