#include "core/dav_file.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "common/base64.h"
#include "common/clock.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "core/block_cache.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/metalink_engine.h"
#include "core/replica_set.h"
#include "core/resilience.h"
#include "core/vector_io.h"
#include "http/multipart.h"
#include "http/parser.h"

namespace davix {
namespace core {

/// Shared state of one parallel vectored dispatch: every batch worker
/// reports errors here, and the first batch to receive a 200 (server
/// ignored the Range header) parks the full entity for its siblings.
///
/// Thread-safe: yes — `mu` guards the error slot, `full_body` is
/// published once via the release/acquire pair on `have_full_body`, and
/// the remaining members are immutable for the dispatch's duration.
struct VecDispatchState {
  Mutex mu;
  Status first_error GUARDED_BY(mu) = Status::OK();
  std::atomic<bool> failed{false};
  /// Written once under `mu`, then read-only; readers gate on the
  /// acquire-load of `have_full_body` (a release/acquire publication,
  /// so the post-publication reads are deliberately lock-free and the
  /// member stays unannotated).
  std::string full_body;
  std::atomic<bool> have_full_body{false};
  /// Block-cache fill target (null = caching off for this dispatch).
  /// Batch workers insert every fetched wire span, keyed by the
  /// dispatch's canonical primary URL, with the validators each
  /// response carried.
  BlockCache* cache = nullptr;
  const std::string* cache_key = nullptr;
  /// Resolved replica set of the dispatch (null = single-source). Every
  /// response's validators are admitted against the set's agreed
  /// generation before scatter/cache-fill; spans are published under
  /// the agreed validator so fail-over and striping share one cache
  /// generation.
  ReplicaSet* replica_set = nullptr;
};

namespace {

/// Satisfies every wire range of `batch` from a full-entity body (the
/// 200-fallback: once the server has sent everything, all remaining
/// batches demote to local scatter — single-stream, no wire traffic).
Status ScatterFromFullBody(const std::vector<CoalescedRange>& batch,
                           std::string_view full_body,
                           const std::vector<http::ByteRange>& ranges,
                           std::vector<std::string>* results) {
  for (const CoalescedRange& wire : batch) {
    if (wire.range.offset + wire.range.length > full_body.size()) {
      return Status::ProtocolError("entity shorter than wire range");
    }
    DAVIX_RETURN_IF_ERROR(ScatterWireRange(
        wire, full_body.substr(wire.range.offset, wire.range.length), ranges,
        results));
  }
  return Status::OK();
}

}  // namespace

DavFile::DavFile(Context* context, Uri url)
    : context_(context), client_(context), url_(std::move(url)) {}

Result<DavFile> DavFile::Make(Context* context, const std::string& url) {
  DAVIX_ASSIGN_OR_RETURN(Uri parsed, Uri::Parse(url));
  return DavFile(context, std::move(parsed));
}

template <typename T>
Result<T> DavFile::WithFailover(
    const RequestParams& caller_params,
    const std::function<Result<T>(const Uri&, const RequestParams&)>& op) {
  RequestParams params = caller_params;
  params.ArmDeadline();
  if (replica_set_ != nullptr &&
      params.metalink_mode != MetalinkMode::kDisabled) {
    // Resolved-set fast path: walk the health-ranked sources directly —
    // no Metalink refetch on failure — and feed every outcome back into
    // the health state, so repeatedly failing sources sink in rank and
    // quarantine out of the rotation.
    Status last =
        Status::AllReplicasFailed("replica set has no usable source");
    bool first = true;
    for (const std::shared_ptr<ReplicaSource>& source :
         replica_set_->RankedSources()) {
      if (!first) {
        context_->stats().replica_failovers.fetch_add(
            1, std::memory_order_relaxed);
        DAVIX_LOG(kDebug) << "failing over to replica "
                          << source->url().ToString();
      }
      first = false;
      int64_t start = MonotonicMicros();
      Result<T> attempt = op(source->url(), params);
      if (attempt.ok()) {
        replica_set_->RecordSuccess(source, MonotonicMicros() - start);
        return attempt;
      }
      replica_set_->RecordFailure(source);
      if (!ShouldFailover(attempt.status())) return attempt;
      last = attempt.status();
    }
    return Status::AllReplicasFailed("all replicas of " + url_.ToString() +
                                     " failed; last error: " +
                                     last.ToString());
  }

  Result<T> primary = op(url_, params);
  if (primary.ok() || params.metalink_mode == MetalinkMode::kDisabled ||
      !ShouldFailover(primary.status())) {
    return primary;
  }

  // The primary is unavailable: look up the resource's replicas and walk
  // them in priority order.
  MetalinkEngine engine(&client_);
  Result<std::vector<Uri>> replicas = engine.ResolveReplicas(url_, params);
  if (!replicas.ok()) {
    DAVIX_LOG(kDebug) << "no metalink for " << url_.ToString() << ": "
                      << replicas.status().ToString();
    return primary;  // keep the original, more informative error
  }
  Status last = primary.status();
  for (const Uri& replica : *replicas) {
    if (replica == url_) continue;  // already failed
    context_->stats().replica_failovers.fetch_add(1,
                                                  std::memory_order_relaxed);
    DAVIX_LOG(kDebug) << "failing over to replica " << replica.ToString();
    Result<T> attempt = op(replica, params);
    if (attempt.ok()) return attempt;
    last = attempt.status();
  }
  return Status::AllReplicasFailed("all replicas of " + url_.ToString() +
                                   " failed; last error: " + last.ToString());
}

Result<std::string> DavFile::Get(const RequestParams& params) {
  if (params.metalink_mode == MetalinkMode::kMultiStream) {
    MetalinkEngine engine(&client_);
    Result<std::string> multi = engine.MultiStreamGet(url_, params);
    if (multi.ok()) return multi;
    DAVIX_LOG(kDebug) << "multi-stream failed (" << multi.status().ToString()
                      << "), falling back to plain GET";
  }
  return WithFailover<std::string>(
      params,
      [&](const Uri& replica, const RequestParams& p) -> Result<std::string> {
        DAVIX_ASSIGN_OR_RETURN(
            HttpClient::Exchange exchange,
            client_.Execute(replica, http::Method::kGet, p));
        DAVIX_RETURN_IF_ERROR(HttpStatusToStatus(
            exchange.response.status_code, "GET " + replica.ToString()));
        return std::move(exchange.response.body);
      });
}

Status DavFile::Put(std::string data, const RequestParams& params) {
  DAVIX_ASSIGN_OR_RETURN(
      HttpClient::Exchange exchange,
      client_.Execute(url_, http::Method::kPut, params, std::move(data)));
  return HttpStatusToStatus(exchange.response.status_code,
                            "PUT " + url_.ToString());
}

Status DavFile::Delete(const RequestParams& params) {
  DAVIX_ASSIGN_OR_RETURN(
      HttpClient::Exchange exchange,
      client_.Execute(url_, http::Method::kDelete, params));
  return HttpStatusToStatus(exchange.response.status_code,
                            "DELETE " + url_.ToString());
}

Result<FileInfo> DavFile::Stat(const RequestParams& params) {
  return WithFailover<FileInfo>(
      params,
      [&](const Uri& replica, const RequestParams& p) -> Result<FileInfo> {
        DAVIX_ASSIGN_OR_RETURN(
            HttpClient::Exchange exchange,
            client_.Execute(replica, http::Method::kHead, p));
        DAVIX_RETURN_IF_ERROR(HttpStatusToStatus(
            exchange.response.status_code, "HEAD " + replica.ToString()));
        FileInfo info;
        info.size =
            exchange.response.headers.GetUint64("Content-Length").value_or(0);
        info.etag = exchange.response.headers.Get("ETag").value_or("");
        if (std::optional<std::string> lm =
                exchange.response.headers.Get("Last-Modified")) {
          Result<int64_t> mtime = http::ParseHttpDate(*lm);
          if (mtime.ok()) info.mtime_epoch_seconds = *mtime;
        }
        return info;
      });
}

Result<std::string> DavFile::GetChecksum(const RequestParams& params) {
  return WithFailover<std::string>(
      params,
      [&](const Uri& replica, const RequestParams& p) -> Result<std::string> {
        http::HeaderMap headers;
        headers.Set("Want-Digest", "md5");
        DAVIX_ASSIGN_OR_RETURN(
            HttpClient::Exchange exchange,
            client_.Execute(replica, http::Method::kHead, p,
                            std::string(), &headers));
        DAVIX_RETURN_IF_ERROR(HttpStatusToStatus(
            exchange.response.status_code, "HEAD " + replica.ToString()));
        std::optional<std::string> digest =
            exchange.response.headers.Get("Digest");
        if (!digest) {
          return Status::NotSupported("server sent no Digest header for " +
                                      replica.ToString());
        }
        // Digest: md5=<base64>
        std::string_view value = TrimWhitespace(*digest);
        if (!StartsWith(value, "md5=")) {
          return Status::ProtocolError("unexpected Digest algorithm: " +
                                       *digest);
        }
        DAVIX_ASSIGN_OR_RETURN(std::string raw,
                               Base64Decode(value.substr(4)));
        return HexEncode(raw);
      });
}

Status DavFile::Copy(const std::string& destination_path,
                     const RequestParams& params) {
  http::HeaderMap headers;
  headers.Set("Destination", destination_path);
  DAVIX_ASSIGN_OR_RETURN(
      HttpClient::Exchange exchange,
      client_.Execute(url_, http::Method::kCopy, params, std::string(),
                      &headers));
  return HttpStatusToStatus(exchange.response.status_code,
                            "COPY " + url_.ToString());
}

Result<std::string> DavFile::ReadPartial(uint64_t offset, uint64_t length,
                                         const RequestParams& params) {
  if (length == 0) return std::string();
  std::vector<http::ByteRange> ranges = {http::ByteRange{offset, length}};
  DAVIX_ASSIGN_OR_RETURN(std::vector<std::string> results,
                         ReadPartialVec(ranges, params));
  return std::move(results[0]);
}

Status DavFile::ResolveReplicaSet(const RequestParams& params) {
  if (replica_set_ != nullptr) return Status::OK();
  if (params.metalink_mode == MetalinkMode::kDisabled) {
    return Status::InvalidArgument("metalink disabled for " +
                                   url_.ToString());
  }
  DAVIX_ASSIGN_OR_RETURN(replica_set_,
                         ReplicaSet::Resolve(context_, url_, params));
  return Status::OK();
}

Result<std::vector<std::string>> DavFile::ReadPartialVec(
    const std::vector<http::ByteRange>& ranges, const RequestParams& params) {
  if (replica_set_ != nullptr &&
      params.metalink_mode != MetalinkMode::kDisabled) {
    // The batch dispatch fails over per batch on the resolved set (and
    // stripes batches across its sources); a top-level retry here would
    // only repeat the same walk. One armed deadline spans every batch.
    RequestParams armed = params;
    armed.ArmDeadline();
    return ReadPartialVecAt(url_, ranges, armed);
  }
  return WithFailover<std::vector<std::string>>(
      params,
      [&](const Uri& replica,
          const RequestParams& p) -> Result<std::vector<std::string>> {
        return ReadPartialVecAt(replica, ranges, p);
      });
}

std::future<Result<std::vector<std::string>>> DavFile::ReadPartialVecAsync(
    const std::vector<http::ByteRange>& ranges, const RequestParams& params) {
  // The task owns copies of the ranges and params; `this` stays valid by
  // the contract documented in the header. Sharing the packaged_task lets
  // the submit closure stay copyable.
  auto task = std::make_shared<
      std::packaged_task<Result<std::vector<std::string>>()>>(
      [this, ranges, params]() { return ReadPartialVec(ranges, params); });
  std::future<Result<std::vector<std::string>>> future = task->get_future();
  if (!context_->dispatcher().Submit([task]() { (*task)(); })) {
    // Dispatcher shutting down: run inline so the future still resolves.
    (*task)();
  }
  return future;
}

Status DavFile::RevalidateCached(const Uri& replica,
                                 const RequestParams& params,
                                 BlockCache* cache,
                                 const std::string& cache_key) {
  DAVIX_ASSIGN_OR_RETURN(
      HttpClient::Exchange exchange,
      client_.Execute(replica, http::Method::kHead, params));
  DAVIX_RETURN_IF_ERROR(HttpStatusToStatus(exchange.response.status_code,
                                           "HEAD " + replica.ToString()));
  cache->NoteValidator(cache_key, ValidatorFrom(exchange.response.headers));
  return Status::OK();
}

Result<std::vector<std::string>> DavFile::ReadPartialVecAt(
    const Uri& replica, const std::vector<http::ByteRange>& ranges,
    const RequestParams& params) {
  std::vector<std::string> results(ranges.size());

  BlockCache* cache = params.use_block_cache &&
                              context_->block_cache().enabled()
                          ? &context_->block_cache()
                          : nullptr;
  // Cache entries are keyed by the canonical *primary* URL, not the
  // replica actually fetched from: fail-over reads of the same resource
  // share one block set.
  ReplicaSet* set = params.metalink_mode != MetalinkMode::kDisabled
                        ? replica_set_.get()
                        : nullptr;
  std::string cache_key = cache ? BlockCache::UrlKey(url_) : std::string();
  if (cache &&
      params.cache_revalidation == CacheRevalidatePolicy::kAlways &&
      cache->HasUrl(cache_key)) {
    // With a resolved set the revalidation HEAD goes to the best-ranked
    // source (the primary may be the very replica that is down).
    Uri revalidate_target = replica;
    if (set != nullptr) {
      std::vector<std::shared_ptr<ReplicaSource>> ranked =
          set->RankedSources();
      if (!ranked.empty()) revalidate_target = ranked.front()->url();
    }
    DAVIX_RETURN_IF_ERROR(
        RevalidateCached(revalidate_target, params, cache, cache_key));
  }

  // Cache carve-out, before any coalescing: the cached prefix and
  // suffix of each user range are copied straight into its result slot,
  // and only the missing middle span is forwarded to the wire planner.
  // Fully cached ranges never reach the network at all.
  struct NetSpan {
    size_t range_index;    ///< index into `ranges` / `results`
    uint64_t dest_offset;  ///< where the fetched bytes land in the slot
  };
  std::vector<http::ByteRange> net_ranges;
  std::vector<NetSpan> net_spans;
  bool cache_served = false;  // any byte of `results` came from the cache
  bool carved = false;        // some range was trimmed (dest offsets != 0)
  // Snapshot of the cache's purge epoch, taken before any cached byte
  // is served: compared after the network fill to catch a generation
  // turnover — whether triggered by this dispatch's own fills or by a
  // concurrent dispatch / Open on the same Context.
  uint64_t purge_epoch = cache ? cache->PurgeEpoch() : 0;
  if (cache) {
    net_ranges.reserve(ranges.size());
    net_spans.reserve(ranges.size());
    // One registry probe up front: a URL with nothing resident (the
    // cold case) skips the per-range lookups — and their 2N lock
    // round trips — entirely. The skipped lookups still count as
    // misses so hit/miss accounting reflects reads that hit the wire.
    bool may_be_cached = cache->HasUrl(cache_key);
    uint64_t skipped_lookups = 0;
    for (size_t i = 0; i < ranges.size(); ++i) {
      const http::ByteRange& r = ranges[i];
      results[i].resize(r.length);
      if (r.length == 0) {
        // Placeholder keeps net indices aligned with user indices, so
        // empty ranges do not knock the dispatch off the direct
        // zero-copy scatter path. CoalesceRanges skips them.
        net_ranges.push_back(http::ByteRange{r.offset, 0});
        net_spans.push_back({i, 0});
        continue;
      }
      if (!may_be_cached) {
        ++skipped_lookups;
        net_ranges.push_back(r);
        net_spans.push_back({i, 0});
        continue;
      }
      uint64_t prefix =
          cache->ReadPrefix(cache_key, r.offset, r.length, results[i].data());
      if (prefix == r.length) {
        cache_served = true;
        continue;  // fully cache-served
      }
      uint64_t suffix = cache->ReadSuffix(cache_key, r.offset + prefix,
                                          r.length - prefix,
                                          results[i].data() + prefix);
      if (prefix > 0 || suffix > 0) cache_served = carved = true;
      net_ranges.push_back(
          http::ByteRange{r.offset + prefix, r.length - prefix - suffix});
      net_spans.push_back({i, prefix});
    }
    cache->RecordMisses(skipped_lookups);
    bool all_empty_or_served = true;
    for (const http::ByteRange& r : net_ranges) {
      if (r.length != 0) {
        all_empty_or_served = false;
        break;
      }
    }
    if (all_empty_or_served) return results;  // warm: zero wire traffic
  }
  const std::vector<http::ByteRange>& wire_view = cache ? net_ranges : ranges;

  std::vector<CoalescedRange> coalesced =
      CoalesceRanges(wire_view, params.vector_gap_bytes);
  if (coalesced.empty()) {
    // All (remaining) ranges empty; size untouched slots like preadv.
    for (size_t i = 0; i < ranges.size(); ++i) {
      results[i].resize(ranges[i].length);
    }
    return results;
  }
  // Multi-stream chunking: re-split big contiguous runs and cap batch
  // bytes so one large read fans out across the parallel dispatcher
  // instead of riding a single connection's congestion window.
  coalesced = SplitOversized(std::move(coalesced), wire_view,
                             params.vector_parallel_chunk_bytes);
  std::vector<std::vector<CoalescedRange>> batches =
      SplitBatches(std::move(coalesced), params.max_ranges_per_request,
                   params.vector_parallel_chunk_bytes);

  // Zero-copy scatter: size every result slot up front so concurrent
  // batch workers write payload bytes straight into them — no allocation
  // inside the dispatch, and no two workers share a slot (each user
  // range lives in exactly one wire range, each wire range in exactly
  // one batch). Only when the cache actually trimmed or dropped ranges
  // (net indices no longer line up with user indices) do workers
  // scatter into per-net-span slots that are folded back into the user
  // slots afterwards — a cold read on a cache-enabled Context keeps
  // the direct zero-copy path.
  bool direct_scatter =
      cache == nullptr || (!carved && net_ranges.size() == ranges.size());
  std::vector<std::string> net_results;
  std::vector<std::string>* scatter_slots;
  if (direct_scatter) {
    for (size_t i = 0; i < ranges.size(); ++i) {
      results[i].resize(ranges[i].length);
    }
    scatter_slots = &results;
  } else {
    net_results.resize(net_ranges.size());
    for (size_t j = 0; j < net_ranges.size(); ++j) {
      net_results[j].resize(net_ranges[j].length);
    }
    scatter_slots = &net_results;
  }

  size_t parallelism = params.max_parallel_range_requests;
  if (parallelism == 0) {
    parallelism = context_->pool().config().max_idle_per_host;
  }
  parallelism = std::max<size_t>(1, std::min(parallelism, batches.size()));

  // Single-batch (or serial) dispatches stay on the calling thread and
  // never start the dispatcher; multi-batch dispatches run on the shared
  // per-Context pool instead of spawning threads per call.
  ThreadPool* dispatcher =
      batches.size() > 1 && parallelism > 1 ? &context_->dispatcher() : nullptr;

  VecDispatchState state;
  state.cache = cache;
  state.cache_key = &cache_key;
  state.replica_set = set;
  ParallelForCancellable(
      dispatcher, batches.size(), parallelism, [&](size_t batch_index) {
        Status status =
            set != nullptr
                ? FetchVecBatchMultiSource(batch_index, parallelism,
                                           batches[batch_index], params,
                                           wire_view, &state, scatter_slots)
                : FetchVecBatch(replica, batches[batch_index], params,
                                wire_view, &state, scatter_slots,
                                /*did_fetch=*/nullptr);
        if (!status.ok()) {
          MutexLock lock(state.mu);
          if (state.first_error.ok()) state.first_error = std::move(status);
          state.failed.store(true, std::memory_order_release);
          return false;  // first-error cancellation: skip unstarted batches
        }
        return true;
      });

  {
    MutexLock lock(state.mu);
    if (!state.first_error.ok()) return state.first_error;
  }
  if (cache && cache_served && cache->PurgeEpoch() != purge_epoch) {
    // A generation turnover happened while part of this read was
    // already served from the cache — detected by this dispatch's own
    // fill, or caused by a concurrent dispatch/Open purging the URL:
    // the assembled buffer could mix two generations into bytes that
    // never existed remotely. Refetch everything coherently with the
    // cache bypassed — same single-pass semantics a cache-less
    // dispatch has.
    DAVIX_LOG(kDebug) << "cache generation changed mid-read of "
                      << url_.ToString() << "; refetching without cache";
    RequestParams bypass = params;
    bypass.use_block_cache = false;
    return ReadPartialVecAt(replica, ranges, bypass);
  }
  if (!direct_scatter) {
    for (size_t j = 0; j < net_ranges.size(); ++j) {
      const NetSpan& span = net_spans[j];
      results[span.range_index].replace(span.dest_offset,
                                        net_results[j].size(),
                                        net_results[j]);
    }
  }
  return results;
}

Status DavFile::FetchVecBatchMultiSource(
    size_t batch_index, size_t stripe_width,
    const std::vector<CoalescedRange>& batch, const RequestParams& params,
    const std::vector<http::ByteRange>& ranges, VecDispatchState* state,
    std::vector<std::string>* results) {
  // TryCandidates owns the failover/health policy; FetchVecBatch flags
  // `did_fetch` so short-circuited batches (sibling failed, or demoted
  // to local scatter off a parked full body) feed no bogus ~0 µs
  // latency into the EWMA of a source that did no work.
  return state->replica_set->TryCandidates(
      batch_index, stripe_width,
      [&](const std::shared_ptr<ReplicaSource>& source, bool* did_fetch) {
        return FetchVecBatch(source->url(), batch, params, ranges, state,
                             results, did_fetch);
      });
}

Status DavFile::FetchVecBatch(const Uri& replica,
                              const std::vector<CoalescedRange>& batch,
                              const RequestParams& params,
                              const std::vector<http::ByteRange>& ranges,
                              VecDispatchState* state,
                              std::vector<std::string>* results,
                              bool* did_fetch) {
  // A sibling batch already failed between this batch being claimed and
  // starting: don't put more traffic on the wire.
  if (state->failed.load(std::memory_order_acquire)) return Status::OK();

  // A sibling batch already received the whole entity: demote to local
  // scatter, zero wire traffic.
  if (state->have_full_body.load(std::memory_order_acquire)) {
    return ScatterFromFullBody(batch, state->full_body, ranges, results);
  }

  std::vector<http::ByteRange> wire_ranges;
  wire_ranges.reserve(batch.size());
  for (const CoalescedRange& wire : batch) wire_ranges.push_back(wire.range);

  http::HeaderMap headers;
  headers.Set("Range", http::FormatRangeHeader(wire_ranges));
  context_->stats().vector_queries.fetch_add(1, std::memory_order_relaxed);
  context_->stats().ranges_requested.fetch_add(wire_ranges.size(),
                                               std::memory_order_relaxed);

  // Stall watchdog: budget this batch by its wire bytes at the minimum
  // acceptable rate, so one trickling server aborts the batch (counted
  // as a stall_abort) and the dispatcher fails it over instead of
  // wedging the whole vectored read.
  uint64_t wire_bytes = 0;
  for (const CoalescedRange& wire : batch) wire_bytes += wire.range.length;
  const int64_t stall_budget =
      StallBudgetMicros(wire_bytes, params.min_throughput_bytes_per_sec);
  RequestParams attempt_params = params;
  if (stall_budget > 0) {
    attempt_params.deadline = params.deadline.Tightened(stall_budget);
  }

  if (did_fetch != nullptr) *did_fetch = true;
  Result<HttpClient::Exchange> attempt = client_.Execute(
      replica, http::Method::kGet, attempt_params, std::string(), &headers);
  if (!attempt.ok()) {
    if (stall_budget > 0 &&
        attempt.status().code() == StatusCode::kTimeout &&
        !params.deadline.Expired()) {
      context_->stats().stall_aborts.fetch_add(1, std::memory_order_relaxed);
    }
    return attempt.status();
  }
  HttpClient::Exchange exchange = std::move(*attempt);
  http::HttpResponse& response = exchange.response;

  // Generation admission, before any byte is scattered or cached: with
  // a replica set, a response whose validators disagree with the set's
  // agreed generation is dropped wholesale (the source is quarantined
  // by the admission) and the batch is re-dispatched to the next-best
  // source. Admitted responses publish under the agreed validator, so
  // fills from different replicas never purge each other.
  BlockValidator response_validator = ValidatorFrom(response.headers);
  if (state->replica_set != nullptr &&
      (response.status_code == 200 || response.status_code == 206)) {
    std::optional<BlockValidator> admitted =
        state->replica_set->AdmitUrl(replica, response_validator);
    if (!admitted) {
      context_->stats().replica_validator_rejects.fetch_add(
          1, std::memory_order_relaxed);
      return Status::Corruption("replica generation mismatch: " +
                                replica.ToString());
    }
    response_validator = *admitted;
  }

  if (response.status_code == 200) {
    // Server ignored the Range header: it sent the whole entity. Move
    // the body into the shared state (no copy) so every remaining batch
    // is satisfied locally.
    bool stored = false;
    {
      MutexLock lock(state->mu);
      if (!state->have_full_body.load(std::memory_order_relaxed)) {
        state->full_body = std::move(response.body);
        state->have_full_body.store(true, std::memory_order_release);
        stored = true;
      }
    }
    if (stored && state->cache != nullptr) {
      // The whole object is in hand: cache every block of it, final
      // short block included.
      state->cache->Insert(*state->cache_key, response_validator, 0,
                           state->full_body, state->full_body.size());
    }
    return ScatterFromFullBody(batch, state->full_body, ranges, results);
  }
  if (response.status_code != 206) {
    return HttpStatusToStatus(response.status_code,
                              "vectored GET " + replica.ToString());
  }

  std::string content_type = response.headers.Get("Content-Type").value_or("");
  if (content_type.find("multipart/byteranges") != std::string::npos) {
    DAVIX_ASSIGN_OR_RETURN(std::string boundary,
                           http::ExtractBoundary(content_type));
    DAVIX_ASSIGN_OR_RETURN(std::vector<http::BytesPartView> parts,
                           http::ParseMultipartViews(response.body, boundary));
    // Match parts to wire ranges via a single-pass offset-keyed lookup
    // (wire ranges are pairwise disjoint, so offsets are unique). The
    // parts are views into the response body: payload bytes are copied
    // exactly once, straight into the user slots.
    std::unordered_map<uint64_t, const http::BytesPartView*> parts_by_offset;
    parts_by_offset.reserve(parts.size());
    for (const http::BytesPartView& part : parts) {
      parts_by_offset.emplace(part.range.offset, &part);
    }
    for (const CoalescedRange& wire : batch) {
      auto it = parts_by_offset.find(wire.range.offset);
      const http::BytesPartView* match =
          it != parts_by_offset.end() && it->second->range == wire.range
              ? it->second
              : nullptr;
      if (match == nullptr) {
        // Tolerate servers that send duplicate-offset or extra parts:
        // fall back to an exact scan before declaring the range missing.
        for (const http::BytesPartView& part : parts) {
          if (part.range == wire.range) {
            match = &part;
            break;
          }
        }
      }
      if (match == nullptr) {
        return Status::ProtocolError("multipart response missing range " +
                                     http::FormatRangeHeader({wire.range}));
      }
      DAVIX_RETURN_IF_ERROR(
          ScatterWireRange(wire, match->data, ranges, results));
      if (state->cache != nullptr) {
        // Wire ranges include coalesced gap bytes, so whole blocks the
        // user never asked for still become cache lines.
        state->cache->Insert(*state->cache_key, response_validator,
                             match->range.offset, match->data,
                             match->total_size);
      }
    }
    return Status::OK();
  }

  // 206 with a single Content-Range: either we asked for one range, or
  // the server merged our ranges into one span.
  std::optional<std::string> content_range =
      response.headers.Get("Content-Range");
  if (!content_range) {
    return Status::ProtocolError("206 without Content-Range");
  }
  DAVIX_ASSIGN_OR_RETURN(http::ContentRange cr,
                         http::ParseContentRange(*content_range));
  if (response.body.size() != cr.range.length) {
    return Status::ProtocolError("206 body size != Content-Range length");
  }
  if (state->cache != nullptr) {
    state->cache->Insert(*state->cache_key, response_validator,
                         cr.range.offset, response.body, cr.total_size);
  }
  for (const CoalescedRange& wire : batch) {
    if (wire.range.offset < cr.range.offset ||
        wire.range.offset + wire.range.length >
            cr.range.offset + cr.range.length) {
      return Status::ProtocolError("206 span does not cover requested range");
    }
    DAVIX_RETURN_IF_ERROR(ScatterWireRange(
        wire,
        std::string_view(response.body)
            .substr(wire.range.offset - cr.range.offset, wire.range.length),
        ranges, results));
  }
  return Status::OK();
}

}  // namespace core
}  // namespace davix
