#include "core/resilience.h"

#include <algorithm>
#include <cmath>

#include "common/clock.h"

namespace davix {
namespace core {

Backoff::Backoff(BackoffConfig config, uint64_t seed)
    : config_(config), rng_(seed) {
  if (config_.base_delay_micros < 0) config_.base_delay_micros = 0;
  if (config_.max_delay_micros < config_.base_delay_micros) {
    config_.max_delay_micros = config_.base_delay_micros;
  }
  if (config_.multiplier < 1.0) config_.multiplier = 1.0;
}

int64_t Backoff::NextDelayMicros(int attempt) {
  double envelope = static_cast<double>(config_.base_delay_micros) *
                    std::pow(config_.multiplier, std::max(0, attempt));
  int64_t cap = std::min<int64_t>(
      config_.max_delay_micros,
      envelope >= static_cast<double>(config_.max_delay_micros)
          ? config_.max_delay_micros
          : static_cast<int64_t>(envelope));
  if (cap <= 0) return 0;
  // Full jitter: uniform in [0, cap]. The draw happens even when the
  // deadline later truncates the sleep, so seeded sequences stay aligned
  // with the attempt number.
  return static_cast<int64_t>(rng_.Below(static_cast<uint64_t>(cap) + 1));
}

int64_t Backoff::SleepWithJitter(int attempt, const Deadline& deadline) {
  return SleepBudgeted(NextDelayMicros(attempt), deadline);
}

int64_t StallBudgetMicros(uint64_t bytes,
                          uint64_t min_throughput_bytes_per_sec) {
  if (min_throughput_bytes_per_sec == 0) return 0;
  // 200 ms slack floor: scheduling noise on a loaded machine must not
  // read as a stall for a chunk that is only a few KB.
  constexpr int64_t kSlackMicros = 200'000;
  return static_cast<int64_t>(bytes * 1'000'000 /
                              min_throughput_bytes_per_sec) +
         kSlackMicros;
}

int64_t SleepBudgeted(int64_t delay_micros, const Deadline& deadline) {
  if (delay_micros <= 0) return 0;
  if (deadline.armed()) {
    delay_micros = std::min(delay_micros, deadline.RemainingMicros());
    if (delay_micros <= 0) return 0;
  }
  SleepForMicros(delay_micros);
  return delay_micros;
}

CircuitBreaker::Decision CircuitBreaker::Admit(int64_t now_micros) {
  if (config_.failure_threshold <= 0) return Decision::kAdmit;
  MutexLock lock(mu_);
  if (!open_) return Decision::kAdmit;
  if (now_micros - opened_at_micros_ < config_.cooldown_micros) {
    return Decision::kFastFail;
  }
  // Half-open: one probe at a time. A probe whose outcome never came
  // back (its owner died mid-request) goes stale after another cooldown
  // so the breaker cannot wedge half-open forever.
  if (probe_in_flight_ &&
      now_micros - probe_started_micros_ < config_.cooldown_micros) {
    return Decision::kFastFail;
  }
  probe_in_flight_ = true;
  probe_started_micros_ = now_micros;
  return Decision::kProbe;
}

bool CircuitBreaker::RecordSuccess() {
  MutexLock lock(mu_);
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  if (!open_) return false;
  open_ = false;
  return true;
}

bool CircuitBreaker::RecordFailure(int64_t now_micros) {
  if (config_.failure_threshold <= 0) return false;
  MutexLock lock(mu_);
  ++consecutive_failures_;
  if (open_) {
    // A failed probe (or a straggling request that started before the
    // trip): re-arm the cooldown, keep the breaker open.
    opened_at_micros_ = now_micros;
    probe_in_flight_ = false;
    return false;
  }
  if (consecutive_failures_ < config_.failure_threshold) return false;
  open_ = true;
  opened_at_micros_ = now_micros;
  probe_in_flight_ = false;
  return true;
}

CircuitBreaker::State CircuitBreaker::state(int64_t now_micros) const {
  MutexLock lock(mu_);
  if (!open_) return State::kClosed;
  return now_micros - opened_at_micros_ >= config_.cooldown_micros
             ? State::kHalfOpen
             : State::kOpen;
}

CircuitBreaker::Decision CircuitBreakerRegistry::Admit(
    const std::string& host_key, const CircuitBreakerConfig& config,
    int64_t now_micros) {
  if (config.failure_threshold <= 0) return CircuitBreaker::Decision::kAdmit;
  std::shared_ptr<CircuitBreaker> breaker;
  {
    MutexLock lock(mu_);
    std::shared_ptr<CircuitBreaker>& slot = breakers_[host_key];
    if (slot == nullptr) slot = std::make_shared<CircuitBreaker>(config);
    breaker = slot;
  }
  CircuitBreaker::Decision decision = breaker->Admit(now_micros);
  if (decision == CircuitBreaker::Decision::kFastFail) {
    stats_.fast_fails.fetch_add(1, std::memory_order_relaxed);
  } else if (decision == CircuitBreaker::Decision::kProbe) {
    stats_.half_open_probes.fetch_add(1, std::memory_order_relaxed);
  }
  return decision;
}

void CircuitBreakerRegistry::RecordSuccess(const std::string& host_key) {
  std::shared_ptr<CircuitBreaker> breaker = FindBreaker(host_key);
  if (breaker != nullptr && breaker->RecordSuccess()) {
    stats_.closes.fetch_add(1, std::memory_order_relaxed);
  }
}

void CircuitBreakerRegistry::RecordFailure(const std::string& host_key,
                                           int64_t now_micros) {
  std::shared_ptr<CircuitBreaker> breaker = FindBreaker(host_key);
  if (breaker != nullptr && breaker->RecordFailure(now_micros)) {
    stats_.opens.fetch_add(1, std::memory_order_relaxed);
  }
}

bool CircuitBreakerRegistry::OpenForHost(const std::string& host_key,
                                         int64_t now_micros) const {
  std::shared_ptr<CircuitBreaker> breaker = FindBreaker(host_key);
  return breaker != nullptr &&
         breaker->state(now_micros) == CircuitBreaker::State::kOpen;
}

std::shared_ptr<CircuitBreaker> CircuitBreakerRegistry::FindBreaker(
    const std::string& host_key) const {
  MutexLock lock(mu_);
  auto it = breakers_.find(host_key);
  return it == breakers_.end() ? nullptr : it->second;
}

void CircuitBreakerRegistry::Clear() {
  MutexLock lock(mu_);
  breakers_.clear();
}

}  // namespace core
}  // namespace davix
