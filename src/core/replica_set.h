#ifndef DAVIX_CORE_REPLICA_SET_H_
#define DAVIX_CORE_REPLICA_SET_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/uri.h"
#include "core/block_cache.h"
#include "core/http_client.h"
#include "core/request_params.h"
#include "http/header_map.h"
#include "metalink/metalink.h"

namespace davix {
namespace core {

/// ETag/Last-Modified of a response, as block-cache validation metadata.
/// Shared by every read path that publishes fetched spans into the cache.
BlockValidator ValidatorFrom(const http::HeaderMap& headers);

/// Failures that justify looking for another replica (§2.4): anything
/// suggesting *this* endpoint is unavailable, including 404 (in a
/// federated namespace the resource may simply live elsewhere).
bool ShouldFailover(const Status& status);

/// One replica location plus its health state (§2.4 replica management):
/// a latency EWMA, a consecutive-failure count, and a quarantine
/// deadline. The scheduler prefers low-latency healthy sources and stops
/// sending traffic to quarantined ones until their deadline passes; a
/// generation rejection (ETag disagreeing with the set's agreed
/// validator) quarantines the source for the life of the set.
///
/// Thread-safe: yes — health updates come concurrently from every chunk
/// fetch that used this source.
class ReplicaSource {
 public:
  ReplicaSource(Uri url, int priority) : url_(std::move(url)),
                                         priority_(priority) {}

  const Uri& url() const { return url_; }
  int priority() const { return priority_; }

  /// Feeds one successful exchange into the health state: resets the
  /// consecutive-failure count, lifts a timed quarantine, and folds
  /// `latency_micros` into the EWMA.
  void RecordSuccess(int64_t latency_micros);

  /// Feeds one failed exchange. After `failure_threshold` consecutive
  /// failures the source is quarantined until `now_micros +
  /// quarantine_micros`. Returns true when this call newly quarantined
  /// the source.
  bool RecordFailure(int64_t now_micros, int failure_threshold,
                     int64_t quarantine_micros);

  /// Permanent quarantine: the source served a different generation of
  /// the object than the set agreed on. Returns true when this call
  /// newly rejected it (false if it was already rejected).
  bool RejectGeneration();

  /// True while the source should not be scheduled (timed quarantine
  /// still running, or generation-rejected).
  bool Quarantined(int64_t now_micros) const;

  /// True when the source was generation-rejected (never reused, even
  /// as a last resort).
  bool generation_rejected() const;

  /// Smoothed request latency; 0 until the first success.
  double latency_ewma_micros() const;

  int consecutive_failures() const;
  uint64_t successes() const;
  uint64_t failures() const;

 private:
  const Uri url_;
  const int priority_;

  mutable Mutex mu_;
  double latency_ewma_micros_ GUARDED_BY(mu_) = 0;
  int consecutive_failures_ GUARDED_BY(mu_) = 0;
  int64_t quarantine_until_micros_ GUARDED_BY(mu_) = 0;
  bool generation_rejected_ GUARDED_BY(mu_) = false;
  uint64_t successes_ GUARDED_BY(mu_) = 0;
  uint64_t failures_ GUARDED_BY(mu_) = 0;
};

/// Point-in-time health view of one source, for benches and tests.
struct ReplicaSourceSnapshot {
  std::string url;
  double latency_ewma_micros = 0;
  int consecutive_failures = 0;
  bool quarantined = false;
  bool generation_rejected = false;
  uint64_t successes = 0;
  uint64_t failures = 0;
};

/// Shape of the striped multi-source scheduler; every knob follows the
/// repository's 0 = auto convention and defaults come from
/// RequestParams (multistream_* and replica_quarantine_*).
struct ReplicaSetConfig {
  /// Bytes per chunk range-GET. 0 = 1 MiB.
  uint64_t chunk_bytes = 0;
  /// Parallel chunk fetches ceiling (stripe width). 0 = 4.
  size_t max_streams = 0;
  /// Consecutive failures before a timed quarantine. 0 = 2.
  int quarantine_failures = 0;
  /// Timed-quarantine duration. 0 = 30 s.
  int64_t quarantine_micros = 0;
};

/// Sink of the streaming multi-source read: called serially, in offset
/// order, with contiguous spans (`offset` of each call is exactly the
/// end of the previous one). Returning an error aborts the stream.
using ReplicaSpanSink =
    std::function<Status(uint64_t offset, std::string_view data)>;

/// One attempt of a candidate walk (ReplicaSet::TryCandidates): perform
/// the operation against `source`, setting `*did_fetch` as soon as a
/// request actually goes on the wire — health feedback only covers real
/// exchanges.
using CandidateAttemptFn = std::function<Status(
    const std::shared_ptr<ReplicaSource>& source, bool* did_fetch)>;

/// The replica-aware multi-source engine behind §2.4: owns the replica
/// pointers of one resource (from its Metalink) plus their health
/// state, and schedules chunk range-GETs across the healthy sources on
/// the Context's dispatcher pool.
///
/// Striping: chunk i's candidate order is the health-ranked source list
/// rotated by `i % stripe_width` (stripe_width = min(max_streams,
/// healthy sources)), so concurrent streams pull from different
/// replicas — aggregating per-connection TCP windows on long fat paths
/// — while a single-stream read stays pinned to the best source and its
/// warm keep-alive connection. A failing chunk walks the remaining
/// candidates (next-best failover) before surfacing an error, so a read
/// succeeds as long as one agreeing replica is reachable.
///
/// Caching: when the Context has a block cache (and the request leaves
/// `use_block_cache` on), every chunk probes the cache before fetching
/// — warm chunks never touch the wire — and every fetched span is
/// published back under the *primary* URL key with the set's agreed
/// validator, so fail-over and striping share one block set.
///
/// Generation agreement: the first observed validator (seeded from
/// DavPosix::Open's Stat, the size-resolving HEAD, or the first fetched
/// chunk) becomes the set's agreed generation. A source whose response
/// ETag disagrees is generation-rejected: quarantined for the life of
/// the set, its bytes neither delivered nor published into the cache.
/// Agreement compares ETags when both sides have one and falls back to
/// the full validator otherwise, so replicas with skewed Last-Modified
/// stamps but equal ETags still pool.
///
/// Ownership: holds a Context* (must outlive the set) and its own
/// HttpClient; shared by DavFile and in-flight read-ahead fetches via
/// shared_ptr. Thread-safe: yes.
class ReplicaSet {
 public:
  /// Builds the set from an already-fetched Metalink. `primary` is
  /// prepended (priority 0) when the Metalink does not list it, so the
  /// original URL is always a source. Fails when no usable replica
  /// URL parses.
  static Result<std::shared_ptr<ReplicaSet>> Make(
      Context* context, const Uri& primary,
      const metalink::MetalinkFile& metalink, ReplicaSetConfig config);

  /// Fetches the resource's Metalink (via RequestParams::
  /// metalink_resolver or the origin "?metalink" convention) and builds
  /// the set; config knobs default from `params`.
  static Result<std::shared_ptr<ReplicaSet>> Resolve(
      Context* context, const Uri& resource, const RequestParams& params);

  /// Config with every 0 knob resolved from `params` / hard defaults.
  static ReplicaSetConfig ConfigFrom(const RequestParams& params);

  const Uri& primary() const { return primary_; }
  /// Whole-object md5 from the Metalink; empty when absent.
  const std::string& md5() const { return md5_; }
  /// Object size; 0 until known (Metalink or ResolveSize).
  uint64_t size() const;
  size_t source_count() const { return sources_.size(); }

  /// Object size from the Metalink, falling back to a HEAD walked over
  /// the ranked sources (which also seeds the agreed validator and the
  /// first latency sample). The resolved size is remembered.
  Result<uint64_t> ResolveSize(const RequestParams& params);

  /// Streams [offset, offset+length) through `sink` in offset order by
  /// striping chunk range-GETs across the healthy sources on the
  /// Context's dispatcher (see class comment). Out-of-order completed
  /// chunks are buffered; at most ~stripe_width chunks wait at once.
  Status Stream(uint64_t offset, uint64_t length,
                const RequestParams& params, const ReplicaSpanSink& sink);

  /// Sources ranked for scheduling: healthy before quarantined,
  /// lower-latency EWMA first (unprobed sources after probed ones, by
  /// Metalink priority then URL). Generation-rejected sources are
  /// excluded entirely.
  std::vector<std::shared_ptr<ReplicaSource>> RankedSources() const;

  /// Candidate try-order for stripe slot `index`: RankedSources()
  /// with its healthy prefix rotated by `index % stripe_width`.
  std::vector<std::shared_ptr<ReplicaSource>> CandidatesFor(
      size_t index, size_t stripe_width) const;

  /// The shared §2.4 failover policy: walks the candidates for stripe
  /// slot `index`, invoking `attempt` on each until one succeeds.
  /// Owns the bookkeeping — every retry counts a replica_failover,
  /// successes feed the latency EWMA, failures that reached the wire
  /// feed the failure streak (a failure before any wire traffic
  /// returns immediately: nobody to blame, retrying is pointless) —
  /// and continues past retryable errors and generation mismatches
  /// (kCorruption: the next source may agree) but stops on terminal
  /// ones. Returns the last error when every candidate failed. Used by
  /// the chunk scheduler and DavFile's vectored batch dispatch.
  Status TryCandidates(size_t index, size_t stripe_width,
                       const CandidateAttemptFn& attempt);

  /// Health feedback from external fetchers (DavFile's vectored batch
  /// dispatch routes its per-batch outcomes here).
  void RecordSuccess(const std::shared_ptr<ReplicaSource>& source,
                     int64_t latency_micros);
  void RecordFailure(const std::shared_ptr<ReplicaSource>& source);

  /// Seeds the agreed generation when none is set yet (DavPosix::Open
  /// feeds the validator its existence Stat observed). Empty
  /// validators are ignored.
  void SeedValidator(const BlockValidator& validator);

  /// Admits `validator` as agreeing with the set's generation: returns
  /// the validator to publish cached blocks with (the agreed one) on
  /// agreement, std::nullopt on disagreement — the source serving it is
  /// then generation-rejected and its bytes must be dropped. An unset
  /// agreed generation adopts the first non-empty validator seen.
  std::optional<BlockValidator> Admit(
      const std::shared_ptr<ReplicaSource>& source,
      const BlockValidator& validator);

  /// Admit() variant for fetchers that track the target by URL (the
  /// vectored batch dispatch): resolves the source by canonical URL; an
  /// unknown URL is validated against the agreed generation without
  /// quarantine side effects.
  std::optional<BlockValidator> AdmitUrl(const Uri& url,
                                         const BlockValidator& validator);

  /// Agreed generation; empty validator until seeded.
  BlockValidator agreed_validator() const;

  /// Per-source health snapshot (bench/test visibility).
  std::vector<ReplicaSourceSnapshot> Snapshot() const;

 private:
  ReplicaSet(Context* context, Uri primary, ReplicaSetConfig config);

  /// Looks up a source by canonical URL; null when unknown.
  std::shared_ptr<ReplicaSource> FindSource(const Uri& url) const;

  /// Fetches one chunk: cache probe, then the candidate walk with
  /// health feedback and generation admission. On success `*data`
  /// holds exactly `length` bytes.
  Status FetchChunk(size_t chunk_index, size_t stripe_width,
                    uint64_t chunk_offset, uint64_t chunk_length,
                    const RequestParams& params, const std::string& cache_key,
                    BlockCache* cache, std::string* data);

  /// Agreement predicate of Admit: true when `validator` matches the
  /// agreed generation (ETags compared when both sides carry one; an
  /// unset agreed generation or an empty validator agrees with
  /// everything). `AgreesLocked` requires `mu_` held.
  bool Agrees(const BlockValidator& validator) const EXCLUDES(mu_);
  bool AgreesLocked(const BlockValidator& validator) const REQUIRES(mu_);

  /// True when the cache's current generation for `cache_key` agrees
  /// with the set's — the gate a cache-probe hit must pass before its
  /// bytes are delivered. An unseeded set adopts the cached generation;
  /// a vanished registry entry (purge racing the probe) fails the gate.
  bool AdmitCachedGeneration(BlockCache* cache,
                             const std::string& cache_key);

  /// Walks the ranked sources with a HEAD until one answers 2xx,
  /// feeding every outcome into the health state and seeding the
  /// agreed validator from the winning response. Shared by
  /// EnsureSeeded and ResolveSize.
  Result<HttpClient::Exchange> HeadRankedSources(const RequestParams& params);

  /// Ensures the agreed validator is seeded, HEADing ranked sources if
  /// needed (best effort: an unreachable set leaves the first fetched
  /// chunk to seed instead).
  void EnsureSeeded(const RequestParams& params);

  Context* context_;
  HttpClient client_;
  const Uri primary_;
  const ReplicaSetConfig config_;
  std::string md5_;
  /// Immutable after construction; per-source state lives inside each
  /// ReplicaSource.
  std::vector<std::shared_ptr<ReplicaSource>> sources_;

  mutable Mutex mu_;
  BlockValidator agreed_ GUARDED_BY(mu_);
  bool agreed_set_ GUARDED_BY(mu_) = false;
  uint64_t size_ GUARDED_BY(mu_) = 0;
};

}  // namespace core
}  // namespace davix

#endif  // DAVIX_CORE_REPLICA_SET_H_
