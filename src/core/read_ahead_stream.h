#ifndef DAVIX_CORE_READ_AHEAD_STREAM_H_
#define DAVIX_CORE_READ_AHEAD_STREAM_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace davix {
namespace core {

/// Fetches `length` bytes at `offset` of the underlying object. Runs on
/// a dispatcher thread, concurrently with its sibling chunk fetches, so
/// it must be safe to call from several threads at once (DavFile's read
/// entry points are). The function object is copied into every scheduled
/// task: anything it needs alive (the DavFile, the request params) must
/// be owned by value or by shared_ptr, never by reference to state that
/// a Close can destroy while a fetch is still in flight.
using ReadAheadFetchFn =
    std::function<Result<std::string>(uint64_t offset, uint64_t length)>;

/// Synchronous local probe tried before a chunk fetch is scheduled on
/// the dispatcher: returns true and fills `*out` with exactly `length`
/// bytes when the span can be served without the network (the block
/// cache), false to fall through to the asynchronous fetch. Called on
/// the consumer thread with no stream lock held; must be cheap and must
/// never touch the network.
using ReadAheadProbeFn =
    std::function<bool(uint64_t offset, uint64_t length, std::string* out)>;

/// Shape of the asynchronous sliding window.
struct ReadAheadStreamConfig {
  /// Bytes fetched per asynchronous range-GET.
  uint64_t chunk_bytes = 256 * 1024;
  /// Chunks kept in flight ahead of the consumer (minimum 1). This is
  /// also the bound of the delivery queue: at most this many fetched-
  /// but-unconsumed chunks are buffered.
  size_t window_chunks = 4;
  /// Total object size; reads and the window are clamped to it.
  uint64_t file_size = 0;
  /// Optional cache probe consulted as the window tops up: a chunk the
  /// probe satisfies completes immediately — no dispatcher task, no
  /// range-GET — so warm windows re-read an object with zero wire
  /// traffic. Unset = every chunk is fetched.
  ReadAheadProbeFn probe;
};

/// Asynchronous sliding-window read-ahead for sequential reads — the
/// davix-side counterpart of the "sliding windows buffering algorithm"
/// §3 of the paper credits for XRootD's WAN advantage.
///
/// Up to `window_chunks` range-GETs are kept in flight ahead of the
/// consumer's position, each scheduled on the shared per-Context
/// dispatcher pool and drawing its own pooled session. Completed chunks
/// are delivered strictly in offset order through the bounded window
/// deque, so on a high-RTT path the next chunk's latency is hidden
/// behind consumption of the current one.
///
/// Error handling: the first failed chunk surfaces on the Read that
/// reaches it (delivery is in order, so that is the earliest-offset
/// error); the rest of the window is invalidated — in-flight fetches are
/// abandoned, unstarted ones are cancelled — and the next Read re-seeds
/// the window at the cursor. A chunk fetch only fails after the fetch
/// function exhausted its own resilience: when the DavFile carries a
/// resolved core::ReplicaSet (DavPosix::Open with a metalink resolver),
/// each chunk transparently re-dispatches to the next-best replica
/// mid-stream, so a dying source degrades throughput instead of
/// surfacing an error here.
///
/// Thread-safe: partially — Read/Invalidate require external
/// synchronisation (the DavPosix descriptor lock provides it); the
/// internal locking only covers chunk completion, which happens on
/// dispatcher threads.
class ReadAheadStream {
 public:
  /// `pool` must outlive the stream. `fetch` is copied into scheduled
  /// tasks and may outlive the stream itself (see ReadAheadFetchFn).
  ReadAheadStream(ReadAheadFetchFn fetch, ThreadPool* pool,
                  ReadAheadStreamConfig config);

  /// Abandons every outstanding fetch. Never blocks on the network: an
  /// in-flight fetch finishes on its dispatcher thread, publishes into
  /// state only it still owns, and is dropped.
  ~ReadAheadStream();

  ReadAheadStream(const ReadAheadStream&) = delete;
  ReadAheadStream& operator=(const ReadAheadStream&) = delete;

  /// Sequential read of up to `count` bytes at absolute offset
  /// `position` (empty string = EOF). A position outside what the window
  /// covers — any seek — invalidates and re-seeds the window; a forward
  /// position still inside the window just drops the skipped chunks.
  Result<std::string> Read(uint64_t position, size_t count);

  /// Cancels unstarted chunk fetches, abandons in-flight ones, and
  /// empties the window. The next Read re-seeds at its position. Called
  /// on LSeek so stale prefetches stop consuming the link immediately
  /// rather than when the next Read notices the cursor moved.
  void Invalidate();

  /// True when `position` lies inside the span the window currently
  /// covers — a Read there consumes scheduled chunks instead of
  /// re-seeding. Lets DavPosix::LSeek keep the prefetch alive for
  /// in-window forward seeks and invalidate only real jumps.
  bool Covers(uint64_t position) const {
    return !window_.empty() && position >= window_.front().offset &&
           position < window_end_;
  }

  /// Chunks currently scheduled or buffered (test/introspection hook;
  /// same external synchronisation as Read).
  size_t WindowSize() const { return window_.size(); }

 private:
  /// Completion slot shared between the stream and one scheduled fetch.
  /// After Invalidate the task is the only owner left; `abandoned` lets
  /// a not-yet-started task skip the network work entirely. `claimed`
  /// decides who executes the fetch: the pool task or — when the
  /// consumer reaches a chunk whose task has not started yet — the
  /// consumer itself, inline. That caller-participation fallback is
  /// what makes it safe to consume a stream from a dispatcher-pool
  /// thread whose siblings are all blocked the same way: the fetch can
  /// never be stuck behind the very threads waiting for it.
  struct ChunkState {
    Mutex mu;
    CondVar cv;
    bool done GUARDED_BY(mu) = false;
    std::atomic<bool> abandoned{false};
    std::atomic<bool> claimed{false};
    Result<std::string> data GUARDED_BY(mu){std::string()};
  };

  struct Chunk {
    uint64_t offset = 0;
    uint64_t length = 0;
    std::shared_ptr<ChunkState> state;
  };

  /// Schedules fetches until the window is full or EOF is covered.
  void TopUp();

  /// Blocks until `chunk`'s fetch completes and moves out its payload.
  /// The wait itself is untimed but bounded transitively: each fetch
  /// runs under the request's own armed deadline and stall watchdog
  /// (RequestParams::total_timeout_micros / min_throughput_bytes_per_
  /// sec), so a wedged or trickling chunk fails — and fails over —
  /// inside the fetch rather than wedging this consumer forever.
  Result<std::string> WaitForChunk(const Chunk& chunk);

  ReadAheadFetchFn fetch_;
  ThreadPool* pool_;
  ReadAheadStreamConfig config_;
  /// Next offset not yet covered by a scheduled chunk.
  uint64_t window_end_ = 0;
  std::deque<Chunk> window_;
};

}  // namespace core
}  // namespace davix

#endif  // DAVIX_CORE_READ_AHEAD_STREAM_H_
