#ifndef DAVIX_CORE_RESILIENCE_H_
#define DAVIX_CORE_RESILIENCE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/rng.h"
#include "core/deadline.h"

namespace davix {
namespace core {

/// Shape of the exponential-backoff retry pacing; defaults resolve from
/// RequestParams (retry_delay_micros is the base, retry_backoff_max_micros
/// the cap).
struct BackoffConfig {
  /// Delay scale of attempt 0; attempt n draws from an envelope of
  /// base * multiplier^n.
  int64_t base_delay_micros = 20'000;
  /// Ceiling of the jitter envelope, whatever the attempt number.
  int64_t max_delay_micros = 1'000'000;
  /// Envelope growth per attempt.
  double multiplier = 2.0;
};

/// Full-jitter exponential backoff: attempt n sleeps a uniform draw from
/// [0, min(max_delay, base * multiplier^n)]. Full jitter decorrelates
/// clients that fail together — the synchronized flat-delay retry storm
/// is exactly what it replaces (src/core/http_client.cc's old fixed
/// 20 ms sleep). All randomness comes from the repository's seeded Rng,
/// so a fixed seed reproduces the exact delay sequence under test.
///
/// Thread-safe: no — one Backoff belongs to one retry loop. Create one
/// per HttpClient::Execute call, not per client.
class Backoff {
 public:
  Backoff(BackoffConfig config, uint64_t seed);

  /// The jittered delay for 0-based retry `attempt`. Deterministic for a
  /// given (seed, call sequence); consumes one Rng draw.
  int64_t NextDelayMicros(int attempt);

  /// Sleeps NextDelayMicros(attempt), capped by the deadline's remaining
  /// budget. Returns the micros actually slept. The concurrency lint
  /// forbids bare SleepForMicros in core retry paths: this (and
  /// SleepBudgeted) is the sanctioned way for a retry to pause.
  int64_t SleepWithJitter(int attempt, const Deadline& deadline);

 private:
  BackoffConfig config_;
  Rng rng_;
};

/// Sleeps `delay_micros` capped by the deadline's remaining budget (no
/// jitter — for server-dictated pauses such as Retry-After). Returns the
/// micros actually slept.
int64_t SleepBudgeted(int64_t delay_micros, const Deadline& deadline);

/// The stall watchdog's time budget for moving `bytes` at no less than
/// `min_throughput_bytes_per_sec`, plus a slack floor so tiny transfers
/// on a loaded machine are not misread as stalls. Returns 0 (disabled)
/// when the rate is 0.
int64_t StallBudgetMicros(uint64_t bytes, uint64_t min_throughput_bytes_per_sec);

/// Shape of one per-host circuit breaker; defaults resolve from
/// RequestParams (breaker_failure_threshold, breaker_cooldown_micros).
struct CircuitBreakerConfig {
  /// Consecutive transport failures that trip the breaker open.
  /// <= 0 disables the breaker entirely (every Admit admits).
  int failure_threshold = 4;
  /// How long an open breaker fast-fails before letting one probe
  /// through (the half-open state).
  int64_t cooldown_micros = 2'000'000;
};

/// Per-host circuit breaker: closed → open after `failure_threshold`
/// consecutive transport failures; open fast-fails every acquire (no
/// connect attempt, no socket) until `cooldown_micros` elapse; then
/// half-open lets exactly one probe through — its success closes the
/// breaker, its failure re-arms the cooldown. Callers pass an explicit
/// `now_micros` so the state machine is deterministic under test.
///
/// Thread-safe: yes — one internal mutex guards the state machine.
class CircuitBreaker {
 public:
  /// Observable breaker state at a point in time.
  enum class State { kClosed, kOpen, kHalfOpen };
  /// What an acquire attempt should do.
  enum class Decision { kAdmit, kProbe, kFastFail };

  explicit CircuitBreaker(CircuitBreakerConfig config) : config_(config) {}

  /// Consulted before connecting. kAdmit = closed, go ahead. kProbe =
  /// half-open and this caller won the probe slot (proceed; its outcome
  /// decides the breaker's fate). kFastFail = open, do not touch the
  /// network. A probe that never reports an outcome goes stale after
  /// another cooldown and the slot is handed out again.
  Decision Admit(int64_t now_micros);

  /// One successful exchange: closes the breaker. Returns true when this
  /// call closed an open/half-open breaker.
  bool RecordSuccess();

  /// One transport failure: grows the streak, (re-)opens at the
  /// threshold. Returns true when this call newly opened a closed
  /// breaker (re-arming an already-open one returns false).
  bool RecordFailure(int64_t now_micros);

  State state(int64_t now_micros) const;

 private:
  const CircuitBreakerConfig config_;
  mutable Mutex mu_;
  int consecutive_failures_ GUARDED_BY(mu_) = 0;
  bool open_ GUARDED_BY(mu_) = false;
  int64_t opened_at_micros_ GUARDED_BY(mu_) = 0;
  bool probe_in_flight_ GUARDED_BY(mu_) = false;
  int64_t probe_started_micros_ GUARDED_BY(mu_) = 0;
};

/// Monotonic counters of the breaker registry, mirrored into IoCounters
/// by Context::SnapshotCounters.
struct CircuitBreakerStats {
  std::atomic<uint64_t> opens{0};             ///< closed → open transitions
  std::atomic<uint64_t> closes{0};            ///< open/half-open → closed
  std::atomic<uint64_t> fast_fails{0};        ///< acquires refused while open
  std::atomic<uint64_t> half_open_probes{0};  ///< probe slots handed out
};

/// The per-host breaker table living alongside SessionPool's host
/// buckets: one CircuitBreaker per "host:port" key, created lazily on
/// first consult with that request's config (later config changes for an
/// existing host are ignored — document-per-host, not per-request).
/// Outcome feedback (RecordSuccess/RecordFailure) is a no-op for hosts
/// that never went through Admit.
///
/// Thread-safe: yes — one internal mutex guards the table; per-breaker
/// state has its own lock.
class CircuitBreakerRegistry {
 public:
  /// Admission decision for `host_key`, creating the breaker on first
  /// use. A non-positive failure threshold bypasses the table entirely
  /// and admits. Counts fast-fails and probe handouts.
  CircuitBreaker::Decision Admit(const std::string& host_key,
                                 const CircuitBreakerConfig& config,
                                 int64_t now_micros);

  /// Outcome feedback; counts opens/closes.
  void RecordSuccess(const std::string& host_key);
  void RecordFailure(const std::string& host_key, int64_t now_micros);

  /// True when the host's breaker is open and not yet ready to probe —
  /// the state ReplicaSet ranks below quarantined-but-probing sources.
  bool OpenForHost(const std::string& host_key, int64_t now_micros) const;

  /// The host's breaker, if one exists (test/introspection hook).
  std::shared_ptr<CircuitBreaker> FindBreaker(
      const std::string& host_key) const;

  CircuitBreakerStats& stats() { return stats_; }

  /// Drops every breaker (counters untouched).
  void Clear();

 private:
  mutable Mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<CircuitBreaker>>
      breakers_ GUARDED_BY(mu_);
  CircuitBreakerStats stats_;
};

}  // namespace core
}  // namespace davix

#endif  // DAVIX_CORE_RESILIENCE_H_
