#include "core/dav_posix.h"

#include <algorithm>

#include "common/logging.h"
#include "core/http_client.h"
#include "core/replica_set.h"
#include "xml/xml.h"

namespace davix {
namespace core {

Result<int> DavPosix::Open(const std::string& url,
                           const RequestParams& params) {
  DAVIX_ASSIGN_OR_RETURN(DavFile file, DavFile::Make(context_, url));
  if (params.metalink_mode != MetalinkMode::kDisabled &&
      !params.metalink_resolver.empty()) {
    // Resolve the resource's replica set once, up front: every read
    // through this descriptor — sequential, windowed, vectored — then
    // fails over (and stripes) across the set's health-ranked sources
    // mid-read, without refetching the Metalink. Best effort: a
    // federation that cannot answer leaves the descriptor single-source
    // with the legacy resolve-on-failure behaviour.
    Status resolved = file.ResolveReplicaSet(params);
    if (!resolved.ok()) {
      DAVIX_LOG(kDebug) << "no replica set for " << url << ": "
                        << resolved.ToString();
    }
  }
  DAVIX_ASSIGN_OR_RETURN(FileInfo info, file.Stat(params));
  BlockValidator validator;
  validator.etag = info.etag;
  validator.mtime_epoch_seconds = info.mtime_epoch_seconds;
  if (params.use_block_cache && context_->block_cache().enabled() &&
      params.cache_revalidation != CacheRevalidatePolicy::kNever) {
    // The existence Stat doubles as cache revalidation (kOnOpen, and
    // the first checkpoint of kAlways): blocks cached from an older
    // generation of the object are dropped before the first read.
    context_->block_cache().NoteValidator(
        BlockCache::UrlKey(file.url()), validator);
  }
  if (std::shared_ptr<ReplicaSet> set = file.replica_set()) {
    // The generation Open observed is the generation this descriptor
    // reads: replicas that later serve a different ETag are quarantined
    // and their bytes dropped, deterministically anchored here.
    set->SeedValidator(validator);
  }
  auto open_file = std::make_shared<OpenFile>();
  open_file->file = std::make_shared<DavFile>(std::move(file));
  open_file->params = params;
  open_file->size = info.size;
  MutexLock lock(mu_);
  int fd = next_fd_++;
  open_files_[fd] = std::move(open_file);
  return fd;
}

Result<std::shared_ptr<DavPosix::OpenFile>> DavPosix::Lookup(int fd) const {
  MutexLock lock(mu_);
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) {
    return Status::InvalidArgument("bad file descriptor " +
                                   std::to_string(fd));
  }
  return it->second;
}

Result<std::string> DavPosix::Read(int fd, size_t count) {
  DAVIX_ASSIGN_OR_RETURN(std::shared_ptr<OpenFile> file, Lookup(fd));
  OpenFile* f = file.get();
  MutexLock lock(f->mu);
  if (f->cursor >= f->size || count == 0) return std::string();
  uint64_t want = std::min<uint64_t>(count, f->size - f->cursor);

  if (f->params.readahead_bytes == 0) {
    DAVIX_ASSIGN_OR_RETURN(
        std::string data, f->file->ReadPartial(f->cursor, want, f->params));
    f->cursor += data.size();
    return data;
  }
  if (f->params.readahead_window_chunks > 0) {
    return ReadWindowed(f, want);
  }
  return ReadBuffered(f, want);
}

Result<std::string> DavPosix::ReadBuffered(OpenFile* file, uint64_t want) {
  // Synchronous read-ahead: serve from the buffered window, refilling it
  // with one large read when the cursor leaves it. A read straddling the
  // buffer end serves the buffered prefix and fetches only the missing
  // suffix — already-buffered tail bytes are never refetched. The cursor
  // only advances on success.
  uint64_t pos = file->cursor;
  uint64_t buf_end = file->buffer_offset + file->buffer.size();
  std::string out;
  if (pos >= file->buffer_offset && pos < buf_end) {
    uint64_t prefix = std::min<uint64_t>(want, buf_end - pos);
    out.assign(file->buffer, pos - file->buffer_offset, prefix);
    pos += prefix;
    want -= prefix;
  }
  if (want > 0) {
    uint64_t fetch = std::max<uint64_t>(want, file->params.readahead_bytes);
    fetch = std::min(fetch, file->size - pos);
    DAVIX_ASSIGN_OR_RETURN(
        std::string data, file->file->ReadPartial(pos, fetch, file->params));
    file->buffer_offset = pos;
    file->buffer = std::move(data);
    uint64_t take = std::min<uint64_t>(want, file->buffer.size());
    out.append(file->buffer, 0, take);
    pos += take;
  }
  file->cursor = pos;
  return out;
}

Result<std::string> DavPosix::ReadWindowed(OpenFile* file, uint64_t want) {
  if (!file->stream) {
    ReadAheadStreamConfig config;
    config.chunk_bytes = file->params.readahead_bytes;
    config.window_chunks = file->params.readahead_window_chunks;
    config.file_size = file->size;
    // The fetch closure owns everything it touches: a Close (or even
    // DavPosix destruction) while chunks are in flight stays safe.
    std::shared_ptr<DavFile> dav = file->file;
    RequestParams params = file->params;
    if (params.use_block_cache && context_->block_cache().enabled() &&
        params.cache_revalidation != CacheRevalidatePolicy::kAlways) {
      // Warm chunks come straight from the block cache instead of
      // being scheduled as range-GETs; cold chunks are published into
      // it by the fetch's ReadPartial, so the next pass over the file
      // streams from memory. kAlways keeps the probe off: its contract
      // is a HEAD before any cache-served read, and only the fetch
      // path (ReadPartialVecAt) performs that revalidation.
      BlockCache* cache = &context_->block_cache();
      std::string key = BlockCache::UrlKey(dav->url());
      config.probe = [cache, key](uint64_t offset, uint64_t length,
                                  std::string* out) {
        return cache->TryReadFull(key, offset, length, out);
      };
    }
    // Each in-flight chunk arms its own deadline from the (unarmed)
    // copied params inside ReadPartial, so total_timeout_micros and
    // min_throughput_bytes_per_sec bound every chunk independently: a
    // wedged or trickling chunk times out (or stall-aborts) and fails
    // over on its own, instead of stalling the whole window behind it.
    file->stream = std::make_unique<ReadAheadStream>(
        [dav, params](uint64_t offset, uint64_t length) {
          return dav->ReadPartial(offset, length, params);
        },
        &context_->dispatcher(), config);
  }
  Result<std::string> out = file->stream->Read(file->cursor, want);
  if (out.ok()) file->cursor += out->size();
  return out;
}

Result<std::string> DavPosix::PRead(int fd, uint64_t offset, size_t count) {
  DAVIX_ASSIGN_OR_RETURN(std::shared_ptr<OpenFile> file, Lookup(fd));
  if (count == 0) return std::string();
  uint64_t size = file->size;
  if (offset >= size) return std::string();
  uint64_t want = std::min<uint64_t>(count, size - offset);
  return file->file->ReadPartial(offset, want, file->params);
}

Result<std::vector<std::string>> DavPosix::PReadVec(
    int fd, const std::vector<http::ByteRange>& ranges) {
  DAVIX_ASSIGN_OR_RETURN(std::shared_ptr<OpenFile> file, Lookup(fd));
  // Clamp ranges to EOF like preadv does.
  std::vector<http::ByteRange> clamped = ranges;
  for (http::ByteRange& r : clamped) {
    if (r.offset >= file->size) {
      r.length = 0;
    } else {
      r.length = std::min<uint64_t>(r.length, file->size - r.offset);
    }
  }
  return file->file->ReadPartialVec(clamped, file->params);
}

Result<uint64_t> DavPosix::LSeek(int fd, int64_t offset, int whence) {
  DAVIX_ASSIGN_OR_RETURN(std::shared_ptr<OpenFile> file, Lookup(fd));
  OpenFile* f = file.get();
  MutexLock lock(f->mu);
  int64_t base;
  switch (whence) {
    case 0:  // SEEK_SET
      base = 0;
      break;
    case 1:  // SEEK_CUR
      base = static_cast<int64_t>(f->cursor);
      break;
    case 2:  // SEEK_END
      base = static_cast<int64_t>(f->size);
      break;
    default:
      return Status::InvalidArgument("bad whence " + std::to_string(whence));
  }
  int64_t target = base + offset;
  if (target < 0) {
    return Status::InvalidArgument("seek before start of file");
  }
  if (f->stream && static_cast<uint64_t>(target) != f->cursor &&
      !f->stream->Covers(static_cast<uint64_t>(target))) {
    // Out-of-window seek: eagerly cancel the prefetch, since the
    // repositioned cursor makes every in-flight chunk stale and
    // abandoning them now stops them from competing with the post-seek
    // reads for the link. The next Read re-seeds at the new cursor. A
    // target still inside the window keeps the prefetch alive — the
    // next Read just drops the skipped chunks.
    f->stream->Invalidate();
  }
  f->cursor = static_cast<uint64_t>(target);
  return f->cursor;
}

Status DavPosix::Close(int fd) {
  MutexLock lock(mu_);
  if (open_files_.erase(fd) == 0) {
    return Status::InvalidArgument("bad file descriptor " +
                                   std::to_string(fd));
  }
  return Status::OK();
}

Result<FileInfo> DavPosix::Stat(const std::string& url,
                                const RequestParams& params) {
  DAVIX_ASSIGN_OR_RETURN(DavFile file, DavFile::Make(context_, url));
  return file.Stat(params);
}

Status DavPosix::Unlink(const std::string& url, const RequestParams& params) {
  DAVIX_ASSIGN_OR_RETURN(DavFile file, DavFile::Make(context_, url));
  return file.Delete(params);
}

Status DavPosix::MkDir(const std::string& url, const RequestParams& params) {
  DAVIX_ASSIGN_OR_RETURN(Uri uri, Uri::Parse(url));
  HttpClient client(context_);
  DAVIX_ASSIGN_OR_RETURN(
      HttpClient::Exchange exchange,
      client.Execute(uri, http::Method::kMkcol, params));
  return HttpStatusToStatus(exchange.response.status_code, "MKCOL " + url);
}

Status DavPosix::Rename(const std::string& url,
                        const std::string& destination_path,
                        const RequestParams& params) {
  DAVIX_ASSIGN_OR_RETURN(Uri uri, Uri::Parse(url));
  HttpClient client(context_);
  http::HeaderMap headers;
  headers.Set("Destination", destination_path);
  DAVIX_ASSIGN_OR_RETURN(
      HttpClient::Exchange exchange,
      client.Execute(uri, http::Method::kMove, params, std::string(),
                     &headers));
  return HttpStatusToStatus(exchange.response.status_code, "MOVE " + url);
}

Result<std::vector<std::string>> DavPosix::ListDir(
    const std::string& url, const RequestParams& params) {
  DAVIX_ASSIGN_OR_RETURN(Uri uri, Uri::Parse(url));
  HttpClient client(context_);
  http::HeaderMap headers;
  headers.Set("Depth", "1");
  DAVIX_ASSIGN_OR_RETURN(
      HttpClient::Exchange exchange,
      client.Execute(uri, http::Method::kPropfind, params, std::string(),
                     &headers));
  DAVIX_RETURN_IF_ERROR(HttpStatusToStatus(exchange.response.status_code,
                                           "PROPFIND " + url));
  DAVIX_ASSIGN_OR_RETURN(auto root, xml::ParseXml(exchange.response.body));

  // The first <response> is the collection itself; children follow.
  std::vector<std::string> names;
  std::vector<const xml::XmlNode*> responses = root->Children("response");
  std::string base_path = uri.path();
  if (base_path.size() > 1 && base_path.back() == '/') base_path.pop_back();
  for (const xml::XmlNode* response : responses) {
    std::string href = response->ChildText("href");
    Result<std::string> decoded = UrlDecode(href);
    std::string path = decoded.ok() ? *decoded : href;
    while (path.size() > 1 && path.back() == '/') path.pop_back();
    if (path == base_path || path.empty()) continue;
    size_t slash = path.rfind('/');
    names.push_back(slash == std::string::npos ? path
                                               : path.substr(slash + 1));
  }
  return names;
}

size_t DavPosix::OpenCount() const {
  MutexLock lock(mu_);
  return open_files_.size();
}

}  // namespace core
}  // namespace davix
