#ifndef DAVIX_CORE_REQUEST_PARAMS_H_
#define DAVIX_CORE_REQUEST_PARAMS_H_

#include <cstdint>
#include <string>

#include "core/deadline.h"

namespace davix {
namespace core {

/// How davix exploits Metalink replica information (§2.4 of the paper).
enum class MetalinkMode {
  /// Never consult Metalink: a dead server is an I/O error.
  kDisabled,
  /// "Fail-over" (davix's default): on failure, fetch the Metalink for
  /// the resource and walk its replicas one by one until a read succeeds.
  kFailover,
  /// "Multi-stream": fetch the Metalink up front and download chunks of
  /// the resource from several replicas in parallel.
  kMultiStream,
};

/// Which wire transport carries an exchange — the §2.2 trade-off made
/// selectable per request.
enum class TransportKind {
  /// Pooled HTTP/1.1 keep-alive over the SessionPool: one socket per
  /// in-flight exchange, recycled across requests (davix's choice, the
  /// default, wire-compatible with stock HTTP infrastructure).
  kPooled,
  /// Framed multiplexing (the SPDY-style alternative §2.2 rejects):
  /// many concurrent exchanges interleaved as streams over a small,
  /// bounded set of connections per host (core::MuxTransport). Requires
  /// a mux-speaking server (muxhttp::MuxServer); deadline, retry,
  /// Retry-After and circuit-breaker semantics are identical to pooled.
  kMux,
};

/// Revalidation policy of the per-Context block cache: when a read path
/// spends a wire round trip confirming that cached blocks still match
/// the remote object before serving them.
enum class CacheRevalidatePolicy {
  /// Trust cached blocks unconditionally. Fills still invalidate on
  /// validator mismatch, so the cache converges on the newest observed
  /// generation — it just never pays a round trip purely to check.
  kNever,
  /// Default: DavPosix::Open's existence Stat doubles as a revalidation
  /// — its ETag/Last-Modified are pushed into the cache, dropping stale
  /// blocks before the descriptor's first read. Costs nothing (the Stat
  /// happens anyway); reads through a long-lived descriptor do not
  /// revalidate again.
  kOnOpen,
  /// Every vectored/partial read that could be served from the cache
  /// first issues a HEAD and invalidates on mismatch. Strongest
  /// freshness, one extra round trip per read that has cached blocks.
  kAlways,
};

/// Per-request tuning knobs, in the spirit of davix's RequestParams.
/// Everything has a sensible default; benchmarks override selectively.
///
/// Ownership / thread-safety: a plain value object, copied freely into
/// requests and background fetch closures. Not synchronised — share by
/// copy, not by reference, when handing to concurrent operations.
/// Knob conventions: `0` on a size/count knob means "auto" where an
/// adaptive default exists (see the field comments) and "disabled" on
/// feature gates such as `readahead_bytes`.
struct RequestParams {
  // --- timeouts & robustness -------------------------------------------
  /// TCP connect timeout.
  int64_t connect_timeout_micros = 15'000'000;
  /// Per-exchange read timeout (first byte to last byte of a response).
  int64_t operation_timeout_micros = 120'000'000;
  /// Follow 3xx redirects automatically. When disabled, the redirect
  /// response itself is returned to the caller.
  bool follow_redirects = true;
  /// Maximum redirects followed per request.
  int max_redirects = 8;
  /// Retries on retryable transport errors (fresh connection each time).
  int max_retries = 2;
  /// Base of the full-jitter exponential backoff between retries: retry
  /// n sleeps a uniform draw from [0, min(cap, base * 2^n)] (see
  /// core::Backoff and docs/RESILIENCE.md).
  int64_t retry_delay_micros = 20'000;

  // --- end-to-end resilience (docs/RESILIENCE.md) ----------------------
  /// Total wall-clock budget for one logical operation, spanning every
  /// connect, write, read, retry, redirect and replica fail-over it
  /// makes. Entry points arm `deadline` from this once; further layers
  /// only narrow it. 0 (default) = no end-to-end budget (per-step
  /// connect/operation timeouts still apply).
  int64_t total_timeout_micros = 0;
  /// The armed monotonic deadline carried through the layers. Normally
  /// left unarmed by callers — ArmDeadline() sets it from
  /// `total_timeout_micros` — but a caller holding one budget across
  /// several operations may arm it directly.
  Deadline deadline;
  /// Ceiling of one jittered retry sleep. 0 = default (1 s).
  int64_t retry_backoff_max_micros = 0;
  /// Seed of the retry-jitter Rng, for deterministic delays under test.
  /// 0 (default) = derive a per-call seed (decorrelated across requests).
  uint64_t retry_jitter_seed = 0;
  /// Longest server-sent Retry-After honored on 503/429 (also capped by
  /// the remaining deadline); longer asks return the response to the
  /// caller instead of sleeping. 0 = default (30 s).
  int64_t retry_after_max_micros = 0;
  /// Consecutive transport failures that open a host's circuit breaker
  /// (core::CircuitBreaker, consulted by SessionPool::Acquire; open
  /// hosts fast-fail without a connect attempt until a cooldown probe
  /// succeeds). 0 = default (4); < 0 disables the breaker.
  int breaker_failure_threshold = 0;
  /// Open → half-open probe delay of the circuit breaker. 0 = default
  /// (2 s).
  int64_t breaker_cooldown_micros = 0;
  /// Minimum acceptable throughput for sized chunk/batch reads (the
  /// multi-source chunk scheduler and the vectored batch dispatch): a
  /// fetch is given a deadline of bytes/rate plus slack, so a trickling
  /// server is aborted (counted as a stall_abort) and the read fails
  /// over instead of wedging. 0 (default) = no stall watchdog.
  uint64_t min_throughput_bytes_per_sec = 0;

  // --- §2.2: session pool ----------------------------------------------
  /// Reuse pooled keep-alive connections. Disabling reproduces the
  /// HTTP/1.0 one-connection-per-request behaviour the paper shows to be
  /// crippled by TCP slow start.
  bool keep_alive = true;

  // --- §2.2: transport seam --------------------------------------------
  /// Which transport carries this request's exchanges. kPooled (default)
  /// is unchanged HTTP/1.1 over the session pool; kMux multiplexes
  /// exchanges as framed streams over the Context's shared MuxTransport.
  /// Every hot path (vectored batches, read-ahead, replica striping)
  /// funnels through HttpClient::Execute, so flipping this knob moves
  /// them all.
  TransportKind transport = TransportKind::kPooled;
  /// kMux: framed connections kept per host before new exchanges wait
  /// for a stream slot instead of connecting. 0 = default (2).
  size_t mux_max_connections_per_host = 0;
  /// kMux: concurrent streams multiplexed on one connection. 0 =
  /// default (64).
  size_t mux_max_streams_per_connection = 0;

  // --- §2.3: vectored I/O ----------------------------------------------
  /// Maximum ranges packed into one multi-range request; larger vectors
  /// are split into several wire queries.
  size_t max_ranges_per_request = 64;
  /// Adjacent requested ranges closer than this are coalesced into one
  /// wire range (data-sieving: read the gap, discard it).
  uint64_t vector_gap_bytes = 4096;
  /// Multi-range batches dispatched concurrently, each on its own pooled
  /// session (the parallel vectored dispatcher). 1 restores the serial
  /// one-connection behaviour; 0 = auto, bounded by the context pool's
  /// SessionPoolConfig::max_idle_per_host so the connection burst can be
  /// parked and recycled afterwards instead of being torn down.
  size_t max_parallel_range_requests = 0;
  /// Multi-stream chunking for vectored reads (the §2.4 multi-stream idea
  /// applied to the §2.3 vector path): when > 0, coalesced wire ranges
  /// larger than this are re-split at user-range boundaries and batches
  /// are capped at roughly this many bytes, so one large contiguous read
  /// fans out across parallel sessions instead of being throughput-bound
  /// by a single connection's congestion window. 0 (default) keeps the
  /// classic one-wire-range-per-contiguous-run behaviour.
  uint64_t vector_parallel_chunk_bytes = 0;

  // --- §2.4: metalink --------------------------------------------------
  MetalinkMode metalink_mode = MetalinkMode::kFailover;
  /// Base URL of the federation / redirection service that serves
  /// Metalink documents (DynaFed-like). When empty, the original host is
  /// asked for the Metalink itself (davix's "?metalink" convention).
  std::string metalink_resolver;
  /// Multi-stream: bytes per chunk fetched from one replica.
  uint64_t multistream_chunk_bytes = 1 << 20;
  /// Multi-stream: parallel streams ceiling.
  size_t multistream_max_streams = 4;
  /// Replica health (core::ReplicaSet): consecutive failures before a
  /// source is quarantined. 0 = default (2).
  int replica_quarantine_failures = 0;
  /// Replica health: how long a timed quarantine lasts; a source whose
  /// ETag disagrees with the set's agreed generation is quarantined for
  /// the life of the set instead. 0 = default (30 s).
  int64_t replica_quarantine_micros = 0;

  // --- block cache -------------------------------------------------------
  /// Consult and fill the per-Context block cache (when the Context was
  /// built with a non-zero cache capacity). Disabling bypasses the cache
  /// for this request only: nothing is served from it and nothing is
  /// inserted, so the wire behaviour is bit-identical to a cache-less
  /// Context.
  bool use_block_cache = true;
  /// When to spend a round trip double-checking that cached blocks still
  /// describe the live object (see CacheRevalidatePolicy). Independent
  /// of this policy, every network fill compares the response's
  /// ETag/Last-Modified against the cached generation and drops stale
  /// blocks on mismatch.
  CacheRevalidatePolicy cache_revalidation = CacheRevalidatePolicy::kOnOpen;

  // --- authentication ----------------------------------------------------
  /// HTTP Basic credentials sent with every request when `username` is
  /// non-empty (the grid deployments behind davix use X.509; Basic is
  /// this repository's stand-in).
  std::string username;
  std::string password;

  // --- misc --------------------------------------------------------------
  /// Sequential read-ahead for DavPosix::Read (0 = none). Kept off by
  /// default: the paper's davix relies on vectored reads instead of the
  /// sliding-window buffering XRootD uses; turning this on is the E7
  /// ablation. With `readahead_window_chunks` == 0 this is one
  /// synchronous buffer of `readahead_bytes`; otherwise it is the chunk
  /// size of the asynchronous sliding window.
  uint64_t readahead_bytes = 0;
  /// Asynchronous sliding-window depth for DavPosix::Read: up to this
  /// many `readahead_bytes`-sized range-GETs are kept in flight ahead of
  /// the consumer, each on its own pooled session, dispatched on the
  /// per-Context pool — the XRootD-style window that hides per-chunk
  /// round trips on high-RTT paths. 0 (default) keeps the synchronous
  /// single-buffer behaviour. Ignored while `readahead_bytes` == 0.
  size_t readahead_window_chunks = 0;
  std::string user_agent = "libdavix-repro/1.0";

  /// Arms `deadline` from `total_timeout_micros` unless already armed.
  /// Operation entry points (HttpClient::Execute, DavFile::
  /// ReadPartialVec, ReplicaSet::Stream, DavFile::WithFailover) call
  /// this on their private copy so one budget spans the whole walk.
  void ArmDeadline() {
    if (!deadline.armed() && total_timeout_micros > 0) {
      deadline = Deadline::After(total_timeout_micros);
    }
  }
};

}  // namespace core
}  // namespace davix

#endif  // DAVIX_CORE_REQUEST_PARAMS_H_
