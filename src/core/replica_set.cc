#include "core/replica_set.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/metalink_engine.h"
#include "core/resilience.h"
#include "http/parser.h"
#include "http/range.h"

namespace davix {
namespace core {

namespace {

/// EWMA smoothing factor for per-source latency; high enough that a
/// source going slow mid-transfer loses its preferred rank within a few
/// chunks.
constexpr double kLatencyEwmaAlpha = 0.3;

constexpr uint64_t kDefaultChunkBytes = 1 << 20;
constexpr size_t kDefaultMaxStreams = 4;
constexpr int kDefaultQuarantineFailures = 2;
constexpr int64_t kDefaultQuarantineMicros = 30'000'000;

}  // namespace

BlockValidator ValidatorFrom(const http::HeaderMap& headers) {
  BlockValidator v;
  v.etag = headers.Get("ETag").value_or("");
  if (std::optional<std::string> lm = headers.Get("Last-Modified")) {
    Result<int64_t> mtime = http::ParseHttpDate(*lm);
    if (mtime.ok()) v.mtime_epoch_seconds = *mtime;
  }
  return v;
}

bool ShouldFailover(const Status& status) {
  switch (status.code()) {
    case StatusCode::kConnectionFailed:
    case StatusCode::kConnectionReset:
    case StatusCode::kTimeout:
    case StatusCode::kRemoteError:
    case StatusCode::kNotFound:
    case StatusCode::kProtocolError:
      return true;
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// ReplicaSource
// ---------------------------------------------------------------------------

void ReplicaSource::RecordSuccess(int64_t latency_micros) {
  MutexLock lock(mu_);
  consecutive_failures_ = 0;
  quarantine_until_micros_ = 0;
  ++successes_;
  double sample = static_cast<double>(latency_micros);
  latency_ewma_micros_ =
      latency_ewma_micros_ == 0
          ? sample
          : kLatencyEwmaAlpha * sample +
                (1 - kLatencyEwmaAlpha) * latency_ewma_micros_;
}

bool ReplicaSource::RecordFailure(int64_t now_micros, int failure_threshold,
                                  int64_t quarantine_micros) {
  MutexLock lock(mu_);
  ++failures_;
  ++consecutive_failures_;
  if (generation_rejected_) return false;
  bool was_quarantined = quarantine_until_micros_ > now_micros;
  if (consecutive_failures_ >= failure_threshold) {
    quarantine_until_micros_ = now_micros + quarantine_micros;
    return !was_quarantined;
  }
  return false;
}

bool ReplicaSource::RejectGeneration() {
  MutexLock lock(mu_);
  if (generation_rejected_) return false;
  generation_rejected_ = true;
  return true;
}

bool ReplicaSource::Quarantined(int64_t now_micros) const {
  MutexLock lock(mu_);
  return generation_rejected_ || quarantine_until_micros_ > now_micros;
}

bool ReplicaSource::generation_rejected() const {
  MutexLock lock(mu_);
  return generation_rejected_;
}

double ReplicaSource::latency_ewma_micros() const {
  MutexLock lock(mu_);
  return latency_ewma_micros_;
}

int ReplicaSource::consecutive_failures() const {
  MutexLock lock(mu_);
  return consecutive_failures_;
}

uint64_t ReplicaSource::successes() const {
  MutexLock lock(mu_);
  return successes_;
}

uint64_t ReplicaSource::failures() const {
  MutexLock lock(mu_);
  return failures_;
}

// ---------------------------------------------------------------------------
// ReplicaSet
// ---------------------------------------------------------------------------

ReplicaSet::ReplicaSet(Context* context, Uri primary, ReplicaSetConfig config)
    : context_(context),
      client_(context),
      primary_(std::move(primary)),
      config_(config) {}

ReplicaSetConfig ReplicaSet::ConfigFrom(const RequestParams& params) {
  ReplicaSetConfig config;
  config.chunk_bytes = params.multistream_chunk_bytes == 0
                           ? kDefaultChunkBytes
                           : params.multistream_chunk_bytes;
  config.max_streams = params.multistream_max_streams == 0
                           ? kDefaultMaxStreams
                           : params.multistream_max_streams;
  config.quarantine_failures = params.replica_quarantine_failures <= 0
                                   ? kDefaultQuarantineFailures
                                   : params.replica_quarantine_failures;
  config.quarantine_micros = params.replica_quarantine_micros <= 0
                                 ? kDefaultQuarantineMicros
                                 : params.replica_quarantine_micros;
  return config;
}

Result<std::shared_ptr<ReplicaSet>> ReplicaSet::Make(
    Context* context, const Uri& primary,
    const metalink::MetalinkFile& metalink, ReplicaSetConfig config) {
  if (config.chunk_bytes == 0) config.chunk_bytes = kDefaultChunkBytes;
  if (config.max_streams == 0) config.max_streams = kDefaultMaxStreams;
  if (config.quarantine_failures <= 0) {
    config.quarantine_failures = kDefaultQuarantineFailures;
  }
  if (config.quarantine_micros <= 0) {
    config.quarantine_micros = kDefaultQuarantineMicros;
  }

  auto set = std::shared_ptr<ReplicaSet>(
      new ReplicaSet(context, primary, config));
  set->size_ = metalink.size;
  set->md5_ = metalink.md5;

  std::set<std::string> seen;
  for (const metalink::Replica& replica : metalink.SortedReplicas()) {
    Result<Uri> uri = Uri::Parse(replica.url);
    if (!uri.ok()) {
      DAVIX_LOG(kWarn) << "skipping unparseable replica URL " << replica.url;
      continue;
    }
    if (!seen.insert(BlockCache::UrlKey(*uri)).second) continue;
    set->sources_.push_back(std::make_shared<ReplicaSource>(
        std::move(*uri), replica.priority));
  }
  if (seen.insert(BlockCache::UrlKey(primary)).second) {
    // The original URL the caller opened is always a source, preferred
    // over the Metalink entries (priority 0 < RFC 5854's minimum 1).
    set->sources_.insert(set->sources_.begin(),
                         std::make_shared<ReplicaSource>(primary, 0));
  }
  if (set->sources_.empty()) {
    return Status::AllReplicasFailed("metalink for " + primary.ToString() +
                                     " lists no usable replicas");
  }
  return set;
}

Result<std::shared_ptr<ReplicaSet>> ReplicaSet::Resolve(
    Context* context, const Uri& resource, const RequestParams& params) {
  HttpClient client(context);
  MetalinkEngine engine(&client);
  DAVIX_ASSIGN_OR_RETURN(metalink::MetalinkFile file,
                         engine.Fetch(resource, params));
  return Make(context, resource, file, ConfigFrom(params));
}

uint64_t ReplicaSet::size() const {
  MutexLock lock(mu_);
  return size_;
}

std::shared_ptr<ReplicaSource> ReplicaSet::FindSource(const Uri& url) const {
  std::string key = BlockCache::UrlKey(url);
  for (const std::shared_ptr<ReplicaSource>& source : sources_) {
    if (BlockCache::UrlKey(source->url()) == key) return source;
  }
  return nullptr;
}

std::vector<std::shared_ptr<ReplicaSource>> ReplicaSet::RankedSources()
    const {
  int64_t now = MonotonicMicros();
  // Healthy before quarantined before breaker-open; probed sources by
  // latency EWMA; unprobed ones after, by Metalink priority then URL
  // (deterministic ties). A host whose circuit breaker is open (still
  // inside its cooldown, every acquire fast-fails) ranks below a
  // quarantined-but-probing source: the latter may answer, the former
  // cannot. The key is snapshotted once per source BEFORE sorting:
  // health state mutates concurrently (dispatcher workers record
  // outcomes mid-sort), and a comparator re-reading live state could
  // violate strict weak ordering — undefined behaviour in stable_sort.
  const CircuitBreakerRegistry& breakers = context_->pool().breakers();
  struct Decorated {
    std::tuple<int, int, double, int, std::string> key;
    std::shared_ptr<ReplicaSource> source;
  };
  std::vector<Decorated> decorated;
  decorated.reserve(sources_.size());
  for (const std::shared_ptr<ReplicaSource>& source : sources_) {
    if (source->generation_rejected()) continue;
    double ewma = source->latency_ewma_micros();
    int health = breakers.OpenForHost(source->url().HostPortKey(), now) ? 2
                 : source->Quarantined(now)                             ? 1
                                                                        : 0;
    decorated.push_back(
        {std::make_tuple(health, ewma == 0 ? 1 : 0, ewma, source->priority(),
                         source->url().ToString()),
         source});
  }
  std::stable_sort(decorated.begin(), decorated.end(),
                   [](const Decorated& a, const Decorated& b) {
                     return a.key < b.key;
                   });
  std::vector<std::shared_ptr<ReplicaSource>> ranked;
  ranked.reserve(decorated.size());
  for (Decorated& d : decorated) ranked.push_back(std::move(d.source));
  return ranked;
}

std::vector<std::shared_ptr<ReplicaSource>> ReplicaSet::CandidatesFor(
    size_t index, size_t stripe_width) const {
  std::vector<std::shared_ptr<ReplicaSource>> candidates = RankedSources();
  int64_t now = MonotonicMicros();
  const CircuitBreakerRegistry& breakers = context_->pool().breakers();
  size_t healthy = 0;
  while (healthy < candidates.size() &&
         !candidates[healthy]->Quarantined(now) &&
         !breakers.OpenForHost(candidates[healthy]->url().HostPortKey(),
                               now)) {
    ++healthy;
  }
  // Stripe rotation: concurrent slots start on different healthy
  // sources, so parallel chunk fetches aggregate per-connection TCP
  // windows instead of convoying on the single best replica. A stripe
  // width of 1 (single stream) keeps every chunk on the ranked-best
  // source and its warm keep-alive connection.
  size_t width = std::min(stripe_width == 0 ? 1 : stripe_width,
                          healthy == 0 ? 1 : healthy);
  if (healthy > 1 && width > 1) {
    std::rotate(candidates.begin(), candidates.begin() + (index % width),
                candidates.begin() + healthy);
  }
  return candidates;
}

void ReplicaSet::RecordSuccess(const std::shared_ptr<ReplicaSource>& source,
                               int64_t latency_micros) {
  source->RecordSuccess(latency_micros);
}

void ReplicaSet::RecordFailure(const std::shared_ptr<ReplicaSource>& source) {
  if (source->RecordFailure(MonotonicMicros(), config_.quarantine_failures,
                            config_.quarantine_micros)) {
    context_->stats().replica_quarantines.fetch_add(
        1, std::memory_order_relaxed);
  }
}

Status ReplicaSet::TryCandidates(size_t index, size_t stripe_width,
                                 const CandidateAttemptFn& attempt) {
  Status last = Status::AllReplicasFailed("replica set has no usable source");
  bool first = true;
  for (const std::shared_ptr<ReplicaSource>& source :
       CandidatesFor(index, stripe_width)) {
    if (!first) {
      context_->stats().replica_failovers.fetch_add(1,
                                                    std::memory_order_relaxed);
      DAVIX_LOG(kDebug) << "failing over to replica "
                        << source->url().ToString();
    }
    first = false;
    int64_t start = MonotonicMicros();
    bool did_fetch = false;
    Status status = attempt(source, &did_fetch);
    if (status.ok()) {
      if (did_fetch) RecordSuccess(source, MonotonicMicros() - start);
      return status;
    }
    if (!did_fetch) return status;  // local failure: nobody to blame
    RecordFailure(source);
    if (!ShouldFailover(status) &&
        status.code() != StatusCode::kCorruption) {
      return status;
    }
    last = std::move(status);
  }
  return last;
}

void ReplicaSet::SeedValidator(const BlockValidator& validator) {
  if (validator.empty()) return;
  MutexLock lock(mu_);
  if (agreed_set_) return;
  agreed_ = validator;
  agreed_set_ = true;
}

bool ReplicaSet::AgreesLocked(const BlockValidator& validator) const {
  // A response with no validators cannot disagree. Otherwise compare
  // ETags when both sides have one (replicas with skewed Last-Modified
  // stamps but equal ETags still pool); full validator equality when
  // either lacks an ETag.
  if (!agreed_set_ || validator.empty()) return true;
  return (!validator.etag.empty() && !agreed_.etag.empty())
             ? validator.etag == agreed_.etag
             : validator == agreed_;
}

bool ReplicaSet::Agrees(const BlockValidator& validator) const {
  MutexLock lock(mu_);
  return AgreesLocked(validator);
}

bool ReplicaSet::AdmitCachedGeneration(BlockCache* cache,
                                       const std::string& cache_key) {
  std::optional<BlockValidator> current = cache->UrlValidator(cache_key);
  // No registry entry means a purge raced the probe: the copied bytes
  // may span two generations, so they go back to the wire.
  if (!current) return false;
  SeedValidator(*current);
  return Agrees(*current);
}

std::optional<BlockValidator> ReplicaSet::Admit(
    const std::shared_ptr<ReplicaSource>& source,
    const BlockValidator& validator) {
  {
    MutexLock lock(mu_);
    if (!agreed_set_ && !validator.empty()) {
      agreed_ = validator;
      agreed_set_ = true;
      return agreed_;
    }
    if (AgreesLocked(validator)) return agreed_;
  }
  if (source && source->RejectGeneration()) {
    context_->stats().replica_quarantines.fetch_add(
        1, std::memory_order_relaxed);
    DAVIX_LOG(kWarn) << "replica " << source->url().ToString()
                     << " serves a different generation of "
                     << primary_.ToString() << "; quarantined";
  }
  return std::nullopt;
}

std::optional<BlockValidator> ReplicaSet::AdmitUrl(
    const Uri& url, const BlockValidator& validator) {
  return Admit(FindSource(url), validator);
}

BlockValidator ReplicaSet::agreed_validator() const {
  MutexLock lock(mu_);
  return agreed_;
}

std::vector<ReplicaSourceSnapshot> ReplicaSet::Snapshot() const {
  int64_t now = MonotonicMicros();
  std::vector<ReplicaSourceSnapshot> out;
  out.reserve(sources_.size());
  for (const std::shared_ptr<ReplicaSource>& source : sources_) {
    ReplicaSourceSnapshot snap;
    snap.url = source->url().ToString();
    snap.latency_ewma_micros = source->latency_ewma_micros();
    snap.consecutive_failures = source->consecutive_failures();
    snap.quarantined = source->Quarantined(now);
    snap.generation_rejected = source->generation_rejected();
    snap.successes = source->successes();
    snap.failures = source->failures();
    out.push_back(std::move(snap));
  }
  return out;
}

Result<HttpClient::Exchange> ReplicaSet::HeadRankedSources(
    const RequestParams& params) {
  RequestParams head_params = params;
  head_params.metalink_mode = MetalinkMode::kDisabled;
  Status last = Status::AllReplicasFailed("no replica answered HEAD");
  for (const std::shared_ptr<ReplicaSource>& source : RankedSources()) {
    int64_t start = MonotonicMicros();
    Result<HttpClient::Exchange> exchange =
        client_.Execute(source->url(), http::Method::kHead, head_params);
    Status status = exchange.ok()
                        ? HttpStatusToStatus(exchange->response.status_code,
                                             "HEAD " +
                                                 source->url().ToString())
                        : exchange.status();
    if (!status.ok()) {
      RecordFailure(source);
      last = std::move(status);
      continue;
    }
    RecordSuccess(source, MonotonicMicros() - start);
    SeedValidator(ValidatorFrom(exchange->response.headers));
    return exchange;
  }
  return last;
}

void ReplicaSet::EnsureSeeded(const RequestParams& params) {
  {
    MutexLock lock(mu_);
    if (agreed_set_) return;
  }
  // Nobody answering leaves the set unseeded: the first fetched chunk's
  // validator becomes the agreed generation instead.
  HeadRankedSources(params).ok();
}

Result<uint64_t> ReplicaSet::ResolveSize(const RequestParams& params) {
  {
    MutexLock lock(mu_);
    if (size_ != 0) return size_;
  }
  DAVIX_ASSIGN_OR_RETURN(HttpClient::Exchange exchange,
                         HeadRankedSources(params));
  std::optional<uint64_t> length =
      exchange.response.headers.GetUint64("Content-Length");
  if (!length || *length == 0) {
    return Status::ProtocolError(
        "multi-source: HEAD without usable Content-Length for " +
        primary_.ToString());
  }
  MutexLock lock(mu_);
  size_ = *length;
  return size_;
}

Status ReplicaSet::FetchChunk(size_t chunk_index, size_t stripe_width,
                              uint64_t chunk_offset, uint64_t chunk_length,
                              const RequestParams& params,
                              const std::string& cache_key, BlockCache* cache,
                              std::string* data) {
  if (cache != nullptr) {
    // A probe hit is delivered only when (a) no purge interleaved the
    // multi-block copy-out — the epoch is stable, so every byte read
    // belongs to one generation — and (b) that generation is the one
    // this stream agreed on (a concurrent reader may have refilled the
    // cache from a newer object mid-stream). Anything else refetches on
    // the wire, where Admit enforces the same agreement.
    uint64_t epoch = cache->PurgeEpoch();
    if (cache->TryReadFull(cache_key, chunk_offset, chunk_length, data) &&
        cache->PurgeEpoch() == epoch &&
        AdmitCachedGeneration(cache, cache_key)) {
      context_->stats().multisource_cache_chunks.fetch_add(
          1, std::memory_order_relaxed);
      return Status::OK();
    }
  }

  RequestParams chunk_params = params;
  chunk_params.ArmDeadline();
  chunk_params.metalink_mode = MetalinkMode::kDisabled;
  // The stall watchdog: a per-attempt deadline of "these bytes at the
  // minimum acceptable rate, plus slack". A replica trickling the body
  // below that rate is aborted (stall_aborts) and the chunk fails over
  // mid-read instead of wedging the whole stream behind one slow host.
  const int64_t stall_budget = StallBudgetMicros(
      chunk_length, params.min_throughput_bytes_per_sec);
  http::HeaderMap headers;
  headers.Set("Range", http::FormatRangeHeader(
                           {http::ByteRange{chunk_offset, chunk_length}}));
  uint64_t total = size();

  Status status = TryCandidates(
      chunk_index, stripe_width,
      [&](const std::shared_ptr<ReplicaSource>& source,
          bool* did_fetch) -> Status {
        context_->stats().multisource_chunks.fetch_add(
            1, std::memory_order_relaxed);
        *did_fetch = true;
        RequestParams attempt_params = chunk_params;
        if (stall_budget > 0) {
          attempt_params.deadline =
              chunk_params.deadline.Tightened(stall_budget);
        }
        Result<HttpClient::Exchange> exchange =
            client_.Execute(source->url(), http::Method::kGet, attempt_params,
                            std::string(), &headers);
        if (!exchange.ok()) {
          if (stall_budget > 0 &&
              exchange.status().code() == StatusCode::kTimeout &&
              !chunk_params.deadline.Expired()) {
            // The tightened per-attempt budget fired, not the caller's
            // end-to-end deadline: a stall, and the next replica gets
            // the chunk.
            context_->stats().stall_aborts.fetch_add(
                1, std::memory_order_relaxed);
          }
          return exchange.status();
        }
        const http::HttpResponse& response = exchange->response;
        std::string_view span;
        if (response.status_code == 206 &&
            response.body.size() == chunk_length) {
          span = response.body;
        } else if (response.status_code == 200 && total != 0 &&
                   response.body.size() == total) {
          // Replica ignored the Range header; salvage the chunk.
          span = std::string_view(response.body).substr(chunk_offset,
                                                        chunk_length);
        } else {
          Status shape = HttpStatusToStatus(response.status_code,
                                            "multi-source chunk GET " +
                                                source->url().ToString());
          if (shape.ok()) {
            shape = Status::ProtocolError(
                "unexpected partial-content shape from " +
                source->url().ToString());
          }
          return shape;
        }
        std::optional<BlockValidator> publish =
            Admit(source, ValidatorFrom(response.headers));
        if (!publish) {
          // Wrong generation: the bytes are dropped — never delivered,
          // never published into the cache — and another source serves
          // the chunk.
          context_->stats().replica_validator_rejects.fetch_add(
              1, std::memory_order_relaxed);
          return Status::Corruption("replica generation mismatch: " +
                                    source->url().ToString());
        }
        if (cache != nullptr) {
          cache->Insert(cache_key, *publish, chunk_offset, span, total);
        }
        data->assign(span);
        return Status::OK();
      });
  if (!status.ok()) {
    return status.WithContext("multi-source chunk at offset " +
                              std::to_string(chunk_offset));
  }
  return status;
}

Status ReplicaSet::Stream(uint64_t offset, uint64_t length,
                          const RequestParams& caller_params,
                          const ReplicaSpanSink& sink) {
  if (length == 0) return Status::OK();
  // One budget for the whole stream: every chunk, retry and fail-over
  // below decrements the same armed deadline.
  RequestParams params = caller_params;
  params.ArmDeadline();

  BlockCache* cache = params.use_block_cache &&
                              context_->block_cache().enabled()
                          ? &context_->block_cache()
                          : nullptr;
  std::string cache_key =
      cache != nullptr ? BlockCache::UrlKey(primary_) : std::string();
  EnsureSeeded(params);
  if (cache != nullptr) {
    // The agreed generation doubles as revalidation — whoever seeded it
    // (Open's Stat, the size HEAD, a prior stream): blocks cached from
    // an older generation are purged before the first probe can serve
    // them.
    BlockValidator agreed = agreed_validator();
    if (!agreed.empty()) cache->NoteValidator(cache_key, agreed);
  }

  uint64_t chunk_bytes = config_.chunk_bytes;
  size_t chunks =
      static_cast<size_t>((length + chunk_bytes - 1) / chunk_bytes);
  size_t parallelism = std::max<size_t>(
      1, std::min<size_t>(config_.max_streams, chunks));
  ThreadPool* dispatcher =
      chunks > 1 && parallelism > 1 ? &context_->dispatcher() : nullptr;

  // In-order delivery: completed chunks park in `pending` until the
  // delivery cursor reaches them; the sink runs serially under the
  // lock. At most ~stripe_width chunks wait at once (the claim loop
  // hands out indices in order, so the next-needed chunk is always
  // in flight).
  struct DeliveryState {
    explicit DeliveryState(uint64_t start) : next_offset(start) {}
    Mutex mu;
    std::map<uint64_t, std::string> pending GUARDED_BY(mu);
    uint64_t next_offset GUARDED_BY(mu);
    Status first_error GUARDED_BY(mu) = Status::OK();
    std::atomic<bool> failed{false};
  };
  DeliveryState state(offset);

  ParallelForCancellable(
      dispatcher, chunks, parallelism, [&](size_t chunk_index) {
        if (state.failed.load(std::memory_order_acquire)) return false;
        uint64_t chunk_offset = offset + chunk_index * chunk_bytes;
        uint64_t chunk_length =
            std::min<uint64_t>(chunk_bytes, offset + length - chunk_offset);
        std::string data;
        Status status =
            FetchChunk(chunk_index, config_.max_streams, chunk_offset,
                       chunk_length, params, cache_key, cache, &data);
        MutexLock lock(state.mu);
        if (!state.first_error.ok()) return false;
        if (!status.ok()) {
          state.first_error = std::move(status);
          state.failed.store(true, std::memory_order_release);
          return false;
        }
        state.pending.emplace(chunk_offset, std::move(data));
        auto it = state.pending.find(state.next_offset);
        while (it != state.pending.end()) {
          Status delivered = sink(it->first, it->second);
          if (!delivered.ok()) {
            state.first_error = std::move(delivered);
            state.failed.store(true, std::memory_order_release);
            return false;
          }
          state.next_offset += it->second.size();
          state.pending.erase(it);
          it = state.pending.find(state.next_offset);
        }
        return true;
      });

  MutexLock lock(state.mu);
  return state.first_error;
}

}  // namespace core
}  // namespace davix
