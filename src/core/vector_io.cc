#include "core/vector_io.h"

#include <algorithm>
#include <cstring>
#include <numeric>

namespace davix {
namespace core {

std::vector<CoalescedRange> CoalesceRanges(
    const std::vector<http::ByteRange>& requested, uint64_t max_gap) {
  // Order user ranges by offset, remembering their original indices.
  std::vector<size_t> order(requested.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (requested[a].offset != requested[b].offset) {
      return requested[a].offset < requested[b].offset;
    }
    return requested[a].length < requested[b].length;
  });

  std::vector<CoalescedRange> out;
  for (size_t idx : order) {
    const http::ByteRange& r = requested[idx];
    if (r.length == 0) continue;
    if (!out.empty()) {
      CoalescedRange& last = out.back();
      uint64_t last_end = last.range.offset + last.range.length;  // exclusive
      // Merge when the new range starts within (or overlapping) the
      // current wire range extended by the permitted gap.
      if (r.offset <= last_end + max_gap) {
        uint64_t new_end = std::max(last_end, r.offset + r.length);
        last.range.length = new_end - last.range.offset;
        last.sources.push_back(idx);
        continue;
      }
    }
    CoalescedRange wire;
    wire.range = r;
    wire.sources.push_back(idx);
    out.push_back(std::move(wire));
  }
  return out;
}

std::vector<CoalescedRange> SplitOversized(
    std::vector<CoalescedRange> coalesced,
    const std::vector<http::ByteRange>& requested, uint64_t max_chunk_bytes) {
  if (max_chunk_bytes == 0) return coalesced;
  std::vector<CoalescedRange> out;
  out.reserve(coalesced.size());
  for (CoalescedRange& wire : coalesced) {
    if (wire.range.length <= max_chunk_bytes || wire.sources.size() < 2) {
      out.push_back(std::move(wire));
      continue;
    }
    // Sources were appended in offset order by CoalesceRanges; walk them
    // into consecutive runs. A chunk's wire range spans from its first
    // source's offset to the furthest source end seen, so every source
    // stays fully contained in exactly one chunk (overlapping sources may
    // make adjacent chunks overlap on the wire; scatter stays correct).
    CoalescedRange chunk;
    uint64_t chunk_end = 0;
    for (size_t idx : wire.sources) {
      const http::ByteRange& user = requested[idx];
      uint64_t user_end = user.offset + user.length;
      if (!chunk.sources.empty() &&
          std::max(chunk_end, user_end) - chunk.range.offset >
              max_chunk_bytes) {
        chunk.range.length = chunk_end - chunk.range.offset;
        out.push_back(std::move(chunk));
        chunk = CoalescedRange{};
      }
      if (chunk.sources.empty()) {
        chunk.range.offset = user.offset;
        chunk_end = user_end;
      } else {
        chunk_end = std::max(chunk_end, user_end);
      }
      chunk.sources.push_back(idx);
    }
    chunk.range.length = chunk_end - chunk.range.offset;
    out.push_back(std::move(chunk));
  }
  return out;
}

std::vector<std::vector<CoalescedRange>> SplitBatches(
    std::vector<CoalescedRange> coalesced, size_t max_per_batch,
    uint64_t max_bytes_per_batch) {
  if (max_per_batch == 0) max_per_batch = 1;
  std::vector<std::vector<CoalescedRange>> batches;
  std::vector<CoalescedRange> current;
  uint64_t current_bytes = 0;
  current.reserve(std::min(coalesced.size(), max_per_batch));
  for (CoalescedRange& wire : coalesced) {
    current_bytes += wire.range.length;
    current.push_back(std::move(wire));
    if (current.size() == max_per_batch ||
        (max_bytes_per_batch > 0 && current_bytes >= max_bytes_per_batch)) {
      batches.push_back(std::move(current));
      current.clear();
      current_bytes = 0;
    }
  }
  if (!current.empty()) batches.push_back(std::move(current));
  return batches;
}

Status ScatterWireRange(const CoalescedRange& wire, std::string_view data,
                        const std::vector<http::ByteRange>& requested,
                        std::vector<std::string>* results) {
  if (data.size() != wire.range.length) {
    return Status::ProtocolError(
        "wire range data size mismatch: got " + std::to_string(data.size()) +
        " want " + std::to_string(wire.range.length));
  }
  for (size_t idx : wire.sources) {
    if (idx >= requested.size()) {
      return Status::Internal("scatter index out of bounds");
    }
    const http::ByteRange& user = requested[idx];
    if (user.offset < wire.range.offset ||
        user.offset + user.length > wire.range.offset + wire.range.length) {
      return Status::Internal("user range not contained in wire range");
    }
    std::string& slot = (*results)[idx];
    if (slot.size() != user.length) slot.resize(user.length);
    if (user.length > 0) {
      std::memcpy(slot.data(), data.data() + (user.offset - wire.range.offset),
                  user.length);
    }
  }
  return Status::OK();
}

}  // namespace core
}  // namespace davix
