#ifndef DAVIX_CORE_DEADLINE_H_
#define DAVIX_CORE_DEADLINE_H_

#include <algorithm>
#include <cstdint>
#include <limits>

#include "common/clock.h"

namespace davix {
namespace core {

/// End-to-end monotonic budget for one logical operation. A Deadline is
/// an absolute point on the MonotonicMicros() clock, armed once at the
/// operation's entry point and carried by value (inside RequestParams)
/// through every connect, write, read, retry, redirect and replica
/// fail-over that operation makes — so a retried request can never
/// exceed the caller's total budget, no matter how many attempts it
/// takes. A default-constructed Deadline is unarmed and caps nothing.
///
/// Thread-safe: immutable after construction; share freely by copy.
class Deadline {
 public:
  /// Unarmed: never expires, caps no timeout.
  Deadline() = default;

  /// A deadline `budget_micros` from now (clamped to at least 1 µs so an
  /// armed deadline is never mistaken for the unarmed sentinel).
  static Deadline After(int64_t budget_micros) {
    return AtMonotonic(MonotonicMicros() + std::max<int64_t>(1, budget_micros));
  }

  /// A deadline at an absolute MonotonicMicros() instant.
  static Deadline AtMonotonic(int64_t deadline_micros) {
    Deadline d;
    d.deadline_micros_ = deadline_micros;
    return d;
  }

  bool armed() const { return deadline_micros_ != 0; }

  /// Absolute MonotonicMicros() instant; 0 when unarmed (the value
  /// net::BufferedReader::set_deadline_micros expects).
  int64_t absolute_micros() const { return deadline_micros_; }

  /// Budget left, clamped at 0. Unarmed deadlines report "unbounded".
  int64_t RemainingMicros() const {
    if (!armed()) return std::numeric_limits<int64_t>::max();
    return std::max<int64_t>(0, deadline_micros_ - MonotonicMicros());
  }

  bool Expired() const { return armed() && MonotonicMicros() >= deadline_micros_; }

  /// Caps a per-step timeout by the remaining budget. Follows the socket
  /// convention that `timeout_micros <= 0` means "wait forever": an armed
  /// deadline turns that into its remaining budget, and an expired one
  /// returns 1 µs (an immediate-but-real timeout, never the infinite 0).
  int64_t CapTimeout(int64_t timeout_micros) const {
    if (!armed()) return timeout_micros;
    int64_t remaining = std::max<int64_t>(1, RemainingMicros());
    if (timeout_micros <= 0) return remaining;
    return std::min(timeout_micros, remaining);
  }

  /// The tighter of this deadline and `After(budget_micros)` — how a
  /// sized chunk fetch narrows the caller's budget to its own stall
  /// allowance without ever widening it.
  Deadline Tightened(int64_t budget_micros) const {
    Deadline local = After(budget_micros);
    if (!armed() || local.deadline_micros_ < deadline_micros_) return local;
    return *this;
  }

 private:
  int64_t deadline_micros_ = 0;  // 0 = unarmed
};

}  // namespace core
}  // namespace davix

#endif  // DAVIX_CORE_DEADLINE_H_
