#ifndef DAVIX_CORE_DAV_FILE_H_
#define DAVIX_CORE_DAV_FILE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/uri.h"
#include "core/http_client.h"
#include "core/request_params.h"
#include "http/range.h"

namespace davix {
namespace core {

struct CoalescedRange;
struct VecDispatchState;
class ReplicaSet;
class ReplicaSource;

/// Remote file metadata as observable over HTTP/WebDAV.
struct FileInfo {
  uint64_t size = 0;
  int64_t mtime_epoch_seconds = 0;
  std::string etag;
  bool is_collection = false;
};

/// Object-level remote file API, mirroring davix's DavFile.
///
/// Every read entry point is resilience-wrapped per
/// RequestParams::metalink_mode: with kFailover (the default), a failed
/// operation transparently retries on each replica listed in the
/// resource's Metalink until one succeeds — the §2.4 guarantee that "a
/// read operation on a resource will succeed as long as one replica ...
/// is remotely accessible and referenced by the corresponding Metalink."
class DavFile {
 public:
  /// `context` must outlive this object.
  DavFile(Context* context, Uri url);

  /// Parses `url`; fails on malformed URLs.
  static Result<DavFile> Make(Context* context, const std::string& url);

  const Uri& url() const { return url_; }

  /// Whole-object GET. In kMultiStream mode the object is fetched in
  /// parallel chunks from several replicas.
  Result<std::string> Get(const RequestParams& params = {});

  /// Atomic object creation / replacement (HTTP PUT, §2.1).
  Status Put(std::string data, const RequestParams& params = {});

  /// Object removal (HTTP DELETE).
  Status Delete(const RequestParams& params = {});

  /// Metadata via HEAD.
  Result<FileInfo> Stat(const RequestParams& params = {});

  /// Remote md5 of the object (RFC 3230 Want-Digest, davix-checksum
  /// style). Returns the lower-case hex digest.
  Result<std::string> GetChecksum(const RequestParams& params = {});

  /// Server-side copy to `destination_path` on the same host (WebDAV
  /// COPY), used for intra-storage replication.
  Status Copy(const std::string& destination_path,
              const RequestParams& params = {});

  /// Reads `length` bytes at `offset` with a single-range GET.
  Result<std::string> ReadPartial(uint64_t offset, uint64_t length,
                                  const RequestParams& params = {});

  /// §2.3 vectored read: the scattered `ranges` are coalesced, packed
  /// into HTTP multi-range queries, executed as few wire round trips,
  /// and scattered back; results[i] holds the bytes of ranges[i].
  ///
  /// When the Context has a block cache (and
  /// RequestParams::use_block_cache is left on), cache-satisfied spans
  /// are carved out of each range *before* coalescing — the cached
  /// prefix/suffix of a range is copied from memory and only the
  /// missing middle goes on the wire; fully cached calls touch the
  /// network not at all. Every fetched wire span (coalesced gap bytes
  /// included) is published back into the cache with the validators its
  /// response carried.
  ///
  /// When coalescing yields more than one batch, the batches are
  /// dispatched concurrently — each drawing its own pooled session —
  /// bounded by RequestParams::max_parallel_range_requests, with
  /// first-error cancellation. Payload bytes are scattered zero-copy
  /// from the response buffers into preallocated result slots.
  ///
  /// Falls back transparently when the server answers a multi-range GET
  /// with the full entity (200) or lacks multi-range support; once one
  /// batch sees the full entity, the remaining batches are satisfied
  /// locally from it without further wire traffic.
  Result<std::vector<std::string>> ReadPartialVec(
      const std::vector<http::ByteRange>& ranges,
      const RequestParams& params = {});

  /// Asynchronous form of ReadPartialVec: schedules the identical
  /// vectored dispatch (cache carve-out, coalescing, parallel batches,
  /// replica striping, deadlines/retries/breakers, the transport seam)
  /// on the Context's dispatcher pool and returns immediately; the
  /// future resolves to exactly what the synchronous call would have
  /// returned. Degrades to a synchronous inline read when the
  /// dispatcher is shutting down, so the future is always valid.
  ///
  /// Safe to call concurrently with any other read on this file — the
  /// underlying HttpClient and session pool are thread-safe. The caller
  /// must keep this DavFile (and its Context) alive until the future
  /// has been waited on or discarded after completion.
  std::future<Result<std::vector<std::string>>> ReadPartialVecAsync(
      const std::vector<http::ByteRange>& ranges,
      const RequestParams& params = {});

  /// Resolves (once) the resource's replica set from its Metalink and
  /// pins it to this file: every later read fails over — and stripes
  /// multi-batch vectored dispatches — across the set's health-ranked
  /// sources without refetching the Metalink. DavPosix::Open calls this
  /// when RequestParams::metalink_resolver is configured. Idempotent.
  Status ResolveReplicaSet(const RequestParams& params);

  /// The pinned replica set; null until ResolveReplicaSet succeeds.
  std::shared_ptr<ReplicaSet> replica_set() const { return replica_set_; }

 private:
  /// Runs `op` against the primary URL, then against metalink replicas
  /// on failure (when enabled). Counts failovers in the context stats.
  /// Arms the end-to-end deadline once and hands the armed params to
  /// every `op` invocation, so one total_timeout_micros budget spans the
  /// whole fail-over walk rather than restarting per replica.
  template <typename T>
  Result<T> WithFailover(
      const RequestParams& params,
      const std::function<Result<T>(const Uri&, const RequestParams&)>& op);

  Result<std::vector<std::string>> ReadPartialVecAt(
      const Uri& replica, const std::vector<http::ByteRange>& ranges,
      const RequestParams& params);

  /// CacheRevalidatePolicy::kAlways helper: HEADs `replica` and feeds
  /// the observed validators to the cache, dropping stale blocks.
  Status RevalidateCached(const Uri& replica, const RequestParams& params,
                          BlockCache* cache, const std::string& cache_key);

  /// Fetches one coalesced batch and scatters its payload into the
  /// preallocated `results` slots. Runs concurrently with its sibling
  /// batches; `state` carries the shared 200-fallback body and error
  /// flag. With a replica set in `state`, the response's validators
  /// must be admitted against the set's agreed generation before any
  /// byte is scattered or cached — a mismatch returns kCorruption.
  /// `*did_fetch` (may be null) is set when the batch actually put a
  /// request on the wire — false on the failed-short-circuit and
  /// full-body-demote paths, so health feedback only covers real
  /// exchanges.
  Status FetchVecBatch(const Uri& replica,
                       const std::vector<CoalescedRange>& batch,
                       const RequestParams& params,
                       const std::vector<http::ByteRange>& ranges,
                       VecDispatchState* state,
                       std::vector<std::string>* results, bool* did_fetch);

  /// Replica-set variant of one batch dispatch: walks the
  /// stripe-rotated, health-ranked candidates for `batch_index`, feeding each
  /// outcome back into the set, so a batch that fails on one source is
  /// re-dispatched to the next-best instead of failing the read.
  Status FetchVecBatchMultiSource(size_t batch_index, size_t stripe_width,
                                  const std::vector<CoalescedRange>& batch,
                                  const RequestParams& params,
                                  const std::vector<http::ByteRange>& ranges,
                                  VecDispatchState* state,
                                  std::vector<std::string>* results);

  Context* context_;
  HttpClient client_;
  Uri url_;
  std::shared_ptr<ReplicaSet> replica_set_;
};

}  // namespace core
}  // namespace davix

#endif  // DAVIX_CORE_DAV_FILE_H_
