#include "core/session_pool.h"

#include "common/clock.h"
#include "common/logging.h"
#include "net/socket_address.h"

namespace davix {
namespace core {

Session::Session(std::string key, net::TcpSocket socket)
    : key_(std::move(key)),
      socket_(std::make_unique<net::TcpSocket>(std::move(socket))),
      reader_(socket_.get()) {
  TouchLastUsed();
}

void Session::TouchLastUsed() { last_used_micros_ = MonotonicMicros(); }

SessionPool::SessionPool(SessionPoolConfig config)
    : config_(config) {}

namespace {

// Connect budget when a caller zeroes RequestParams::connect_timeout_
// micros; resolving it here keeps tcp_socket.cc's 30 s fallback a
// never-reached last resort.
constexpr int64_t kDefaultConnectTimeoutMicros = 15'000'000;

// RequestParams breaker knobs use 0 = default, < 0 = disabled.
CircuitBreakerConfig BreakerConfigFrom(const RequestParams& params) {
  CircuitBreakerConfig config;
  if (params.breaker_failure_threshold != 0) {
    config.failure_threshold = params.breaker_failure_threshold;
  }
  if (params.breaker_cooldown_micros > 0) {
    config.cooldown_micros = params.breaker_cooldown_micros;
  }
  return config;
}

// Applies the request's timeouts to a session about to be handed out:
// the per-read timeout capped by the armed deadline, plus the absolute
// deadline itself so a response trickling within the per-read timeout
// still cannot outlive the caller's total budget. Recycled sessions get
// this too — they must not keep their previous owner's timeouts.
void ApplyReadBudget(Session& session, const RequestParams& params) {
  session.reader().set_timeout_micros(
      params.deadline.CapTimeout(params.operation_timeout_micros));
  session.reader().set_deadline_micros(params.deadline.absolute_micros());
}

}  // namespace

Result<std::unique_ptr<Session>> SessionPool::Acquire(
    const Uri& uri, const RequestParams& params) {
  std::string key = uri.HostPortKey();

  switch (breakers_.Admit(key, BreakerConfigFrom(params), MonotonicMicros())) {
    case CircuitBreaker::Decision::kFastFail:
      // Retryable and fail-over-eligible, so callers move on to another
      // replica without paying a connect attempt to a host known dead.
      return Status::ConnectionFailed("circuit breaker open for " + key);
    case CircuitBreaker::Decision::kAdmit:
    case CircuitBreaker::Decision::kProbe:
      break;
  }

  if (params.keep_alive) {
    MutexLock lock(mu_);
    auto it = idle_.find(key);
    if (it != idle_.end()) {
      std::vector<std::unique_ptr<Session>>& bucket = it->second;
      int64_t now = MonotonicMicros();
      // LIFO: most recently parked first, so recycled connections carry
      // the warmest congestion windows. Age out stale ones on the way.
      while (!bucket.empty()) {
        std::unique_ptr<Session> session = std::move(bucket.back());
        bucket.pop_back();
        stats_.current_idle.fetch_sub(1, std::memory_order_relaxed);
        if (now - session->last_used_micros() > config_.max_idle_age_micros) {
          stats_.expired.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (bucket.empty()) idle_.erase(it);
        session->set_recycled(true);
        ApplyReadBudget(*session, params);
        stats_.recycled.fetch_add(1, std::memory_order_relaxed);
        stats_.acquire_hits.fetch_add(1, std::memory_order_relaxed);
        return session;
      }
      // Drained (possibly by ageing every entry out): drop the bucket so
      // the map does not accumulate one empty vector per host ever seen.
      idle_.erase(it);
    }
  }

  // No reusable session: open a fresh connection. Only pooled (keep-
  // alive) acquires count as misses; with pooling off there is nothing
  // to hit.
  if (params.keep_alive) {
    stats_.acquire_misses.fetch_add(1, std::memory_order_relaxed);
  }
  // Resolve the connect budget here rather than leaning on
  // tcp_socket.cc's 30 s last-resort default, and never let a connect
  // attempt spend more than the caller's remaining end-to-end budget.
  int64_t connect_timeout = params.connect_timeout_micros > 0
                                ? params.connect_timeout_micros
                                : kDefaultConnectTimeoutMicros;
  connect_timeout = params.deadline.CapTimeout(connect_timeout);
  Result<net::SocketAddress> address =
      net::SocketAddress::Resolve(uri.host(), uri.port());
  Result<net::TcpSocket> socket =
      address.ok() ? net::TcpSocket::Connect(*address, connect_timeout)
                   : Result<net::TcpSocket>(address.status());
  if (!socket.ok()) {
    breakers_.RecordFailure(key, MonotonicMicros());
    return socket.status().WithContext("connecting to " + key);
  }
  (void)socket->SetNoDelay(true);
  stats_.connects.fetch_add(1, std::memory_order_relaxed);
  auto session = std::make_unique<Session>(key, std::move(*socket));
  ApplyReadBudget(*session, params);
  return session;
}

void SessionPool::Release(std::unique_ptr<Session> session) {
  if (session == nullptr) return;
  if (!session->socket().IsOpen() || session->reader().HasBuffered()) {
    // Unread bytes mean we lost framing sync; never recycle such a
    // connection.
    Discard(std::move(session));
    return;
  }
  session->TouchLastUsed();
  MutexLock lock(mu_);
  std::vector<std::unique_ptr<Session>>& bucket = idle_[session->key()];
  if (bucket.size() >= config_.max_idle_per_host) {
    stats_.discarded.fetch_add(1, std::memory_order_relaxed);
    return;  // bucket full: drop (unique_ptr closes the socket)
  }
  bucket.push_back(std::move(session));
  stats_.current_idle.fetch_add(1, std::memory_order_relaxed);
}

void SessionPool::Discard(std::unique_ptr<Session> session) {
  if (session == nullptr) return;
  stats_.discarded.fetch_add(1, std::memory_order_relaxed);
  // unique_ptr destruction closes the socket.
}

void SessionPool::Clear() {
  MutexLock lock(mu_);
  size_t dropped = 0;
  for (auto& [key, bucket] : idle_) dropped += bucket.size();
  idle_.clear();
  stats_.current_idle.store(0, std::memory_order_relaxed);
  stats_.discarded.fetch_add(dropped, std::memory_order_relaxed);
}

size_t SessionPool::IdleCount() const {
  MutexLock lock(mu_);
  size_t total = 0;
  for (const auto& [key, bucket] : idle_) total += bucket.size();
  return total;
}

size_t SessionPool::BucketCount() const {
  MutexLock lock(mu_);
  return idle_.size();
}

}  // namespace core
}  // namespace davix
