#include "core/mux_transport.h"

#include <sys/socket.h>

#include <algorithm>

#include "common/clock.h"
#include "common/logging.h"
#include "net/socket_address.h"

namespace davix {
namespace core {
namespace {

// Defaults behind the 0 = auto convention of the RequestParams knobs.
constexpr size_t kDefaultMaxConnectionsPerHost = 2;
constexpr size_t kDefaultMaxStreamsPerConnection = 64;
// Backpressure re-check interval: waiters are notified on every
// completed exchange, the poll only covers lost wakeups.
constexpr int64_t kBackpressurePollMicros = 5'000;
// Completion re-check interval of a waiting requester (covers clock
// progress toward its deadline; real completions notify immediately).
constexpr int64_t kWaiterPollMicros = 50'000;

}  // namespace

// ---------------------------------------------------------- MuxConnection

Result<std::shared_ptr<MuxConnection>> MuxConnection::Connect(
    const Uri& url, const RequestParams& params) {
  DAVIX_ASSIGN_OR_RETURN(
      net::SocketAddress address,
      net::SocketAddress::Resolve(url.host(), url.port()));
  int64_t connect_timeout =
      params.deadline.CapTimeout(params.connect_timeout_micros);
  DAVIX_ASSIGN_OR_RETURN(net::TcpSocket socket,
                         net::TcpSocket::Connect(address, connect_timeout));
  (void)socket.SetNoDelay(true);
  std::shared_ptr<MuxConnection> conn(new MuxConnection());
  conn->socket_ = std::make_unique<net::TcpSocket>(std::move(socket));
  // No per-read timeout on the shared reader: response pacing is each
  // requester's business (its own deadline-bounded wait), and a stuck
  // connection is unwedged by Shutdown closing the socket.
  conn->reader_ = std::make_unique<net::BufferedReader>(conn->socket_.get());
  conn->alive_.store(true, std::memory_order_release);
  conn->reader_thread_ = std::thread([c = conn.get()] { c->ReaderLoop(); });
  return conn;
}

MuxConnection::~MuxConnection() {
  Shutdown(Status::Cancelled("mux connection closed"));
  if (reader_thread_.joinable()) reader_thread_.join();
}

void MuxConnection::Shutdown(const Status& reason) {
  stopping_.store(true, std::memory_order_relaxed);
  if (socket_ != nullptr && socket_->IsOpen()) {
    ::shutdown(socket_->fd(), SHUT_RDWR);
  }
  FailAll(reason);
}

void MuxConnection::FailAll(const Status& reason) {
  alive_.store(false, std::memory_order_release);
  MutexLock lock(mu_);
  for (auto& [id, waiter] : pending_) {
    if (!waiter->done) {
      waiter->status = reason;
      waiter->done = true;
    }
  }
  pending_.clear();
  cv_.NotifyAll();
}

Status MuxConnection::WriteFramesLocked(
    const std::vector<muxhttp::MuxFrame>& frames) {
  if (write_broken_) {
    return Status::ConnectionReset("mux write side broken");
  }
  for (const muxhttp::MuxFrame& frame : frames) {
    Status status = socket_->WriteAll(muxhttp::SerializeMuxFrame(frame));
    if (!status.ok()) {
      write_broken_ = true;
      return status;
    }
  }
  return Status::OK();
}

uint32_t MuxConnection::TryBeginStream(size_t max_streams,
                                       bool head_request) {
  if (max_streams == 0) max_streams = 1;
  uint32_t id = 0;
  {
    MutexLock lock(mu_);
    if (!alive_.load(std::memory_order_relaxed)) return 0;
    if (active_.load(std::memory_order_relaxed) >= max_streams) return 0;
    id = next_stream_id_++;
    if (next_stream_id_ == 0) next_stream_id_ = 1;
    pending_.emplace(id, std::make_shared<Waiter>());
    active_.fetch_add(1, std::memory_order_relaxed);
  }
  MutexLock demux_lock(demux_mu_);
  assembler_.ExpectStream(id, head_request);
  return id;
}

Result<http::HttpResponse> MuxConnection::FinishExchange(
    uint32_t stream_id, const http::HttpRequest& request,
    const RequestParams& params, MuxTransportStats* stats) {
  std::shared_ptr<Waiter> waiter;
  {
    MutexLock lock(mu_);
    auto it = pending_.find(stream_id);
    if (it == pending_.end()) {
      // The connection died between TryBeginStream and here; the slot
      // was already failed by FailAll.
      active_.fetch_sub(1, std::memory_order_relaxed);
      return Status::ConnectionReset("mux connection lost before send");
    }
    waiter = it->second;
  }

  std::vector<muxhttp::MuxFrame> frames = muxhttp::FrameMessage(
      stream_id, request.SerializeHead(request.body.size()), request.body);
  Status write_status;
  {
    MutexLock lock(write_mu_);
    write_status = WriteFramesLocked(frames);
  }
  if (!write_status.ok()) {
    // Fails our own waiter too, so the wait below returns immediately.
    FailAll(Status::ConnectionReset("mux send failed: " +
                                    write_status.message()));
  }

  int64_t budget = params.deadline.CapTimeout(params.operation_timeout_micros);
  int64_t wait_deadline = budget > 0 ? MonotonicMicros() + budget : 0;
  bool done = false;
  {
    MutexLock lock(mu_);
    while (!waiter->done) {
      int64_t remaining = kWaiterPollMicros;
      if (wait_deadline > 0) {
        remaining = wait_deadline - MonotonicMicros();
        if (remaining <= 0) break;
        remaining = std::min(remaining, kWaiterPollMicros);
      }
      (void)cv_.WaitFor(mu_, remaining,
                        [&waiter]() { return waiter->done; });
    }
    done = waiter->done;
    if (!done) pending_.erase(stream_id);
  }
  active_.fetch_sub(1, std::memory_order_relaxed);

  if (!done) {
    // Deadline expired mid-stream: release the demux slot first so a
    // response racing in is dropped, then tell the server to stop
    // streaming (best effort).
    {
      MutexLock lock(demux_mu_);
      assembler_.Forget(stream_id);
    }
    muxhttp::MuxFrame rst;
    rst.stream_id = stream_id;
    rst.type = muxhttp::MuxFrameType::kRst;
    rst.payload = muxhttp::MakeRstPayload(muxhttp::MuxRstCode::kCancelled,
                                          "deadline expired");
    {
      MutexLock lock(write_mu_);
      (void)WriteFramesLocked({rst});
    }
    if (stats != nullptr) {
      stats->streams_reset.fetch_add(1, std::memory_order_relaxed);
    }
    return Status::Timeout("mux response deadline exceeded on stream " +
                           std::to_string(stream_id));
  }
  if (!waiter->status.ok()) {
    if (stats != nullptr) {
      stats->streams_reset.fetch_add(1, std::memory_order_relaxed);
    }
    return waiter->status;
  }
  return std::move(waiter->response);
}

void MuxConnection::ReaderLoop() {
  while (true) {
    Result<muxhttp::MuxFrame> frame = muxhttp::ReadMuxFrame(reader_.get());
    if (!frame.ok()) {
      if (!stopping_.load(std::memory_order_relaxed)) {
        FailAll(Status::ConnectionReset("mux connection lost: " +
                                        frame.status().message()));
      }
      return;
    }
    Result<std::optional<muxhttp::MuxStreamAssembler::Event>> event =
        [this, &frame] {
          MutexLock lock(demux_mu_);
          return assembler_.OnFrame(std::move(*frame));
        }();
    if (!event.ok()) {
      // Connection-fatal violation: framing sync is gone, every stream
      // dies retryably and the socket is closed so the server notices.
      DAVIX_LOG(kDebug) << "mux connection torn down: "
                        << event.status().ToString();
      if (socket_->IsOpen()) ::shutdown(socket_->fd(), SHUT_RDWR);
      FailAll(Status::ConnectionReset("mux protocol violation: " +
                                      event.status().message()));
      return;
    }
    if (!event->has_value()) continue;
    muxhttp::MuxStreamAssembler::Event& ev = **event;
    MutexLock lock(mu_);
    auto it = pending_.find(ev.stream_id);
    if (it == pending_.end()) continue;  // locally cancelled; drop
    std::shared_ptr<Waiter> waiter = std::move(it->second);
    pending_.erase(it);
    if (ev.stream_error.has_value()) {
      waiter->status = *ev.stream_error;
    } else if (ev.response.has_value()) {
      waiter->response = std::move(*ev.response);
    } else {
      waiter->status = Status::Internal("mux event carried no response");
    }
    waiter->done = true;
    cv_.NotifyAll();
  }
}

// ----------------------------------------------------------- MuxTransport

MuxTransport::~MuxTransport() { Clear(); }

void MuxTransport::Clear() {
  std::unordered_map<std::string, Bucket> buckets;
  {
    MutexLock lock(mu_);
    buckets.swap(buckets_);
  }
  for (auto& [key, bucket] : buckets) {
    for (std::shared_ptr<MuxConnection>& conn : bucket.connections) {
      conn->Shutdown(Status::Cancelled("mux transport cleared"));
    }
  }
  cv_.NotifyAll();
}

size_t MuxTransport::ConnectionCount(const std::string& host_key) const {
  MutexLock lock(mu_);
  auto it = buckets_.find(host_key);
  if (it == buckets_.end()) return 0;
  size_t alive = 0;
  for (const std::shared_ptr<MuxConnection>& conn : it->second.connections) {
    if (conn->alive()) ++alive;
  }
  return alive;
}

size_t MuxTransport::TotalConnections() const {
  MutexLock lock(mu_);
  size_t alive = 0;
  for (const auto& [key, bucket] : buckets_) {
    for (const std::shared_ptr<MuxConnection>& conn : bucket.connections) {
      if (conn->alive()) ++alive;
    }
  }
  return alive;
}

Result<http::HttpResponse> MuxTransport::Execute(
    const Uri& url, const http::HttpRequest& request, bool head_request,
    const RequestParams& params) {
  const std::string key = url.HostPortKey();
  const size_t max_connections = params.mux_max_connections_per_host > 0
                                     ? params.mux_max_connections_per_host
                                     : kDefaultMaxConnectionsPerHost;
  const size_t max_streams = params.mux_max_streams_per_connection > 0
                                 ? params.mux_max_streams_per_connection
                                 : kDefaultMaxStreamsPerConnection;

  while (true) {
    std::shared_ptr<MuxConnection> conn;
    uint32_t stream_id = 0;
    bool should_connect = false;
    {
      MutexLock lock(mu_);
      Bucket& bucket = buckets_[key];
      std::vector<std::shared_ptr<MuxConnection>>& conns =
          bucket.connections;
      for (size_t i = 0; i < conns.size();) {
        if (!conns[i]->alive()) {
          stats_.connections_lost.fetch_add(1, std::memory_order_relaxed);
          conns.erase(conns.begin() + static_cast<ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
      std::shared_ptr<MuxConnection> best;
      for (const std::shared_ptr<MuxConnection>& candidate : conns) {
        if (candidate->active_streams() >= max_streams) continue;
        if (best == nullptr ||
            candidate->active_streams() < best->active_streams()) {
          best = candidate;
        }
      }
      if (best != nullptr) {
        stream_id = best->TryBeginStream(max_streams, head_request);
        if (stream_id != 0) conn = best;
      }
      if (conn == nullptr) {
        if (conns.size() + bucket.connecting < max_connections) {
          ++bucket.connecting;
          should_connect = true;
        } else {
          // Every connection is saturated and the host is at its
          // connection budget: wait for a slot — the bounded-connection
          // trade-off §2.2 weighs against pooled HTTP/1.1.
          if (params.deadline.Expired()) {
            return Status::Timeout(
                "deadline exceeded waiting for a mux stream slot to " + key);
          }
          stats_.backpressure_waits.fetch_add(1, std::memory_order_relaxed);
          int64_t wait = std::min(kBackpressurePollMicros,
                                  params.deadline.armed()
                                      ? params.deadline.RemainingMicros()
                                      : kBackpressurePollMicros);
          (void)cv_.WaitFor(
              mu_, std::max<int64_t>(wait, 1'000),
              [this, &key, max_connections, max_streams]() REQUIRES(mu_) {
                auto it = buckets_.find(key);
                if (it == buckets_.end()) return true;
                const Bucket& b = it->second;
                if (b.connections.size() + b.connecting < max_connections) {
                  return true;
                }
                for (const std::shared_ptr<MuxConnection>& c :
                     b.connections) {
                  if (!c->alive() || c->active_streams() < max_streams) {
                    return true;
                  }
                }
                return false;
              });
          continue;
        }
      }
    }

    if (should_connect) {
      Result<std::shared_ptr<MuxConnection>> attempt =
          MuxConnection::Connect(url, params);
      MutexLock lock(mu_);
      Bucket& bucket = buckets_[key];
      if (bucket.connecting > 0) --bucket.connecting;
      cv_.NotifyAll();
      if (!attempt.ok()) return attempt.status();
      conn = *attempt;
      bucket.connections.push_back(conn);
      stats_.connections_opened.fetch_add(1, std::memory_order_relaxed);
      stream_id = conn->TryBeginStream(max_streams, head_request);
      if (stream_id == 0) continue;  // raced to saturation; go around
    }

    stats_.streams_opened.fetch_add(1, std::memory_order_relaxed);
    Result<http::HttpResponse> result =
        conn->FinishExchange(stream_id, request, params, &stats_);
    // A completed exchange frees a stream slot: wake backpressure
    // waiters.
    cv_.NotifyAll();
    return result;
  }
}

}  // namespace core
}  // namespace davix
