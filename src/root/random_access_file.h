#ifndef DAVIX_ROOT_RANDOM_ACCESS_FILE_H_
#define DAVIX_ROOT_RANDOM_ACCESS_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "http/range.h"

namespace davix {
namespace root {

/// Completion token of an asynchronous vectored read.
class PendingVecRead {
 public:
  // Out-of-line key-function anchor; see ByteSource.
  virtual ~PendingVecRead();
  /// Blocks until the read completes; results[i] holds ranges[i]'s bytes.
  virtual Result<std::vector<std::string>> Wait() = 0;
};

/// Transport abstraction the analysis layer reads through — the role
/// ROOT's TFile plugin interface (TDavixFile, TXNetFile) plays in the
/// paper. Implementations exist for local buffers, davix (HTTP) and the
/// xrootd-like protocol.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Total size in bytes.
  virtual uint64_t Size() const = 0;

  /// Reads `length` bytes at `offset` (short only at EOF).
  virtual Result<std::string> PRead(uint64_t offset, uint64_t length) = 0;

  /// Vectored read; the default loops over PRead (one round trip per
  /// range — what a naive HTTP client does). Real transports override
  /// this with their packed form (§2.3 multi-range / kReadVector).
  virtual Result<std::vector<std::string>> PReadVec(
      const std::vector<http::ByteRange>& ranges);

  /// Whether PReadVecAsync overlaps with the caller (true asynchrony).
  /// The paper's davix executed vector queries synchronously while
  /// XRootD's multiplexing made them overlappable — the WAN difference
  /// in Figure 4; here both remote adapters report true (the davix one
  /// schedules its parallel dispatch on the Context's dispatcher pool)
  /// and only transports with no async path keep the default false.
  virtual bool SupportsAsyncVec() const { return false; }

  /// Starts a vectored read. The default implementation performs the
  /// read synchronously and returns an already-completed token.
  virtual std::unique_ptr<PendingVecRead> PReadVecAsync(
      const std::vector<http::ByteRange>& ranges);
};

/// RandomAccessFile over an in-memory buffer: the "local file" baseline
/// and the reference for end-to-end equivalence tests.
class MemoryFile : public RandomAccessFile {
 public:
  explicit MemoryFile(std::string data) : data_(std::move(data)) {}

  uint64_t Size() const override { return data_.size(); }
  Result<std::string> PRead(uint64_t offset, uint64_t length) override;

  /// Reads performed (for I/O accounting in tests).
  uint64_t reads() const { return reads_; }

 private:
  std::string data_;
  uint64_t reads_ = 0;
};

}  // namespace root
}  // namespace davix

#endif  // DAVIX_ROOT_RANDOM_ACCESS_FILE_H_
