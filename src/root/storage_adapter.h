#ifndef DAVIX_ROOT_STORAGE_ADAPTER_H_
#define DAVIX_ROOT_STORAGE_ADAPTER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "core/context.h"
#include "core/request_params.h"
#include "root/random_access_file.h"

namespace davix {
namespace root {

/// Everything an opener may need to build a transport: the shared
/// Context (session pool, dispatcher, cache) and the per-request tuning
/// knobs, which each scheme plumbs through to its transport — e.g. the
/// `davix+mux` opener forces RequestParams::transport to kMux but keeps
/// the caller's deadlines, retry policy, and cache settings.
struct StorageOpenParams {
  /// Required for the davix-based schemes; must outlive the opened file.
  core::Context* context = nullptr;
  core::RequestParams request;
};

/// Scheme → transport registry, the `StorageAdapter` seam of ROADMAP
/// item 2: analysis code names a URL ("davix://host:port/path") and the
/// registry builds the matching RandomAccessFile, the way CMSSW's
/// StorageMaker plugins map "http:"/"root:" onto TFile transports.
///
/// Built-in schemes (see Default()):
///   davix://host:port/path      HTTP over the pooled transport
///   http://host:port/path       alias of davix://
///   davix+mux://host:port/path  same stack over the framed mux transport
///   xrd://host:port/path        the xrootd-like protocol (the returned
///                               file owns its client connection)
///
/// Thread-safe: yes — registration and lookup are serialised by an
/// internal mutex; openers themselves run outside the lock.
class StorageAdapterRegistry {
 public:
  /// Receives the URL with its "scheme://" prefix already stripped
  /// ("host:port/path"), so openers never re-parse the scheme.
  using Opener = std::function<Result<std::unique_ptr<RandomAccessFile>>(
      const std::string& rest, const StorageOpenParams& params)>;

  /// The process-wide registry, pre-registered with the built-in
  /// schemes listed above.
  static StorageAdapterRegistry& Default();

  /// Registers (or overrides) the opener for `scheme` (no "://").
  void Register(const std::string& scheme, Opener opener);

  /// Splits the scheme off `url` and dispatches to its opener. Unknown
  /// schemes fail with kNotSupported naming the registered ones.
  Result<std::unique_ptr<RandomAccessFile>> Open(
      const std::string& url, const StorageOpenParams& params) const;

  /// Registered scheme names, sorted.
  std::vector<std::string> Schemes() const;

 private:
  mutable Mutex mu_;
  std::map<std::string, Opener> openers_ GUARDED_BY(mu_);
};

/// Convenience for the common case: Default().Open(url, params).
Result<std::unique_ptr<RandomAccessFile>> OpenStorage(
    const std::string& url, const StorageOpenParams& params);

}  // namespace root
}  // namespace davix

#endif  // DAVIX_ROOT_STORAGE_ADAPTER_H_
