#ifndef DAVIX_ROOT_ANALYSIS_JOB_H_
#define DAVIX_ROOT_ANALYSIS_JOB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "root/storage_adapter.h"
#include "root/tree_cache.h"

namespace davix {
namespace root {

/// Parameters of one analysis job run — the paper's §3 workload: "a High
/// energy analysis job based on ROOT framework reading a fraction or the
/// totality of around 12000 particles events".
struct AnalysisConfig {
  /// Fraction of events processed, from the start of the tree (the
  /// paper's "fraction or totality"; Figure 4 uses 100 %).
  double fraction = 1.0;
  /// Names of branches the job touches; empty = all branches.
  std::vector<std::string> branches;
  /// Floating-point work per event, modelling the physics computation.
  /// Roughly tens of nanoseconds per iteration.
  uint32_t compute_iterations_per_event = 2000;
  TreeCacheConfig cache;
};

/// Outcome + accounting of a run.
struct AnalysisReport {
  uint64_t events_processed = 0;
  /// Deterministic aggregate over the event payloads. Equal across
  /// transports for the same tree — the end-to-end correctness check.
  double physics_sum = 0;
  double wall_seconds = 0;
  TreeCacheStats io;
};

/// Runs the analysis over `file` (any transport). Sequential event loop:
/// for each event, fetch the active branches' baskets through the
/// TreeCache, fold the payload bytes into the aggregate, and burn the
/// configured amount of per-event compute.
Result<AnalysisReport> RunAnalysis(RandomAccessFile* file,
                                   const AnalysisConfig& config);

/// URL form: resolves the transport through the StorageAdapter registry
/// ("davix://", "davix+mux://", "xrd://", ...) and runs the same job —
/// how the benchmarks and examples select transports by URL instead of
/// constructing adapters by hand.
Result<AnalysisReport> RunAnalysisOnUrl(const std::string& url,
                                        const AnalysisConfig& config,
                                        const StorageOpenParams& storage);

}  // namespace root
}  // namespace davix

#endif  // DAVIX_ROOT_ANALYSIS_JOB_H_
