#include "root/analysis_job.h"

#include <algorithm>

#include "common/clock.h"

namespace davix {
namespace root {
namespace {

/// Deterministic per-event floating point work. Kept opaque to the
/// optimizer through the running accumulator.
double BurnCompute(uint32_t iterations, double seed) {
  double x = seed + 1.000000001;
  for (uint32_t i = 0; i < iterations; ++i) {
    x = x * 1.0000001 + 0.1;
    if (x > 1e12) x *= 1e-12;
  }
  return x;
}

}  // namespace

Result<AnalysisReport> RunAnalysis(RandomAccessFile* file,
                                   const AnalysisConfig& config) {
  Stopwatch stopwatch;
  DAVIX_ASSIGN_OR_RETURN(TreeReader reader, TreeReader::Open(file));
  const TreeSpec& spec = reader.spec();

  std::vector<size_t> active;
  for (const std::string& name : config.branches) {
    DAVIX_ASSIGN_OR_RETURN(size_t index, reader.BranchIndex(name));
    active.push_back(index);
  }
  if (active.empty()) {
    active.resize(spec.branches.size());
    for (size_t i = 0; i < active.size(); ++i) active[i] = i;
  }

  TreeCache cache(&reader, active, config.cache);

  double fraction = std::clamp(config.fraction, 0.0, 1.0);
  uint64_t n_events =
      static_cast<uint64_t>(static_cast<double>(spec.n_events) * fraction);

  AnalysisReport report;
  double aggregate = 0;
  for (uint64_t event = 0; event < n_events; ++event) {
    uint64_t row = event / spec.events_per_basket;
    uint64_t in_basket = event % spec.events_per_basket;
    for (size_t branch : active) {
      DAVIX_ASSIGN_OR_RETURN(std::shared_ptr<const std::string> basket,
                             cache.GetBasket(branch, row));
      uint32_t width = spec.branches[branch].bytes_per_event;
      size_t begin = static_cast<size_t>(in_basket) * width;
      if (begin + width > basket->size()) {
        return Status::Corruption("basket shorter than event layout");
      }
      // Fold the payload into the aggregate: every byte read influences
      // the result, so a single corrupted or misplaced byte fails the
      // cross-transport equality check.
      uint64_t fold = 0;
      for (uint32_t i = 0; i < width; ++i) {
        fold = fold * 131 +
               static_cast<unsigned char>((*basket)[begin + i]);
      }
      aggregate += static_cast<double>(fold % 1000003);
    }
    aggregate += BurnCompute(config.compute_iterations_per_event,
                             static_cast<double>(event % 97)) *
                 1e-9;
    ++report.events_processed;
  }

  report.physics_sum = aggregate;
  report.io = cache.stats();
  report.wall_seconds = stopwatch.ElapsedSeconds();
  return report;
}

Result<AnalysisReport> RunAnalysisOnUrl(const std::string& url,
                                        const AnalysisConfig& config,
                                        const StorageOpenParams& storage) {
  DAVIX_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                         OpenStorage(url, storage));
  return RunAnalysis(file.get(), config);
}

}  // namespace root
}  // namespace davix
