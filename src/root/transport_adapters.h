#ifndef DAVIX_ROOT_TRANSPORT_ADAPTERS_H_
#define DAVIX_ROOT_TRANSPORT_ADAPTERS_H_

#include <memory>
#include <string>

#include "core/context.h"
#include "core/dav_file.h"
#include "core/request_params.h"
#include "root/random_access_file.h"
#include "xrootd/xrd_client.h"

namespace davix {
namespace root {

/// RandomAccessFile over davix (HTTP) — the TDavixFile role.
///
/// Vectored reads become §2.3 multi-range queries. SupportsAsyncVec() is
/// true: PReadVecAsync schedules the same parallel ReadPartialVec
/// dispatch on the Context's dispatcher pool, so the TreeCache can
/// overlap the next cluster's fetch with decompression and compute —
/// closing the Figure 4 WAN gap the paper's synchronous davix exposed.
class DavixRandomAccessFile : public RandomAccessFile {
 public:
  /// Stats the remote file to learn its size. `context` must outlive the
  /// returned object.
  static Result<std::unique_ptr<DavixRandomAccessFile>> Open(
      core::Context* context, const std::string& url,
      core::RequestParams params = {});

  uint64_t Size() const override { return size_; }
  Result<std::string> PRead(uint64_t offset, uint64_t length) override;
  Result<std::vector<std::string>> PReadVec(
      const std::vector<http::ByteRange>& ranges) override;
  bool SupportsAsyncVec() const override { return true; }
  std::unique_ptr<PendingVecRead> PReadVecAsync(
      const std::vector<http::ByteRange>& ranges) override;

 private:
  DavixRandomAccessFile(core::DavFile file, core::RequestParams params,
                        uint64_t size)
      : file_(std::move(file)), params_(std::move(params)), size_(size) {}

  core::DavFile file_;
  core::RequestParams params_;
  uint64_t size_;
};

/// RandomAccessFile over the xrootd-like protocol — the TXNetFile role.
///
/// Vectored reads are single kReadVector frames; SupportsAsyncVec() is
/// true, enabling the TreeCache's overlapped (sliding-window) prefetch.
class XrdRandomAccessFile : public RandomAccessFile {
 public:
  /// Opens `path` on an already-logged-in client. `client` must outlive
  /// the returned object, which closes the handle on destruction.
  static Result<std::unique_ptr<XrdRandomAccessFile>> Open(
      xrootd::XrdClient* client, const std::string& path);

  ~XrdRandomAccessFile() override;

  uint64_t Size() const override { return size_; }
  Result<std::string> PRead(uint64_t offset, uint64_t length) override;
  Result<std::vector<std::string>> PReadVec(
      const std::vector<http::ByteRange>& ranges) override;
  bool SupportsAsyncVec() const override { return true; }
  std::unique_ptr<PendingVecRead> PReadVecAsync(
      const std::vector<http::ByteRange>& ranges) override;

 private:
  XrdRandomAccessFile(xrootd::XrdClient* client, uint32_t handle,
                      uint64_t size)
      : client_(client), handle_(handle), size_(size) {}

  xrootd::XrdClient* client_;
  uint32_t handle_;
  uint64_t size_;
};

}  // namespace root
}  // namespace davix

#endif  // DAVIX_ROOT_TRANSPORT_ADAPTERS_H_
