#ifndef DAVIX_ROOT_TREE_CACHE_H_
#define DAVIX_ROOT_TREE_CACHE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "root/tree_reader.h"

namespace davix {
namespace root {

/// TreeCache knobs.
struct TreeCacheConfig {
  /// Learn the access pattern and gather the baskets of a whole cluster
  /// window into one vectored read. Disabling reproduces the naive
  /// client: one remote read per basket — the §2.3 "very large number of
  /// individual data access operations".
  bool enabled = true;

  /// Basket rows (cluster steps) fetched per vectored read.
  uint32_t cluster_rows = 4;

  /// Overlap the fetch of upcoming clusters with consumption of the
  /// current one when the transport supports asynchronous vectored reads
  /// (both the XRootD adapter and the dispatcher-backed davix adapter
  /// do). Off by default: the synchronous behaviour is the paper's
  /// davix design point that Figure 4's WAN column exposes.
  bool async_prefetch = false;

  /// How many future clusters may be in flight at once — the pipeline
  /// depth. Depth 1 reproduces the classic "one pending prefetch"
  /// sliding window; depth >= 2 keeps a fetch in flight even while the
  /// just-arrived cluster is being decompressed, which is what hides
  /// full WAN round trips behind compute. Clamped to at least 1.
  uint32_t prefetch_pipeline_clusters = 2;

  /// Byte budget of the asynchronous prefetch window (the "sliding
  /// window" of §3): at most this many bytes may be requested early
  /// across all in-flight prefetches; a cluster whose prefix exhausts
  /// the budget is requested partially and the remainder is fetched
  /// synchronously on arrival (never refetching the early bytes).
  /// 0 = no byte cap; the window is bounded by the pipeline depth only.
  uint64_t prefetch_window_bytes = 2 * 1024 * 1024;

  /// Adaptive engagement: read-ahead only pays off on high-latency
  /// paths, so (like adaptive readahead in real HPC clients) the window
  /// is engaged only once a fully-synchronous cluster fetch has taken
  /// longer than this threshold. 0 engages it unconditionally.
  int64_t prefetch_latency_threshold_micros = 0;
};

/// I/O accounting the benchmarks report.
struct TreeCacheStats {
  uint64_t vector_reads = 0;      ///< vectored read calls issued
  uint64_t ranges_requested = 0;  ///< basket ranges inside them
  uint64_t bytes_fetched = 0;     ///< payload bytes delivered to the cache
  uint64_t clusters_fetched = 0;
  uint64_t async_prefetches = 0;  ///< prefetches consumed by a cluster load
  uint64_t single_reads = 0;      ///< per-basket reads (cache disabled)
  /// Bytes that arrived through a consumed prefetch — the early-requested
  /// portion of bytes_fetched (the rest came from synchronous remainders).
  uint64_t bytes_prefetched_early = 0;
  /// Prefetches discarded because the consumer seeked elsewhere (or the
  /// cache was destroyed with fetches in flight). Their bytes are not
  /// counted in bytes_fetched.
  uint64_t prefetch_discards = 0;
  /// Time spent blocked waiting on consumed prefetches. The overlap win
  /// is the fetch latency this number does NOT contain: a prefetch fully
  /// hidden behind compute contributes ~0 here.
  uint64_t prefetch_wait_micros = 0;
};

/// The TTreeCache reproduction (§2.3): "this feature allows to gather
/// and pack a large number of fragmented random I/O requests ... in a
/// large vectored query", which davix then turns into HTTP multi-range
/// requests.
///
/// Baskets are served from a per-cluster cache; moving into a new
/// cluster triggers one vectored read covering the active branches'
/// baskets for `cluster_rows` basket rows. With async_prefetch on and an
/// async-capable transport, upcoming clusters are fetched through a
/// pipelined sliding window (up to `prefetch_pipeline_clusters` in
/// flight, `prefetch_window_bytes` requested early) so fetch overlaps
/// decompression and compute — on both XRootD and davix transports.
///
/// Not thread-safe: one cache per analysis job, like TTreeCache. (The
/// in-flight prefetches it owns run on the transport's own threads; the
/// destructor drains them before returning.)
class TreeCache {
 public:
  /// `reader` must outlive the cache. `active_branches` are indices into
  /// the tree's branch list; empty means all branches.
  TreeCache(TreeReader* reader, std::vector<size_t> active_branches,
            TreeCacheConfig config = {});

  /// Drains any in-flight prefetches (counted as discards) so no
  /// transport callback outlives the cache or its file.
  ~TreeCache();

  /// Decompressed basket `row` of branch `branch`. The returned pointer
  /// stays valid until the cache moves two clusters ahead.
  Result<std::shared_ptr<const std::string>> GetBasket(size_t branch,
                                                       uint64_t row);

  const TreeCacheStats& stats() const { return stats_; }
  const TreeCacheConfig& config() const { return config_; }

 private:
  struct Cluster {
    uint64_t first_row = 0;
    /// Raw (still compressed) blobs keyed by (branch, row).
    std::map<std::pair<size_t, uint64_t>, std::string> blobs;
    /// Decompressed baskets, filled lazily.
    std::map<std::pair<size_t, uint64_t>, std::shared_ptr<const std::string>>
        decoded;
  };

  /// One in-flight async prefetch of (a prefix of) a future cluster.
  struct Prefetch {
    uint64_t first_row = 0;
    std::vector<std::pair<size_t, uint64_t>> keys;  // range order
    std::vector<http::ByteRange> ranges;
    std::unique_ptr<PendingVecRead> pending;
    /// Sum of the requested range lengths, held against the window
    /// budget until the prefetch is consumed or discarded.
    uint64_t planned_bytes = 0;
    /// True when the byte budget truncated this cluster's plan (only a
    /// prefix was requested); deeper pipelining stops at such an entry.
    bool truncated = false;
  };

  uint64_t ClusterOf(uint64_t row) const {
    return row / config_.cluster_rows;
  }

  /// Ranges + keys of cluster starting at `first_row`, capped at
  /// `byte_budget` (0 = no cap). Ranges follow file-offset order.
  void PlanCluster(uint64_t first_row, uint64_t byte_budget,
                   std::vector<std::pair<size_t, uint64_t>>* keys,
                   std::vector<http::ByteRange>* ranges) const;

  /// Makes `cluster_` hold the cluster containing `row`: consumes the
  /// matching pipelined prefetch (discarding mismatched ones), fetches
  /// the uncovered remainder synchronously, then tops the pipeline back
  /// up with fetches of upcoming clusters.
  Status LoadCluster(uint64_t row);

  /// Pops the front pipeline entry, waits out its transport call, and
  /// counts it as a discard (its bytes are dropped).
  void DiscardFrontPrefetch();

  /// Starts new prefetches for clusters after `current_first_row` (or
  /// after the deepest already in flight) until the pipeline depth or
  /// the window byte budget is reached.
  void TopUpPipeline(uint64_t current_first_row);

  TreeReader* reader_;
  std::vector<size_t> active_branches_;
  TreeCacheConfig config_;
  TreeCacheStats stats_;
  std::unique_ptr<Cluster> cluster_;
  /// In-flight prefetches, ordered by first_row (front = next expected).
  std::deque<Prefetch> pipeline_;
  /// Sum of planned_bytes across pipeline_ — the window occupancy.
  uint64_t inflight_prefetch_bytes_ = 0;
  /// Latched true once a synchronous fetch crossed the latency
  /// threshold; gates async prefetch when a threshold is configured.
  bool high_latency_path_ = false;
  /// Naive-mode state: current basket per branch.
  std::map<size_t, std::pair<uint64_t, std::shared_ptr<const std::string>>>
      last_basket_;
};

}  // namespace root
}  // namespace davix

#endif  // DAVIX_ROOT_TREE_CACHE_H_
