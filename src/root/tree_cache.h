#ifndef DAVIX_ROOT_TREE_CACHE_H_
#define DAVIX_ROOT_TREE_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "root/tree_reader.h"

namespace davix {
namespace root {

/// TreeCache knobs.
struct TreeCacheConfig {
  /// Learn the access pattern and gather the baskets of a whole cluster
  /// window into one vectored read. Disabling reproduces the naive
  /// client: one remote read per basket — the §2.3 "very large number of
  /// individual data access operations".
  bool enabled = true;

  /// Basket rows (cluster steps) fetched per vectored read.
  uint32_t cluster_rows = 4;

  /// Overlap the fetch of the next cluster with consumption of the
  /// current one when the transport supports asynchronous vectored reads
  /// (XRootD-style). Ignored for synchronous transports like davix.
  bool async_prefetch = false;

  /// Byte budget of the asynchronous prefetch window (the "sliding
  /// window" of §3): at most this many bytes of the next cluster are
  /// requested early; the remainder is fetched synchronously on arrival.
  /// 0 = prefetch the entire next cluster.
  uint64_t prefetch_window_bytes = 2 * 1024 * 1024;

  /// Adaptive engagement: read-ahead only pays off on high-latency
  /// paths, so (like adaptive readahead in real HPC clients) the window
  /// is engaged only once a fully-synchronous cluster fetch has taken
  /// longer than this threshold. 0 engages it unconditionally.
  int64_t prefetch_latency_threshold_micros = 0;
};

/// I/O accounting the benchmarks report.
struct TreeCacheStats {
  uint64_t vector_reads = 0;      ///< vectored read calls issued
  uint64_t ranges_requested = 0;  ///< basket ranges inside them
  uint64_t bytes_fetched = 0;
  uint64_t clusters_fetched = 0;
  uint64_t async_prefetches = 0;  ///< prefetches that overlapped
  uint64_t single_reads = 0;      ///< per-basket reads (cache disabled)
};

/// The TTreeCache reproduction (§2.3): "this feature allows to gather
/// and pack a large number of fragmented random I/O requests ... in a
/// large vectored query", which davix then turns into HTTP multi-range
/// requests.
///
/// Baskets are served from a per-cluster cache; moving into a new
/// cluster triggers one vectored read covering the active branches'
/// baskets for `cluster_rows` basket rows, optionally overlapped with
/// computation via async prefetch (the XRootD-side advantage).
///
/// Not thread-safe: one cache per analysis job, like TTreeCache.
class TreeCache {
 public:
  /// `reader` must outlive the cache. `active_branches` are indices into
  /// the tree's branch list; empty means all branches.
  TreeCache(TreeReader* reader, std::vector<size_t> active_branches,
            TreeCacheConfig config = {});

  /// Decompressed basket `row` of branch `branch`. The returned pointer
  /// stays valid until the cache moves two clusters ahead.
  Result<std::shared_ptr<const std::string>> GetBasket(size_t branch,
                                                       uint64_t row);

  const TreeCacheStats& stats() const { return stats_; }
  const TreeCacheConfig& config() const { return config_; }

 private:
  struct Cluster {
    uint64_t first_row = 0;
    /// Raw (still compressed) blobs keyed by (branch, row).
    std::map<std::pair<size_t, uint64_t>, std::string> blobs;
    /// Decompressed baskets, filled lazily.
    std::map<std::pair<size_t, uint64_t>, std::shared_ptr<const std::string>>
        decoded;
  };

  /// Pending async prefetch of (a prefix of) a cluster.
  struct Prefetch {
    uint64_t first_row = 0;
    std::vector<std::pair<size_t, uint64_t>> keys;  // range order
    std::vector<http::ByteRange> ranges;
    std::unique_ptr<PendingVecRead> pending;
  };

  uint64_t ClusterOf(uint64_t row) const {
    return row / config_.cluster_rows;
  }

  /// Ranges + keys of cluster starting at `first_row`, capped at
  /// `byte_budget` (0 = no cap). Ranges follow file-offset order.
  void PlanCluster(uint64_t first_row, uint64_t byte_budget,
                   std::vector<std::pair<size_t, uint64_t>>* keys,
                   std::vector<http::ByteRange>* ranges) const;

  /// Makes `cluster_` hold the cluster containing `row`, using the
  /// pending prefetch when it matches, then (maybe) starts the next
  /// prefetch.
  Status LoadCluster(uint64_t row);

  TreeReader* reader_;
  std::vector<size_t> active_branches_;
  TreeCacheConfig config_;
  TreeCacheStats stats_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Prefetch> prefetch_;
  /// Latched true once a synchronous fetch crossed the latency
  /// threshold; gates async prefetch when a threshold is configured.
  bool high_latency_path_ = false;
  /// Naive-mode state: current basket per branch.
  std::map<size_t, std::pair<uint64_t, std::shared_ptr<const std::string>>>
      last_basket_;
};

}  // namespace root
}  // namespace davix

#endif  // DAVIX_ROOT_TREE_CACHE_H_
