#include "root/tree_cache.h"

#include <algorithm>
#include <numeric>

#include "common/clock.h"

namespace davix {
namespace root {

TreeCache::TreeCache(TreeReader* reader, std::vector<size_t> active_branches,
                     TreeCacheConfig config)
    : reader_(reader),
      active_branches_(std::move(active_branches)),
      config_(config) {
  if (active_branches_.empty()) {
    active_branches_.resize(reader_->spec().branches.size());
    std::iota(active_branches_.begin(), active_branches_.end(), 0);
  }
  if (config_.cluster_rows == 0) config_.cluster_rows = 1;
}

void TreeCache::PlanCluster(
    uint64_t first_row, uint64_t byte_budget,
    std::vector<std::pair<size_t, uint64_t>>* keys,
    std::vector<http::ByteRange>* ranges) const {
  const TreeIndex& index = reader_->index();
  uint64_t n_rows = index.spec.BasketCountPerBranch();
  uint64_t last_row =
      std::min<uint64_t>(first_row + config_.cluster_rows, n_rows);
  // File-offset order = row-major over the cluster-major layout.
  uint64_t budget_used = 0;
  for (uint64_t row = first_row; row < last_row; ++row) {
    for (size_t branch : active_branches_) {
      const BasketInfo& info = index.baskets[branch][row];
      if (byte_budget > 0 && budget_used + info.stored_length > byte_budget &&
          !keys->empty()) {
        return;  // window budget exhausted
      }
      budget_used += info.stored_length;
      keys->emplace_back(branch, row);
      ranges->push_back(http::ByteRange{info.offset, info.stored_length});
    }
  }
}

Status TreeCache::LoadCluster(uint64_t row) {
  uint64_t first_row = ClusterOf(row) * config_.cluster_rows;
  auto cluster = std::make_unique<Cluster>();
  cluster->first_row = first_row;

  std::vector<std::pair<size_t, uint64_t>> have_keys;
  // Use the async prefetch if it targeted this cluster.
  if (prefetch_ != nullptr && prefetch_->first_row == first_row) {
    Prefetch prefetch = std::move(*prefetch_);
    prefetch_.reset();
    Result<std::vector<std::string>> data = prefetch.pending->Wait();
    if (data.ok()) {
      ++stats_.async_prefetches;
      for (size_t i = 0; i < prefetch.keys.size(); ++i) {
        stats_.bytes_fetched += (*data)[i].size();
        cluster->blobs[prefetch.keys[i]] = std::move((*data)[i]);
      }
      have_keys = std::move(prefetch.keys);
    }
    // On prefetch failure fall through: the synchronous read below
    // fetches everything.
  } else if (prefetch_ != nullptr) {
    // Stale prefetch (seek / fraction boundary): discard its data.
    prefetch_->pending->Wait();
    prefetch_.reset();
  }

  // Fetch whatever the prefetch did not cover, synchronously.
  std::vector<std::pair<size_t, uint64_t>> keys;
  std::vector<http::ByteRange> ranges;
  PlanCluster(first_row, 0, &keys, &ranges);
  std::vector<std::pair<size_t, uint64_t>> missing_keys;
  std::vector<http::ByteRange> missing_ranges;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (std::find(have_keys.begin(), have_keys.end(), keys[i]) ==
        have_keys.end()) {
      missing_keys.push_back(keys[i]);
      missing_ranges.push_back(ranges[i]);
    }
  }
  if (!missing_ranges.empty()) {
    ++stats_.vector_reads;
    stats_.ranges_requested += missing_ranges.size();
    int64_t fetch_start = MonotonicMicros();
    DAVIX_ASSIGN_OR_RETURN(std::vector<std::string> data,
                           reader_->file()->PReadVec(missing_ranges));
    int64_t fetch_micros = MonotonicMicros() - fetch_start;
    // Adaptive readahead: a whole-cluster synchronous fetch slower than
    // the threshold marks this as a high-latency path worth prefetching.
    if (have_keys.empty() &&
        fetch_micros > config_.prefetch_latency_threshold_micros) {
      high_latency_path_ = true;
    }
    for (size_t i = 0; i < missing_keys.size(); ++i) {
      stats_.bytes_fetched += data[i].size();
      cluster->blobs[missing_keys[i]] = std::move(data[i]);
    }
  }
  ++stats_.clusters_fetched;
  cluster_ = std::move(cluster);

  // Kick off the overlapped prefetch of (a window of) the next cluster.
  bool engage = config_.prefetch_latency_threshold_micros == 0 ||
                high_latency_path_;
  if (engage && config_.async_prefetch &&
      reader_->file()->SupportsAsyncVec()) {
    uint64_t next_first = first_row + config_.cluster_rows;
    if (next_first < reader_->spec().BasketCountPerBranch()) {
      auto prefetch = std::make_unique<Prefetch>();
      prefetch->first_row = next_first;
      PlanCluster(next_first, config_.prefetch_window_bytes, &prefetch->keys,
                  &prefetch->ranges);
      if (!prefetch->keys.empty()) {
        ++stats_.vector_reads;
        stats_.ranges_requested += prefetch->ranges.size();
        prefetch->pending =
            reader_->file()->PReadVecAsync(prefetch->ranges);
        prefetch_ = std::move(prefetch);
      }
    }
  }
  return Status::OK();
}

Result<std::shared_ptr<const std::string>> TreeCache::GetBasket(
    size_t branch, uint64_t row) {
  const TreeIndex& index = reader_->index();
  if (branch >= index.baskets.size() ||
      row >= index.spec.BasketCountPerBranch()) {
    return Status::InvalidArgument("basket (" + std::to_string(branch) + "," +
                                   std::to_string(row) + ") out of range");
  }

  if (!config_.enabled) {
    // Naive mode (TTree without TTreeCache): one remote read per basket,
    // keeping only the current basket of each branch.
    auto last = last_basket_.find(branch);
    if (last != last_basket_.end() && last->second.first == row) {
      return last->second.second;
    }
    const BasketInfo& info = index.baskets[branch][row];
    ++stats_.single_reads;
    DAVIX_ASSIGN_OR_RETURN(std::string blob,
                           reader_->file()->PRead(info.offset,
                                                  info.stored_length));
    stats_.bytes_fetched += blob.size();
    DAVIX_ASSIGN_OR_RETURN(std::string decoded,
                           TreeReader::DecodeBasket(blob));
    auto shared = std::make_shared<const std::string>(std::move(decoded));
    last_basket_[branch] = {row, shared};
    return shared;
  }

  std::pair<size_t, uint64_t> key(branch, row);
  if (cluster_ == nullptr || ClusterOf(row) != ClusterOf(cluster_->first_row)) {
    DAVIX_RETURN_IF_ERROR(LoadCluster(row));
  }
  auto decoded_it = cluster_->decoded.find(key);
  if (decoded_it != cluster_->decoded.end()) return decoded_it->second;

  auto blob_it = cluster_->blobs.find(key);
  if (blob_it == cluster_->blobs.end()) {
    // Branch not in the active set (mis-declared access pattern): fall
    // back to a single read, like TTreeCache does on a cache miss.
    const BasketInfo& info = index.baskets[branch][row];
    ++stats_.single_reads;
    DAVIX_ASSIGN_OR_RETURN(std::string blob,
                           reader_->file()->PRead(info.offset,
                                                  info.stored_length));
    stats_.bytes_fetched += blob.size();
    blob_it = cluster_->blobs.emplace(key, std::move(blob)).first;
  }
  DAVIX_ASSIGN_OR_RETURN(std::string decoded,
                         TreeReader::DecodeBasket(blob_it->second));
  auto shared = std::make_shared<const std::string>(std::move(decoded));
  cluster_->decoded[key] = shared;
  return shared;
}

}  // namespace root
}  // namespace davix
