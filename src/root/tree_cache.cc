#include "root/tree_cache.h"

#include <algorithm>
#include <numeric>

#include "common/clock.h"

namespace davix {
namespace root {

TreeCache::TreeCache(TreeReader* reader, std::vector<size_t> active_branches,
                     TreeCacheConfig config)
    : reader_(reader),
      active_branches_(std::move(active_branches)),
      config_(config) {
  if (active_branches_.empty()) {
    active_branches_.resize(reader_->spec().branches.size());
    std::iota(active_branches_.begin(), active_branches_.end(), 0);
  }
  if (config_.cluster_rows == 0) config_.cluster_rows = 1;
  if (config_.prefetch_pipeline_clusters == 0) {
    config_.prefetch_pipeline_clusters = 1;
  }
}

TreeCache::~TreeCache() {
  // Drain in-flight transport calls before the file (and this object)
  // can go away; whatever they carried is dropped unconsumed.
  while (!pipeline_.empty()) DiscardFrontPrefetch();
}

void TreeCache::PlanCluster(
    uint64_t first_row, uint64_t byte_budget,
    std::vector<std::pair<size_t, uint64_t>>* keys,
    std::vector<http::ByteRange>* ranges) const {
  const TreeIndex& index = reader_->index();
  uint64_t n_rows = index.spec.BasketCountPerBranch();
  uint64_t last_row =
      std::min<uint64_t>(first_row + config_.cluster_rows, n_rows);
  // File-offset order = row-major over the cluster-major layout.
  uint64_t budget_used = 0;
  for (uint64_t row = first_row; row < last_row; ++row) {
    for (size_t branch : active_branches_) {
      const BasketInfo& info = index.baskets[branch][row];
      if (byte_budget > 0 && budget_used + info.stored_length > byte_budget &&
          !keys->empty()) {
        return;  // window budget exhausted
      }
      budget_used += info.stored_length;
      keys->emplace_back(branch, row);
      ranges->push_back(http::ByteRange{info.offset, info.stored_length});
    }
  }
}

void TreeCache::DiscardFrontPrefetch() {
  Prefetch stale = std::move(pipeline_.front());
  pipeline_.pop_front();
  inflight_prefetch_bytes_ -= stale.planned_bytes;
  // The transport call must finish before its buffers (and the file it
  // reads through) can be released; the payload is then dropped.
  (void)stale.pending->Wait();
  ++stats_.prefetch_discards;
}

void TreeCache::TopUpPipeline(uint64_t current_first_row) {
  bool engage = config_.prefetch_latency_threshold_micros == 0 ||
                high_latency_path_;
  if (!engage || !config_.async_prefetch ||
      !reader_->file()->SupportsAsyncVec()) {
    return;
  }
  // A budget-truncated entry already owns the rest of the window; going
  // deeper would fetch cluster N+2 bytes before N+1 is complete.
  if (!pipeline_.empty() && pipeline_.back().truncated) return;
  uint64_t n_rows = reader_->spec().BasketCountPerBranch();
  uint64_t next_first = pipeline_.empty()
                            ? current_first_row + config_.cluster_rows
                            : pipeline_.back().first_row + config_.cluster_rows;
  while (pipeline_.size() < config_.prefetch_pipeline_clusters &&
         next_first < n_rows) {
    uint64_t budget = 0;  // 0 = the whole cluster
    if (config_.prefetch_window_bytes > 0) {
      if (inflight_prefetch_bytes_ >= config_.prefetch_window_bytes) return;
      budget = config_.prefetch_window_bytes - inflight_prefetch_bytes_;
    }
    Prefetch prefetch;
    prefetch.first_row = next_first;
    PlanCluster(next_first, budget, &prefetch.keys, &prefetch.ranges);
    if (prefetch.keys.empty()) return;
    uint64_t rows_in_cluster =
        std::min<uint64_t>(next_first + config_.cluster_rows, n_rows) -
        next_first;
    prefetch.truncated =
        prefetch.keys.size() < rows_in_cluster * active_branches_.size();
    // A budget-truncated prefix pays a synchronous remainder fetch when
    // consumed. That trade is worth it only for the immediate next
    // cluster (the prefix still overlaps with the current compute); deep
    // in the pipeline it would just stall the window, so stop instead
    // and let the freed budget issue a full cluster later.
    if (prefetch.truncated && !pipeline_.empty()) return;
    for (const http::ByteRange& range : prefetch.ranges) {
      prefetch.planned_bytes += range.length;
    }
    ++stats_.vector_reads;
    stats_.ranges_requested += prefetch.ranges.size();
    prefetch.pending = reader_->file()->PReadVecAsync(prefetch.ranges);
    inflight_prefetch_bytes_ += prefetch.planned_bytes;
    bool truncated = prefetch.truncated;
    pipeline_.push_back(std::move(prefetch));
    if (truncated) return;
    next_first += config_.cluster_rows;
  }
}

Status TreeCache::LoadCluster(uint64_t row) {
  uint64_t first_row = ClusterOf(row) * config_.cluster_rows;
  auto cluster = std::make_unique<Cluster>();
  cluster->first_row = first_row;

  // Entries ahead of the one we need cannot be consumed (the pipeline is
  // ordered): a seek invalidated them. Discard-and-count, never leak.
  while (!pipeline_.empty() && pipeline_.front().first_row != first_row) {
    DiscardFrontPrefetch();
  }

  std::vector<std::pair<size_t, uint64_t>> have_keys;
  if (!pipeline_.empty()) {
    Prefetch prefetch = std::move(pipeline_.front());
    pipeline_.pop_front();
    inflight_prefetch_bytes_ -= prefetch.planned_bytes;
    // The popped entry is now the demand fetch, not an early request: its
    // bytes leave the window, so deeper clusters can be issued *before*
    // blocking on it — the refill overlaps with this cluster's wait and
    // decompression both.
    TopUpPipeline(first_row);
    int64_t wait_start = MonotonicMicros();
    Result<std::vector<std::string>> data = prefetch.pending->Wait();
    stats_.prefetch_wait_micros +=
        static_cast<uint64_t>(MonotonicMicros() - wait_start);
    if (data.ok()) {
      ++stats_.async_prefetches;
      for (size_t i = 0; i < prefetch.keys.size(); ++i) {
        stats_.bytes_fetched += (*data)[i].size();
        stats_.bytes_prefetched_early += (*data)[i].size();
        cluster->blobs[prefetch.keys[i]] = std::move((*data)[i]);
      }
      have_keys = std::move(prefetch.keys);
    }
    // On prefetch failure fall through: the synchronous read below
    // fetches everything, so a transient in-flight error never doubles.
  }

  // Fetch whatever the prefetch did not cover, synchronously — only the
  // missing suffix, so early bytes are never requested twice.
  std::vector<std::pair<size_t, uint64_t>> keys;
  std::vector<http::ByteRange> ranges;
  PlanCluster(first_row, 0, &keys, &ranges);
  std::vector<std::pair<size_t, uint64_t>> missing_keys;
  std::vector<http::ByteRange> missing_ranges;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (std::find(have_keys.begin(), have_keys.end(), keys[i]) ==
        have_keys.end()) {
      missing_keys.push_back(keys[i]);
      missing_ranges.push_back(ranges[i]);
    }
  }
  if (!missing_ranges.empty()) {
    ++stats_.vector_reads;
    stats_.ranges_requested += missing_ranges.size();
    int64_t fetch_start = MonotonicMicros();
    DAVIX_ASSIGN_OR_RETURN(std::vector<std::string> data,
                           reader_->file()->PReadVec(missing_ranges));
    int64_t fetch_micros = MonotonicMicros() - fetch_start;
    // Adaptive readahead: a whole-cluster synchronous fetch slower than
    // the threshold marks this as a high-latency path worth prefetching.
    if (have_keys.empty() &&
        fetch_micros > config_.prefetch_latency_threshold_micros) {
      high_latency_path_ = true;
    }
    for (size_t i = 0; i < missing_keys.size(); ++i) {
      stats_.bytes_fetched += data[i].size();
      cluster->blobs[missing_keys[i]] = std::move(data[i]);
    }
  }
  ++stats_.clusters_fetched;
  cluster_ = std::move(cluster);

  // Keep the sliding window full: plan cluster N+1 (and deeper, up to
  // the pipeline depth) while N decompresses.
  TopUpPipeline(first_row);
  return Status::OK();
}

Result<std::shared_ptr<const std::string>> TreeCache::GetBasket(
    size_t branch, uint64_t row) {
  const TreeIndex& index = reader_->index();
  if (branch >= index.baskets.size() ||
      row >= index.spec.BasketCountPerBranch()) {
    return Status::InvalidArgument("basket (" + std::to_string(branch) + "," +
                                   std::to_string(row) + ") out of range");
  }

  if (!config_.enabled) {
    // Naive mode (TTree without TTreeCache): one remote read per basket,
    // keeping only the current basket of each branch.
    auto last = last_basket_.find(branch);
    if (last != last_basket_.end() && last->second.first == row) {
      return last->second.second;
    }
    const BasketInfo& info = index.baskets[branch][row];
    ++stats_.single_reads;
    DAVIX_ASSIGN_OR_RETURN(std::string blob,
                           reader_->file()->PRead(info.offset,
                                                  info.stored_length));
    stats_.bytes_fetched += blob.size();
    DAVIX_ASSIGN_OR_RETURN(std::string decoded,
                           TreeReader::DecodeBasket(blob));
    auto shared = std::make_shared<const std::string>(std::move(decoded));
    last_basket_[branch] = {row, shared};
    return shared;
  }

  std::pair<size_t, uint64_t> key(branch, row);
  if (cluster_ == nullptr || ClusterOf(row) != ClusterOf(cluster_->first_row)) {
    DAVIX_RETURN_IF_ERROR(LoadCluster(row));
  }
  auto decoded_it = cluster_->decoded.find(key);
  if (decoded_it != cluster_->decoded.end()) return decoded_it->second;

  auto blob_it = cluster_->blobs.find(key);
  if (blob_it == cluster_->blobs.end()) {
    // Branch not in the active set (mis-declared access pattern): fall
    // back to a single read, like TTreeCache does on a cache miss.
    const BasketInfo& info = index.baskets[branch][row];
    ++stats_.single_reads;
    DAVIX_ASSIGN_OR_RETURN(std::string blob,
                           reader_->file()->PRead(info.offset,
                                                  info.stored_length));
    stats_.bytes_fetched += blob.size();
    blob_it = cluster_->blobs.emplace(key, std::move(blob)).first;
  }
  DAVIX_ASSIGN_OR_RETURN(std::string decoded,
                         TreeReader::DecodeBasket(blob_it->second));
  auto shared = std::make_shared<const std::string>(std::move(decoded));
  cluster_->decoded[key] = shared;
  return shared;
}

}  // namespace root
}  // namespace davix
