#include "root/transport_adapters.h"

#include <algorithm>

namespace davix {
namespace root {

Result<std::unique_ptr<DavixRandomAccessFile>> DavixRandomAccessFile::Open(
    core::Context* context, const std::string& url,
    core::RequestParams params) {
  DAVIX_ASSIGN_OR_RETURN(core::DavFile file,
                         core::DavFile::Make(context, url));
  DAVIX_ASSIGN_OR_RETURN(core::FileInfo info, file.Stat(params));
  return std::unique_ptr<DavixRandomAccessFile>(new DavixRandomAccessFile(
      std::move(file), std::move(params), info.size));
}

Result<std::string> DavixRandomAccessFile::PRead(uint64_t offset,
                                                 uint64_t length) {
  if (offset >= size_) return std::string();
  length = std::min(length, size_ - offset);
  return file_.ReadPartial(offset, length, params_);
}

Result<std::vector<std::string>> DavixRandomAccessFile::PReadVec(
    const std::vector<http::ByteRange>& ranges) {
  return file_.ReadPartialVec(ranges, params_);
}

namespace {

/// Async token wrapping a dispatcher-scheduled ReadPartialVec. The
/// owning DavixRandomAccessFile must stay alive until Wait() returns
/// (the TreeCache drains every pending token before teardown).
class DavixPendingVecRead : public PendingVecRead {
 public:
  explicit DavixPendingVecRead(
      std::future<Result<std::vector<std::string>>> future)
      : future_(std::move(future)) {}

  Result<std::vector<std::string>> Wait() override { return future_.get(); }

 private:
  std::future<Result<std::vector<std::string>>> future_;
};

}  // namespace

std::unique_ptr<PendingVecRead> DavixRandomAccessFile::PReadVecAsync(
    const std::vector<http::ByteRange>& ranges) {
  return std::make_unique<DavixPendingVecRead>(
      file_.ReadPartialVecAsync(ranges, params_));
}

Result<std::unique_ptr<XrdRandomAccessFile>> XrdRandomAccessFile::Open(
    xrootd::XrdClient* client, const std::string& path) {
  DAVIX_ASSIGN_OR_RETURN(xrootd::OpenInfo info, client->Open(path));
  return std::unique_ptr<XrdRandomAccessFile>(
      new XrdRandomAccessFile(client, info.handle, info.size));
}

XrdRandomAccessFile::~XrdRandomAccessFile() {
  if (client_->IsAlive()) (void)client_->Close(handle_);
}

Result<std::string> XrdRandomAccessFile::PRead(uint64_t offset,
                                               uint64_t length) {
  if (offset >= size_) return std::string();
  length = std::min(length, size_ - offset);
  return client_->Read(handle_, offset, static_cast<uint32_t>(length));
}

Result<std::vector<std::string>> XrdRandomAccessFile::PReadVec(
    const std::vector<http::ByteRange>& ranges) {
  return client_->ReadVector(handle_, ranges);
}

namespace {

/// Async token wrapping an in-flight kReadVector frame.
class XrdPendingVecRead : public PendingVecRead {
 public:
  XrdPendingVecRead(std::future<Result<std::string>> raw, size_t count)
      : raw_(std::move(raw)), count_(count) {}

  Result<std::vector<std::string>> Wait() override {
    Result<std::string> payload = raw_.get();
    DAVIX_RETURN_IF_ERROR(payload.status());
    return xrootd::DecodeReadVectorResponse(*payload, count_);
  }

 private:
  std::future<Result<std::string>> raw_;
  size_t count_;
};

}  // namespace

std::unique_ptr<PendingVecRead> XrdRandomAccessFile::PReadVecAsync(
    const std::vector<http::ByteRange>& ranges) {
  return std::make_unique<XrdPendingVecRead>(
      client_->ReadVectorRawAsync(handle_, ranges), ranges.size());
}

}  // namespace root
}  // namespace davix
