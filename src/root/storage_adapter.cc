#include "root/storage_adapter.h"

#include <utility>

#include "root/transport_adapters.h"
#include "xrootd/xrd_client.h"

namespace davix {
namespace root {
namespace {

/// Splits "scheme://rest" into its parts; empty scheme on malformed URLs.
bool SplitScheme(const std::string& url, std::string* scheme,
                 std::string* rest) {
  size_t sep = url.find("://");
  if (sep == std::string::npos || sep == 0) return false;
  *scheme = url.substr(0, sep);
  *rest = url.substr(sep + 3);
  return true;
}

Result<std::unique_ptr<RandomAccessFile>> OpenDavix(
    const std::string& rest, const StorageOpenParams& params,
    core::TransportKind transport) {
  if (params.context == nullptr) {
    return Status::InvalidArgument(
        "davix storage schemes need StorageOpenParams::context");
  }
  core::RequestParams request = params.request;
  request.transport = transport;
  DAVIX_ASSIGN_OR_RETURN(
      std::unique_ptr<DavixRandomAccessFile> file,
      DavixRandomAccessFile::Open(params.context, "http://" + rest,
                                  std::move(request)));
  return std::unique_ptr<RandomAccessFile>(std::move(file));
}

/// xrd:// files own their client connection: the registry's caller holds
/// one object, not a (client, file) pair with ordering obligations.
class XrdOwnedFile : public RandomAccessFile {
 public:
  XrdOwnedFile(std::unique_ptr<xrootd::XrdClient> client,
               std::unique_ptr<XrdRandomAccessFile> file)
      : client_(std::move(client)), file_(std::move(file)) {}

  // The file closes its handle through the client, so it must die first:
  // members are destroyed in reverse declaration order below.
  ~XrdOwnedFile() override { file_.reset(); }

  uint64_t Size() const override { return file_->Size(); }
  Result<std::string> PRead(uint64_t offset, uint64_t length) override {
    return file_->PRead(offset, length);
  }
  Result<std::vector<std::string>> PReadVec(
      const std::vector<http::ByteRange>& ranges) override {
    return file_->PReadVec(ranges);
  }
  bool SupportsAsyncVec() const override { return file_->SupportsAsyncVec(); }
  std::unique_ptr<PendingVecRead> PReadVecAsync(
      const std::vector<http::ByteRange>& ranges) override {
    return file_->PReadVecAsync(ranges);
  }

 private:
  std::unique_ptr<xrootd::XrdClient> client_;
  std::unique_ptr<XrdRandomAccessFile> file_;
};

Result<std::unique_ptr<RandomAccessFile>> OpenXrd(
    const std::string& rest, const StorageOpenParams& /*params*/) {
  // rest = host:port/path — the xrootd-like protocol always names an
  // explicit port (there is no registered default here).
  size_t slash = rest.find('/');
  if (slash == std::string::npos) {
    return Status::InvalidArgument("xrd:// URL lacks a path: " + rest);
  }
  std::string authority = rest.substr(0, slash);
  std::string path = rest.substr(slash);
  size_t colon = authority.rfind(':');
  if (colon == std::string::npos || colon + 1 >= authority.size()) {
    return Status::InvalidArgument("xrd:// URL needs host:port: " + rest);
  }
  std::string host = authority.substr(0, colon);
  int port = 0;
  for (size_t i = colon + 1; i < authority.size(); ++i) {
    char c = authority[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad xrd:// port in: " + rest);
    }
    port = port * 10 + (c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("bad xrd:// port in: " + rest);
    }
  }
  DAVIX_ASSIGN_OR_RETURN(
      std::unique_ptr<xrootd::XrdClient> client,
      xrootd::XrdClient::Connect(host, static_cast<uint16_t>(port)));
  DAVIX_RETURN_IF_ERROR(client->Login());
  DAVIX_ASSIGN_OR_RETURN(std::unique_ptr<XrdRandomAccessFile> file,
                         XrdRandomAccessFile::Open(client.get(), path));
  return std::unique_ptr<RandomAccessFile>(
      std::make_unique<XrdOwnedFile>(std::move(client), std::move(file)));
}

}  // namespace

StorageAdapterRegistry& StorageAdapterRegistry::Default() {
  static StorageAdapterRegistry* registry = [] {
    auto* r = new StorageAdapterRegistry();
    r->Register("davix", [](const std::string& rest,
                            const StorageOpenParams& params) {
      return OpenDavix(rest, params, core::TransportKind::kPooled);
    });
    r->Register("http", [](const std::string& rest,
                           const StorageOpenParams& params) {
      return OpenDavix(rest, params, core::TransportKind::kPooled);
    });
    r->Register("davix+mux", [](const std::string& rest,
                                const StorageOpenParams& params) {
      return OpenDavix(rest, params, core::TransportKind::kMux);
    });
    r->Register("xrd", [](const std::string& rest,
                          const StorageOpenParams& params) {
      return OpenXrd(rest, params);
    });
    return r;
  }();
  return *registry;
}

void StorageAdapterRegistry::Register(const std::string& scheme,
                                      Opener opener) {
  MutexLock lock(mu_);
  openers_[scheme] = std::move(opener);
}

Result<std::unique_ptr<RandomAccessFile>> StorageAdapterRegistry::Open(
    const std::string& url, const StorageOpenParams& params) const {
  std::string scheme, rest;
  if (!SplitScheme(url, &scheme, &rest)) {
    return Status::InvalidArgument("storage URL lacks a scheme: " + url);
  }
  Opener opener;
  {
    MutexLock lock(mu_);
    auto it = openers_.find(scheme);
    if (it == openers_.end()) {
      std::string known;
      for (const auto& entry : openers_) {
        if (!known.empty()) known += ", ";
        known += entry.first;
      }
      return Status::NotSupported("no storage adapter for scheme '" + scheme +
                                  "' (registered: " + known + ")");
    }
    opener = it->second;
  }
  return opener(rest, params);
}

std::vector<std::string> StorageAdapterRegistry::Schemes() const {
  MutexLock lock(mu_);
  std::vector<std::string> schemes;
  for (const auto& entry : openers_) schemes.push_back(entry.first);
  return schemes;
}

Result<std::unique_ptr<RandomAccessFile>> OpenStorage(
    const std::string& url, const StorageOpenParams& params) {
  return StorageAdapterRegistry::Default().Open(url, params);
}

}  // namespace root
}  // namespace davix
