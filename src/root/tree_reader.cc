#include "root/tree_reader.h"

namespace davix {
namespace root {

Result<TreeReader> TreeReader::Open(RandomAccessFile* file) {
  DAVIX_ASSIGN_OR_RETURN(std::string header,
                         file->PRead(0, kTreeHeaderSize));
  DAVIX_ASSIGN_OR_RETURN(uint64_t region, TreeIndexRegionSize(header));
  if (region > file->Size()) {
    return Status::Corruption("tree index region exceeds file size");
  }
  DAVIX_ASSIGN_OR_RETURN(std::string head, file->PRead(0, region));
  DAVIX_ASSIGN_OR_RETURN(TreeIndex index, ParseTreeIndex(head));
  return TreeReader(file, std::move(index));
}

Result<size_t> TreeReader::BranchIndex(const std::string& name) const {
  for (size_t i = 0; i < index_.spec.branches.size(); ++i) {
    if (index_.spec.branches[i].name == name) return i;
  }
  return Status::NotFound("no branch named " + name);
}

Result<std::string> TreeReader::DecodeBasket(std::string_view blob) {
  return compress::Decompress(blob);
}

Result<OwnedTree> OpenTreeUrl(const std::string& url,
                              const StorageOpenParams& params) {
  OwnedTree tree;
  DAVIX_ASSIGN_OR_RETURN(tree.file, OpenStorage(url, params));
  DAVIX_ASSIGN_OR_RETURN(TreeReader reader, TreeReader::Open(tree.file.get()));
  tree.reader = std::make_unique<TreeReader>(std::move(reader));
  return tree;
}

}  // namespace root
}  // namespace davix
