#ifndef DAVIX_ROOT_TREE_FORMAT_H_
#define DAVIX_ROOT_TREE_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "compress/codec.h"

namespace davix {
namespace root {

/// One column ("branch") of the event tree: a fixed number of bytes per
/// event, like a flattened ROOT TBranch of simple types.
struct BranchSpec {
  std::string name;
  /// Bytes stored per event in this branch (e.g. 4 for a float).
  uint32_t bytes_per_event = 4;
};

/// Parameters of a synthetic tree file — the stand-in for the paper's
/// "700 MBytes root file" with "around 12000 particle events".
struct TreeSpec {
  uint64_t n_events = 12000;
  /// Events per basket (a basket is the unit of compression and of I/O,
  /// exactly as in ROOT).
  uint32_t events_per_basket = 250;
  compress::CodecType codec = compress::CodecType::kDlz;
  std::vector<BranchSpec> branches;

  /// The default HEP-flavoured schema: a few scalar kinematics branches
  /// plus one fat calorimeter-cells branch that dominates volume.
  static TreeSpec Default();

  uint64_t BytesPerEvent() const;
  uint64_t BasketCountPerBranch() const;
};

/// Location of one stored basket inside the file.
struct BasketInfo {
  uint64_t offset = 0;
  /// Stored (compressed frame) length.
  uint32_t stored_length = 0;
  /// Decompressed payload length.
  uint32_t raw_length = 0;
};

/// Parsed header + basket index of a tree file.
struct TreeIndex {
  TreeSpec spec;
  /// baskets[branch][basket] — every branch has the same basket count.
  std::vector<std::vector<BasketInfo>> baskets;
  /// Offset where basket data begins (end of header+index region).
  uint64_t data_begin = 0;
  /// Total file size recorded in the header.
  uint64_t file_size = 0;
};

/// Builds a complete tree file in memory from deterministic synthetic
/// event data (seeded), basket by basket, compressed with spec.codec.
///
/// Layout: header | branch table | basket index | basket blobs. Blobs
/// are written cluster-major (all branches' basket k, then basket k+1),
/// mirroring ROOT's cluster layout so that one event-range read touches
/// a set of nearby-but-disjoint ranges — the access pattern §2.3 packs
/// into multi-range queries.
std::string BuildTreeFile(const TreeSpec& spec, uint64_t seed);

/// Fixed size of the leading header record.
constexpr size_t kTreeHeaderSize = 41;

/// Reads the fixed header and returns the size of the full header+index
/// region (`data_begin`). Callers fetch kTreeHeaderSize bytes, call this,
/// then fetch the full region and call ParseTreeIndex.
Result<uint64_t> TreeIndexRegionSize(std::string_view header);

/// Parses the complete header+index region (`head` must hold at least
/// TreeIndexRegionSize bytes).
Result<TreeIndex> ParseTreeIndex(std::string_view head);

/// Bytes of synthetic payload for event `event` of branch `branch`
/// (deterministic; used by tests to validate reads end to end).
std::string SyntheticEventBytes(const TreeSpec& spec, size_t branch,
                                uint64_t event, uint64_t seed);

/// Magic bytes at offset 0 of every tree file.
inline constexpr char kTreeMagic[4] = {'D', 'T', 'R', 'F'};

}  // namespace root
}  // namespace davix

#endif  // DAVIX_ROOT_TREE_FORMAT_H_
