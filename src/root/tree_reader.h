#ifndef DAVIX_ROOT_TREE_READER_H_
#define DAVIX_ROOT_TREE_READER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "root/random_access_file.h"
#include "root/storage_adapter.h"
#include "root/tree_format.h"

namespace davix {
namespace root {

/// Opens a tree file over any transport and exposes its index — the
/// TTree-metadata role. Basket *data* fetching is TreeCache's job.
class TreeReader {
 public:
  /// Reads and parses the header + basket index (two small reads).
  /// `file` must outlive the reader.
  static Result<TreeReader> Open(RandomAccessFile* file);

  const TreeIndex& index() const { return index_; }
  const TreeSpec& spec() const { return index_.spec; }
  RandomAccessFile* file() { return file_; }

  /// Branch position by name.
  Result<size_t> BranchIndex(const std::string& name) const;

  /// Decompresses a fetched basket blob (frame from compress::Compress).
  static Result<std::string> DecodeBasket(std::string_view blob);

 private:
  TreeReader(RandomAccessFile* file, TreeIndex index)
      : file_(file), index_(std::move(index)) {}

  RandomAccessFile* file_;
  TreeIndex index_;
};

/// A TreeReader bundled with the transport it reads through — the
/// "TFile::Open(url)" shape: OpenTreeUrl resolves the scheme through the
/// StorageAdapter registry and keeps the transport alive for the
/// reader's lifetime.
struct OwnedTree {
  std::unique_ptr<RandomAccessFile> file;
  std::unique_ptr<TreeReader> reader;
};

/// Opens `url` via StorageAdapterRegistry::Default() and parses the tree
/// header + index over the resulting transport.
Result<OwnedTree> OpenTreeUrl(const std::string& url,
                              const StorageOpenParams& params);

}  // namespace root
}  // namespace davix

#endif  // DAVIX_ROOT_TREE_READER_H_
