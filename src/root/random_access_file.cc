#include "root/random_access_file.h"

#include <algorithm>

namespace davix {
namespace root {

PendingVecRead::~PendingVecRead() = default;

namespace {

/// Already-completed token wrapping a synchronous result.
class CompletedVecRead : public PendingVecRead {
 public:
  explicit CompletedVecRead(Result<std::vector<std::string>> result)
      : result_(std::move(result)) {}

  Result<std::vector<std::string>> Wait() override {
    return std::move(result_);
  }

 private:
  Result<std::vector<std::string>> result_;
};

}  // namespace

Result<std::vector<std::string>> RandomAccessFile::PReadVec(
    const std::vector<http::ByteRange>& ranges) {
  std::vector<std::string> out;
  out.reserve(ranges.size());
  for (const http::ByteRange& r : ranges) {
    DAVIX_ASSIGN_OR_RETURN(std::string data, PRead(r.offset, r.length));
    out.push_back(std::move(data));
  }
  return out;
}

std::unique_ptr<PendingVecRead> RandomAccessFile::PReadVecAsync(
    const std::vector<http::ByteRange>& ranges) {
  return std::make_unique<CompletedVecRead>(PReadVec(ranges));
}

Result<std::string> MemoryFile::PRead(uint64_t offset, uint64_t length) {
  ++reads_;
  if (offset >= data_.size()) return std::string();
  return data_.substr(offset, std::min<uint64_t>(length,
                                                 data_.size() - offset));
}

}  // namespace root
}  // namespace davix
