#include "root/tree_format.h"

#include <cstring>

namespace davix {
namespace root {
namespace {

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint16_t GetU16(const char* p) {
  return static_cast<uint16_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint16_t>(static_cast<unsigned char>(p[1])) << 8;
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t Mix(uint64_t a, uint64_t b) {
  uint64_t z = a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  return z ^ (z >> 31);
}

}  // namespace

TreeSpec TreeSpec::Default() {
  TreeSpec spec;
  spec.n_events = 12000;
  spec.events_per_basket = 250;
  spec.codec = compress::CodecType::kDlz;
  spec.branches = {
      {"event_id", 8}, {"pt", 4},        {"eta", 4},
      {"phi", 4},      {"energy", 4},    {"charge", 1},
      {"n_tracks", 2}, {"cells", 2048},  // calorimeter blob dominates
  };
  return spec;
}

uint64_t TreeSpec::BytesPerEvent() const {
  uint64_t total = 0;
  for (const BranchSpec& branch : branches) total += branch.bytes_per_event;
  return total;
}

uint64_t TreeSpec::BasketCountPerBranch() const {
  if (events_per_basket == 0) return 0;
  return (n_events + events_per_basket - 1) / events_per_basket;
}

std::string SyntheticEventBytes(const TreeSpec& spec, size_t branch,
                                uint64_t event, uint64_t seed) {
  const BranchSpec& b = spec.branches[branch];
  Rng rng(Mix(seed, Mix(branch + 1, event + 1)));
  std::string out;
  out.resize(b.bytes_per_event);
  for (uint32_t i = 0; i < b.bytes_per_event; ++i) {
    // Physics-ish payload: runs of zeros (sparse calorimeter cells)
    // interleaved with low-entropy quantized values, so the codecs see
    // realistic compressibility.
    if ((i + event) % 4 < 2) {
      out[i] = 0;
    } else {
      out[i] = static_cast<char>('A' + rng.Below(23));
    }
  }
  return out;
}

std::string BuildTreeFile(const TreeSpec& spec, uint64_t seed) {
  const uint64_t n_baskets = spec.BasketCountPerBranch();
  const size_t n_branches = spec.branches.size();

  // Compress every basket first so offsets can be laid out.
  // blobs[branch][basket]
  std::vector<std::vector<std::string>> blobs(n_branches);
  for (size_t b = 0; b < n_branches; ++b) {
    blobs[b].resize(n_baskets);
    for (uint64_t k = 0; k < n_baskets; ++k) {
      uint64_t first = k * spec.events_per_basket;
      uint64_t last = std::min<uint64_t>(first + spec.events_per_basket,
                                         spec.n_events);
      std::string raw;
      raw.reserve((last - first) * spec.branches[b].bytes_per_event);
      for (uint64_t e = first; e < last; ++e) {
        raw += SyntheticEventBytes(spec, b, e, seed);
      }
      blobs[b][k] = compress::Compress(spec.codec, raw);
    }
  }

  // Region sizes.
  size_t branch_table_size = 0;
  for (const BranchSpec& branch : spec.branches) {
    branch_table_size += 2 + branch.name.size() + 4;
  }
  size_t index_size = n_branches * n_baskets * 16;
  uint64_t data_begin = kTreeHeaderSize + branch_table_size + index_size;

  // Cluster-major blob layout: all branches' basket k, then k+1 — the
  // ROOT cluster layout that turns an event-range read into a set of
  // nearby scattered ranges.
  std::vector<std::vector<BasketInfo>> index(
      n_branches, std::vector<BasketInfo>(n_baskets));
  uint64_t cursor = data_begin;
  for (uint64_t k = 0; k < n_baskets; ++k) {
    for (size_t b = 0; b < n_branches; ++b) {
      BasketInfo& info = index[b][k];
      info.offset = cursor;
      info.stored_length = static_cast<uint32_t>(blobs[b][k].size());
      uint64_t first = k * spec.events_per_basket;
      uint64_t last = std::min<uint64_t>(first + spec.events_per_basket,
                                         spec.n_events);
      info.raw_length = static_cast<uint32_t>(
          (last - first) * spec.branches[b].bytes_per_event);
      cursor += info.stored_length;
    }
  }
  uint64_t file_size = cursor;

  std::string out;
  out.reserve(file_size);
  out.append(kTreeMagic, sizeof(kTreeMagic));
  PutU32(&out, 1);  // version
  PutU64(&out, spec.n_events);
  PutU32(&out, spec.events_per_basket);
  out.push_back(static_cast<char>(spec.codec));
  PutU32(&out, static_cast<uint32_t>(n_branches));
  PutU64(&out, file_size);
  PutU64(&out, data_begin);

  for (const BranchSpec& branch : spec.branches) {
    PutU16(&out, static_cast<uint16_t>(branch.name.size()));
    out += branch.name;
    PutU32(&out, branch.bytes_per_event);
  }
  for (size_t b = 0; b < n_branches; ++b) {
    for (uint64_t k = 0; k < n_baskets; ++k) {
      PutU64(&out, index[b][k].offset);
      PutU32(&out, index[b][k].stored_length);
      PutU32(&out, index[b][k].raw_length);
    }
  }
  for (uint64_t k = 0; k < n_baskets; ++k) {
    for (size_t b = 0; b < n_branches; ++b) {
      out += blobs[b][k];
    }
  }
  return out;
}

Result<uint64_t> TreeIndexRegionSize(std::string_view header) {
  if (header.size() < kTreeHeaderSize) {
    return Status::InvalidArgument("tree header needs " +
                                   std::to_string(kTreeHeaderSize) + " bytes");
  }
  if (std::memcmp(header.data(), kTreeMagic, sizeof(kTreeMagic)) != 0) {
    return Status::Corruption("bad tree file magic");
  }
  return GetU64(header.data() + 33);
}

Result<TreeIndex> ParseTreeIndex(std::string_view head) {
  DAVIX_ASSIGN_OR_RETURN(uint64_t data_begin, TreeIndexRegionSize(head));
  if (head.size() < data_begin) {
    return Status::InvalidArgument("tree index region needs " +
                                   std::to_string(data_begin) + " bytes");
  }
  TreeIndex index;
  const char* p = head.data();
  uint32_t version = GetU32(p + 4);
  if (version != 1) {
    return Status::Corruption("unsupported tree version " +
                              std::to_string(version));
  }
  index.spec.n_events = GetU64(p + 8);
  index.spec.events_per_basket = GetU32(p + 16);
  uint8_t codec_byte = static_cast<uint8_t>(p[20]);
  if (codec_byte > static_cast<uint8_t>(compress::CodecType::kDlz)) {
    return Status::Corruption("bad codec byte in tree header");
  }
  index.spec.codec = static_cast<compress::CodecType>(codec_byte);
  uint32_t n_branches = GetU32(p + 21);
  index.file_size = GetU64(p + 25);
  index.data_begin = data_begin;
  if (index.spec.events_per_basket == 0 || n_branches == 0 ||
      n_branches > 4096) {
    return Status::Corruption("implausible tree header fields");
  }

  size_t pos = kTreeHeaderSize;
  for (uint32_t b = 0; b < n_branches; ++b) {
    if (pos + 2 > head.size()) return Status::Corruption("truncated branch table");
    uint16_t name_len = GetU16(head.data() + pos);
    pos += 2;
    if (pos + name_len + 4 > head.size()) {
      return Status::Corruption("truncated branch entry");
    }
    BranchSpec branch;
    branch.name = std::string(head.substr(pos, name_len));
    pos += name_len;
    branch.bytes_per_event = GetU32(head.data() + pos);
    pos += 4;
    index.spec.branches.push_back(std::move(branch));
  }

  uint64_t n_baskets = index.spec.BasketCountPerBranch();
  // BasketCountPerBranch rounds up via `n_events + events_per_basket - 1`,
  // which wraps for a near-2^64 declared event count and would make a
  // nonsense header look like an empty (zero-basket) index.
  if (index.spec.n_events != 0 && n_baskets == 0) {
    return Status::Corruption("tree event count overflows basket count");
  }
  // Every basket record must actually be present in the region before
  // anything is allocated for it — an oversized n_events would otherwise
  // drive a huge .assign() off 16 attacker-controlled header bytes.
  // Division keeps the capacity math overflow-free.
  uint64_t record_capacity = (head.size() - pos) / 16 / n_branches;
  if (n_baskets > record_capacity) {
    return Status::Corruption("basket index larger than tree index region");
  }
  index.baskets.assign(n_branches, std::vector<BasketInfo>(n_baskets));
  for (uint32_t b = 0; b < n_branches; ++b) {
    for (uint64_t k = 0; k < n_baskets; ++k) {
      if (pos + 16 > head.size()) {
        return Status::Corruption("truncated basket index");
      }
      BasketInfo& info = index.baskets[b][k];
      info.offset = GetU64(head.data() + pos);
      info.stored_length = GetU32(head.data() + pos + 8);
      info.raw_length = GetU32(head.data() + pos + 12);
      pos += 16;
      // Subtraction form: `offset + stored_length` could wrap uint64 and
      // sneak an out-of-file basket past the bound check.
      if (info.offset < data_begin || info.offset > index.file_size ||
          info.stored_length > index.file_size - info.offset) {
        return Status::Corruption("basket outside file bounds");
      }
    }
  }
  return index;
}

}  // namespace root
}  // namespace davix
