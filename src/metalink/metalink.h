#ifndef DAVIX_METALINK_METALINK_H_
#define DAVIX_METALINK_METALINK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace davix {
namespace metalink {

/// One replica location inside a Metalink document.
struct Replica {
  /// Absolute URL of the replica.
  std::string url;
  /// RFC 5854 priority: lower is preferred. Replicas are tried in
  /// ascending priority order by the fail-over engine.
  int priority = 1;
  /// Optional ISO country code, informational.
  std::string location;
};

/// In-memory form of a Metalink (RFC 5854) file description (§2.4).
///
/// "A Metalink file is a resource description and a set of ordered
/// pointers to this resource" — exactly the fields below.
struct MetalinkFile {
  /// Resource name (file name within the Metalink).
  std::string name;
  /// Size in bytes; 0 when unknown.
  uint64_t size = 0;
  /// Lower-case hex md5 of the content; empty when absent.
  std::string md5;
  /// Replica pointers, any order; consumers sort by priority.
  std::vector<Replica> replicas;

  /// Replicas sorted by ascending priority (stable for equal priorities,
  /// preserving document order).
  std::vector<Replica> SortedReplicas() const;
};

/// Parses a Metalink 4.0 (RFC 5854) XML document. Only the first <file>
/// element is considered: davix resolves one resource per Metalink.
Result<MetalinkFile> ParseMetalink(std::string_view xml_text);

/// Serialises `file` as a Metalink 4.0 document.
std::string WriteMetalink(const MetalinkFile& file);

/// Media type of Metalink documents, used in Accept / Content-Type.
inline constexpr std::string_view kMetalinkContentType =
    "application/metalink4+xml";

}  // namespace metalink
}  // namespace davix

#endif  // DAVIX_METALINK_METALINK_H_
