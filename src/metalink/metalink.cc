#include "metalink/metalink.h"

#include <algorithm>

#include "common/string_util.h"
#include "xml/xml.h"

namespace davix {
namespace metalink {

std::vector<Replica> MetalinkFile::SortedReplicas() const {
  std::vector<Replica> out = replicas;
  std::stable_sort(out.begin(), out.end(),
                   [](const Replica& a, const Replica& b) {
                     return a.priority < b.priority;
                   });
  return out;
}

Result<MetalinkFile> ParseMetalink(std::string_view xml_text) {
  DAVIX_ASSIGN_OR_RETURN(auto root, xml::ParseXml(xml_text));
  // Root element must be <metalink> (possibly namespace-prefixed).
  std::string_view root_name = root->name();
  size_t colon = root_name.find(':');
  if (colon != std::string_view::npos) root_name.remove_prefix(colon + 1);
  if (root_name != "metalink") {
    return Status::ProtocolError("not a metalink document (root <" +
                                 root->name() + ">)");
  }
  const xml::XmlNode* file = root->FirstChild("file");
  if (file == nullptr) {
    return Status::ProtocolError("metalink has no <file> element");
  }

  MetalinkFile out;
  out.name = file->GetAttribute("name").value_or("");
  std::string size_text = file->ChildText("size");
  if (!size_text.empty()) {
    std::optional<uint64_t> size = ParseUint64(size_text);
    if (!size) {
      return Status::ProtocolError("bad metalink <size>: " + size_text);
    }
    out.size = *size;
  }
  for (const xml::XmlNode* hash : file->Children("hash")) {
    std::string type = hash->GetAttribute("type").value_or("");
    if (EqualsIgnoreCase(type, "md5")) {
      out.md5 = AsciiLower(TrimWhitespace(hash->text()));
    }
  }
  for (const xml::XmlNode* url : file->Children("url")) {
    Replica replica;
    replica.url = std::string(TrimWhitespace(url->text()));
    if (replica.url.empty()) continue;
    if (std::optional<std::string> prio = url->GetAttribute("priority")) {
      std::optional<uint64_t> p = ParseUint64(*prio);
      if (p && *p >= 1 && *p <= 999999) {
        replica.priority = static_cast<int>(*p);
      }
    }
    replica.location = url->GetAttribute("location").value_or("");
    out.replicas.push_back(std::move(replica));
  }
  if (out.replicas.empty()) {
    return Status::ProtocolError("metalink <file> has no <url> replicas");
  }
  return out;
}

std::string WriteMetalink(const MetalinkFile& file) {
  xml::XmlNode root("metalink");
  root.SetAttribute("xmlns", "urn:ietf:params:xml:ns:metalink");
  xml::XmlNode* file_node = root.AddChild("file");
  file_node->SetAttribute("name", file.name);
  if (file.size > 0) {
    file_node->AddChild("size")->set_text(std::to_string(file.size));
  }
  if (!file.md5.empty()) {
    xml::XmlNode* hash = file_node->AddChild("hash");
    hash->SetAttribute("type", "md5");
    hash->set_text(file.md5);
  }
  for (const Replica& replica : file.replicas) {
    xml::XmlNode* url = file_node->AddChild("url");
    url->SetAttribute("priority", std::to_string(replica.priority));
    if (!replica.location.empty()) {
      url->SetAttribute("location", replica.location);
    }
    url->set_text(replica.url);
  }
  return "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n" + root.Serialize(2);
}

}  // namespace metalink
}  // namespace davix
