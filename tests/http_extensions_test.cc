#include "common/checksum.h"
#include "common/rng.h"
#include "core/context.h"
#include "core/dav_file.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace davix {
namespace {

using ::davix::testing::StartStorageServer;
using ::davix::testing::TestStorageServer;

// ------------------------------------------------------------- Basic auth

class BasicAuthTest : public ::testing::Test {
 protected:
  void SetUp() override {
    httpd::ServerConfig config;
    config.basic_auth_user = "atlas";
    config.basic_auth_password = "s3cret";
    server_ = StartStorageServer(config);
    server_.store->Put("/protected.bin", "classified");
    context_ = std::make_unique<core::Context>();
    params_.metalink_mode = core::MetalinkMode::kDisabled;
  }

  TestStorageServer server_;
  std::unique_ptr<core::Context> context_;
  core::RequestParams params_;
};

TEST_F(BasicAuthTest, RejectsAnonymous) {
  core::DavFile file =
      *core::DavFile::Make(context_.get(), server_.UrlFor("/protected.bin"));
  Result<std::string> body = file.Get(params_);
  ASSERT_FALSE(body.ok());
  EXPECT_EQ(body.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(BasicAuthTest, RejectsWrongPassword) {
  params_.username = "atlas";
  params_.password = "wrong";
  core::DavFile file =
      *core::DavFile::Make(context_.get(), server_.UrlFor("/protected.bin"));
  EXPECT_EQ(file.Get(params_).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(BasicAuthTest, AcceptsCorrectCredentials) {
  params_.username = "atlas";
  params_.password = "s3cret";
  core::DavFile file =
      *core::DavFile::Make(context_.get(), server_.UrlFor("/protected.bin"));
  ASSERT_OK_AND_ASSIGN(std::string body, file.Get(params_));
  EXPECT_EQ(body, "classified");
}

TEST_F(BasicAuthTest, ChallengeCarriesRealm) {
  core::HttpClient client(context_.get());
  ASSERT_OK_AND_ASSIGN(
      auto exchange,
      client.Execute(*Uri::Parse(server_.UrlFor("/protected.bin")),
                     http::Method::kGet, params_));
  EXPECT_EQ(exchange.response.status_code, 401);
  EXPECT_EQ(exchange.response.headers.Get("WWW-Authenticate"),
            "Basic realm=\"davix\"");
}

TEST_F(BasicAuthTest, AuthenticatedWritesWork) {
  params_.username = "atlas";
  params_.password = "s3cret";
  core::DavFile file =
      *core::DavFile::Make(context_.get(), server_.UrlFor("/new.bin"));
  ASSERT_OK(file.Put("fresh", params_));
  ASSERT_OK_AND_ASSIGN(std::string body, file.Get(params_));
  EXPECT_EQ(body, "fresh");
}

// ------------------------------------------------------------- WebDAV COPY

TEST(CopyTest, ServerSideCopy) {
  TestStorageServer server = StartStorageServer();
  Rng rng(3);
  std::string content = rng.Bytes(50'000);
  server.store->Put("/src.bin", content);
  core::Context context;
  core::RequestParams params;
  params.metalink_mode = core::MetalinkMode::kDisabled;
  core::DavFile file =
      *core::DavFile::Make(&context, server.UrlFor("/src.bin"));
  ASSERT_OK(file.Copy("/dst.bin", params));

  ASSERT_OK_AND_ASSIGN(auto copied, server.store->Get("/dst.bin"));
  EXPECT_EQ(copied->data, content);
  // Source untouched.
  EXPECT_TRUE(server.store->Get("/src.bin").ok());
}

TEST(CopyTest, CopyMissingSourceIs404) {
  TestStorageServer server = StartStorageServer();
  core::Context context;
  core::RequestParams params;
  params.metalink_mode = core::MetalinkMode::kDisabled;
  core::DavFile file =
      *core::DavFile::Make(&context, server.UrlFor("/absent"));
  EXPECT_EQ(file.Copy("/dst", params).code(), StatusCode::kNotFound);
}

TEST(CopyTest, AbsoluteDestinationUrlAccepted) {
  TestStorageServer server = StartStorageServer();
  server.store->Put("/a", "data");
  core::Context context;
  core::RequestParams params;
  params.metalink_mode = core::MetalinkMode::kDisabled;
  core::DavFile file = *core::DavFile::Make(&context, server.UrlFor("/a"));
  ASSERT_OK(file.Copy(server.UrlFor("/b"), params));
  EXPECT_TRUE(server.store->Get("/b").ok());
}

// -------------------------------------------------------------- checksums

TEST(ChecksumQueryTest, MatchesLocalMd5) {
  TestStorageServer server = StartStorageServer();
  Rng rng(9);
  std::string content = rng.Bytes(123'457);
  server.store->Put("/f", content);
  core::Context context;
  core::RequestParams params;
  params.metalink_mode = core::MetalinkMode::kDisabled;
  core::DavFile file = *core::DavFile::Make(&context, server.UrlFor("/f"));
  ASSERT_OK_AND_ASSIGN(std::string digest, file.GetChecksum(params));
  EXPECT_EQ(digest, Md5::HexDigest(content));
}

TEST(ChecksumQueryTest, ServerWithoutDigestSupport) {
  // A plain router endpoint that ignores Want-Digest.
  auto router = std::make_shared<httpd::Router>();
  router->Handle(http::Method::kHead, "/f",
                 [](const http::HttpRequest&, http::HttpResponse* response) {
                   response->status_code = 200;
                   response->headers.Set("Content-Length", "4");
                 });
  ASSERT_OK_AND_ASSIGN(auto server, httpd::HttpServer::Start({}, router));
  core::Context context;
  core::RequestParams params;
  params.metalink_mode = core::MetalinkMode::kDisabled;
  core::DavFile file =
      *core::DavFile::Make(&context, server->BaseUrl() + "/f");
  Result<std::string> digest = file.GetChecksum(params);
  ASSERT_FALSE(digest.ok());
  EXPECT_EQ(digest.status().code(), StatusCode::kNotSupported);
  server->Stop();
}

TEST(ChecksumQueryTest, ChecksumChangesWithContent) {
  TestStorageServer server = StartStorageServer();
  server.store->Put("/f", "version-1");
  core::Context context;
  core::RequestParams params;
  params.metalink_mode = core::MetalinkMode::kDisabled;
  core::DavFile file = *core::DavFile::Make(&context, server.UrlFor("/f"));
  ASSERT_OK_AND_ASSIGN(std::string first, file.GetChecksum(params));
  server.store->Put("/f", "version-2");
  ASSERT_OK_AND_ASSIGN(std::string second, file.GetChecksum(params));
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace davix
