#include "core/replica_set.h"

#include "common/checksum.h"
#include "common/clock.h"
#include "common/rng.h"
#include "core/context.h"
#include "core/dav_posix.h"
#include "core/metalink_engine.h"
#include "fed/federation_handler.h"
#include "fed/replica_catalog.h"
#include "netsim/fault_injector.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace davix {
namespace core {
namespace {

using ::davix::testing::StartStorageServer;
using ::davix::testing::TestStorageServer;

// ------------------------------------------------------- ReplicaSource

TEST(ReplicaSourceTest, HealthStateMachine) {
  ReplicaSource source(*Uri::Parse("http://replica-a:80/f"), 1);
  EXPECT_FALSE(source.Quarantined(1'000));

  // Below the threshold nothing is quarantined; at it, a timed one.
  EXPECT_FALSE(source.RecordFailure(1'000, 2, 500));
  EXPECT_FALSE(source.Quarantined(1'000));
  EXPECT_TRUE(source.RecordFailure(1'000, 2, 500));
  EXPECT_TRUE(source.Quarantined(1'400));
  EXPECT_FALSE(source.Quarantined(1'600));  // deadline passed

  // Still failing after the deadline: quarantined anew.
  EXPECT_TRUE(source.RecordFailure(2'000, 2, 500));
  EXPECT_TRUE(source.Quarantined(2'400));

  // One success resets the streak and lifts the quarantine.
  source.RecordSuccess(5'000);
  EXPECT_FALSE(source.Quarantined(2'100));
  EXPECT_EQ(source.consecutive_failures(), 0);
  EXPECT_GT(source.latency_ewma_micros(), 0);

  // Generation rejection is permanent.
  EXPECT_TRUE(source.RejectGeneration());
  EXPECT_FALSE(source.RejectGeneration());
  EXPECT_TRUE(source.generation_rejected());
  EXPECT_TRUE(source.Quarantined(1'000'000'000));
  source.RecordSuccess(1);
  EXPECT_TRUE(source.Quarantined(1'000'000'000));
}

TEST(ReplicaSourceTest, LatencyEwmaSmoothes) {
  ReplicaSource source(*Uri::Parse("http://replica-a:80/f"), 1);
  source.RecordSuccess(1'000);
  EXPECT_DOUBLE_EQ(source.latency_ewma_micros(), 1'000.0);
  source.RecordSuccess(2'000);
  // alpha = 0.3: 0.3 * 2000 + 0.7 * 1000.
  EXPECT_NEAR(source.latency_ewma_micros(), 1'300.0, 1e-6);
}

// ----------------------------------------------- ranking / striping

TEST(ReplicaSetRankingTest, RanksByHealthThenPriorityAndRotatesStripes) {
  Context context;
  metalink::MetalinkFile file;
  file.replicas = {{"http://b:80/f", 2, ""},
                   {"http://a:80/f", 1, ""},
                   {"http://c:80/f", 3, ""}};
  ASSERT_OK_AND_ASSIGN(
      std::shared_ptr<ReplicaSet> set,
      ReplicaSet::Make(&context, *Uri::Parse("http://a:80/f"), file, {}));
  EXPECT_EQ(set->source_count(), 3u);

  // No samples yet: Metalink priority order.
  auto ranked = set->RankedSources();
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0]->url().ToString(), "http://a:80/f");
  EXPECT_EQ(ranked[1]->url().ToString(), "http://b:80/f");
  EXPECT_EQ(ranked[2]->url().ToString(), "http://c:80/f");

  // A probed fast source outranks unprobed ones.
  set->RecordSuccess(ranked[2], 10);
  ranked = set->RankedSources();
  EXPECT_EQ(ranked[0]->url().ToString(), "http://c:80/f");

  // Stripe slot 1 at width 2 starts on the second-ranked source.
  auto candidates = set->CandidatesFor(1, 2);
  ASSERT_EQ(candidates.size(), 3u);
  EXPECT_EQ(candidates[0]->url().ToString(), ranked[1]->url().ToString());
  // Slot 0 keeps the ranked order.
  candidates = set->CandidatesFor(0, 2);
  EXPECT_EQ(candidates[0]->url().ToString(), ranked[0]->url().ToString());

  // Repeated failures sink a source to the back of the rotation.
  set->RecordFailure(ranked[0]);
  set->RecordFailure(ranked[0]);
  auto after = set->RankedSources();
  EXPECT_EQ(after.back()->url().ToString(), "http://c:80/f");
  EXPECT_TRUE(after.back()->Quarantined(MonotonicMicros()));
}

TEST(ReplicaSetRankingTest, AgreedGenerationAdmission) {
  Context context;
  metalink::MetalinkFile file;
  file.replicas = {{"http://a:80/f", 1, ""}, {"http://b:80/f", 2, ""}};
  ASSERT_OK_AND_ASSIGN(
      std::shared_ptr<ReplicaSet> set,
      ReplicaSet::Make(&context, *Uri::Parse("http://a:80/f"), file, {}));
  auto ranked = set->RankedSources();

  BlockValidator gen1{"\"dv-1\"", 100};
  BlockValidator gen1_skewed{"\"dv-1\"", 200};  // same ETag, skewed mtime
  BlockValidator gen2{"\"dv-2\"", 100};

  // First non-empty validator becomes the agreed generation.
  auto admitted = set->Admit(ranked[0], gen1);
  ASSERT_TRUE(admitted.has_value());
  EXPECT_EQ(admitted->etag, "\"dv-1\"");
  // Equal ETags pool even when Last-Modified skews; the publish
  // validator is always the agreed one.
  admitted = set->Admit(ranked[1], gen1_skewed);
  ASSERT_TRUE(admitted.has_value());
  EXPECT_EQ(admitted->mtime_epoch_seconds, 100);
  // A different ETag is rejected and the source permanently quarantined.
  EXPECT_FALSE(set->Admit(ranked[1], gen2).has_value());
  EXPECT_TRUE(ranked[1]->generation_rejected());
  EXPECT_EQ(set->RankedSources().size(), 1u);
  EXPECT_GE(context.SnapshotCounters().replica_quarantines, 1u);
}

// ------------------------------------------------- replicated fixture

constexpr char kPath[] = "/set/data.bin";

class ReplicaSetTest : public ::testing::Test {
 protected:
  void Deploy(int replica_count, BlockCacheConfig cache_config = {}) {
    Rng rng(99);
    content_ = rng.Bytes(512 * 1024);
    for (int i = 0; i < replica_count; ++i) {
      replicas_.push_back(StartStorageServer());
      replicas_.back().store->Put(kPath, content_);
    }
    catalog_ = std::make_shared<fed::ReplicaCatalog>();
    for (size_t i = 0; i < replicas_.size(); ++i) {
      catalog_->AddReplica(kPath, replicas_[i].UrlFor(kPath),
                           static_cast<int>(i + 1));
    }
    catalog_->SetFileMeta(kPath, content_.size(), Md5::HexDigest(content_));
    federation_ = std::make_shared<fed::FederationHandler>(catalog_);
    fed_router_ = std::make_shared<httpd::Router>();
    federation_->Register(fed_router_.get(), "/");
    auto server = httpd::HttpServer::Start({}, fed_router_);
    ASSERT_TRUE(server.ok());
    fed_server_ = std::move(*server);

    context_ = std::make_unique<Context>(SessionPoolConfig{}, 0,
                                         cache_config);
    params_.metalink_resolver = fed_server_->BaseUrl();
    params_.max_retries = 0;
    params_.connect_timeout_micros = 2'000'000;
  }

  std::string PrimaryUrl() const { return replicas_[0].UrlFor(kPath); }

  Result<std::shared_ptr<ReplicaSet>> ResolveSet() {
    return ReplicaSet::Resolve(context_.get(), *Uri::Parse(PrimaryUrl()),
                               params_);
  }

  std::string content_;
  std::vector<TestStorageServer> replicas_;
  std::shared_ptr<fed::ReplicaCatalog> catalog_;
  std::shared_ptr<fed::FederationHandler> federation_;
  std::shared_ptr<httpd::Router> fed_router_;
  std::unique_ptr<httpd::HttpServer> fed_server_;
  std::unique_ptr<Context> context_;
  RequestParams params_;
};

TEST_F(ReplicaSetTest, StreamStripesAcrossReplicasAndDeliversInOrder) {
  Deploy(3);
  params_.multistream_chunk_bytes = 64 * 1024;
  params_.multistream_max_streams = 3;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<ReplicaSet> set, ResolveSet());

  std::string assembled;
  uint64_t expected_offset = 0;
  bool in_order = true;
  ASSERT_OK(set->Stream(0, content_.size(), params_,
                        [&](uint64_t offset, std::string_view data) {
                          if (offset != expected_offset) in_order = false;
                          expected_offset = offset + data.size();
                          assembled.append(data);
                          return Status::OK();
                        }));
  EXPECT_TRUE(in_order);
  EXPECT_EQ(assembled, content_);
  // 8 chunks rotated over a 3-wide stripe: every replica served bytes.
  for (auto& replica : replicas_) {
    EXPECT_GT(replica.handler->stats().get_requests.load(), 0u);
  }
}

TEST_F(ReplicaSetTest, WarmStreamRerunsFromCacheWithZeroRangeGets) {
  BlockCacheConfig cache_config;
  cache_config.capacity_bytes = 8 << 20;
  cache_config.block_bytes = 16 * 1024;
  Deploy(3, cache_config);
  params_.multistream_chunk_bytes = 64 * 1024;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<ReplicaSet> set, ResolveSet());

  auto read_all = [&](std::string* out) {
    return set->Stream(0, content_.size(), params_,
                       [out](uint64_t, std::string_view data) {
                         out->append(data);
                         return Status::OK();
                       });
  };
  std::string cold;
  ASSERT_OK(read_all(&cold));
  EXPECT_EQ(cold, content_);
  IoCounters after_cold = context_->SnapshotCounters();
  EXPECT_GT(after_cold.multisource_chunks, 0u);

  std::string warm;
  ASSERT_OK(read_all(&warm));
  EXPECT_EQ(warm, content_);
  IoCounters after_warm = context_->SnapshotCounters();
  // The rerun put no chunk range-GET on the wire: every chunk was
  // served by the cache probe.
  EXPECT_EQ(after_warm.multisource_chunks, after_cold.multisource_chunks);
  EXPECT_GT(after_warm.multisource_cache_chunks,
            after_cold.multisource_cache_chunks);
}

TEST_F(ReplicaSetTest, MismatchedReplicaIsQuarantinedAndNeverCached) {
  BlockCacheConfig cache_config;
  cache_config.capacity_bytes = 8 << 20;
  cache_config.block_bytes = 16 * 1024;
  Deploy(2, cache_config);
  // Replica 1 serves a different generation (new ETag, new bytes).
  replicas_[1].store->Put(kPath, std::string(content_.size(), 'Z'));
  params_.multistream_chunk_bytes = 64 * 1024;
  params_.multistream_max_streams = 2;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<ReplicaSet> set, ResolveSet());

  std::string assembled;
  ASSERT_OK(set->Stream(0, content_.size(), params_,
                        [&](uint64_t, std::string_view data) {
                          assembled.append(data);
                          return Status::OK();
                        }));
  // The stream never mixes generations: every byte delivered — and
  // every byte cached — comes from the agreed (primary) generation.
  EXPECT_EQ(assembled, content_);
  std::string cached;
  ASSERT_TRUE(context_->block_cache().TryReadFull(
      BlockCache::UrlKey(*Uri::Parse(PrimaryUrl())), 0, content_.size(),
      &cached));
  EXPECT_EQ(cached, content_);

  IoCounters io = context_->SnapshotCounters();
  EXPECT_GE(io.replica_validator_rejects, 1u);
  EXPECT_GE(io.replica_quarantines, 1u);
  bool rejected = false;
  for (const ReplicaSourceSnapshot& snap : set->Snapshot()) {
    if (snap.url == replicas_[1].UrlFor(kPath)) {
      rejected = snap.generation_rejected;
    }
  }
  EXPECT_TRUE(rejected);
}

TEST_F(ReplicaSetTest, DavPosixWindowedReadFailsOverMidStream) {
  Deploy(2);
  params_.readahead_bytes = 32 * 1024;
  params_.readahead_window_chunks = 3;
  DavPosix posix(context_.get());
  ASSERT_OK_AND_ASSIGN(int fd, posix.Open(PrimaryUrl(), params_));

  std::string assembled;
  while (assembled.size() < content_.size() / 4) {
    ASSERT_OK_AND_ASSIGN(std::string part, posix.Read(fd, 16 * 1024));
    ASSERT_FALSE(part.empty());
    assembled += part;
  }
  // The replica serving the stream dies mid-read: the window's chunk
  // fetches re-dispatch to the surviving source — no error surfaces.
  replicas_[0].server->faults().SetServerDown(true);
  while (true) {
    ASSERT_OK_AND_ASSIGN(std::string part, posix.Read(fd, 16 * 1024));
    if (part.empty()) break;
    assembled += part;
  }
  EXPECT_EQ(assembled.size(), content_.size());
  EXPECT_EQ(Crc32(assembled), Crc32(content_));
  EXPECT_GE(context_->SnapshotCounters().replica_failovers, 1u);
  EXPECT_OK(posix.Close(fd));
}

TEST_F(ReplicaSetTest, VectoredBatchesRedispatchAfterPrimaryDies) {
  Deploy(2);
  params_.max_ranges_per_request = 2;  // force several wire batches
  DavPosix posix(context_.get());
  ASSERT_OK_AND_ASSIGN(int fd, posix.Open(PrimaryUrl(), params_));
  replicas_[0].server->faults().SetServerDown(true);

  std::vector<http::ByteRange> ranges;
  for (uint64_t i = 0; i < 8; ++i) {
    ranges.push_back({i * 50'000, 1'000});
  }
  ASSERT_OK_AND_ASSIGN(auto results, posix.PReadVec(fd, ranges));
  ASSERT_EQ(results.size(), ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_EQ(results[i], content_.substr(ranges[i].offset,
                                          ranges[i].length));
  }
  EXPECT_GE(context_->SnapshotCounters().replica_failovers, 1u);
  EXPECT_OK(posix.Close(fd));
}

TEST_F(ReplicaSetTest, LossyPrimaryStillDeliversExactBytes) {
  BlockCacheConfig cache_config;
  cache_config.capacity_bytes = 8 << 20;
  cache_config.block_bytes = 16 * 1024;
  Deploy(2, cache_config);
  // The primary truncates half of its responses mid-body (netsim loss):
  // reads must still complete with exact bytes and no surfaced error.
  netsim::FaultRule rule;
  rule.path_prefix = kPath;
  rule.action = netsim::FaultAction::kTruncateBody;
  rule.probability = 0.5;
  replicas_[0].server->faults().AddRule(rule);

  params_.readahead_bytes = 32 * 1024;
  params_.readahead_window_chunks = 2;
  DavPosix posix(context_.get());
  ASSERT_OK_AND_ASSIGN(int fd, posix.Open(PrimaryUrl(), params_));
  std::string assembled;
  while (true) {
    ASSERT_OK_AND_ASSIGN(std::string part, posix.Read(fd, 16 * 1024));
    if (part.empty()) break;
    assembled += part;
  }
  EXPECT_EQ(Crc32(assembled), Crc32(content_));

  std::vector<http::ByteRange> ranges = {{1'000, 5'000},
                                         {200'000, 8'000},
                                         {500'000, 12'000}};
  ASSERT_OK_AND_ASSIGN(auto results, posix.PReadVec(fd, ranges));
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_EQ(results[i], content_.substr(ranges[i].offset,
                                          ranges[i].length));
  }
  // Every cached block still belongs to the one true generation.
  std::string cached;
  if (context_->block_cache().TryReadFull(
          BlockCache::UrlKey(*Uri::Parse(PrimaryUrl())), 0,
          content_.size(), &cached)) {
    EXPECT_EQ(cached, content_);
  }
  EXPECT_OK(posix.Close(fd));
}

}  // namespace
}  // namespace core
}  // namespace davix
