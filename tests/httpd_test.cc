#include "common/rng.h"
#include "core/context.h"
#include "core/http_client.h"
#include "http/multipart.h"
#include "http/range.h"
#include "httpd/object_store.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace davix {
namespace {

using ::davix::testing::StartStorageServer;
using ::davix::testing::TestStorageServer;

// ------------------------------------------------------------ ObjectStore

TEST(ObjectStoreTest, PutGetDelete) {
  httpd::ObjectStore store;
  EXPECT_FALSE(store.Put("/a/b", "data"));  // fresh
  EXPECT_TRUE(store.Put("/a/b", "data2"));  // overwrite
  ASSERT_OK_AND_ASSIGN(auto object, store.Get("/a/b"));
  EXPECT_EQ(object->data, "data2");
  ASSERT_OK(store.Delete("/a/b"));
  EXPECT_FALSE(store.Get("/a/b").ok());
  EXPECT_FALSE(store.Delete("/a/b").ok());
}

TEST(ObjectStoreTest, PathNormalisation) {
  httpd::ObjectStore store;
  store.Put("no-slash", "x");
  EXPECT_TRUE(store.Get("/no-slash").ok());
  store.Put("/trail/", "y");
  EXPECT_TRUE(store.Get("/trail").ok());
}

TEST(ObjectStoreTest, StatObjectAndCollection) {
  httpd::ObjectStore store;
  store.Put("/dir/file", "12345");
  ASSERT_OK_AND_ASSIGN(auto meta, store.Stat("/dir/file"));
  EXPECT_EQ(meta.size, 5u);
  EXPECT_FALSE(meta.is_collection);
  // Parent collection implicitly created by Put.
  ASSERT_OK_AND_ASSIGN(meta, store.Stat("/dir"));
  EXPECT_TRUE(meta.is_collection);
  ASSERT_OK_AND_ASSIGN(meta, store.Stat("/"));
  EXPECT_TRUE(meta.is_collection);
  EXPECT_FALSE(store.Stat("/nope").ok());
}

TEST(ObjectStoreTest, ListChildren) {
  httpd::ObjectStore store;
  store.Put("/d/a", "1");
  store.Put("/d/b", "2");
  store.Put("/d/sub/c", "3");
  ASSERT_OK_AND_ASSIGN(auto children, store.ListChildren("/d"));
  EXPECT_EQ(children, (std::vector<std::string>{"a", "b", "sub"}));
  EXPECT_FALSE(store.ListChildren("/missing").ok());
}

TEST(ObjectStoreTest, DeleteCollectionRecursive) {
  httpd::ObjectStore store;
  store.Put("/d/a", "1");
  store.Put("/d/sub/c", "3");
  ASSERT_OK(store.Delete("/d"));
  EXPECT_FALSE(store.Get("/d/a").ok());
  EXPECT_FALSE(store.Get("/d/sub/c").ok());
  EXPECT_EQ(store.ObjectCount(), 0u);
}

TEST(ObjectStoreTest, MoveObject) {
  httpd::ObjectStore store;
  store.Put("/x", "data");
  ASSERT_OK(store.Move("/x", "/y"));
  EXPECT_FALSE(store.Get("/x").ok());
  EXPECT_TRUE(store.Get("/y").ok());
  EXPECT_FALSE(store.Move("/x", "/z").ok());
}

TEST(ObjectStoreTest, EtagsDiffer) {
  httpd::ObjectStore store;
  store.Put("/a", "1");
  store.Put("/b", "1");
  ASSERT_OK_AND_ASSIGN(auto a, store.Get("/a"));
  ASSERT_OK_AND_ASSIGN(auto b, store.Get("/b"));
  EXPECT_NE(a->etag, b->etag);
}

// -------------------------------------------------- server integration

class HttpdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = StartStorageServer();
    context_ = std::make_unique<core::Context>();
    client_ = std::make_unique<core::HttpClient>(context_.get());
  }

  Result<core::HttpClient::Exchange> Do(
      http::Method method, const std::string& path,
      std::string body = std::string(),
      const http::HeaderMap* headers = nullptr) {
    auto uri = Uri::Parse(server_.UrlFor(path));
    EXPECT_TRUE(uri.ok());
    return client_->Execute(*uri, method, params_, std::move(body), headers);
  }

  TestStorageServer server_;
  std::unique_ptr<core::Context> context_;
  std::unique_ptr<core::HttpClient> client_;
  core::RequestParams params_;
};

TEST_F(HttpdTest, PutThenGet) {
  ASSERT_OK_AND_ASSIGN(auto put, Do(http::Method::kPut, "/f", "hello"));
  EXPECT_EQ(put.response.status_code, 201);
  ASSERT_OK_AND_ASSIGN(auto put2, Do(http::Method::kPut, "/f", "hello2"));
  EXPECT_EQ(put2.response.status_code, 204);  // overwrite
  ASSERT_OK_AND_ASSIGN(auto get, Do(http::Method::kGet, "/f"));
  EXPECT_EQ(get.response.status_code, 200);
  EXPECT_EQ(get.response.body, "hello2");
  EXPECT_TRUE(get.response.headers.Has("ETag"));
  EXPECT_TRUE(get.response.headers.Has("Last-Modified"));
  EXPECT_EQ(get.response.headers.Get("Accept-Ranges"), "bytes");
}

TEST_F(HttpdTest, GetMissingIs404) {
  ASSERT_OK_AND_ASSIGN(auto get, Do(http::Method::kGet, "/nope"));
  EXPECT_EQ(get.response.status_code, 404);
}

TEST_F(HttpdTest, HeadHasLengthNoBody) {
  server_.store->Put("/f", std::string(1234, 'x'));
  ASSERT_OK_AND_ASSIGN(auto head, Do(http::Method::kHead, "/f"));
  EXPECT_EQ(head.response.status_code, 200);
  EXPECT_EQ(head.response.headers.GetUint64("Content-Length"), 1234u);
  EXPECT_TRUE(head.response.body.empty());
}

TEST_F(HttpdTest, SingleRange206) {
  server_.store->Put("/f", "0123456789");
  http::HeaderMap headers;
  headers.Set("Range", "bytes=2-5");
  ASSERT_OK_AND_ASSIGN(auto get,
                       Do(http::Method::kGet, "/f", "", &headers));
  EXPECT_EQ(get.response.status_code, 206);
  EXPECT_EQ(get.response.body, "2345");
  EXPECT_EQ(get.response.headers.Get("Content-Range"), "bytes 2-5/10");
  EXPECT_EQ(server_.handler->stats().range_requests.load(), 1u);
}

TEST_F(HttpdTest, MultiRangeMultipart) {
  server_.store->Put("/f", "0123456789ABCDEF");
  http::HeaderMap headers;
  headers.Set("Range", "bytes=0-3,8-11");
  ASSERT_OK_AND_ASSIGN(auto get,
                       Do(http::Method::kGet, "/f", "", &headers));
  EXPECT_EQ(get.response.status_code, 206);
  std::string content_type = *get.response.headers.Get("Content-Type");
  ASSERT_OK_AND_ASSIGN(std::string boundary,
                       http::ExtractBoundary(content_type));
  ASSERT_OK_AND_ASSIGN(auto parts,
                       http::ParseMultipartBody(get.response.body, boundary));
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].data, "0123");
  EXPECT_EQ(parts[1].data, "89AB");
  EXPECT_EQ(parts[0].total_size, 16u);
  EXPECT_EQ(server_.handler->stats().multirange_requests.load(), 1u);
  EXPECT_EQ(server_.handler->stats().ranges_served.load(), 2u);
}

TEST_F(HttpdTest, UnsatisfiableRange416) {
  server_.store->Put("/f", "0123");
  http::HeaderMap headers;
  headers.Set("Range", "bytes=100-200");
  ASSERT_OK_AND_ASSIGN(auto get,
                       Do(http::Method::kGet, "/f", "", &headers));
  EXPECT_EQ(get.response.status_code, 416);
  EXPECT_EQ(get.response.headers.Get("Content-Range"), "bytes */4");
}

TEST_F(HttpdTest, MultirangeDisabledServesFullEntity) {
  server_.handler->set_support_multirange(false);
  server_.store->Put("/f", "0123456789");
  http::HeaderMap headers;
  headers.Set("Range", "bytes=0-1,8-9");
  ASSERT_OK_AND_ASSIGN(auto get,
                       Do(http::Method::kGet, "/f", "", &headers));
  EXPECT_EQ(get.response.status_code, 200);
  EXPECT_EQ(get.response.body, "0123456789");
}

TEST_F(HttpdTest, MaxRangesCapYields416) {
  server_.handler->set_max_ranges_per_request(2);
  server_.store->Put("/f", "0123456789");
  http::HeaderMap headers;
  headers.Set("Range", "bytes=0-0,2-2,4-4");
  ASSERT_OK_AND_ASSIGN(auto get,
                       Do(http::Method::kGet, "/f", "", &headers));
  EXPECT_EQ(get.response.status_code, 416);
}

TEST_F(HttpdTest, DeleteMkcolMove) {
  server_.store->Put("/f", "x");
  ASSERT_OK_AND_ASSIGN(auto del, Do(http::Method::kDelete, "/f"));
  EXPECT_EQ(del.response.status_code, 204);
  ASSERT_OK_AND_ASSIGN(auto del2, Do(http::Method::kDelete, "/f"));
  EXPECT_EQ(del2.response.status_code, 404);

  ASSERT_OK_AND_ASSIGN(auto mkcol, Do(http::Method::kMkcol, "/newdir"));
  EXPECT_EQ(mkcol.response.status_code, 201);

  server_.store->Put("/src", "move me");
  http::HeaderMap headers;
  headers.Set("Destination", "/dst");
  ASSERT_OK_AND_ASSIGN(auto move,
                       Do(http::Method::kMove, "/src", "", &headers));
  EXPECT_EQ(move.response.status_code, 201);
  EXPECT_TRUE(server_.store->Get("/dst").ok());
}

TEST_F(HttpdTest, OptionsAdvertisesDav) {
  ASSERT_OK_AND_ASSIGN(auto options, Do(http::Method::kOptions, "/"));
  EXPECT_EQ(options.response.status_code, 200);
  EXPECT_EQ(options.response.headers.Get("DAV"), "1");
}

TEST_F(HttpdTest, PropfindDepth1ListsChildren) {
  server_.store->Put("/d/one", "1");
  server_.store->Put("/d/two", "22");
  http::HeaderMap headers;
  headers.Set("Depth", "1");
  ASSERT_OK_AND_ASSIGN(auto propfind,
                       Do(http::Method::kPropfind, "/d", "", &headers));
  EXPECT_EQ(propfind.response.status_code, 207);
  EXPECT_NE(propfind.response.body.find("/d/one"), std::string::npos);
  EXPECT_NE(propfind.response.body.find("/d/two"), std::string::npos);
  EXPECT_NE(propfind.response.body.find("getcontentlength"),
            std::string::npos);
}

TEST_F(HttpdTest, KeepAliveReusesConnection) {
  server_.store->Put("/f", "x");
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK_AND_ASSIGN(auto get, Do(http::Method::kGet, "/f"));
    EXPECT_EQ(get.response.status_code, 200);
  }
  // One connection, five requests on it.
  EXPECT_EQ(server_.server->stats().connections_accepted.load(), 1u);
  EXPECT_EQ(server_.server->stats().requests_handled.load(), 5u);
  EXPECT_EQ(server_.server->stats().keepalive_reuses.load(), 4u);
}

TEST_F(HttpdTest, NoKeepAliveOpensConnectionPerRequest) {
  params_.keep_alive = false;
  server_.store->Put("/f", "x");
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK_AND_ASSIGN(auto get, Do(http::Method::kGet, "/f"));
    EXPECT_EQ(get.response.status_code, 200);
  }
  EXPECT_EQ(server_.server->stats().connections_accepted.load(), 3u);
}

TEST_F(HttpdTest, ServerSideKeepaliveDisableForcesClose) {
  httpd::ServerConfig config;
  config.enable_keepalive = false;
  TestStorageServer server = StartStorageServer(config);
  server.store->Put("/f", "x");
  core::Context context;
  core::HttpClient client(&context);
  auto uri = Uri::Parse(server.UrlFor("/f"));
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK_AND_ASSIGN(auto get, client.Execute(*uri, http::Method::kGet,
                                                  core::RequestParams{}));
    EXPECT_EQ(get.response.status_code, 200);
    EXPECT_FALSE(get.response.KeepsConnectionAlive());
  }
  EXPECT_EQ(server.server->stats().connections_accepted.load(), 3u);
}

TEST_F(HttpdTest, InjectedServerErrorIs503) {
  server_.store->Put("/f", "x");
  netsim::FaultRule rule;
  rule.path_prefix = "/f";
  rule.action = netsim::FaultAction::kServerError;
  rule.max_hits = 1;
  server_.server->faults().AddRule(rule);
  // Retries are on by default: first attempt sees 503? No — HttpClient
  // only retries transport errors; a 503 response is returned as-is.
  params_.max_retries = 0;
  ASSERT_OK_AND_ASSIGN(auto get, Do(http::Method::kGet, "/f"));
  EXPECT_EQ(get.response.status_code, 503);
  ASSERT_OK_AND_ASSIGN(auto again, Do(http::Method::kGet, "/f"));
  EXPECT_EQ(again.response.status_code, 200);  // max_hits exhausted
}

TEST_F(HttpdTest, RefuseConnectionSurfacesAsTransportError) {
  server_.store->Put("/f", "x");
  server_.server->faults().SetServerDown(true);
  params_.max_retries = 1;
  params_.retry_delay_micros = 1000;
  Result<core::HttpClient::Exchange> result = Do(http::Method::kGet, "/f");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsRetryable());
  // Server recovers.
  server_.server->faults().SetServerDown(false);
  ASSERT_OK_AND_ASSIGN(auto get, Do(http::Method::kGet, "/f"));
  EXPECT_EQ(get.response.status_code, 200);
}

TEST_F(HttpdTest, TruncatedBodyDetected) {
  server_.store->Put("/f", std::string(10000, 'y'));
  netsim::FaultRule rule;
  rule.path_prefix = "/f";
  rule.action = netsim::FaultAction::kTruncateBody;
  rule.max_hits = 3;  // cover the retries
  server_.server->faults().AddRule(rule);
  params_.max_retries = 0;
  Result<core::HttpClient::Exchange> result = Do(http::Method::kGet, "/f");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kConnectionReset);
}

TEST_F(HttpdTest, LargeObjectRoundTrip) {
  Rng rng(42);
  std::string big = rng.Bytes(4 << 20);
  ASSERT_OK_AND_ASSIGN(auto put, Do(http::Method::kPut, "/big", big));
  EXPECT_EQ(put.response.status_code, 201);
  ASSERT_OK_AND_ASSIGN(auto get, Do(http::Method::kGet, "/big"));
  EXPECT_EQ(get.response.body, big);
}

TEST_F(HttpdTest, RouterPrefixFallback404) {
  ASSERT_OK_AND_ASSIGN(auto uri, Uri::Parse(server_.UrlFor("/f")));
  // Router covers "/" so this goes to the dav handler; but an unrouted
  // prefix needs a dedicated router to test 404 routing:
  auto router = std::make_shared<httpd::Router>();
  router->Handle(http::Method::kGet, "/only-here",
                 [](const http::HttpRequest&, http::HttpResponse* response) {
                   response->status_code = 200;
                   response->body = "routed";
                 });
  ASSERT_OK_AND_ASSIGN(auto server,
                       httpd::HttpServer::Start({}, router));
  core::Context context;
  core::HttpClient client(&context);
  ASSERT_OK_AND_ASSIGN(
      auto hit, client.Execute(*Uri::Parse(server->BaseUrl() + "/only-here"),
                               http::Method::kGet, core::RequestParams{}));
  EXPECT_EQ(hit.response.status_code, 200);
  ASSERT_OK_AND_ASSIGN(
      auto miss, client.Execute(*Uri::Parse(server->BaseUrl() + "/elsewhere"),
                                http::Method::kGet, core::RequestParams{}));
  EXPECT_EQ(miss.response.status_code, 404);
  server->Stop();
}

}  // namespace
}  // namespace davix
